"""Unit tests for :mod:`repro.simulation.schedule`."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.schedule import ExecutionInterval, JobRecord, SimulationResult


class TestExecutionInterval:
    def test_duration_and_work(self):
        interval = ExecutionInterval(machine=0, job_id=1, start=2.0, end=5.0, speed=2.0)
        assert interval.duration == pytest.approx(3.0)
        assert interval.work == pytest.approx(6.0)

    def test_energy(self):
        interval = ExecutionInterval(machine=0, job_id=1, start=0.0, end=2.0, speed=3.0)
        assert interval.energy(alpha=2.0) == pytest.approx(18.0)

    def test_end_before_start_rejected(self):
        with pytest.raises(SimulationError):
            ExecutionInterval(machine=0, job_id=1, start=5.0, end=2.0)

    def test_non_positive_speed_rejected(self):
        with pytest.raises(SimulationError):
            ExecutionInterval(machine=0, job_id=1, start=0.0, end=1.0, speed=0.0)


class TestJobRecord:
    def test_completed_flow_time(self):
        record = JobRecord(
            job_id=0, weight=2.0, release=1.0, machine=0, start=2.0, completion=5.0, rejected=False
        )
        assert record.finished
        assert record.flow_time == pytest.approx(4.0)
        assert record.weighted_flow_time == pytest.approx(8.0)

    def test_rejected_flow_time(self):
        record = JobRecord(
            job_id=0,
            weight=1.0,
            release=1.0,
            machine=None,
            start=None,
            completion=None,
            rejected=True,
            rejection_time=3.0,
        )
        assert not record.finished
        assert record.flow_time == pytest.approx(2.0)

    def test_rejected_without_time_raises(self):
        record = JobRecord(
            job_id=0, weight=1.0, release=1.0, machine=None, start=None, completion=None,
            rejected=True,
        )
        with pytest.raises(SimulationError):
            _ = record.flow_time

    def test_unsettled_record_raises(self):
        record = JobRecord(
            job_id=0, weight=1.0, release=1.0, machine=None, start=None, completion=None,
            rejected=False,
        )
        with pytest.raises(SimulationError):
            _ = record.flow_time


class TestSimulationResult:
    def _result(self) -> SimulationResult:
        instance = Instance.build(2, [Job(0, 0.0, (1.0, 2.0)), Job(1, 0.0, (2.0, 1.0))])
        records = {
            0: JobRecord(0, 1.0, 0.0, 0, 0.0, 1.0, False),
            1: JobRecord(1, 1.0, 0.0, 1, 0.0, None, True, rejection_time=0.5),
        }
        intervals = [
            ExecutionInterval(0, 0, 0.0, 1.0),
            ExecutionInterval(1, 1, 0.0, 0.5, completed=False),
        ]
        return SimulationResult(instance, records, intervals, algorithm="test")

    def test_record_lookup(self):
        result = self._result()
        assert result.record(0).finished
        assert result.record(1).rejected

    def test_completed_and_rejected_partition(self):
        result = self._result()
        assert {r.job_id for r in result.completed_records()} == {0}
        assert {r.job_id for r in result.rejected_records()} == {1}

    def test_intervals_on_machine(self):
        result = self._result()
        assert [iv.job_id for iv in result.intervals_on(0)] == [0]

    def test_makespan(self):
        assert self._result().makespan() == pytest.approx(1.0)

    def test_machine_busy_time(self):
        result = self._result()
        assert result.machine_busy_time(1) == pytest.approx(0.5)

    def test_unknown_job_record_rejected(self):
        instance = Instance.build(1, [Job(0, 0.0, (1.0,))])
        bad_records = {5: JobRecord(5, 1.0, 0.0, 0, 0.0, 1.0, False)}
        with pytest.raises(SimulationError):
            SimulationResult(instance, bad_records, [])
