"""Tests for the online flow-time baselines (greedy, FCFS, immediate rejection, speed aug.)."""

import math

import pytest

from repro.baselines.fcfs import FCFSScheduler
from repro.baselines.greedy import GreedyDispatchScheduler
from repro.baselines.immediate_rejection import ImmediateRejectionScheduler
from repro.baselines.speed_augmentation import (
    SpeedAugmentedScheduler,
    run_with_speed_augmentation,
)
from repro.exceptions import InvalidParameterError
from repro.simulation.engine import FlowTimeEngine
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.metrics import rejected_fraction, total_flow_time
from repro.simulation.validation import validate_result
from repro.workloads.adversarial import lemma1_instance


class TestGreedyDispatch:
    def test_never_rejects(self, random_instance):
        result = FlowTimeEngine(random_instance).run(GreedyDispatchScheduler())
        assert rejected_fraction(result) == 0.0
        validate_result(result)

    def test_prefers_cheaper_machine(self):
        instance = Instance.build(2, [Job(0, 0.0, (10.0, 1.0))])
        result = FlowTimeEngine(instance).run(GreedyDispatchScheduler())
        assert result.record(0).machine == 1

    def test_spt_beats_fcfs_local_order(self):
        # Three jobs queue up behind a running job; SPT clears the short ones
        # first while FCFS serves the long one first.
        jobs = [
            Job(0, 0.0, (8.0,)),
            Job(1, 0.5, (5.0,)),
            Job(2, 0.6, (1.0,)),
            Job(3, 0.7, (1.0,)),
        ]
        instance = Instance.build(1, jobs)
        spt = total_flow_time(FlowTimeEngine(instance).run(GreedyDispatchScheduler("spt")))
        fcfs = total_flow_time(FlowTimeEngine(instance).run(GreedyDispatchScheduler("fcfs")))
        assert spt < fcfs

    def test_invalid_local_order(self):
        with pytest.raises(InvalidParameterError):
            GreedyDispatchScheduler("lifo")

    def test_accounts_for_running_backlog(self):
        # Machine 0 is busy with a long job; a new job should go to machine 1
        # even though its size there is slightly larger.
        jobs = [Job(0, 0.0, (100.0, 200.0)), Job(1, 1.0, (5.0, 6.0))]
        instance = Instance.build(2, jobs)
        result = FlowTimeEngine(instance).run(GreedyDispatchScheduler())
        assert result.record(1).machine == 1


class TestFCFS:
    def test_never_rejects_and_valid(self, random_instance):
        result = FlowTimeEngine(random_instance).run(FCFSScheduler())
        assert rejected_fraction(result) == 0.0
        validate_result(result)

    def test_runs_in_release_order(self):
        jobs = [Job(0, 0.0, (5.0,)), Job(1, 0.1, (1.0,)), Job(2, 0.2, (0.5,))]
        instance = Instance.build(1, jobs)
        result = FlowTimeEngine(instance).run(FCFSScheduler())
        assert result.record(1).start < result.record(2).start

    def test_balances_load(self):
        jobs = [Job(j, 0.0, (4.0, 4.0)) for j in range(4)]
        instance = Instance.build(2, jobs)
        result = FlowTimeEngine(instance).run(FCFSScheduler())
        machines = [result.record(j).machine for j in range(4)]
        assert machines.count(0) == 2 and machines.count(1) == 2


class TestImmediateRejection:
    def test_budget_respected(self):
        instance = lemma1_instance(length=8.0, epsilon=0.25)
        for variant in ("largest", "overload"):
            scheduler = ImmediateRejectionScheduler(epsilon=0.25, variant=variant)
            result = FlowTimeEngine(instance).run(scheduler)
            assert rejected_fraction(result) <= 0.25 + 1e-9

    def test_never_variant_rejects_nothing(self, random_instance):
        scheduler = ImmediateRejectionScheduler(epsilon=0.5, variant="never")
        result = FlowTimeEngine(random_instance).run(scheduler)
        assert rejected_fraction(result) == 0.0

    def test_rejection_happens_at_arrival_only(self):
        instance = lemma1_instance(length=8.0, epsilon=0.5)
        scheduler = ImmediateRejectionScheduler(epsilon=0.5, variant="largest")
        result = FlowTimeEngine(instance).run(scheduler)
        for record in result.rejected_records():
            assert record.rejection_time == pytest.approx(record.release)
            assert record.start is None  # never started, never interrupted

    def test_degrades_with_delta(self):
        # The Lemma 1 phenomenon: flow time normalised by the lower bound
        # grows as the instance's Delta grows.
        from repro.lowerbounds.flow_combinatorial import best_flow_time_lower_bound

        ratios = []
        for length in (4.0, 16.0):
            instance = lemma1_instance(length=length, epsilon=0.25)
            scheduler = ImmediateRejectionScheduler(epsilon=0.25, variant="largest")
            result = FlowTimeEngine(instance).run(scheduler)
            ratios.append(total_flow_time(result) / best_flow_time_lower_bound(instance))
        assert ratios[1] > 1.5 * ratios[0]

    def test_invalid_variant(self):
        with pytest.raises(InvalidParameterError):
            ImmediateRejectionScheduler(epsilon=0.1, variant="bogus")


class TestSpeedAugmentation:
    def test_runs_on_faster_machines(self, random_instance):
        result = run_with_speed_augmentation(random_instance, epsilon_speed=0.5, epsilon_reject=0.5)
        assert result.extras["epsilon_speed"] == 0.5
        # All executions happen at the augmented speed factor 1.5.
        assert all(iv.speed == pytest.approx(1.5) for iv in result.intervals)
        validate_result(result)

    def test_scheduler_uses_only_rule1(self):
        scheduler = SpeedAugmentedScheduler(epsilon_reject=0.25)
        assert scheduler.enable_rule1 and not scheduler.enable_rule2

    def test_faster_machines_reduce_flow_time(self, random_instance):
        slow = run_with_speed_augmentation(random_instance, epsilon_speed=0.0, epsilon_reject=0.25)
        fast = run_with_speed_augmentation(random_instance, epsilon_speed=1.0, epsilon_reject=0.25)
        assert total_flow_time(fast) < total_flow_time(slow)

    def test_negative_speed_rejected(self, random_instance):
        with pytest.raises(InvalidParameterError):
            run_with_speed_augmentation(random_instance, epsilon_speed=-0.1, epsilon_reject=0.25)
