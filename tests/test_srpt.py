"""Tests for the SRPT relaxations."""

import pytest

from repro.baselines.srpt import (
    srpt_per_machine_assignment_bound,
    srpt_single_machine_flow_time,
    srpt_unrelated_lower_bound,
)
from repro.exceptions import InvalidParameterError
from repro.simulation.instance import Instance
from repro.simulation.job import Job


class TestSingleMachineSRPT:
    def test_single_job(self):
        assert srpt_single_machine_flow_time([(0.0, 5.0)]) == pytest.approx(5.0)

    def test_two_jobs_shortest_first(self):
        # Released together: SRPT runs the short one first: flows 1 and 4.
        assert srpt_single_machine_flow_time([(0.0, 3.0), (0.0, 1.0)]) == pytest.approx(5.0)

    def test_preemption_helps(self):
        # A long job starts, a short job arrives and preempts it.
        # flows: short = 1, long = 10 + 1 = 11.
        value = srpt_single_machine_flow_time([(0.0, 10.0), (2.0, 1.0)])
        assert value == pytest.approx(11.0 + 1.0)

    def test_idle_period_handled(self):
        value = srpt_single_machine_flow_time([(0.0, 1.0), (10.0, 1.0)])
        assert value == pytest.approx(2.0)

    def test_speed_scales_flow(self):
        slow = srpt_single_machine_flow_time([(0.0, 4.0)], speed=1.0)
        fast = srpt_single_machine_flow_time([(0.0, 4.0)], speed=2.0)
        assert fast == pytest.approx(slow / 2.0)

    def test_matches_optimal_on_simultaneous_release(self):
        # For jobs released together SRPT = SPT and the optimum is the
        # well-known sum of (n - i) * p_(i).
        sizes = [3.0, 1.0, 2.0]
        expected = 1.0 * 3 + 2.0 * 2 + 3.0 * 1
        assert srpt_single_machine_flow_time([(0.0, p) for p in sizes]) == pytest.approx(expected)

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            srpt_single_machine_flow_time([(0.0, 0.0)])
        with pytest.raises(InvalidParameterError):
            srpt_single_machine_flow_time([(0.0, 1.0)], speed=0.0)


class TestUnrelatedRelaxations:
    def test_pooled_reference_positive(self, random_instance):
        assert srpt_unrelated_lower_bound(random_instance) > 0

    def test_pooled_reference_below_single_machine_equivalent(self):
        # Pooling machines can only reduce the SRPT value.
        jobs = [Job(j, 0.0, (2.0, 2.0)) for j in range(6)]
        instance = Instance.build(2, jobs)
        pooled = srpt_unrelated_lower_bound(instance)
        single = srpt_single_machine_flow_time([(0.0, 2.0)] * 6, speed=1.0)
        assert pooled < single

    def test_empty_instance(self):
        assert srpt_unrelated_lower_bound(Instance.build(2, [])) == 0.0

    def test_per_machine_assignment_bound(self):
        jobs = [Job(0, 0.0, (2.0, 9.0)), Job(1, 0.0, (9.0, 3.0))]
        instance = Instance.build(2, jobs)
        value = srpt_per_machine_assignment_bound(instance, {0: 0, 1: 1})
        assert value == pytest.approx(2.0 + 3.0)

    def test_per_machine_assignment_ignores_unassigned(self):
        jobs = [Job(0, 0.0, (2.0,))]
        instance = Instance.build(1, jobs)
        assert srpt_per_machine_assignment_bound(instance, {}) == 0.0
