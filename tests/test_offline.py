"""Tests for the offline references (list scheduling and brute force)."""

import pytest

from repro.baselines.greedy import GreedyDispatchScheduler
from repro.baselines.offline import (
    brute_force_optimal_energy,
    brute_force_optimal_flow_time,
    offline_list_schedule,
)
from repro.core.energy_min import ConfigLPEnergyScheduler
from repro.exceptions import InvalidParameterError
from repro.simulation.engine import FlowTimeEngine
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.machine import Machine
from repro.simulation.metrics import total_flow_time
from repro.workloads.generators import DeadlineInstanceGenerator, InstanceGenerator


class TestOfflineListSchedule:
    def test_single_machine_spt_optimal_case(self):
        # Simultaneous release on one machine: SPT list scheduling is optimal.
        jobs = [Job(0, 0.0, (3.0,)), Job(1, 0.0, (1.0,)), Job(2, 0.0, (2.0,))]
        instance = Instance.build(1, jobs)
        assert offline_list_schedule(instance) == pytest.approx(1.0 + 3.0 + 6.0)

    def test_feasible_hence_at_least_optimum(self):
        instance = InstanceGenerator(num_machines=2, seed=3).generate(6)
        heuristic = offline_list_schedule(instance)
        optimum = brute_force_optimal_flow_time(instance)
        assert heuristic >= optimum - 1e-9

    def test_empty_instance(self):
        assert offline_list_schedule(Instance.build(2, [])) == 0.0

    def test_unknown_ordering_rejected(self):
        instance = Instance.build(1, [Job(0, 0.0, (1.0,))])
        with pytest.raises(InvalidParameterError):
            offline_list_schedule(instance, orderings=("bogus",))


class TestBruteForceFlowTime:
    def test_single_job(self):
        instance = Instance.build(2, [Job(0, 1.0, (4.0, 2.0))])
        assert brute_force_optimal_flow_time(instance) == pytest.approx(2.0)

    def test_two_jobs_two_machines(self):
        jobs = [Job(0, 0.0, (3.0, 3.0)), Job(1, 0.0, (3.0, 3.0))]
        instance = Instance.build(2, jobs)
        # One job per machine: flows 3 + 3.
        assert brute_force_optimal_flow_time(instance) == pytest.approx(6.0)

    def test_waiting_is_sometimes_forced(self):
        jobs = [Job(0, 0.0, (2.0,)), Job(1, 0.0, (2.0,))]
        instance = Instance.build(1, jobs)
        assert brute_force_optimal_flow_time(instance) == pytest.approx(2.0 + 4.0)

    def test_never_above_any_online_policy(self):
        instance = InstanceGenerator(num_machines=2, seed=10).generate(6)
        optimum = brute_force_optimal_flow_time(instance)
        online = total_flow_time(FlowTimeEngine(instance).run(GreedyDispatchScheduler()))
        assert optimum <= online + 1e-9

    def test_size_limit(self):
        instance = InstanceGenerator(num_machines=2, seed=0).generate(12)
        with pytest.raises(InvalidParameterError):
            brute_force_optimal_flow_time(instance, max_jobs=8)

    def test_respects_forbidden_machines(self):
        import math

        jobs = [Job(0, 0.0, (math.inf, 5.0)), Job(1, 0.0, (1.0, math.inf))]
        instance = Instance.build(2, jobs)
        assert brute_force_optimal_flow_time(instance) == pytest.approx(6.0)


class TestBruteForceEnergy:
    def test_single_job_matches_greedy(self):
        jobs = [Job(0, 0.0, (2.0,), deadline=4.0)]
        instance = Instance.build(Machine.fleet(1, alpha=2.0), jobs)
        greedy = ConfigLPEnergyScheduler(slot_length=1.0, speeds_per_job=8).schedule(instance)
        optimum = brute_force_optimal_energy(instance, slot_length=1.0, speeds_per_job=8)
        assert optimum == pytest.approx(greedy.total_energy)

    def test_never_above_greedy_same_grid(self):
        instance = DeadlineInstanceGenerator(num_machines=2, slack=3.0, alpha=2.0, seed=4).generate(5)
        greedy = ConfigLPEnergyScheduler(slot_length=1.0, speeds_per_job=6).schedule(instance)
        optimum = brute_force_optimal_energy(instance, slot_length=1.0, speeds_per_job=6, max_jobs=5)
        assert optimum <= greedy.total_energy + 1e-9

    def test_size_limit(self):
        instance = DeadlineInstanceGenerator(num_machines=1, slack=3.0, seed=1).generate(10)
        with pytest.raises(InvalidParameterError):
            brute_force_optimal_energy(instance, max_jobs=6)
