"""Unit tests for :mod:`repro.simulation.metrics`."""

import pytest

from repro.simulation.engine import ArrivalDecision, FlowTimeEngine, FlowTimePolicy
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.machine import Machine
from repro.simulation.metrics import (
    flow_plus_energy,
    machine_utilisation,
    max_flow_time,
    mean_stretch,
    rejected_count,
    rejected_fraction,
    rejected_weight,
    rejected_weight_fraction,
    summarize,
    total_energy,
    total_flow_time,
    total_weighted_flow_time,
)
from repro.simulation.schedule import ExecutionInterval, JobRecord, SimulationResult


def _manual_result() -> SimulationResult:
    """Two completed jobs and one rejected job with easily checked numbers."""
    instance = Instance.build(
        Machine.fleet(2, alpha=2.0),
        [
            Job(0, 0.0, (2.0, 2.0), weight=1.0),
            Job(1, 1.0, (3.0, 3.0), weight=2.0),
            Job(2, 2.0, (4.0, 4.0), weight=4.0),
        ],
    )
    records = {
        0: JobRecord(0, 1.0, 0.0, 0, 0.0, 2.0, False),          # flow 2
        1: JobRecord(1, 2.0, 1.0, 1, 1.0, 4.0, False),          # flow 3
        2: JobRecord(2, 4.0, 2.0, 0, None, None, True, rejection_time=5.0),  # flow 3
    }
    intervals = [
        ExecutionInterval(0, 0, 0.0, 2.0, speed=1.0),
        ExecutionInterval(1, 1, 1.0, 4.0, speed=1.0),
    ]
    return SimulationResult(instance, records, intervals, algorithm="manual")


class TestFlowMetrics:
    def test_total_flow_time_includes_rejected(self):
        assert total_flow_time(_manual_result()) == pytest.approx(2.0 + 3.0 + 3.0)

    def test_total_flow_time_excluding_rejected(self):
        assert total_flow_time(_manual_result(), include_rejected=False) == pytest.approx(5.0)

    def test_total_weighted_flow_time(self):
        assert total_weighted_flow_time(_manual_result()) == pytest.approx(
            1.0 * 2.0 + 2.0 * 3.0 + 4.0 * 3.0
        )

    def test_max_flow_time(self):
        assert max_flow_time(_manual_result()) == pytest.approx(3.0)

    def test_mean_stretch_completed_only(self):
        # Job 0: flow 2 / best size 2 = 1; job 1: flow 3 / 3 = 1.
        assert mean_stretch(_manual_result()) == pytest.approx(1.0)


class TestEnergyMetrics:
    def test_total_energy_unit_speed(self):
        # Two intervals at speed 1 with alpha 2: energy equals busy time.
        assert total_energy(_manual_result()) == pytest.approx(2.0 + 3.0)

    def test_flow_plus_energy(self):
        result = _manual_result()
        assert flow_plus_energy(result) == pytest.approx(
            total_weighted_flow_time(result) + total_energy(result)
        )


class TestRejectionMetrics:
    def test_counts(self):
        result = _manual_result()
        assert rejected_count(result) == 1
        assert rejected_fraction(result) == pytest.approx(1.0 / 3.0)

    def test_weights(self):
        result = _manual_result()
        assert rejected_weight(result) == pytest.approx(4.0)
        assert rejected_weight_fraction(result) == pytest.approx(4.0 / 7.0)


class TestSummaryAndUtilisation:
    def test_summarize_consistency(self):
        result = _manual_result()
        summary = summarize(result)
        assert summary.total_flow_time == pytest.approx(total_flow_time(result))
        assert summary.rejected_count == 1
        assert summary.makespan == pytest.approx(4.0)
        assert summary.as_dict()["algorithm"] == "manual"

    def test_machine_utilisation(self):
        utilisation = machine_utilisation(_manual_result())
        assert utilisation[0] == pytest.approx(2.0 / 4.0)
        assert utilisation[1] == pytest.approx(3.0 / 4.0)

    def test_empty_result(self):
        instance = Instance.build(1, [])
        empty = SimulationResult(instance, {}, [], algorithm="empty")
        assert total_flow_time(empty) == 0.0
        assert rejected_fraction(empty) == 0.0
        assert machine_utilisation(empty) == [0.0]
