"""Tests for the unified benchmark harness (``repro.benchmarking``)."""

from __future__ import annotations

import json

import pytest

from repro.benchmarking import (
    ARTIFACT_PREFIX,
    SPECS,
    artifact_path,
    compare_to_baseline,
    main,
    run_benchmarks,
)
from repro.utils.serialization import canonical_json

#: Cheap, fast subset used throughout; scale shrinks workloads to test size.
_FAST = ["e1_flow_time", "event_queue", "solver_facade"]
_SCALE = 0.02

REQUIRED_SCHEMA_KEYS = {"bench", "n_jobs", "median_s", "events_per_sec", "fingerprint"}


@pytest.fixture(scope="module")
def fast_results(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench")
    results = run_benchmarks(out, only=_FAST, repeats=1, scale=_SCALE)
    return out, results


class TestArtifacts:
    def test_one_artifact_per_bench_with_schema(self, fast_results):
        out, results = fast_results
        assert len(results) == len(_FAST)
        for result in results:
            path = artifact_path(out, result["bench"])
            assert path.name == f"{ARTIFACT_PREFIX}{result['bench']}.json"
            assert path.is_file()
            payload = json.loads(path.read_text())
            assert REQUIRED_SCHEMA_KEYS <= set(payload)
            assert payload["events_per_sec"] > 0
            assert payload["median_s"] > 0
            assert payload["n_jobs"] > 0

    def test_artifacts_are_canonical_json(self, fast_results):
        out, results = fast_results
        for result in results:
            text = artifact_path(out, result["bench"]).read_text()
            payload = json.loads(text)
            assert text == canonical_json(payload, indent=2) + "\n"

    def test_fingerprint_stable_across_runs(self, fast_results, tmp_path):
        _, results = fast_results
        rerun = run_benchmarks(tmp_path, only=["event_queue"], repeats=1, scale=_SCALE)
        (old,) = [r for r in results if r["bench"] == "event_queue"]
        assert rerun[0]["fingerprint"] == old["fingerprint"]

    def test_quick_subset_emits_at_least_three(self):
        quick = [spec for spec in SPECS.values() if spec.quick]
        assert len(quick) >= 3

    def test_unknown_slug_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            run_benchmarks(tmp_path, only=["nope"], repeats=1, scale=_SCALE)


class TestRegressionGate:
    def test_passes_against_own_results(self, fast_results):
        out, results = fast_results
        assert compare_to_baseline(results, out, max_regression=0.25) == []

    def test_detects_throughput_regression(self, fast_results, tmp_path):
        out, results = fast_results
        inflated = dict(results[0])
        inflated["events_per_sec"] = results[0]["events_per_sec"] * 10
        baseline_dir = tmp_path / "baseline"
        baseline_dir.mkdir()
        artifact_path(baseline_dir, inflated["bench"]).write_text(
            canonical_json(inflated, indent=2)
        )
        failures = compare_to_baseline(results, baseline_dir, max_regression=0.25)
        assert len(failures) == 1
        assert inflated["bench"] in failures[0]

    def test_detects_fingerprint_change(self, fast_results, tmp_path):
        out, results = fast_results
        tampered = dict(results[0])
        tampered["fingerprint"] = "deadbeefdeadbeef"
        baseline_dir = tmp_path / "baseline"
        baseline_dir.mkdir()
        artifact_path(baseline_dir, tampered["bench"]).write_text(
            canonical_json(tampered, indent=2)
        )
        failures = compare_to_baseline(results, baseline_dir, max_regression=0.25)
        assert len(failures) == 1
        assert "fingerprint" in failures[0]

    def test_missing_baseline_is_not_a_failure(self, fast_results, tmp_path):
        _, results = fast_results
        assert compare_to_baseline(results, tmp_path, max_regression=0.25) == []


class TestCli:
    def test_list_exits_zero(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for slug in SPECS:
            assert slug in out

    def test_run_and_gate_exit_codes(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        code = main(
            ["--only", "event_queue", "--repeats", "1", "--scale", str(_SCALE),
             "--out", str(out_dir), "--baseline", str(out_dir)]
        )
        # First run writes the artifact then compares against itself.
        assert code == 0
        # Now tamper the baseline upwards to force a failure exit.
        payload = json.loads(artifact_path(out_dir, "event_queue").read_text())
        payload["events_per_sec"] *= 10
        baseline_dir = tmp_path / "baseline"
        baseline_dir.mkdir()
        artifact_path(baseline_dir, "event_queue").write_text(canonical_json(payload, indent=2))
        code = main(
            ["--only", "event_queue", "--repeats", "1", "--scale", str(_SCALE),
             "--out", str(out_dir), "--baseline", str(baseline_dir)]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_repro_bench_subcommand_delegates(self, tmp_path):
        from repro.cli import main as cli_main

        out_dir = tmp_path / "out"
        code = cli_main(
            ["bench", "--only", "event_queue", "--repeats", "1", "--scale", str(_SCALE),
             "--out", str(out_dir)]
        )
        assert code == 0
        assert artifact_path(out_dir, "event_queue").is_file()

    @pytest.mark.parametrize("slug", ["e1_flow_time", "e1_scan", "e1_vectorized"])
    def test_checked_in_baseline_matches_current_fingerprint(self, slug):
        # The CI gate is only meaningful while a baseline's workload recipe
        # matches the harness; changing a bench requires re-recording its
        # benchmarks/baselines/BENCH_<slug>.json deliberately.
        from pathlib import Path

        baseline = Path(__file__).resolve().parents[1] / "benchmarks" / "baselines"
        payload = json.loads(artifact_path(baseline, slug).read_text())
        case = SPECS[slug].build(1.0)
        assert payload["fingerprint"] == case.fingerprint


class TestDispatchBenches:
    def test_registered_and_quick(self):
        # All three dispatch modes must run in the per-PR CI subset so the
        # trajectory records them side by side.
        for slug in ("e1_flow_time", "e1_scan", "e1_vectorized"):
            assert SPECS[slug].quick, slug

    def test_distinct_fingerprints_per_mode(self):
        # Same workload, different recipes: each mode gates against its own
        # baseline, never against another mode's.
        cases = {
            slug: SPECS[slug].build(_SCALE)
            for slug in ("e1_flow_time", "e1_scan", "e1_vectorized")
        }
        fingerprints = [case.fingerprint for case in cases.values()]
        assert len(set(fingerprints)) == len(fingerprints)
        assert cases["e1_scan"].meta["dispatch"] == "scan"
        assert cases["e1_vectorized"].meta["dispatch"] == "vectorized"

    def test_vectorized_runs_at_tiny_scale(self, tmp_path):
        (result,) = run_benchmarks(tmp_path, only=["e1_vectorized"], repeats=1, scale=_SCALE)
        assert result["events"] > 0
        assert result["events_per_sec"] > 0


class TestFrontier1MPreset:
    def test_preset_pins_the_frontier_point(self):
        from repro.experiments.exp_scalability_frontier import (
            FRONTIER_1M_PEAK_RSS_BUDGET_MB,
            frontier_1m_config,
        )

        config = frontier_1m_config()
        assert config.job_counts == (1_000_000,)
        assert config.algorithms == ("rejection-flow",)
        assert config.dispatch == "vectorized"
        assert FRONTIER_1M_PEAK_RSS_BUDGET_MB >= 2048

    def test_preset_runs_at_reduced_scale_within_budget(self):
        # The full n=1M point is a nightly-scale run; here the same config
        # shape at n=2k proves the wiring (vectorized dispatch reaches the
        # engine) and that peak RSS is tracked.
        from dataclasses import replace

        from repro.experiments.exp_scalability_frontier import (
            FRONTIER_1M_PEAK_RSS_BUDGET_MB,
            frontier_1m_config,
            run,
        )

        config = replace(frontier_1m_config(), job_counts=(2_000,))
        result = run(config)
        (row,) = result.raw["rows"]
        assert row["algorithm"] == "rejection-flow"
        assert row["events"] > 0
        assert 0 < row["peak_rss_mb"] < FRONTIER_1M_PEAK_RSS_BUDGET_MB
