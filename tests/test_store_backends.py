"""Contract tests for the pluggable store backends.

One suite, parameterized over every :class:`StoreBackend` implementation:
whatever holds for the filesystem backend must hold for sqlite and memory
too — especially the three atomic primitives the distributed dispatcher's
lease protocol is built on (`put`, `put_if_absent`, `compare_and_put`),
which are exercised under real thread races here, not just sequentially.
"""

from __future__ import annotations

import threading

import pytest

from repro.campaigns import ArtifactStore, CampaignRunner, diff_stores, get_grid
from repro.campaigns.backends import (
    FilesystemBackend,
    MemoryBackend,
    SQLiteBackend,
    open_backend,
    validate_backend_key,
)
from repro.campaigns.store import blob_key_for
from repro.exceptions import InvalidParameterError

BACKEND_KINDS = ("file", "sqlite", "memory")


def make_backend(kind: str, tmp_path):
    if kind == "file":
        return FilesystemBackend(tmp_path / "store")
    if kind == "sqlite":
        return SQLiteBackend(tmp_path / "store.db")
    return MemoryBackend()


@pytest.fixture(params=BACKEND_KINDS)
def backend(request, tmp_path):
    return make_backend(request.param, tmp_path)


class TestBackendContract:
    def test_get_put_exists_delete_round_trip(self, backend):
        assert backend.get("a/b") is None
        assert not backend.exists("a/b")
        backend.put("a/b", b"one")
        assert backend.get("a/b") == b"one"
        assert backend.exists("a/b")
        backend.put("a/b", b"two")  # last writer wins
        assert backend.get("a/b") == b"two"
        assert backend.delete("a/b")
        assert not backend.delete("a/b")
        assert backend.get("a/b") is None

    def test_put_if_absent_single_winner(self, backend):
        assert backend.put_if_absent("k", b"first")
        assert not backend.put_if_absent("k", b"second")
        assert backend.get("k") == b"first"

    def test_compare_and_put_exact_semantics(self, backend):
        assert not backend.compare_and_put("k", b"new", expected=b"old")  # missing
        backend.put("k", b"old")
        assert not backend.compare_and_put("k", b"new", expected=b"wrong")
        assert backend.get("k") == b"old"
        assert backend.compare_and_put("k", b"new", expected=b"old")
        assert backend.get("k") == b"new"
        # The CAS token is the *previous* bytes: reusing it must fail.
        assert not backend.compare_and_put("k", b"newer", expected=b"old")

    def test_list_keys_by_prefix_sorted(self, backend):
        for key in ("leases/b", "ab/one.json", "leases/a", "cd/two.json"):
            backend.put(key, b"x")
        assert backend.list_keys() == [
            "ab/one.json", "cd/two.json", "leases/a", "leases/b",
        ]
        assert backend.list_keys("leases/") == ["leases/a", "leases/b"]
        assert backend.list_keys("nope/") == []

    @pytest.mark.parametrize("bad", ["", "/abs", "trail/", "a//b", "../up", "a/./b"])
    def test_malformed_keys_rejected(self, backend, bad):
        with pytest.raises(InvalidParameterError):
            validate_backend_key(bad)
        with pytest.raises(InvalidParameterError):
            backend.put(bad, b"x")

    def test_describe_reopens_same_blobs(self, backend, tmp_path):
        if isinstance(backend, MemoryBackend):
            backend = MemoryBackend("shared-describe")
        backend.put("aa/k.json", b"payload")
        reopened = open_backend(backend.describe())
        assert reopened.get("aa/k.json") == b"payload"

    def test_put_if_absent_race_has_exactly_one_winner(self, backend):
        barrier = threading.Barrier(8)
        wins = []

        def contender(i):
            barrier.wait()
            if backend.put_if_absent("contested", b"worker-%d" % i):
                wins.append(i)

        threads = [threading.Thread(target=contender, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert backend.get("contested") == b"worker-%d" % wins[0]

    def test_compare_and_put_race_has_exactly_one_winner(self, backend):
        backend.put("contested", b"base")
        barrier = threading.Barrier(8)
        wins = []

        def contender(i):
            barrier.wait()
            if backend.compare_and_put("contested", b"worker-%d" % i, expected=b"base"):
                wins.append(i)

        threads = [threading.Thread(target=contender, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert backend.get("contested") == b"worker-%d" % wins[0]


class TestFilesystemHygiene:
    def test_delete_prunes_empty_directories(self, tmp_path):
        backend = FilesystemBackend(tmp_path / "store")
        backend.put("ab/cd/deep.json", b"x")
        assert backend.delete("ab/cd/deep.json")
        # A cleanly emptied store leaves no skeleton dirs behind — that's
        # what keeps `diff -r` against a never-written store empty.
        assert not (tmp_path / "store" / "ab").exists()

    def test_transients_hidden_from_listing_and_swept(self, tmp_path):
        backend = FilesystemBackend(tmp_path / "store")
        backend.put("ab/real.json", b"x")
        (tmp_path / "store" / "ab" / "orphan.tmp").write_bytes(b"torn")
        (tmp_path / "store" / "ab" / "real.json.lock").write_bytes(b"")
        assert backend.list_keys() == ["ab/real.json"]
        assert backend.sweep_transients() == 2
        assert backend.list_keys() == ["ab/real.json"]
        assert backend.sweep_transients() == 0

    def test_put_never_leaves_torn_blob_when_killed_mid_write(self, tmp_path, monkeypatch):
        # Kill-point test: crash the writer at the atomic-rename boundary —
        # the worst possible moment — and require the target key to be
        # wholly absent, with only sweepable temp residue on disk.
        backend = FilesystemBackend(tmp_path / "store")

        def exploding_replace(src, dst):
            raise KeyboardInterrupt("killed mid-publish")

        monkeypatch.setattr("repro.campaigns.backends.os.replace", exploding_replace)
        with pytest.raises(KeyboardInterrupt):
            backend.put("ab/victim.json", b"half-written")
        monkeypatch.undo()
        assert backend.get("ab/victim.json") is None
        assert backend.list_keys() == []
        backend.sweep_transients()
        backend.put("ab/victim.json", b"clean")
        assert backend.get("ab/victim.json") == b"clean"


class TestOpenBackend:
    def test_plain_path_and_file_scheme_are_filesystem(self, tmp_path):
        for spec in (tmp_path / "plain", f"file:{tmp_path / 'scheme'}"):
            backend = open_backend(spec)
            assert isinstance(backend, FilesystemBackend)

    def test_sqlite_and_memory_schemes(self, tmp_path):
        assert isinstance(open_backend(f"sqlite:{tmp_path / 'kv.db'}"), SQLiteBackend)
        a, b = open_backend("memory:shared-open"), open_backend("memory:shared-open")
        a.put("k", b"v")
        assert b.get("k") == b"v"  # named memory namespaces are shared

    def test_backend_instances_pass_through(self, tmp_path):
        backend = MemoryBackend()
        assert open_backend(backend) is backend

    def test_empty_spec_rejected(self):
        with pytest.raises(InvalidParameterError):
            open_backend("")


class TestArtifactStoreOverBackends:
    @pytest.fixture(params=BACKEND_KINDS)
    def store(self, request, tmp_path):
        return ArtifactStore(backend=make_backend(request.param, tmp_path))

    def test_save_load_keys(self, store):
        store.save("ab12cd34", {"x": 1})
        assert store.has("ab12cd34")
        assert store.load("ab12cd34") == {"x": 1}
        assert list(store.keys()) == ["ab12cd34"]
        assert store.delete("ab12cd34") and not store.has("ab12cd34")

    def test_save_if_absent_first_writer_wins(self, store):
        assert store.save_if_absent("ab12cd34", {"x": 1})
        assert not store.save_if_absent("ab12cd34", {"x": 2})
        assert store.load("ab12cd34") == {"x": 1}

    def test_lease_keys_excluded_from_artifact_keyspace(self, store):
        store.save("ab12cd34", {"x": 1})
        store.backend.put("leases/ab12cd34", b"claim")
        assert list(store.keys()) == ["ab12cd34"]

    def test_path_for_only_on_filesystem(self, store):
        if store.root is not None:
            assert store.path_for("ab12cd34").name == "ab12cd34.json"
        else:
            with pytest.raises(InvalidParameterError):
                store.path_for("ab12cd34")

    def test_bytes_identical_across_backends(self, tmp_path):
        payload = {"z": [1.5, float("inf")], "a": {"nested": (1, 2)}}
        stores = [
            ArtifactStore(backend=make_backend(kind, tmp_path))
            for kind in BACKEND_KINDS
        ]
        blobs = []
        for store in stores:
            store.save("ab12cd34", payload)
            blobs.append(store.backend.get(blob_key_for("ab12cd34")))
        assert blobs[0] == blobs[1] == blobs[2]

    def test_diff_stores_reports_membership_and_byte_differences(self, tmp_path):
        a = ArtifactStore(backend=MemoryBackend())
        b = ArtifactStore(backend=SQLiteBackend(tmp_path / "b.db"))
        a.save("ab12cd34", {"x": 1})
        b.save("ab12cd34", {"x": 1})
        assert diff_stores(a, b) == []
        a.save("ffee0011", {"only": "a"})
        b.backend.put(blob_key_for("ab12cd34"), b'{"x":2}\n')
        lines = diff_stores(a, b)
        assert any("only in memory:" in line and "ffee0011" in line for line in lines)
        assert "artifact bytes differ: ab12cd34" in lines


class TestRunnerOnKeyedBackends:
    def test_campaign_resumes_with_full_cache_hits_on_sqlite(self, tmp_path):
        store = ArtifactStore.open(f"sqlite:{tmp_path / 'grid.db'}")
        tasks = get_grid("smoke").tasks()
        first = CampaignRunner(store, workers=1).run(tasks)
        assert first.computed == len(tasks) and first.cached == 0
        second = CampaignRunner(store, workers=1).run(tasks)
        assert second.computed == 0 and second.cached == len(tasks)

    def test_sqlite_store_matches_filesystem_store(self, tmp_path):
        tasks = get_grid("smoke").tasks()
        fs_store = ArtifactStore(tmp_path / "fs")
        kv_store = ArtifactStore.open(f"sqlite:{tmp_path / 'kv.db'}")
        CampaignRunner(fs_store, workers=1).run(tasks)
        CampaignRunner(kv_store, workers=1).run(tasks)
        assert diff_stores(fs_store, kv_store) == []
