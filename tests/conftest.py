"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.machine import Machine
from repro.workloads.generators import (
    DeadlineInstanceGenerator,
    InstanceGenerator,
    WeightedInstanceGenerator,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for ad-hoc test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_instance() -> Instance:
    """Three jobs on two machines with hand-computable schedules."""
    jobs = [
        Job(0, release=0.0, sizes=(2.0, 4.0)),
        Job(1, release=0.0, sizes=(3.0, 1.0)),
        Job(2, release=1.0, sizes=(1.0, 2.0)),
    ]
    return Instance.build(2, jobs, name="tiny")


@pytest.fixture
def single_machine_instance() -> Instance:
    """Five jobs on one machine, staggered releases."""
    jobs = [
        Job(0, release=0.0, sizes=(4.0,)),
        Job(1, release=1.0, sizes=(2.0,)),
        Job(2, release=1.5, sizes=(1.0,)),
        Job(3, release=6.0, sizes=(3.0,)),
        Job(4, release=6.0, sizes=(0.5,)),
    ]
    return Instance.single_machine(jobs, name="single-five")


@pytest.fixture
def random_instance() -> Instance:
    """A reproducible 60-job random instance on 3 unrelated machines."""
    return InstanceGenerator(num_machines=3, seed=7).generate(60)


@pytest.fixture
def weighted_instance() -> Instance:
    """A reproducible weighted instance for the Section 3 algorithm (alpha=2.5)."""
    return WeightedInstanceGenerator(num_machines=2, alpha=2.5, seed=11).generate(40)


@pytest.fixture
def deadline_instance() -> Instance:
    """A reproducible deadline instance for the Section 4 algorithm (alpha=2)."""
    return DeadlineInstanceGenerator(num_machines=2, slack=4.0, alpha=2.0, seed=5).generate(15)


@pytest.fixture
def single_machine_deadline_instance() -> Instance:
    """A reproducible single-machine deadline instance (YDS applies)."""
    return DeadlineInstanceGenerator(num_machines=1, slack=3.0, alpha=2.0, seed=6).generate(10)


@pytest.fixture
def burst_instance() -> Instance:
    """Every job released at time 0 (stresses the queueing lower bounds)."""
    jobs = [Job(j, 0.0, (float(1 + (j % 4)), float(2 + (j % 3)))) for j in range(12)]
    return Instance.build(2, jobs, name="burst")


def make_jobs_identical(sizes, machines: int = 1, releases=None, weights=None, deadlines=None):
    """Helper used across tests: build identical-machine jobs from plain lists."""
    releases = releases if releases is not None else [0.0] * len(sizes)
    weights = weights if weights is not None else [1.0] * len(sizes)
    deadlines = deadlines if deadlines is not None else [None] * len(sizes)
    return [
        Job(
            id=j,
            release=float(releases[j]),
            sizes=tuple([float(sizes[j])] * machines),
            weight=float(weights[j]),
            deadline=deadlines[j],
        )
        for j in range(len(sizes))
    ]
