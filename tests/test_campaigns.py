"""Tests for the campaign runner, artifact store and aggregation layer."""

import pickle

import pytest

from repro.campaigns import (
    ArtifactStore,
    CampaignRunner,
    CampaignTask,
    aggregate_tables,
    available_grids,
    export_csv,
    get_grid,
    render_campaign_report,
    result_from_payload,
    run_task,
    summary_table,
    task_from_payload,
)
from repro.cli import main
from repro.exceptions import InvalidParameterError
from repro.experiments import ExperimentRunUnit, make_config
from repro.utils.serialization import canonical_json, stable_hash

TINY_E1 = {"epsilons": (0.5,), "workloads": ("poisson-pareto",)}


def _tiny_task(seed=7, variant="tiny"):
    return CampaignTask.create("E1", variant=variant, seed=seed, overrides=TINY_E1)


class TestSerialization:
    def test_canonical_json_sorts_keys_and_is_stable(self):
        assert canonical_json({"b": 1, "a": (1, 2)}) == '{"a":[1,2],"b":1}'
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_tuples_and_lists_hash_identically(self):
        assert stable_hash({"eps": (0.5, 1.0)}) == stable_hash({"eps": [0.5, 1.0]})

    def test_unserialisable_value_raises(self):
        with pytest.raises(TypeError):
            canonical_json({"f": lambda: None})


class TestRegistryRunUnits:
    def test_make_config_coerces_lists_to_tuples(self):
        config = make_config("E1", epsilons=[0.25, 0.5])
        assert config.epsilons == (0.25, 0.5)

    def test_make_config_rejects_unknown_fields(self):
        with pytest.raises(InvalidParameterError):
            make_config("E1", not_a_field=1)

    def test_run_unit_normalises_list_overrides(self):
        from_lists = ExperimentRunUnit.create("E1", {"epsilons": [0.25, 0.5]})
        from_tuples = ExperimentRunUnit.create("E1", {"epsilons": (0.25, 0.5)})
        assert from_lists == from_tuples
        assert len({from_lists, from_tuples}) == 1

    def test_run_unit_round_trips_through_pickle(self):
        unit = ExperimentRunUnit.create("e1", {"epsilons": (0.5,), "seed": 3})
        clone = pickle.loads(pickle.dumps(unit))
        assert clone == unit
        assert clone.experiment_id == "E1"
        assert clone.overrides_dict == {"epsilons": (0.5,), "seed": 3}

    def test_run_unit_runs(self):
        unit = ExperimentRunUnit.create("E1", {**TINY_E1, "seed": 7})
        result = unit.run()
        assert result.experiment_id == "E1"
        assert result.tables and result.tables[0].rows


class TestTasksAndKeys:
    def test_key_depends_on_config_not_variant_name(self):
        base = _tiny_task(seed=7)
        assert base.key() == _tiny_task(seed=7, variant="renamed").key()
        assert base.key() != _tiny_task(seed=8).key()

    def test_key_survives_payload_round_trip(self):
        task = _tiny_task()
        payload = run_task(task)
        assert task_from_payload(payload).key() == task.key()

    def test_rebuilt_task_is_equal_and_hashable(self):
        # JSON turns tuple overrides into lists; create() must normalise them
        # back so rebuilt tasks dedupe against the grid's originals.
        task = _tiny_task()
        rebuilt = task_from_payload(run_task(task))
        assert rebuilt == task
        assert len({task, rebuilt}) == 1

    def test_payload_rebuilds_equal_tables(self):
        task = _tiny_task()
        payload = run_task(task)
        rebuilt = result_from_payload(payload)
        direct = task.to_unit().run()
        assert rebuilt.render() == direct.render()


def _store_for(kind: str, tmp_path) -> ArtifactStore:
    """Open a store on either real backend (see tests/test_store_backends.py
    for the full backend contract suite)."""
    if kind == "sqlite":
        return ArtifactStore.open(f"sqlite:{tmp_path / 'store.db'}")
    return ArtifactStore(tmp_path / "store")


class TestArtifactStore:
    @pytest.mark.parametrize("kind", ["file", "sqlite"])
    def test_round_trip_and_len(self, kind, tmp_path):
        store = _store_for(kind, tmp_path)
        store.save("ab12cd34", {"x": 1})
        assert store.has("ab12cd34")
        assert store.load("ab12cd34") == {"x": 1}
        assert len(store) == 1 and list(store.keys()) == ["ab12cd34"]

    def test_missing_key_and_malformed_key(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert not store.has("ab12cd34")
        with pytest.raises(InvalidParameterError):
            store.load("ab12cd34")
        with pytest.raises(InvalidParameterError):
            store.path_for("../../evil")

    def test_identical_payloads_write_identical_bytes(self, tmp_path):
        first, second = ArtifactStore(tmp_path / "a"), ArtifactStore(tmp_path / "b")
        payload = {"z": [1.5, float("inf")], "a": {"nested": (1, 2)}}
        first.save("ab12cd34", payload)
        second.save("ab12cd34", payload)
        assert (
            first.path_for("ab12cd34").read_bytes()
            == second.path_for("ab12cd34").read_bytes()
        )

    @pytest.mark.parametrize("kind", ["file", "sqlite"])
    def test_resumed_campaign_hits_cache_on_any_backend(self, kind, tmp_path):
        store = _store_for(kind, tmp_path)
        task = _tiny_task()
        first = CampaignRunner(store, workers=1).run([task])
        second = CampaignRunner(store, workers=1).run([task])
        assert first.computed == 1 and second.cached == 1


class TestRunnerDeterminism:
    def test_same_task_yields_byte_identical_artifacts(self, tmp_path):
        task = _tiny_task()
        stores = []
        for name in ("run1", "run2"):
            store = ArtifactStore(tmp_path / name)
            CampaignRunner(store, workers=1).run([task])
            stores.append(store)
        path_a = stores[0].path_for(task.key())
        path_b = stores[1].path_for(task.key())
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_resumed_campaign_skips_cached_tasks(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        tasks = get_grid("smoke").tasks()
        first = CampaignRunner(store, workers=1).run(tasks)
        assert first.computed == len(tasks) and first.cached == 0
        second = CampaignRunner(store, workers=1).run(tasks)
        assert second.computed == 0 and second.cached == len(tasks)
        assert second.cache_hit_fraction == 1.0
        assert "100% cache hits" in second.describe()

    def test_parallel_equals_sequential(self, tmp_path):
        # E8 measures wall-clock throughput, so its artifacts legitimately
        # differ between runs; every other experiment must match exactly.
        tasks = [
            task for task in get_grid("small").tasks() if task.experiment_id in ("E1", "E2")
        ]
        seq_store = ArtifactStore(tmp_path / "seq")
        par_store = ArtifactStore(tmp_path / "par")
        seq = CampaignRunner(seq_store, workers=1).run(tasks)
        par = CampaignRunner(par_store, workers=2).run(tasks)
        assert seq.computed == par.computed == len(tasks)
        for task in tasks:
            key = task.key()
            assert (
                seq_store.path_for(key).read_bytes() == par_store.path_for(key).read_bytes()
            )
        assert render_campaign_report(seq_store, tasks) == render_campaign_report(
            par_store, tasks
        )

    def test_duplicate_tasks_computed_once(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        task = _tiny_task()
        summary = CampaignRunner(store, workers=1).run([task, task])
        assert summary.total == 2 and summary.computed == 1 and summary.cached == 1

    def test_invalid_worker_count(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            CampaignRunner(ArtifactStore(tmp_path), workers=0)


class TestGrids:
    def test_available_grids(self):
        grids = available_grids()
        assert {"smoke", "small", "medium", "solvers", "e14"} <= set(grids)
        assert all(description for description in grids.values())

    def test_unknown_grid(self):
        with pytest.raises(InvalidParameterError):
            get_grid("nope")

    def test_small_grid_covers_all_experiments(self):
        tasks = get_grid("small").tasks()
        assert {task.experiment_id for task in tasks} == {
            *(f"E{i}" for i in range(1, 11)),
            "E12",
            "E14",
            "E15",
            "E16",
            "E17",
        }

    def test_solvers_grid_sweeps_algorithms(self):
        grid = get_grid("solvers")
        variants = {entry.variant for entry in grid.entries}
        assert {"rejection-flow", "greedy", "fcfs"} <= variants
        for task in grid.tasks():
            assert task.experiment_id == "E10"
            assert dict(task.overrides)["algorithms"] == (task.variant,)

    def test_seedless_experiments_get_one_task(self):
        tasks = get_grid("small").tasks()
        by_exp = {}
        for task in tasks:
            by_exp.setdefault(task.experiment_id, []).append(task)
        assert len(by_exp["E2"]) == 1 and by_exp["E2"][0].seed is None
        assert len(by_exp["E5"]) == 1 and by_exp["E5"][0].seed is None
        assert len(by_exp["E1"]) == 2

    def test_grid_expansion_is_deterministic(self):
        first = get_grid("small").tasks(master_seed=5)
        second = get_grid("small").tasks(master_seed=5)
        assert first == second
        assert [t.key() for t in first] == [t.key() for t in second]
        different = get_grid("small").tasks(master_seed=6)
        seeded_keys = {t.key() for t in first if t.seed is not None}
        assert seeded_keys.isdisjoint(t.key() for t in different if t.seed is not None)


class TestAggregation:
    def test_aggregate_missing_artifact_raises(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(InvalidParameterError):
            aggregate_tables(store, [_tiny_task()])

    def test_aggregated_table_has_variant_and_seed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        tasks = [_tiny_task(seed=1), _tiny_task(seed=2)]
        CampaignRunner(store, workers=1).run(tasks)
        (table,) = aggregate_tables(store, tasks)
        assert table.columns[:2] == ("variant", "seed")
        assert set(table.column("seed")) == {1, 2}

    def test_summary_table_and_csv_export(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        tasks = get_grid("smoke").tasks()
        summary = CampaignRunner(store, workers=1).run(tasks)
        rendered = summary_table(summary.outcomes).render()
        assert "computed" in rendered
        paths = export_csv(aggregate_tables(store, tasks), tmp_path / "csv")
        assert len(paths) == 1 and paths[0].suffix == ".csv"
        header = paths[0].read_text().splitlines()[0]
        assert header.startswith("variant,seed,workload")


class TestCampaignCli:
    def test_list_grids(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "small:" in out and "smoke:" in out

    def test_list_tasks_of_grid(self, capsys):
        assert main(["campaign", "list", "--grid", "smoke"]) == 0
        out = capsys.readouterr().out
        assert out.strip().startswith("E1/")

    def test_run_then_cached_rerun_then_report(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        args = ["campaign", "run", "--grid", "smoke", "--store", store_dir, "--quiet"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "1 computed, 0 cached" in first

        assert main(args + ["--workers", "2"]) == 0
        second = capsys.readouterr().out
        assert "100% cache hits" in second
        # The cached re-run reproduces the identical aggregated report.
        assert first.split("# campaign:")[1] == second.split("# campaign:")[1]

        csv_dir = str(tmp_path / "csv")
        report_args = [
            "campaign", "report", "--grid", "smoke", "--store", store_dir, "--csv", csv_dir,
        ]
        assert main(report_args) == 0
        report_out = capsys.readouterr().out
        assert "[campaign]" in report_out and "csv:" in report_out

    def test_report_on_empty_store_errors(self, tmp_path, capsys):
        args = [
            "campaign", "report", "--grid", "smoke", "--store", str(tmp_path / "nothing"),
        ]
        assert main(args) == 1
        assert "missing" in capsys.readouterr().out
