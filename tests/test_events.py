"""Unit tests for :mod:`repro.simulation.events`."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation.events import Event, EventKind, EventQueue


class TestEventQueueOrdering:
    def test_time_order(self):
        queue = EventQueue()
        queue.push_arrival(5.0, job_id=1)
        queue.push_arrival(2.0, job_id=2)
        queue.push_arrival(7.0, job_id=3)
        assert [queue.pop().job_id for _ in range(3)] == [2, 1, 3]

    def test_completion_before_arrival_at_same_time(self):
        queue = EventQueue()
        queue.push_arrival(3.0, job_id=1)
        queue.push_completion(3.0, job_id=2, machine=0, version=0)
        assert queue.pop().kind == EventKind.COMPLETION
        assert queue.pop().kind == EventKind.ARRIVAL

    def test_fifo_among_equal_events(self):
        queue = EventQueue()
        for job_id in range(5):
            queue.push_arrival(1.0, job_id=job_id)
        assert [queue.pop().job_id for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue and len(queue) == 0
        queue.push_arrival(0.0, job_id=0)
        assert queue and len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        queue.push_arrival(4.0, job_id=0)
        queue.push_arrival(2.0, job_id=1)
        assert queue.peek_time() == pytest.approx(2.0)

    def test_drain(self):
        queue = EventQueue()
        for job_id, t in enumerate([3.0, 1.0, 2.0]):
            queue.push_arrival(t, job_id=job_id)
        times = [event.time for event in queue.drain()]
        assert times == sorted(times)
        assert len(queue) == 0


class TestEventQueueErrors:
    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().peek_time()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(Event(time=-1.0, kind=EventKind.ARRIVAL, job_id=0))

    def test_completion_carries_version(self):
        queue = EventQueue()
        queue.push_completion(1.0, job_id=3, machine=2, version=7)
        event = queue.pop()
        assert event.machine == 2 and event.version == 7
