"""Unit tests for :mod:`repro.simulation.events`."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation.events import Event, EventKind, EventQueue


class TestEventQueueOrdering:
    def test_time_order(self):
        queue = EventQueue()
        queue.push_arrival(5.0, job_id=1)
        queue.push_arrival(2.0, job_id=2)
        queue.push_arrival(7.0, job_id=3)
        assert [queue.pop().job_id for _ in range(3)] == [2, 1, 3]

    def test_completion_before_arrival_at_same_time(self):
        queue = EventQueue()
        queue.push_arrival(3.0, job_id=1)
        queue.push_completion(3.0, job_id=2, machine=0, version=0)
        assert queue.pop().kind == EventKind.COMPLETION
        assert queue.pop().kind == EventKind.ARRIVAL

    def test_fifo_among_equal_events(self):
        queue = EventQueue()
        for job_id in range(5):
            queue.push_arrival(1.0, job_id=job_id)
        assert [queue.pop().job_id for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue and len(queue) == 0
        queue.push_arrival(0.0, job_id=0)
        assert queue and len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        queue.push_arrival(4.0, job_id=0)
        queue.push_arrival(2.0, job_id=1)
        assert queue.peek_time() == pytest.approx(2.0)

    def test_drain(self):
        queue = EventQueue()
        for job_id, t in enumerate([3.0, 1.0, 2.0]):
            queue.push_arrival(t, job_id=job_id)
        times = [event.time for event in queue.drain()]
        assert times == sorted(times)
        assert len(queue) == 0

    def test_drain_preserves_full_event_order(self):
        queue = EventQueue()
        queue.push_arrival(2.0, job_id=0)
        queue.push_completion(2.0, job_id=1, machine=0, version=0)
        queue.push_arrival(1.0, job_id=2)
        kinds = [(event.time, event.kind) for event in queue.drain()]
        # Same ordering contract as pop(): time, then completions first.
        assert kinds == [
            (1.0, EventKind.ARRIVAL),
            (2.0, EventKind.COMPLETION),
            (2.0, EventKind.ARRIVAL),
        ]

    def test_drain_skips_stale_completions_by_version(self):
        # The machine's version advanced past the stamped completion (its
        # running job was rejected mid-execution): draining must apply the
        # same invalidation the engine's event loop does.
        queue = EventQueue()
        queue.push_completion(1.0, job_id=0, machine=0, version=0)  # stale
        queue.push_completion(2.0, job_id=1, machine=0, version=2)  # live
        queue.push_completion(3.0, job_id=2, machine=1, version=0)  # live
        queue.push_arrival(4.0, job_id=3)  # arrivals always pass
        events = list(queue.drain(machine_versions=[2, 0]))
        assert [event.job_id for event in events] == [1, 2, 3]
        assert len(queue) == 0

    def test_drain_with_stale_predicate(self):
        queue = EventQueue()
        for job_id, t in enumerate([1.0, 2.0, 3.0]):
            queue.push_arrival(t, job_id=job_id)
        events = list(queue.drain(is_stale=lambda event: event.job_id == 1))
        assert [event.job_id for event in events] == [0, 2]

    def test_drain_after_early_termination_yields_no_dead_events(self):
        # Simulate the engine's Rule-1 interruption: a completion is pushed,
        # the running job is rejected (version bump), a fresh completion is
        # pushed with the new stamp.  Draining with the current stamps must
        # yield only the live completion.
        queue = EventQueue()
        queue.push_completion(10.0, job_id=7, machine=0, version=0)
        version = 1  # rejection bumped the machine version
        queue.push_completion(12.0, job_id=8, machine=0, version=version)
        events = list(queue.drain(machine_versions=[version]))
        assert [(event.job_id, event.time) for event in events] == [(8, 12.0)]


class TestEventQueueErrors:
    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().peek_time()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(Event(time=-1.0, kind=EventKind.ARRIVAL, job_id=0))

    def test_completion_carries_version(self):
        queue = EventQueue()
        queue.push_completion(1.0, job_id=3, machine=2, version=7)
        event = queue.pop()
        assert event.machine == 2 and event.version == 7
