"""Unit tests for the non-preemptive flow-time engine."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation.engine import ArrivalDecision, FlowTimeEngine, FlowTimePolicy, Rejection
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.metrics import total_flow_time
from repro.simulation.validation import validate_result


class SingleMachineFIFO(FlowTimePolicy):
    """Dispatch everything to machine 0, run in arrival order."""

    name = "test-fifo"

    def on_arrival(self, t, job, state):
        return ArrivalDecision.dispatch(0)

    def select_next(self, t, machine, state):
        pending = state.pending_jobs(machine)
        if not pending:
            return None
        return min(pending, key=lambda j: (j.release, j.id)).id


class RejectEverySecond(FlowTimePolicy):
    """Rejects every second arriving job immediately."""

    name = "test-reject-second"

    def reset(self, instance):
        self.count = 0

    def on_arrival(self, t, job, state):
        self.count += 1
        if self.count % 2 == 0:
            return ArrivalDecision.reject()
        return ArrivalDecision.dispatch(0)

    def select_next(self, t, machine, state):
        pending = state.pending_jobs(machine)
        return pending[0].id if pending else None


class InterruptRunning(FlowTimePolicy):
    """Rejects the running job whenever a new job arrives (tests Rule-1 mechanics)."""

    name = "test-interrupt"

    def on_arrival(self, t, job, state):
        running = state.running(0)
        rejections = []
        if running is not None:
            rejections.append(Rejection(running.job.id, reason="interrupt"))
        return ArrivalDecision.dispatch(0, rejections)

    def select_next(self, t, machine, state):
        pending = state.pending_jobs(machine)
        return pending[0].id if pending else None


class TestBasicScheduling:
    def test_single_job(self):
        instance = Instance.single_machine([Job(0, 1.0, (3.0,))])
        result = FlowTimeEngine(instance).run(SingleMachineFIFO())
        record = result.record(0)
        assert record.start == pytest.approx(1.0)
        assert record.completion == pytest.approx(4.0)
        assert record.flow_time == pytest.approx(3.0)

    def test_sequential_jobs_queue(self):
        instance = Instance.single_machine([Job(0, 0.0, (3.0,)), Job(1, 0.0, (2.0,))])
        result = FlowTimeEngine(instance).run(SingleMachineFIFO())
        assert result.record(0).completion == pytest.approx(3.0)
        assert result.record(1).completion == pytest.approx(5.0)
        assert total_flow_time(result) == pytest.approx(8.0)

    def test_idle_gap_between_jobs(self):
        instance = Instance.single_machine([Job(0, 0.0, (1.0,)), Job(1, 10.0, (1.0,))])
        result = FlowTimeEngine(instance).run(SingleMachineFIFO())
        assert result.record(1).start == pytest.approx(10.0)

    def test_non_preemptive_even_when_shorter_job_arrives(self):
        instance = Instance.single_machine([Job(0, 0.0, (10.0,)), Job(1, 1.0, (0.5,))])
        result = FlowTimeEngine(instance).run(SingleMachineFIFO())
        # The short job must wait for the long one: non-preemptive execution.
        assert result.record(1).start == pytest.approx(10.0)

    def test_speed_factor_shortens_execution(self):
        instance = Instance.single_machine([Job(0, 0.0, (4.0,))]).with_speed_factor(2.0)
        result = FlowTimeEngine(instance).run(SingleMachineFIFO())
        assert result.record(0).completion == pytest.approx(2.0)

    def test_all_jobs_settled_and_valid(self, random_instance):
        class GreedyLeastLoaded(FlowTimePolicy):
            name = "least-loaded"

            def on_arrival(self, t, job, state):
                machine = min(
                    job.eligible_machines(), key=lambda i: state.pending_total_size(i)
                )
                return ArrivalDecision.dispatch(machine)

            def select_next(self, t, machine, state):
                pending = state.pending_jobs(machine)
                return pending[0].id if pending else None

        result = FlowTimeEngine(random_instance).run(GreedyLeastLoaded())
        assert len(result.records) == random_instance.num_jobs
        validate_result(result)


class TestRejections:
    def test_immediate_rejection_recorded(self):
        instance = Instance.single_machine([Job(0, 0.0, (3.0,)), Job(1, 1.0, (2.0,))])
        result = FlowTimeEngine(instance).run(RejectEverySecond())
        record = result.record(1)
        assert record.rejected and record.rejection_time == pytest.approx(1.0)
        assert record.flow_time == pytest.approx(0.0)

    def test_interrupting_running_job(self):
        instance = Instance.single_machine([Job(0, 0.0, (10.0,)), Job(1, 2.0, (1.0,))])
        result = FlowTimeEngine(instance).run(InterruptRunning())
        rejected = result.record(0)
        assert rejected.rejected
        assert rejected.rejection_time == pytest.approx(2.0)
        # The truncated interval covers [0, 2) and is marked incomplete.
        truncated = [iv for iv in result.intervals if iv.job_id == 0][0]
        assert truncated.end == pytest.approx(2.0) and not truncated.completed
        # The new job starts immediately after the interruption.
        assert result.record(1).start == pytest.approx(2.0)

    def test_stale_completion_event_ignored(self):
        # After an interruption the machine immediately starts the next job;
        # the old completion event must not terminate it early.
        instance = Instance.single_machine(
            [Job(0, 0.0, (10.0,)), Job(1, 2.0, (5.0,)), Job(2, 20.0, (1.0,))]
        )
        result = FlowTimeEngine(instance).run(InterruptRunning())
        validate_result(result)
        assert result.record(2).completion == pytest.approx(21.0)


class TestEngineErrors:
    def test_invalid_machine_dispatch(self):
        class BadPolicy(SingleMachineFIFO):
            def on_arrival(self, t, job, state):
                return ArrivalDecision.dispatch(99)

        instance = Instance.single_machine([Job(0, 0.0, (1.0,))])
        with pytest.raises(SimulationError):
            FlowTimeEngine(instance).run(BadPolicy())

    def test_rejecting_unknown_job(self):
        class BadPolicy(SingleMachineFIFO):
            def on_arrival(self, t, job, state):
                return ArrivalDecision.dispatch(0, [Rejection(999)])

        instance = Instance.single_machine([Job(0, 0.0, (1.0,))])
        with pytest.raises(SimulationError):
            FlowTimeEngine(instance).run(BadPolicy())

    def test_starving_policy_detected(self):
        class Starver(SingleMachineFIFO):
            def select_next(self, t, machine, state):
                return None

        instance = Instance.single_machine([Job(0, 0.0, (1.0,))])
        with pytest.raises(SimulationError):
            FlowTimeEngine(instance).run(Starver())
