"""Tests for the chunked numpy-backed instance generators and E12."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidInstanceError, InvalidParameterError
from repro.experiments import run_experiment
from repro.simulation.job import Job
from repro.utils.serialization import stable_hash
from repro.workloads.generators import (
    DEFAULT_CHUNK_SIZE,
    DeadlineInstanceGenerator,
    InstanceGenerator,
    JobChunk,
    WeightedInstanceGenerator,
)


def _hash(instance) -> str:
    return stable_hash(instance.to_dict())


class TestGenerateLarge:
    def test_deterministic_for_fixed_seed(self):
        make = lambda: InstanceGenerator(num_machines=4, seed=7).generate_large(2_000)
        assert _hash(make()) == _hash(make())

    def test_chunk_size_invariant(self):
        generator = InstanceGenerator(num_machines=4, seed=7)
        reference = _hash(generator.generate_large(2_000))
        for chunk_size in (127, 500, 2_000, 10_000):
            assert _hash(generator.generate_large(2_000, chunk_size=chunk_size)) == reference

    def test_instance_is_valid(self):
        instance = InstanceGenerator(num_machines=3, seed=1).generate_large(1_500)
        assert instance.num_jobs == 1_500
        releases = [job.release for job in instance.jobs]
        assert releases == sorted(releases)
        assert all(all(p > 0 for p in job.sizes) for job in instance.jobs)
        assert sorted(job.id for job in instance.jobs) == list(range(1_500))

    @pytest.mark.parametrize("machine_model", ["identical", "related", "unrelated", "restricted"])
    def test_all_machine_models(self, machine_model):
        instance = InstanceGenerator(
            num_machines=3, seed=5, machine_model=machine_model
        ).generate_large(300)
        assert instance.num_jobs == 300
        if machine_model == "identical":
            assert all(len(set(job.sizes)) == 1 for job in instance.jobs)
        if machine_model == "restricted":
            assert all(job.eligible_machines() for job in instance.jobs)

    @pytest.mark.parametrize("arrival_process", ["poisson", "bursty", "batched", "deterministic"])
    def test_all_arrival_processes(self, arrival_process):
        instance = InstanceGenerator(
            num_machines=2, seed=5, arrival_process=arrival_process
        ).generate_large(300)
        releases = [job.release for job in instance.jobs]
        assert releases == sorted(releases)
        assert releases[0] >= 0

    def test_load_rescaling_applies(self):
        low = InstanceGenerator(num_machines=2, seed=3, load=0.2).generate_large(500)
        high = InstanceGenerator(num_machines=2, seed=3, load=2.0).generate_large(500)
        total = lambda inst: sum(job.min_size() for job in inst.jobs)
        assert total(high) > 5 * total(low)

    def test_weighted_generator_draws_weights(self):
        instance = WeightedInstanceGenerator(
            num_machines=2, seed=9, weight_low=0.5, weight_high=4.0
        ).generate_large(400)
        weights = [job.weight for job in instance.jobs]
        assert all(0.5 <= w <= 4.0 for w in weights)
        assert len(set(weights)) > 100  # actually random, not the default 1.0

    def test_deadline_generator_sets_feasible_deadlines(self):
        instance = DeadlineInstanceGenerator(num_machines=2, seed=9).generate_large(200)
        assert instance.has_deadlines()
        assert all(job.deadline > job.release for job in instance.jobs)

    def test_invalid_arguments(self):
        generator = InstanceGenerator(num_machines=2, seed=1)
        with pytest.raises(InvalidParameterError):
            generator.generate_large(-1)
        with pytest.raises(InvalidParameterError):
            generator.generate_large(10, chunk_size=0)

    def test_zero_jobs(self):
        instance = InstanceGenerator(num_machines=2, seed=1).generate_large(0)
        assert instance.num_jobs == 0


class TestIterJobChunks:
    def test_chunk_boundaries_and_ids(self):
        generator = InstanceGenerator(num_machines=2, seed=11)
        chunks = list(generator.iter_job_chunks(1_000, chunk_size=300))
        assert [len(c) for c in chunks] == [300, 300, 300, 100]
        assert [c.start for c in chunks] == [0, 300, 600, 900]
        assert chunks[0].sizes.shape == (300, 2)

    def test_chunk_jobs_match_trusted_rows(self):
        generator = InstanceGenerator(num_machines=2, seed=11)
        (chunk,) = generator.iter_job_chunks(50, chunk_size=64)
        jobs = chunk.jobs()
        assert [j.id for j in jobs] == list(range(50))
        assert jobs[3].sizes == tuple(float(p) for p in chunk.sizes[3])

    def test_validate_rejects_bad_chunks(self):
        good = JobChunk(0, np.array([0.0, 1.0]), np.array([[1.0], [2.0]]))
        good.validate()
        with pytest.raises(InvalidInstanceError):
            JobChunk(0, np.array([1.0, 0.0]), np.array([[1.0], [2.0]])).validate()
        with pytest.raises(InvalidInstanceError):
            JobChunk(0, np.array([0.0, 1.0]), np.array([[1.0], [-2.0]])).validate()
        with pytest.raises(InvalidInstanceError):
            JobChunk(
                0, np.array([0.0]), np.array([[np.inf]])
            ).validate()  # no eligible machine
        with pytest.raises(InvalidInstanceError):
            JobChunk(
                0,
                np.array([0.0]),
                np.array([[1.0]]),
                deadlines=np.array([0.0]),
            ).validate()


class TestTrustedJobs:
    def test_trusted_equals_validated_construction(self):
        checked = Job(id=3, release=1.5, sizes=(2.0, 4.0), weight=2.0, deadline=9.0)
        trusted = Job.trusted(3, 1.5, (2.0, 4.0), 2.0, 9.0)
        assert checked == trusted
        assert trusted.size_on(1) == 4.0
        assert trusted.window() == pytest.approx(7.5)


class TestE12Frontier:
    def test_miniature_frontier_run(self):
        result = run_experiment(
            "E12",
            job_counts=(200, 400),
            algorithms=("rejection-flow", "fcfs"),
            repeats=1,
        )
        rows = result.raw["rows"]
        assert len(rows) == 4
        assert {row["num_jobs"] for row in rows} == {200, 400}
        for row in rows:
            assert row["events_per_s"] > 0
            assert row["wall_time_s"] > 0
            assert row["events"] >= row["num_jobs"]
        assert "E12" in result.render()

    def test_dispatch_override_matches_default(self):
        indexed = run_experiment("E12", job_counts=(300,), algorithms=("greedy",),
                                 dispatch="indexed", repeats=1)
        scanned = run_experiment("E12", job_counts=(300,), algorithms=("greedy",),
                                 dispatch="scan", repeats=1)
        # Wall times differ; the simulated schedules (event counts) must not.
        assert indexed.raw["rows"][0]["events"] == scanned.raw["rows"][0]["events"]

    def test_default_chunk_size_sane(self):
        assert DEFAULT_CHUNK_SIZE >= 1_024
