"""Tests for the Theorem 2 scheduler (Section 3 algorithm)."""

import pytest

from repro.core.bounds import energy_flow_gamma
from repro.core.flow_time_energy import RejectionEnergyFlowScheduler
from repro.exceptions import InvalidParameterError
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.machine import Machine
from repro.simulation.metrics import (
    flow_plus_energy,
    rejected_weight_fraction,
    total_energy,
)
from repro.simulation.speed_engine import SpeedScalingEngine
from repro.simulation.validation import validate_result
from repro.workloads.generators import WeightedInstanceGenerator


def _instance(jobs, alpha=2.0, machines=1):
    return Instance.build(Machine.fleet(machines, alpha=alpha), jobs)


class TestSpeedChoice:
    def test_single_job_speed(self):
        # One pending job of weight w: start speed = gamma * w^(1/alpha).
        jobs = [Job(0, 0.0, (4.0,), weight=8.0)]
        instance = _instance(jobs, alpha=3.0)
        scheduler = RejectionEnergyFlowScheduler(epsilon=0.5, gamma=0.5)
        result = SpeedScalingEngine(instance).run(scheduler)
        interval = result.intervals[0]
        assert interval.speed == pytest.approx(0.5 * 8.0 ** (1.0 / 3.0))

    def test_speed_grows_with_backlog(self):
        # While the long job runs, two short jobs queue up; the first of them
        # starts with two jobs pending (speed sqrt(2)) and the last with one.
        jobs = [
            Job(0, 0.0, (10.0,), weight=1.0),
            Job(1, 1.0, (1.0,), weight=1.0),
            Job(2, 2.0, (1.0,), weight=1.0),
        ]
        instance = _instance(jobs, alpha=2.0)
        scheduler = RejectionEnergyFlowScheduler(epsilon=0.9, gamma=1.0, enable_rejection=False)
        result = SpeedScalingEngine(instance).run(scheduler)
        ordered = sorted(result.intervals, key=lambda iv: iv.start)
        assert ordered[0].speed == pytest.approx(1.0)           # only the long job pending
        assert ordered[1].speed == pytest.approx(2.0 ** 0.5)    # two short jobs pending
        assert ordered[2].speed == pytest.approx(1.0)           # last job alone

    def test_paper_gamma_used_by_default(self):
        instance = _instance([Job(0, 0.0, (1.0,))], alpha=2.5)
        scheduler = RejectionEnergyFlowScheduler(epsilon=0.3)
        SpeedScalingEngine(instance).run(scheduler)
        assert scheduler.gamma == pytest.approx(energy_flow_gamma(0.3, 2.5))

    def test_density_order_execution(self):
        # While job 0 runs, two jobs queue up; the higher-density one (job 2)
        # must start first once the machine becomes idle.
        jobs = [
            Job(0, 0.0, (5.0,), weight=1.0),
            Job(1, 0.5, (4.0,), weight=1.0),   # density 0.25
            Job(2, 0.6, (2.0,), weight=4.0),   # density 2.0
        ]
        instance = _instance(jobs, alpha=2.0)
        scheduler = RejectionEnergyFlowScheduler(epsilon=0.9, enable_rejection=False)
        result = SpeedScalingEngine(instance).run(scheduler)
        assert result.record(2).start < result.record(1).start


class TestWeightedRejection:
    def test_running_job_rejected_when_weight_piles_up(self):
        # Long low-weight job, then heavy jobs arrive: v_k exceeds w_k/eps.
        jobs = [
            Job(0, 0.0, (100.0,), weight=1.0),
            Job(1, 0.5, (1.0,), weight=3.0),
        ]
        instance = _instance(jobs, alpha=2.0)
        scheduler = RejectionEnergyFlowScheduler(epsilon=0.5)  # threshold w/eps = 2
        result = SpeedScalingEngine(instance).run(scheduler)
        assert result.record(0).rejected
        assert result.record(0).rejection_time == pytest.approx(0.5)

    def test_no_rejection_below_threshold(self):
        jobs = [
            Job(0, 0.0, (10.0,), weight=10.0),
            Job(1, 0.5, (1.0,), weight=1.0),
        ]
        instance = _instance(jobs, alpha=2.0)
        scheduler = RejectionEnergyFlowScheduler(epsilon=0.5)  # threshold 20
        result = SpeedScalingEngine(instance).run(scheduler)
        assert not result.record(0).rejected

    def test_rejected_weight_budget_random(self):
        for seed in (0, 1):
            for epsilon in (0.25, 0.5):
                instance = WeightedInstanceGenerator(
                    num_machines=2, alpha=2.5, seed=seed
                ).generate(80)
                scheduler = RejectionEnergyFlowScheduler(epsilon=epsilon)
                result = SpeedScalingEngine(instance).run(scheduler)
                assert rejected_weight_fraction(result) <= epsilon + 1e-9

    def test_rejection_can_be_disabled(self, weighted_instance):
        scheduler = RejectionEnergyFlowScheduler(epsilon=0.25, enable_rejection=False)
        result = SpeedScalingEngine(weighted_instance).run(scheduler)
        assert rejected_weight_fraction(result) == 0.0


class TestObjectiveBehaviour:
    def test_valid_schedule(self, weighted_instance):
        scheduler = RejectionEnergyFlowScheduler(epsilon=0.3)
        result = SpeedScalingEngine(weighted_instance).run(scheduler)
        validate_result(result)
        assert total_energy(result) > 0

    def test_rejection_helps_on_heavy_backlog(self):
        jobs = [Job(0, 0.0, (60.0,), weight=0.5)]
        jobs += [Job(j, 1.0 + 0.2 * j, (1.0,), weight=2.0) for j in range(1, 25)]
        instance = _instance(jobs, alpha=2.0)
        engine = SpeedScalingEngine(instance)
        with_rejection = flow_plus_energy(
            engine.run(RejectionEnergyFlowScheduler(epsilon=0.3))
        )
        without_rejection = flow_plus_energy(
            engine.run(RejectionEnergyFlowScheduler(epsilon=0.3, enable_rejection=False))
        )
        assert with_rejection < without_rejection

    def test_requires_uniform_alpha(self):
        machines = (Machine(0, alpha=2.0), Machine(1, alpha=3.0))
        instance = Instance.build(machines, [Job(0, 0.0, (1.0, 1.0))])
        scheduler = RejectionEnergyFlowScheduler(epsilon=0.5)
        with pytest.raises(InvalidParameterError):
            SpeedScalingEngine(instance).run(scheduler)

    def test_requires_alpha_above_one(self):
        instance = Instance.build(Machine.fleet(1, alpha=1.0), [Job(0, 0.0, (1.0,))])
        scheduler = RejectionEnergyFlowScheduler(epsilon=0.5)
        with pytest.raises(InvalidParameterError):
            SpeedScalingEngine(instance).run(scheduler)

    def test_diagnostics(self, weighted_instance):
        scheduler = RejectionEnergyFlowScheduler(epsilon=0.3)
        SpeedScalingEngine(weighted_instance).run(scheduler)
        diagnostics = scheduler.diagnostics()
        assert diagnostics["alpha"] == pytest.approx(2.5)
        assert diagnostics["gamma"] > 0
        assert diagnostics["lambda_sum"] > 0
