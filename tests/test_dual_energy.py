"""Tests for the Section 3 dual accountant (Lemma 5 / Lemma 6)."""

import pytest

from repro.core.dual_energy import EnergyFlowDualAccountant
from repro.core.flow_time_energy import RejectionEnergyFlowScheduler
from repro.exceptions import InvalidParameterError
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.machine import Machine
from repro.simulation.speed_engine import SpeedScalingEngine
from repro.workloads.generators import WeightedInstanceGenerator


def _run(instance, epsilon):
    scheduler = RejectionEnergyFlowScheduler(epsilon=epsilon)
    result = SpeedScalingEngine(instance).run(scheduler)
    return EnergyFlowDualAccountant(result, scheduler), result


class TestEnergyDualFeasibility:
    @pytest.mark.parametrize("epsilon", [0.25, 0.5])
    @pytest.mark.parametrize("alpha", [2.0, 2.5, 3.0])
    def test_random_instances(self, epsilon, alpha):
        instance = WeightedInstanceGenerator(num_machines=2, alpha=alpha, seed=13).generate(35)
        accountant, _ = _run(instance, epsilon)
        check = accountant.check_feasibility(samples_per_job=8)
        assert check.checked_constraints > 0
        assert check.feasible, f"violations: {check.violations[:3]}"

    def test_monotonicity_of_fractional_weight(self):
        instance = WeightedInstanceGenerator(num_machines=2, alpha=2.5, seed=21).generate(40)
        accountant, _ = _run(instance, 0.4)
        check = accountant.check_feasibility(samples_per_job=5)
        assert check.monotonicity_violations == 0


class TestEnergyDualQuantities:
    def test_remaining_volume_decreases(self):
        jobs = [Job(0, 0.0, (6.0,), weight=2.0)]
        instance = Instance.build(Machine.fleet(1, alpha=2.0), jobs)
        accountant, result = _run(instance, 0.5)
        record = result.record(0)
        start, end = record.start, record.completion
        mid = (start + end) / 2.0
        assert accountant.remaining_volume(0, 0, start) == pytest.approx(6.0)
        assert accountant.remaining_volume(0, 0, mid) == pytest.approx(3.0, rel=1e-6)
        assert accountant.remaining_volume(0, 0, end + 1.0) == pytest.approx(0.0)

    def test_fractional_weight_zero_after_everything_finishes(self):
        instance = WeightedInstanceGenerator(num_machines=1, alpha=2.0, seed=2).generate(10)
        accountant, result = _run(instance, 0.5)
        late = result.makespan() + 100.0
        assert accountant.fractional_weight(0, late) == pytest.approx(0.0)

    def test_u_scales_with_fractional_weight(self):
        jobs = [Job(0, 0.0, (6.0,), weight=4.0), Job(1, 0.0, (6.0,), weight=4.0)]
        instance = Instance.build(Machine.fleet(1, alpha=2.0), jobs)
        accountant, result = _run(instance, 0.9)
        early = accountant.u(0, 0.05)
        late = accountant.u(0, result.makespan() + 1.0)
        assert early > late == 0.0

    def test_requires_populated_scheduler(self):
        instance = Instance.build(Machine.fleet(1, alpha=2.0), [Job(0, 0.0, (1.0,))])
        scheduler = RejectionEnergyFlowScheduler(epsilon=0.5)
        result = SpeedScalingEngine(instance).run(scheduler)
        fresh = RejectionEnergyFlowScheduler(epsilon=0.5)
        with pytest.raises(InvalidParameterError):
            EnergyFlowDualAccountant(result, fresh)
