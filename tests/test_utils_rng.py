"""Unit tests for :mod:`repro.utils.rng`."""

import numpy as np
import pytest

from repro.utils.rng import make_rng, seeds_for, shuffled, spawn_rngs


class TestMakeRng:
    def test_seed_reproducible(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_streams_differ(self):
        a, b = spawn_rngs(0, 2)
        assert a.random() != b.random()

    def test_reproducible(self):
        first = [g.random() for g in spawn_rngs(7, 3)]
        second = [g.random() for g in spawn_rngs(7, 3)]
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestSeedsFor:
    def test_deterministic(self):
        assert seeds_for(1, ["a", "b"]) == seeds_for(1, ["a", "b"])

    def test_label_order_independent(self):
        forward = seeds_for(1, ["a", "b"])
        backward = seeds_for(1, ["b", "a"])
        assert forward["a"] == backward["a"]

    def test_distinct_labels_distinct_seeds(self):
        seeds = seeds_for(1, ["a", "b", "c"])
        assert len(set(seeds.values())) == 3


class TestShuffled:
    def test_preserves_elements(self):
        items = list(range(20))
        assert sorted(shuffled(items, seed=3)) == items

    def test_deterministic(self):
        assert shuffled(range(20), seed=3) == shuffled(range(20), seed=3)

    def test_does_not_mutate_input(self):
        items = [3, 1, 2]
        shuffled(items, seed=0)
        assert items == [3, 1, 2]
