"""Unit tests for the closed-form theoretical bounds."""

import math

import pytest

from repro.core.bounds import (
    energy_flow_competitive_ratio,
    energy_flow_gamma,
    energy_flow_rejection_budget,
    energy_min_competitive_ratio,
    energy_min_lower_bound,
    flow_time_competitive_ratio,
    flow_time_rejection_budget,
    immediate_rejection_lower_bound,
    speed_augmentation_competitive_ratio,
)
from repro.exceptions import InvalidParameterError


class TestFlowTimeBounds:
    def test_known_values(self):
        assert flow_time_competitive_ratio(1.0) == pytest.approx(8.0)
        assert flow_time_competitive_ratio(0.5) == pytest.approx(18.0)

    def test_decreasing_in_epsilon(self):
        assert flow_time_competitive_ratio(0.1) > flow_time_competitive_ratio(0.5)

    def test_budget(self):
        assert flow_time_rejection_budget(0.25) == pytest.approx(0.5)
        assert flow_time_rejection_budget(0.9) == 1.0  # capped at all jobs

    def test_invalid_epsilon(self):
        with pytest.raises(InvalidParameterError):
            flow_time_competitive_ratio(0.0)
        with pytest.raises(InvalidParameterError):
            flow_time_rejection_budget(-1.0)


class TestEnergyFlowBounds:
    def test_gamma_positive(self):
        for epsilon in (0.1, 0.5, 0.9):
            for alpha in (1.5, 2.0, 2.5, 3.0):
                assert energy_flow_gamma(epsilon, alpha) > 0

    def test_gamma_alpha_two_matches_paper(self):
        # For alpha = 2 the paper's expression reduces to eps/(1+eps).
        assert energy_flow_gamma(0.5, 2.0) == pytest.approx(0.5 / 1.5)

    def test_ratio_decreasing_in_epsilon(self):
        assert energy_flow_competitive_ratio(0.1, 3.0) > energy_flow_competitive_ratio(0.9, 3.0)

    def test_ratio_positive_and_finite(self):
        for epsilon in (0.1, 0.5):
            for alpha in (1.5, 2.0, 3.0):
                ratio = energy_flow_competitive_ratio(epsilon, alpha)
                assert math.isfinite(ratio) and ratio > 1

    def test_budget(self):
        assert energy_flow_rejection_budget(0.3) == pytest.approx(0.3)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            energy_flow_gamma(0.5, 1.0)
        with pytest.raises(InvalidParameterError):
            energy_flow_competitive_ratio(0.0, 2.0)


class TestEnergyMinBounds:
    def test_upper_bound(self):
        assert energy_min_competitive_ratio(3.0) == pytest.approx(27.0)

    def test_lower_bound(self):
        assert energy_min_lower_bound(9.0) == pytest.approx(1.0)
        assert energy_min_lower_bound(18.0) == pytest.approx(2.0**18)

    def test_lower_below_upper(self):
        for alpha in (2.0, 3.0, 5.0, 8.0):
            assert energy_min_lower_bound(alpha) < energy_min_competitive_ratio(alpha)

    def test_invalid_alpha(self):
        with pytest.raises(InvalidParameterError):
            energy_min_competitive_ratio(0.5)


class TestOtherBounds:
    def test_immediate_rejection_grows_with_delta(self):
        assert immediate_rejection_lower_bound(100.0) > immediate_rejection_lower_bound(4.0)

    def test_immediate_rejection_sqrt_shape(self):
        assert immediate_rejection_lower_bound(64.0, constant=1.0) == pytest.approx(8.0)

    def test_speed_augmentation_ratio(self):
        assert speed_augmentation_competitive_ratio(0.5, 0.5) == pytest.approx(4.0)
        with pytest.raises(InvalidParameterError):
            speed_augmentation_competitive_ratio(0.0, 0.5)
