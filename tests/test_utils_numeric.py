"""Unit tests for :mod:`repro.utils.numeric`."""

import math

import pytest

from repro.utils.numeric import (
    EPS,
    ceil_div,
    geometric_grid,
    harmonic_mean,
    integer_threshold,
    is_close,
    safe_ratio,
    weighted_sum,
)


class TestIsClose:
    def test_equal_values(self):
        assert is_close(1.0, 1.0)

    def test_within_tolerance(self):
        assert is_close(1.0, 1.0 + EPS / 2)

    def test_outside_tolerance(self):
        assert not is_close(1.0, 1.1)

    def test_custom_tolerance(self):
        assert is_close(1.0, 1.05, tol=0.1)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(10, 5) == 2

    def test_rounds_up(self):
        assert ceil_div(11, 5) == 3

    def test_one(self):
        assert ceil_div(1, 5) == 1

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_rejects_zero_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)


class TestIntegerThreshold:
    def test_integer_value(self):
        assert integer_threshold(4.0) == 4

    def test_non_integer_rounds_up(self):
        assert integer_threshold(3.2) == 4

    def test_epsilon_half_gives_two(self):
        # 1/epsilon with epsilon=0.5: Rule 1 fires on the 2nd dispatch.
        assert integer_threshold(1.0 / 0.5) == 2

    def test_epsilon_third_gives_three(self):
        assert integer_threshold(1.0 / (1.0 / 3.0)) == 3

    def test_small_value_at_least_one(self):
        assert integer_threshold(0.3) == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            integer_threshold(0.0)


class TestHarmonicMean:
    def test_single_value(self):
        assert harmonic_mean([4.0]) == pytest.approx(4.0)

    def test_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_empty_is_zero(self):
        assert harmonic_mean([]) == 0.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])


class TestSafeRatio:
    def test_normal_division(self):
        assert safe_ratio(6.0, 3.0) == pytest.approx(2.0)

    def test_zero_denominator_returns_default(self):
        assert math.isinf(safe_ratio(1.0, 0.0))

    def test_zero_over_zero_is_one(self):
        assert safe_ratio(0.0, 0.0) == pytest.approx(1.0)


class TestGeometricGrid:
    def test_endpoints_included(self):
        grid = geometric_grid(1.0, 8.0, 4)
        assert grid[0] == pytest.approx(1.0)
        assert grid[-1] == pytest.approx(8.0)

    def test_count(self):
        assert len(geometric_grid(1.0, 8.0, 4)) == 4

    def test_geometric_spacing(self):
        grid = geometric_grid(1.0, 8.0, 4)
        ratios = [grid[i + 1] / grid[i] for i in range(len(grid) - 1)]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)

    def test_monotone(self):
        grid = geometric_grid(0.5, 100.0, 10)
        assert all(a < b for a, b in zip(grid, grid[1:]))

    def test_rejects_bad_endpoints(self):
        with pytest.raises(ValueError):
            geometric_grid(0.0, 1.0, 3)
        with pytest.raises(ValueError):
            geometric_grid(2.0, 1.0, 3)


class TestWeightedSum:
    def test_known_value(self):
        assert weighted_sum([1.0, 2.0], [3.0, 4.0]) == pytest.approx(11.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_sum([1.0], [1.0, 2.0])
