"""Unit tests for the discrete timeline of the Section 4 model."""

import math

import pytest

from repro.exceptions import InfeasibleInstanceError, InvalidParameterError, SimulationError
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.machine import Machine
from repro.simulation.timeline import DiscreteTimeline, Strategy


class TestConstruction:
    def test_basic(self):
        timeline = DiscreteTimeline(num_machines=2, num_slots=10, alpha=2.0)
        assert timeline.total_energy() == 0.0

    def test_per_machine_alphas(self):
        timeline = DiscreteTimeline(num_machines=2, num_slots=4, alpha=[2.0, 3.0])
        timeline.commit(Strategy(job_id=0, machine=0, start_slot=0, speed=2.0, slots=1))
        timeline.commit(Strategy(job_id=1, machine=1, start_slot=0, speed=2.0, slots=1))
        assert timeline.machine_energy(0) == pytest.approx(4.0)
        assert timeline.machine_energy(1) == pytest.approx(8.0)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            DiscreteTimeline(num_machines=0, num_slots=5)
        with pytest.raises(InvalidParameterError):
            DiscreteTimeline(num_machines=1, num_slots=0)
        with pytest.raises(InvalidParameterError):
            DiscreteTimeline(num_machines=1, num_slots=5, slot_length=0.0)
        with pytest.raises(InvalidParameterError):
            DiscreteTimeline(num_machines=2, num_slots=5, alpha=[2.0])

    def test_custom_power_function(self):
        timeline = DiscreteTimeline(num_machines=1, num_slots=3, power=lambda s: 5.0 * s)
        timeline.commit(Strategy(job_id=0, machine=0, start_slot=0, speed=2.0, slots=2))
        assert timeline.total_energy() == pytest.approx(20.0)


class TestMarginalEnergy:
    def test_on_empty_profile(self):
        timeline = DiscreteTimeline(num_machines=1, num_slots=10, alpha=2.0)
        assert timeline.marginal_energy(0, 0, 3, 2.0) == pytest.approx(3 * 4.0)

    def test_is_superadditive_on_loaded_slots(self):
        timeline = DiscreteTimeline(num_machines=1, num_slots=10, alpha=2.0)
        timeline.commit(Strategy(job_id=0, machine=0, start_slot=0, speed=1.0, slots=10))
        # Adding speed 1 on top of speed 1 costs (2^2 - 1^2) = 3 per slot > 1.
        assert timeline.marginal_energy(0, 0, 1, 1.0) == pytest.approx(3.0)

    def test_commit_returns_marginal_and_updates(self):
        timeline = DiscreteTimeline(num_machines=1, num_slots=5, alpha=2.0)
        delta = timeline.commit(Strategy(job_id=0, machine=0, start_slot=1, speed=2.0, slots=2))
        assert delta == pytest.approx(8.0)
        assert timeline.total_energy() == pytest.approx(8.0)
        assert timeline.speed_at(0, 1) == pytest.approx(2.0)
        assert timeline.speed_at(0, 0) == 0.0

    def test_out_of_horizon_rejected(self):
        timeline = DiscreteTimeline(num_machines=1, num_slots=5, alpha=2.0)
        with pytest.raises(SimulationError):
            timeline.marginal_energy(0, 4, 3, 1.0)

    def test_slot_length_scales_energy(self):
        timeline = DiscreteTimeline(num_machines=1, num_slots=4, slot_length=0.5, alpha=2.0)
        timeline.commit(Strategy(job_id=0, machine=0, start_slot=0, speed=2.0, slots=2))
        assert timeline.total_energy() == pytest.approx(4.0 * 2 * 0.5)


class TestFeasibleStrategies:
    def test_strategies_fit_window(self):
        timeline = DiscreteTimeline(num_machines=1, num_slots=20, alpha=2.0)
        job = Job(0, release=2.0, sizes=(4.0,), deadline=10.0)
        strategies = timeline.feasible_strategies(job, 0, speed_grid=[1.0, 2.0])
        assert strategies
        for strategy in strategies:
            assert strategy.start_slot >= 2
            assert strategy.end_slot <= 10
            assert strategy.speed * strategy.slots >= 4.0 - 1e-9

    def test_no_deadline_raises(self):
        timeline = DiscreteTimeline(num_machines=1, num_slots=20, alpha=2.0)
        with pytest.raises(InfeasibleInstanceError):
            timeline.feasible_strategies(Job(0, 0.0, (1.0,)), 0, speed_grid=[1.0])

    def test_forbidden_machine_gives_nothing(self):
        timeline = DiscreteTimeline(num_machines=2, num_slots=20, alpha=2.0)
        job = Job(0, 0.0, (math.inf, 1.0), deadline=5.0)
        assert timeline.feasible_strategies(job, 0, speed_grid=[1.0]) == []

    def test_too_slow_speed_excluded(self):
        timeline = DiscreteTimeline(num_machines=1, num_slots=20, alpha=2.0)
        job = Job(0, 0.0, (8.0,), deadline=4.0)
        # Speed 1 would need 8 slots but the window has only 4.
        strategies = timeline.feasible_strategies(job, 0, speed_grid=[1.0, 2.0])
        assert strategies and all(s.speed == 2.0 for s in strategies)

    def test_for_instance_sizes_horizon(self):
        jobs = [Job(0, 0.0, (2.0,), deadline=6.0), Job(1, 1.0, (2.0,), deadline=12.0)]
        instance = Instance.build(Machine.fleet(1, alpha=2.0), jobs)
        timeline = DiscreteTimeline.for_instance(instance, slot_length=1.0)
        assert timeline.num_slots == 12

    def test_slot_time_roundtrip(self):
        timeline = DiscreteTimeline(num_machines=1, num_slots=10, slot_length=0.5, alpha=2.0)
        assert timeline.slot_of(2.4) == 4
        assert timeline.time_of(4) == pytest.approx(2.0)
