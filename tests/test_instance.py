"""Unit tests for :mod:`repro.simulation.instance`."""

import math

import pytest

from repro.exceptions import InvalidInstanceError
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.machine import Machine


def _jobs():
    return [
        Job(0, 0.0, (2.0, 4.0)),
        Job(1, 1.0, (3.0, 1.0)),
        Job(2, 2.0, (1.0, 2.0)),
    ]


class TestInstanceValidation:
    def test_valid(self):
        inst = Instance.build(2, _jobs())
        assert inst.num_jobs == 3 and inst.num_machines == 2

    def test_empty_machines_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Instance(machines=(), jobs=())

    def test_wrong_machine_ids_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Instance(machines=(Machine(1),), jobs=())

    def test_size_vector_mismatch_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Instance.build(3, _jobs())

    def test_duplicate_job_id_rejected(self):
        jobs = [Job(0, 0.0, (1.0,)), Job(0, 1.0, (1.0,))]
        with pytest.raises(InvalidInstanceError):
            Instance(machines=(Machine(0),), jobs=tuple(jobs))

    def test_unsorted_releases_rejected(self):
        jobs = (Job(0, 5.0, (1.0,)), Job(1, 1.0, (1.0,)))
        with pytest.raises(InvalidInstanceError):
            Instance(machines=(Machine(0),), jobs=jobs)

    def test_build_sorts_by_release(self):
        jobs = [Job(0, 5.0, (1.0,)), Job(1, 1.0, (1.0,))]
        inst = Instance.build(1, jobs)
        assert [job.id for job in inst.jobs] == [1, 0]


class TestInstanceStatistics:
    def test_delta(self):
        inst = Instance.build(2, _jobs())
        assert inst.delta() == pytest.approx(4.0)

    def test_delta_ignores_infinite(self):
        jobs = [Job(0, 0.0, (1.0, math.inf)), Job(1, 0.0, (2.0, 2.0))]
        assert Instance.build(2, jobs).delta() == pytest.approx(2.0)

    def test_stats_fields(self):
        stats = Instance.build(2, _jobs()).stats()
        assert stats.num_jobs == 3
        assert stats.total_min_size == pytest.approx(2.0 + 1.0 + 1.0)
        assert stats.max_release == pytest.approx(2.0)
        assert not stats.has_deadlines

    def test_total_weight(self):
        jobs = [Job(0, 0.0, (1.0,), weight=2.0), Job(1, 0.0, (1.0,), weight=3.0)]
        assert Instance.build(1, jobs).total_weight == pytest.approx(5.0)

    def test_horizon_accommodates_all_jobs(self):
        inst = Instance.build(2, _jobs())
        assert inst.horizon() >= 2.0 + 4.0  # last release + worst size of one job

    def test_has_deadlines(self):
        jobs = [Job(0, 0.0, (1.0,), deadline=2.0)]
        assert Instance.build(1, jobs).has_deadlines()
        assert not Instance.build(2, _jobs()).has_deadlines()


class TestInstanceTransformations:
    def test_with_speed_factor(self):
        inst = Instance.build(2, _jobs()).with_speed_factor(2.0)
        assert all(m.speed_factor == pytest.approx(2.0) for m in inst.machines)

    def test_with_alpha(self):
        inst = Instance.build(2, _jobs()).with_alpha(2.0)
        assert all(m.alpha == 2.0 for m in inst.machines)

    def test_with_machines_count_mismatch(self):
        inst = Instance.build(2, _jobs())
        with pytest.raises(InvalidInstanceError):
            inst.with_machines(Machine.fleet(3))

    def test_restrict_jobs(self):
        inst = Instance.build(2, _jobs()).restrict_jobs(lambda job: job.release > 0)
        assert inst.num_jobs == 2

    def test_prefix(self):
        assert Instance.build(2, _jobs()).prefix(2).num_jobs == 2

    def test_job_by_id(self):
        inst = Instance.build(2, _jobs())
        assert inst.job_by_id(1).release == pytest.approx(1.0)
        with pytest.raises(KeyError):
            inst.job_by_id(99)


class TestInstanceSerialisation:
    def test_json_roundtrip(self):
        inst = Instance.build(2, _jobs(), name="roundtrip")
        restored = Instance.from_json(inst.to_json())
        assert restored.name == "roundtrip"
        assert restored.jobs == inst.jobs
        assert restored.machines == inst.machines

    def test_single_machine_constructor(self):
        inst = Instance.single_machine([Job(0, 0.0, (1.0,))], alpha=2.0)
        assert inst.num_machines == 1
        assert inst.machines[0].alpha == 2.0
