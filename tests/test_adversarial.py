"""Tests for the adversarial constructions (Lemma 1, Lemma 2, overload bursts)."""

import pytest

from repro.core.energy_min import ConfigLPEnergyScheduler
from repro.exceptions import InvalidParameterError
from repro.workloads.adversarial import (
    Lemma2Adversary,
    lemma1_instance,
    lemma1_sweep,
    overload_burst_instance,
)


class TestLemma1Instance:
    def test_structure(self):
        instance = lemma1_instance(length=8.0, epsilon=0.25)
        assert instance.num_machines == 1
        long_jobs = [job for job in instance.jobs if job.sizes[0] == 8.0]
        short_jobs = [job for job in instance.jobs if job.sizes[0] == pytest.approx(1.0 / 8.0)]
        assert len(long_jobs) == 4  # ceil(1/0.25)
        assert len(short_jobs) == 64  # L^2

    def test_delta_is_length_squared(self):
        instance = lemma1_instance(length=10.0, epsilon=0.5)
        assert instance.delta() == pytest.approx(100.0)

    def test_long_jobs_released_first(self):
        instance = lemma1_instance(length=4.0, epsilon=0.5)
        assert all(job.release == 0.0 for job in instance.jobs if job.sizes[0] == 4.0)
        shorts = [job for job in instance.jobs if job.sizes[0] < 1.0]
        assert all(job.release > 0.0 for job in shorts)

    def test_small_multiplier_scales_short_jobs(self):
        base = lemma1_instance(length=8.0, epsilon=0.5)
        doubled = lemma1_instance(length=8.0, epsilon=0.5, small_multiplier=2.0)
        assert doubled.num_jobs > base.num_jobs

    def test_sweep(self):
        instances = lemma1_sweep([4.0, 8.0], epsilon=0.25)
        assert [inst.delta() for inst in instances] == [pytest.approx(16.0), pytest.approx(64.0)]

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            lemma1_instance(length=1.0, epsilon=0.5)
        with pytest.raises(InvalidParameterError):
            lemma1_instance(length=4.0, epsilon=0.0)


class TestOverloadBurst:
    def test_structure(self):
        instance = overload_burst_instance(2, burst_jobs=3, trailing_shorts=50)
        assert instance.num_jobs == 2 * 3 + 50
        assert instance.num_machines == 2

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            overload_burst_instance(0, burst_jobs=1)


class TestLemma2Adversary:
    def test_game_produces_nested_windows(self):
        outcome = Lemma2Adversary(alpha=3.0).play()
        assert 1 <= len(outcome.rounds) <= 3
        for earlier, later in zip(outcome.rounds, outcome.rounds[1:]):
            assert later.job.release >= earlier.start_time + 1.0 - 1e-9
            assert later.job.deadline <= earlier.completion_time + 1e-9

    def test_adversary_energy_is_total_volume(self):
        outcome = Lemma2Adversary(alpha=3.0).play()
        assert outcome.adversary_energy == pytest.approx(
            sum(r.job.sizes[0] for r in outcome.rounds)
        )

    def test_ratio_grows_with_alpha(self):
        small = Lemma2Adversary(alpha=2.0).play().ratio
        large = Lemma2Adversary(alpha=4.0).play().ratio
        assert large > small

    def test_ratio_within_theorem3_bound(self):
        for alpha in (2.0, 3.0, 4.0):
            outcome = Lemma2Adversary(alpha=alpha).play()
            assert outcome.ratio <= alpha**alpha + 1e-6

    def test_paper_lower_bound_field(self):
        outcome = Lemma2Adversary(alpha=4.0).play()
        assert outcome.paper_lower_bound == pytest.approx((4.0 / 9.0) ** 4.0)

    def test_custom_scheduler(self):
        outcome = Lemma2Adversary(alpha=3.0).play(ConfigLPEnergyScheduler(slot_length=1.0))
        assert outcome.algorithm_energy > 0

    def test_invalid_alpha(self):
        with pytest.raises(InvalidParameterError):
            Lemma2Adversary(alpha=1.5)
