"""Tests for the cumulative bench trajectory and the E14 benchmark case."""

from __future__ import annotations

import json

import pytest

from benchmarks.trajectory import (
    FIELDS,
    append_run,
    main,
    read_trajectory,
    trajectory_line,
)
from repro.benchmarking import SPECS, artifact_path, run_benchmarks


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench")
    run_benchmarks(out, only=["event_queue", "solver_facade"], repeats=1, scale=0.02)
    return out


class TestTrajectory:
    def test_line_carries_measurement_and_provenance(self, artifact_dir):
        artifact = json.loads(
            artifact_path(artifact_dir, "event_queue").read_text()
        )
        row = json.loads(trajectory_line(artifact, commit="abc", run="7"))
        assert row["commit"] == "abc" and row["run"] == "7"
        for field in FIELDS:
            assert field in row
        assert row["bench"] == "event_queue"

    def test_append_accumulates_across_runs(self, artifact_dir, tmp_path):
        trajectory = tmp_path / "nested" / "trajectory.ndjson"
        assert append_run(trajectory, artifact_dir, commit="one", run="1") == 2
        assert append_run(trajectory, artifact_dir, commit="two", run="2") == 2
        rows = read_trajectory(trajectory)
        assert len(rows) == 4
        assert [row["run"] for row in rows] == ["1", "1", "2", "2"]
        # Sorted filename order within a run keeps the file deterministic.
        assert [row["bench"] for row in rows[:2]] == ["event_queue", "solver_facade"]

    def test_missing_artifacts_raise(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            append_run(tmp_path / "t.ndjson", tmp_path)

    def test_cli_appends_and_reports(self, artifact_dir, tmp_path, capsys):
        out = tmp_path / "trajectory.ndjson"
        code = main(["--artifacts", str(artifact_dir), "--out", str(out),
                     "--commit", "deadbeef", "--run", "9"])
        assert code == 0
        assert "appended 2 benchmark(s)" in capsys.readouterr().out
        assert all(row["commit"] == "deadbeef" for row in read_trajectory(out))

    def test_cli_missing_artifacts_exits_2(self, tmp_path, capsys):
        code = main(["--artifacts", str(tmp_path), "--out",
                     str(tmp_path / "t.ndjson")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestE14Bench:
    def test_registered_and_quick(self):
        spec = SPECS["e14_robustness"]
        assert spec.quick, "e14_robustness must run in the per-PR CI subset"

    def test_runs_at_tiny_scale(self, tmp_path):
        results = run_benchmarks(
            tmp_path, only=["e14_robustness"], repeats=1, scale=0.02
        )
        (result,) = results
        assert result["events"] > 0
        assert result["events_per_sec"] > 0
        assert result["meta"]["workload"] == "scenario:multi-tenant-mix"

    def test_checked_in_baseline_matches_current_fingerprint(self):
        from pathlib import Path

        baseline = Path(__file__).resolve().parents[1] / "benchmarks" / "baselines"
        payload = json.loads(artifact_path(baseline, "e14_robustness").read_text())
        case = SPECS["e14_robustness"].build(1.0)
        assert payload["fingerprint"] == case.fingerprint
