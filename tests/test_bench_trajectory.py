"""Tests for the cumulative bench trajectory and the E14 benchmark case."""

from __future__ import annotations

import json

import pytest

from benchmarks.trajectory import (
    FIELDS,
    append_run,
    main,
    read_trajectory,
    render_first_run_report,
    render_report,
    trajectory_line,
)
from repro.benchmarking import SPECS, artifact_path, run_benchmarks


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench")
    run_benchmarks(out, only=["event_queue", "solver_facade"], repeats=1, scale=0.02)
    return out


class TestTrajectory:
    def test_line_carries_measurement_and_provenance(self, artifact_dir):
        artifact = json.loads(
            artifact_path(artifact_dir, "event_queue").read_text()
        )
        row = json.loads(trajectory_line(artifact, commit="abc", run="7"))
        assert row["commit"] == "abc" and row["run"] == "7"
        for field in FIELDS:
            assert field in row
        assert row["bench"] == "event_queue"

    def test_append_accumulates_across_runs(self, artifact_dir, tmp_path):
        trajectory = tmp_path / "nested" / "trajectory.ndjson"
        assert append_run(trajectory, artifact_dir, commit="one", run="1") == 2
        assert append_run(trajectory, artifact_dir, commit="two", run="2") == 2
        rows = read_trajectory(trajectory)
        assert len(rows) == 4
        assert [row["run"] for row in rows] == ["1", "1", "2", "2"]
        # Sorted filename order within a run keeps the file deterministic.
        assert [row["bench"] for row in rows[:2]] == ["event_queue", "solver_facade"]

    def test_missing_artifacts_raise(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            append_run(tmp_path / "t.ndjson", tmp_path)

    def test_cli_appends_and_reports(self, artifact_dir, tmp_path, capsys):
        out = tmp_path / "trajectory.ndjson"
        code = main(["--artifacts", str(artifact_dir), "--out", str(out),
                     "--commit", "deadbeef", "--run", "9"])
        assert code == 0
        assert "appended 2 benchmark(s)" in capsys.readouterr().out
        assert all(row["commit"] == "deadbeef" for row in read_trajectory(out))

    def test_cli_missing_artifacts_exits_2(self, tmp_path, capsys):
        code = main(["--artifacts", str(tmp_path), "--out",
                     str(tmp_path / "t.ndjson")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


def _synthetic_line(bench: str, run: int, rate: float) -> str:
    return json.dumps({
        "bench": bench, "commit": f"c{run:07d}deadbeef", "run": str(run),
        "events_per_sec": rate, "median_s": 100.0 / rate, "n_jobs": 500,
        "fingerprint": "f", "peak_rss_bytes": 1 << 20,
    })


class TestTrajectoryReport:
    def test_report_summarises_synthetic_trajectory(self, tmp_path):
        path = tmp_path / "trajectory.ndjson"
        lines = [_synthetic_line("alpha", run, 1000.0 * (run + 1))
                 for run in range(3)]
        lines += [_synthetic_line("beta", run, 50.0) for run in range(2)]
        path.write_text("\n".join(lines) + "\n")
        report = render_report(read_trajectory(path))
        # Summary: first 1.0k -> latest 3.0k is +200%; beta stays flat.
        assert "| alpha | 3 | 1.0k | 3.0k | 3.0k | +200.0% |" in report
        assert "| beta | 2 | 50.0 | 50.0 | 50.0 | +0.0% |" in report
        # Per-bench series sections carry run, truncated commit and rate.
        assert "## alpha" in report and "## beta" in report
        assert "| 2 | c0000002dead | 3.0k |" in report

    def test_report_limits_series_to_recent_runs(self):
        rows = [json.loads(_synthetic_line("long", run, 100.0))
                for run in range(25)]
        report = render_report(rows, series_limit=10)
        section = report.split("## long", 1)[1]
        assert "| 24 |" in section and "| 14 |" not in section
        # The summary still counts every run and keeps the true first rate.
        assert "| long | 25 |" in report

    def test_report_tolerates_missing_measurements(self):
        rows = [{"bench": "gappy", "run": "1", "commit": ""},
                json.loads(_synthetic_line("gappy", 2, 10.0))]
        report = render_report(rows)
        assert "| 1 | - | - | - | - |" in report

    def test_empty_trajectory_renders_placeholder(self):
        assert "No trajectory data yet." in render_report([])

    def test_cli_report_writes_markdown_and_prints(self, tmp_path, capsys):
        path = tmp_path / "trajectory.ndjson"
        path.write_text(_synthetic_line("alpha", 1, 2000.0) + "\n")
        report_out = tmp_path / "nested" / "report.md"
        code = main(["--report", "--out", str(path),
                     "--report-out", str(report_out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert printed.startswith("# Benchmark trajectory")
        assert report_out.read_text() == printed

    def test_cli_report_missing_trajectory_is_first_run(self, tmp_path, capsys):
        # First run of a fresh cache: no history is not an error — the report
        # says so and CI keeps going instead of failing the bench job.
        code = main(["--report", "--out", str(tmp_path / "absent.ndjson"),
                     "--artifacts", str(tmp_path / "no-artifacts")])
        assert code == 0
        printed = capsys.readouterr().out
        assert printed.startswith("# Benchmark trajectory")
        assert "No prior runs recorded" in printed
        assert "missing" in printed

    def test_cli_report_empty_trajectory_is_first_run(self, tmp_path, capsys):
        path = tmp_path / "trajectory.ndjson"
        path.write_text("")
        code = main(["--report", "--out", str(path),
                     "--artifacts", str(tmp_path / "no-artifacts")])
        assert code == 0
        printed = capsys.readouterr().out
        assert "No prior runs recorded" in printed and "empty" in printed

    def test_cli_first_run_report_tabulates_this_runs_artifacts(
        self, artifact_dir, tmp_path, capsys
    ):
        report_out = tmp_path / "report.md"
        code = main(["--report", "--out", str(tmp_path / "absent.ndjson"),
                     "--artifacts", str(artifact_dir),
                     "--report-out", str(report_out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "## This run" in printed
        assert "| event_queue |" in printed and "| solver_facade |" in printed
        assert report_out.read_text() == printed

    def test_first_run_report_tolerates_sparse_artifacts(self, tmp_path):
        (tmp_path / "BENCH_gappy.json").write_text(json.dumps({"bench": "gappy"}))
        report = render_first_run_report(tmp_path, tmp_path / "t.ndjson")
        assert "| gappy | - | - | - |" in report


class TestE16Bench:
    def test_registered_and_quick(self):
        spec = SPECS["e16_partition"]
        assert spec.quick, "e16_partition must run in the per-PR CI subset"

    def test_runs_at_tiny_scale(self, tmp_path):
        results = run_benchmarks(
            tmp_path, only=["e16_partition"], repeats=1, scale=0.02
        )
        (result,) = results
        assert result["events"] > 0
        assert result["events_per_sec"] > 0
        assert result["meta"]["path"] == "shard-solve"
        assert result["meta"]["workers"] == 4

    def test_checked_in_baseline_matches_current_fingerprint(self):
        from pathlib import Path

        baseline = Path(__file__).resolve().parents[1] / "benchmarks" / "baselines"
        payload = json.loads(artifact_path(baseline, "e16_partition").read_text())
        case = SPECS["e16_partition"].build(1.0)
        assert payload["fingerprint"] == case.fingerprint


class TestE14Bench:
    def test_registered_and_quick(self):
        spec = SPECS["e14_robustness"]
        assert spec.quick, "e14_robustness must run in the per-PR CI subset"

    def test_runs_at_tiny_scale(self, tmp_path):
        results = run_benchmarks(
            tmp_path, only=["e14_robustness"], repeats=1, scale=0.02
        )
        (result,) = results
        assert result["events"] > 0
        assert result["events_per_sec"] > 0
        assert result["meta"]["workload"] == "scenario:multi-tenant-mix"

    def test_checked_in_baseline_matches_current_fingerprint(self):
        from pathlib import Path

        baseline = Path(__file__).resolve().parents[1] / "benchmarks" / "baselines"
        payload = json.loads(artifact_path(baseline, "e14_robustness").read_text())
        case = SPECS["e14_robustness"].build(1.0)
        assert payload["fingerprint"] == case.fingerprint
