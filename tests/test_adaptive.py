"""Adaptive meta-scheduler subsystem: monitor, switch policies, ``meta`` solver.

Four contracts are enforced here:

* **Telemetry** — the :class:`LoadMonitor` statistics are pure functions of
  the event-sequence prefix: O(1) running sums agree with naive recomputes,
  the moment-based tail index is scale-invariant and orders heavy windows
  below light ones, and degenerate windows report "no evidence" (``inf``).
* **Switch policies** — the threshold controller's regime map (calm /
  shed-light / shed-heavy), its one-way escalation and its asymmetric
  confirmation streaks; the bandit's explore-then-exploit order and margin
  hysteresis; validation of every knob.
* **The ``meta`` solver** — a single-candidate portfolio is byte-identical
  to the fixed policy at the same budget (epsilon forwarding), forced plan
  switches land in the outcome extras, and batch/session runs agree byte for
  byte across all three dispatch modes.
* **Hot switching** — ``MetaSchedulerSession.hot_switch`` at an arbitrary
  index is indistinguishable from a session configured with that switch plan
  from the start (property-based, all dispatch modes), which is what makes
  snapshots, crash recovery and live re-planning safe.

The E17 acceptance check — the meta-scheduler's drifting-scenario regret
stays strictly below the worst fixed policy everywhere and beats every fixed
policy somewhere — runs at the experiment's default configuration.
"""

from __future__ import annotations

import io
import json
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from test_property_based import flow_instances

from repro.adaptive import MetaSchedulerSession
from repro.adaptive.monitor import LoadMonitor
from repro.adaptive.policies import (
    BanditSwitchPolicy,
    ThresholdSwitchPolicy,
    make_switch_policy,
)
from repro.adaptive.solver import DEFAULT_CANDIDATES, MetaSchedulingPolicy
from repro.cli import main as cli_main
from repro.exceptions import InvalidParameterError, SessionStateError
from repro.experiments import run_experiment
from repro.service import open_session
from repro.simulation.job import Job
from repro.simulation.stepper import DecisionEvent
from repro.solvers import solve
from repro.utils.serialization import canonical_json
from repro.workloads.generators import InstanceGenerator

_DISPATCH_MODES = ("indexed", "scan", "vectorized")


def _job(job_id: int, release: float, size: float) -> Job:
    return Job(id=job_id, release=release, sizes=(size,))


def _assert_outcome_identical(left, right):
    assert left.objective_value == right.objective_value
    assert left.breakdown == right.breakdown
    assert left.rejected_count == right.rejected_count
    assert left.result.records == right.result.records
    assert left.result.intervals == right.result.intervals
    assert left.result.extras == right.result.extras


# --------------------------------------------------------------------------------------
# Load monitor
# --------------------------------------------------------------------------------------


class TestLoadMonitor:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            LoadMonitor(window=1)

    def test_tail_index_needs_two_sizes(self):
        monitor = LoadMonitor(window=8)
        assert math.isinf(monitor.tail_index())
        monitor.on_arrival(0.0, _job(0, 0.0, 3.0))
        assert math.isinf(monitor.tail_index())

    def test_tail_index_degenerate_window_is_inf(self):
        monitor = LoadMonitor(window=8)
        for k in range(5):
            monitor.on_arrival(float(k), _job(k, float(k), 2.0))
        assert math.isinf(monitor.tail_index())

    def test_tail_index_matches_closed_form(self):
        # Sizes (1, 3): mean 2, variance 1, SCV 1/4 -> 1 + sqrt(1 + 4).
        monitor = LoadMonitor(window=8)
        monitor.on_arrival(0.0, _job(0, 0.0, 1.0))
        monitor.on_arrival(1.0, _job(1, 1.0, 3.0))
        assert monitor.tail_index() == pytest.approx(1.0 + math.sqrt(5.0))

    def test_tail_index_is_scale_invariant(self):
        sizes = [1.0, 4.0, 2.0, 9.0, 1.5]
        plain, scaled = LoadMonitor(window=8), LoadMonitor(window=8)
        for k, size in enumerate(sizes):
            plain.on_arrival(float(k), _job(k, float(k), size))
            scaled.on_arrival(float(k), _job(k, float(k), 1000.0 * size))
        assert plain.tail_index() == pytest.approx(scaled.tail_index())

    def test_tail_index_orders_heavy_below_light(self):
        heavy, light = LoadMonitor(window=16), LoadMonitor(window=16)
        for k in range(12):
            # One enormous outlier among small jobs vs a narrow uniform band.
            heavy.on_arrival(float(k), _job(k, float(k), 200.0 if k == 5 else 1.0))
            light.on_arrival(float(k), _job(k, float(k), 1.0 + 0.1 * k))
        assert heavy.tail_index() < light.tail_index()

    def test_window_eviction_matches_naive_recompute(self):
        sizes = [3.0, 1.0, 7.0, 2.0, 9.0, 4.0, 8.0, 5.0, 6.0, 2.5]
        window = 4
        monitor = LoadMonitor(window=window)
        for k, size in enumerate(sizes):
            monitor.on_arrival(float(k), _job(k, float(k), size))
        tail = sizes[-window:]
        mean = sum(tail) / window
        variance = sum(s * s for s in tail) / window - mean * mean
        expected = 1.0 + math.sqrt(1.0 + (mean * mean) / variance)
        assert monitor.tail_index() == pytest.approx(expected)

    def test_arrival_rate_over_window(self):
        monitor = LoadMonitor(window=4)
        assert monitor.arrival_rate() == 0.0
        for k in range(8):
            monitor.on_arrival(2.0 * k, _job(k, 2.0 * k, 1.0))
        # Window holds the last 4 arrival times spanning 6 time units.
        assert monitor.arrival_rate() == pytest.approx(3.0 / 6.0)

    def test_backlog_and_terminal_windows(self):
        monitor = LoadMonitor(window=4)
        for k in range(3):
            monitor.on_arrival(float(k), _job(k, float(k), 5.0))
        assert monitor.backlog == 3
        monitor.observe(DecisionEvent(kind="complete", time=4.0, job_id=0))
        monitor.observe(DecisionEvent(kind="reject", time=5.0, job_id=1, reason="rule1"))
        assert monitor.backlog == 1
        assert monitor.completed == 1 and monitor.rejected == 1
        assert monitor.rejection_rate() == pytest.approx(0.5)
        # Flows: job 0 completed at 4 (released 0), job 1 rejected at 5 (released 1).
        assert monitor.mean_flow() == pytest.approx((4.0 + 4.0) / 2.0)
        assert monitor.last_event_time == 5.0

    def test_snapshot_as_dict_maps_non_finite_to_none(self):
        monitor = LoadMonitor(window=4)
        payload = monitor.snapshot().as_dict()
        assert payload["tail_index"] is None
        assert payload["arrivals"] == 0
        json.dumps(payload)  # strict JSON for the service wire


# --------------------------------------------------------------------------------------
# Switch policies
# --------------------------------------------------------------------------------------


class _FakeMonitor:
    """Minimal monitor stand-in exposing what the policies read."""

    def __init__(self, backlog=0, arrivals=0, window=64, tail=math.inf, flow=0.0):
        self.backlog = backlog
        self.arrivals = arrivals
        self.window = window
        self._tail = tail
        self._flow = flow

    def tail_index(self):
        return self._tail

    def mean_flow(self):
        return self._flow


class TestThresholdSwitchPolicy:
    def _policy(self, **knobs):
        knobs.setdefault("cooldown", 1)
        knobs.setdefault("confirm", 2)
        knobs.setdefault("calm_confirm", 3)
        policy = ThresholdSwitchPolicy(DEFAULT_CANDIDATES, **knobs)
        policy.reset(num_machines=1)
        return policy

    def test_partition_roles(self):
        policy = self._policy()
        assert policy._calm == "greedy"
        assert policy._shed_light == "immediate-rejection"
        assert policy._shed_heavy == "rejection-flow"

    def test_escalates_after_confirm_streak(self):
        policy = self._policy()
        overload = _FakeMonitor(backlog=3)  # 3 jobs/machine > high_water 1.5
        assert policy.decide(overload, "greedy", 0) is None  # streak 1
        assert policy.decide(overload, "greedy", 1) == "immediate-rejection"

    def test_active_shedder_never_hops_down(self):
        # Backlog-high alone must not move a committed heavy shedder back to
        # the light one: the rejection budget concentrates where committed.
        policy = self._policy()
        overload = _FakeMonitor(backlog=3)
        for index in range(10):
            assert policy.decide(overload, "rejection-flow", index) is None

    def test_surge_promotes_to_heavy_shedder(self):
        policy = self._policy()
        surge = _FakeMonitor(backlog=10)  # > surge_factor 6 * high_water 1.5
        policy.decide(surge, "greedy", 0)
        assert policy.decide(surge, "greedy", 1) == "rejection-flow"

    def test_heavy_tail_trusted_only_on_full_window(self):
        policy = self._policy()
        early = _FakeMonitor(backlog=1, arrivals=10, window=64, tail=1.2)
        for index in range(6):
            assert policy.decide(early, "greedy", index) is None
        confirmed = _FakeMonitor(backlog=1, arrivals=64, window=64, tail=1.2)
        policy.decide(confirmed, "greedy", 10)
        assert policy.decide(confirmed, "greedy", 11) == "rejection-flow"

    def test_calm_requires_long_streak(self):
        policy = self._policy()
        calm = _FakeMonitor(backlog=0)
        assert policy.decide(calm, "rejection-flow", 0) is None
        assert policy.decide(calm, "rejection-flow", 1) is None
        assert policy.decide(calm, "rejection-flow", 2) == "greedy"

    def test_interrupted_streak_resets(self):
        policy = self._policy()
        calm = _FakeMonitor(backlog=0)
        band = _FakeMonitor(backlog=1)  # hysteresis band: no target
        policy.decide(calm, "rejection-flow", 0)
        policy.decide(calm, "rejection-flow", 1)
        assert policy.decide(band, "rejection-flow", 2) is None
        assert policy.decide(calm, "rejection-flow", 3) is None  # streak restarts

    def test_cooldown_blocks_confirmed_switch(self):
        policy = self._policy(cooldown=100)
        policy.record_switch(0, "greedy")
        overload = _FakeMonitor(backlog=3)
        for index in range(1, 10):
            assert policy.decide(overload, "greedy", index) is None

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ThresholdSwitchPolicy(())
        with pytest.raises(InvalidParameterError):
            ThresholdSwitchPolicy(DEFAULT_CANDIDATES, cooldown=0)
        with pytest.raises(InvalidParameterError):
            ThresholdSwitchPolicy(DEFAULT_CANDIDATES, high_water=0.5, low_water=1.0)
        with pytest.raises(InvalidParameterError):
            ThresholdSwitchPolicy(DEFAULT_CANDIDATES, surge_factor=0.5)
        with pytest.raises(InvalidParameterError):
            ThresholdSwitchPolicy(DEFAULT_CANDIDATES, confirm=0)
        with pytest.raises(InvalidParameterError):
            ThresholdSwitchPolicy(DEFAULT_CANDIDATES, confirm=4, calm_confirm=2)


class TestBanditSwitchPolicy:
    def test_explores_unplayed_candidates_in_order(self):
        policy = BanditSwitchPolicy(DEFAULT_CANDIDATES, cooldown=1)
        policy.reset(num_machines=1)
        first = policy.decide(_FakeMonitor(flow=5.0), "immediate-rejection", 0)
        assert first == "greedy"
        policy.record_switch(0, "greedy")
        second = policy.decide(_FakeMonitor(flow=2.0), "greedy", 1)
        assert second == "rejection-flow"

    def test_switches_only_past_margin(self):
        policy = BanditSwitchPolicy(("immediate-rejection", "greedy"), cooldown=1, margin=0.1)
        policy.reset(num_machines=1)
        # First charged sample seeds the active candidate's estimate.
        assert policy.decide(_FakeMonitor(flow=5.0), "immediate-rejection", 0) == "greedy"
        policy.record_switch(0, "greedy")
        # Greedy's estimate (1.0) is far better: no switch back...
        assert policy.decide(_FakeMonitor(flow=1.0), "greedy", 1) is None
        # ... until its EMA degrades past the other estimate's margin.
        target = None
        for index in range(2, 30):
            target = policy.decide(_FakeMonitor(flow=50.0), "greedy", index)
            if target is not None:
                break
        assert target == "immediate-rejection"

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            BanditSwitchPolicy(DEFAULT_CANDIDATES, margin=-0.1)
        with pytest.raises(InvalidParameterError):
            BanditSwitchPolicy(DEFAULT_CANDIDATES, ema=0.0)
        with pytest.raises(InvalidParameterError):
            make_switch_policy("annealing", DEFAULT_CANDIDATES)


# --------------------------------------------------------------------------------------
# The meta solver
# --------------------------------------------------------------------------------------


def _instance(n=80, machines=3, seed=7):
    generator = InstanceGenerator(
        num_machines=machines, seed=seed, size_distribution="pareto"
    )
    return generator.generate(n)


class TestMetaSolver:
    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            MetaSchedulingPolicy(candidates=())
        with pytest.raises(InvalidParameterError):
            MetaSchedulingPolicy(policy="annealing")
        with pytest.raises(InvalidParameterError):
            MetaSchedulingPolicy(window=1)
        with pytest.raises(InvalidParameterError):
            MetaSchedulingPolicy(epsilon=0.0)
        with pytest.raises(InvalidParameterError):
            MetaSchedulingPolicy(candidates=("meta",))  # not itself adaptive
        for bad in ("42", "x:greedy", "-1:greedy", "3:"):
            with pytest.raises(InvalidParameterError):
                MetaSchedulingPolicy(plan=(bad,))

    def test_later_plan_entry_wins_per_index(self):
        policy = MetaSchedulingPolicy(plan=("5:greedy", "5:rejection-flow"))
        assert policy._forced == {5: "rejection-flow"}

    def test_single_candidate_matches_fixed_policy(self):
        # With one candidate and the controller off, meta is a transparent
        # wrapper: epsilon must reach the sub-policy and the schedule must be
        # identical to the fixed run at that budget.
        instance = _instance()
        for epsilon in (0.25, 0.7):
            fixed = solve(instance, "immediate-rejection", epsilon=epsilon)
            meta = solve(
                instance, "meta",
                candidates=("immediate-rejection",), policy="plan", epsilon=epsilon,
            )
            assert meta.objective_value == fixed.objective_value
            assert meta.rejected_count == fixed.rejected_count
            assert meta.result.records == fixed.result.records

    def test_forced_plan_switch_recorded_in_extras(self):
        outcome = solve(
            _instance(), "meta", policy="plan", plan=("10:rejection-flow",),
        )
        assert outcome.extras["meta_switches"] == 1
        assert outcome.extras["meta_switch_trace"] == "10:rejection-flow"
        assert outcome.extras["meta_active"] == "rejection-flow"

    def test_batch_and_session_byte_identical_across_dispatch(self):
        instance = _instance(n=120)
        reference = solve(instance, "meta", epsilon=0.25)
        reference_row = canonical_json(reference.as_row())
        for dispatch in _DISPATCH_MODES:
            batch = solve(instance, "meta", dispatch=dispatch, epsilon=0.25)
            assert canonical_json(batch.as_row()) == reference_row
            _assert_outcome_identical(batch, reference)
            session = open_session(
                "meta", instance.machines, dispatch=dispatch, epsilon=0.25
            )
            session.submit_many(instance.jobs)
            streamed = session.finalize()
            assert canonical_json(streamed.as_row()) == reference_row
            _assert_outcome_identical(streamed, reference)


# --------------------------------------------------------------------------------------
# Hot switching
# --------------------------------------------------------------------------------------


class TestHotSwitch:
    def test_open_session_returns_meta_session(self):
        session = open_session("meta", 2)
        assert isinstance(session, MetaSchedulerSession)
        assert session.active_algorithm == DEFAULT_CANDIDATES[0]

    def test_hot_switch_validates_target(self):
        session = open_session("meta", 2)
        with pytest.raises(InvalidParameterError):
            session.hot_switch("no-such-algorithm")
        with pytest.raises(InvalidParameterError):
            session.hot_switch("meta")

    def test_hot_switch_after_finalize_rejected(self):
        session = open_session("meta", 2)
        session.finalize()
        with pytest.raises(SessionStateError):
            session.hot_switch("greedy")

    def test_stats_payload(self):
        session = open_session("meta", 2)
        session.submit_many(_instance(n=30, machines=2).jobs)
        session.poll()  # drain the stepper so arrivals reach the monitor
        stats = session.stats()
        assert stats["active_algorithm"] in DEFAULT_CANDIDATES
        assert stats["switches"] == len(session.switch_log)
        telemetry = stats["telemetry"]
        assert telemetry["arrivals"] > 0
        json.dumps(telemetry)

    def test_hot_switch_equals_uninterrupted_plan_all_modes(self):
        instance = _instance(n=100)
        cut = 40
        for dispatch in _DISPATCH_MODES:
            live = open_session("meta", instance.machines, dispatch=dispatch)
            live.submit_many(instance.jobs[:cut])
            event = live.hot_switch("rejection-flow")
            live.submit_many(instance.jobs[cut:])
            plan = (f"{event.index}:rejection-flow",)
            cold = open_session("meta", instance.machines, dispatch=dispatch, plan=plan)
            cold.submit_many(instance.jobs)
            _assert_outcome_identical(live.finalize(), cold.finalize())
            batch = solve(instance, "meta", dispatch=dispatch, plan=plan)
            assert batch.extras["meta_switch_trace"].endswith("rejection-flow")

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        instance=flow_instances(max_jobs=12),
        cut=st.integers(min_value=0, max_value=12),
        target=st.sampled_from(["greedy", "rejection-flow", "immediate-rejection"]),
    )
    def test_hot_switch_property(self, instance, cut, target):
        # Hot-switching mid-stream is indistinguishable from a session that
        # carried the same forced plan from the start — in every dispatch mode.
        cut = min(cut, len(instance.jobs))
        for dispatch in _DISPATCH_MODES:
            live = open_session("meta", instance.machines, dispatch=dispatch)
            live.submit_many(instance.jobs[:cut])
            event = live.hot_switch(target)
            live.submit_many(instance.jobs[cut:])
            cold = open_session(
                "meta", instance.machines, dispatch=dispatch,
                plan=(f"{event.index}:{target}",),
            )
            cold.submit_many(instance.jobs)
            _assert_outcome_identical(live.finalize(), cold.finalize())


# --------------------------------------------------------------------------------------
# E17 and the CLI
# --------------------------------------------------------------------------------------


class TestE17:
    def test_acceptance_at_default_config(self):
        # The headline claim (re-checked nightly): every meta policy stays
        # strictly under the worst fixed candidate on every drifting
        # scenario, and on at least one scenario some meta policy beats
        # every fixed candidate outright.
        result = run_experiment("E17")
        summary = result.raw["summary"]
        assert {entry["scenario"] for entry in summary} == set(result.raw["scenarios"])
        assert all(entry["beats_worst_fixed"] for entry in summary)
        assert any(entry["beats_all_fixed"] for entry in summary)

    def test_session_and_batch_ingest_agree(self):
        common = dict(
            scenarios=("drift-ramp-heavytail",), meta_policies=("threshold",),
            num_jobs=60,
        )
        session = run_experiment("E17", ingest="session", **common)
        batch = run_experiment("E17", ingest="batch", **common)
        assert canonical_json(session.raw["rows"]) == canonical_json(batch.raw["rows"])

    def test_raw_is_byte_reproducible(self):
        kwargs = dict(
            scenarios=("drift-diurnal-flash",), meta_policies=("bandit",), num_jobs=60
        )
        first = run_experiment("E17", **kwargs)
        second = run_experiment("E17", **kwargs)
        assert canonical_json(first.raw) == canonical_json(second.raw)

    def test_unknown_ingest_mode(self):
        with pytest.raises(ValueError):
            run_experiment("E17", ingest="osmosis", num_jobs=10)


class TestAdaptiveCli:
    def test_json_summary(self):
        out = io.StringIO()
        code = cli_main(
            [
                "adaptive", "--scenario", "drift-ramp-heavytail",
                "--policy", "threshold", "--jobs", "60", "--json",
            ],
            out=out,
        )
        assert code == 0
        summary = json.loads(out.getvalue())
        assert summary[0]["scenario"] == "drift-ramp-heavytail"
        assert {"beats_all_fixed", "beats_worst_fixed", "switches"} <= set(summary[0])

    def test_human_output_has_verdicts(self):
        out = io.StringIO()
        code = cli_main(
            [
                "adaptive", "--scenario", "drift-ramp-heavytail",
                "--policy", "threshold", "--jobs", "60",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "E17" in text
        assert "fixed policy" in text
