"""Tests for the preemptive references: HDF, AVR and YDS."""

import pytest

from repro.baselines.avr import average_rate_energy, average_rate_schedule
from repro.baselines.hdf import HighestDensityFirstScheduler, NoRejectionEnergyFlowScheduler
from repro.baselines.yds import yds_energy, yds_schedule
from repro.exceptions import InfeasibleInstanceError, InvalidParameterError
from repro.lowerbounds.energy_bounds import per_job_deadline_energy_lower_bound
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.machine import Machine
from repro.simulation.metrics import flow_plus_energy
from repro.simulation.speed_engine import SpeedScalingEngine
from repro.workloads.generators import DeadlineInstanceGenerator, WeightedInstanceGenerator


class TestHDF:
    def test_single_job(self):
        instance = Instance.build(Machine.fleet(1, alpha=2.0), [Job(0, 0.0, (4.0,), weight=1.0)])
        result = HighestDensityFirstScheduler().run(instance)
        # Speed 1 (weight 1, alpha 2): flow 4, energy 4.
        assert result.weighted_flow_time == pytest.approx(4.0)
        assert result.energy == pytest.approx(4.0)
        assert result.completions[0] == pytest.approx(4.0)

    def test_all_jobs_complete(self, weighted_instance):
        result = HighestDensityFirstScheduler().run(weighted_instance)
        assert set(result.completions) == {job.id for job in weighted_instance.jobs}
        assert result.objective > 0

    def test_preemption_beats_non_preemptive_no_rejection(self):
        # A long job followed by many short ones: the preemptive reference
        # must not be worse than the non-preemptive no-rejection scheduler.
        jobs = [Job(0, 0.0, (40.0,), weight=1.0)]
        jobs += [Job(j, 1.0 + 0.1 * j, (1.0,), weight=2.0) for j in range(1, 15)]
        instance = Instance.build(Machine.fleet(1, alpha=2.0), jobs)
        hdf = HighestDensityFirstScheduler().run(instance).objective
        non_preemptive = flow_plus_energy(
            SpeedScalingEngine(instance).run(NoRejectionEnergyFlowScheduler())
        )
        assert hdf <= non_preemptive

    def test_requires_uniform_alpha(self):
        machines = (Machine(0, alpha=2.0), Machine(1, alpha=3.0))
        instance = Instance.build(machines, [Job(0, 0.0, (1.0, 1.0))])
        with pytest.raises(InvalidParameterError):
            HighestDensityFirstScheduler().run(instance)


class TestAVR:
    def test_single_job_energy(self):
        # Density p/(d-r) = 0.5 over 4 time units at alpha 2: energy = 0.25 * 4 = 1.
        jobs = [Job(0, 0.0, (2.0,), deadline=4.0)]
        instance = Instance.build(Machine.fleet(1, alpha=2.0), jobs)
        assert average_rate_energy(instance) == pytest.approx(1.0)

    def test_overlapping_jobs_pay_superadditive_power(self):
        jobs = [
            Job(0, 0.0, (2.0,), deadline=4.0),
            Job(1, 0.0, (2.0,), deadline=4.0),
        ]
        instance = Instance.build(Machine.fleet(1, alpha=2.0), jobs)
        # Stacked densities: speed 1 over 4 units -> energy 4 > 2 * 1.
        assert average_rate_energy(instance) == pytest.approx(4.0)

    def test_multi_machine_dispatch_splits_load(self):
        jobs = [
            Job(0, 0.0, (2.0, 2.0), deadline=4.0),
            Job(1, 0.0, (2.0, 2.0), deadline=4.0),
        ]
        instance = Instance.build(Machine.fleet(2, alpha=2.0), jobs)
        schedule = average_rate_schedule(instance)
        assert schedule.assignment[0] != schedule.assignment[1]
        assert schedule.energy == pytest.approx(2.0)

    def test_requires_deadlines(self):
        instance = Instance.build(1, [Job(0, 0.0, (1.0,))])
        with pytest.raises(InfeasibleInstanceError):
            average_rate_schedule(instance)

    def test_above_certified_lower_bound(self, deadline_instance):
        assert average_rate_energy(deadline_instance) >= per_job_deadline_energy_lower_bound(
            deadline_instance
        ) - 1e-9


class TestYDS:
    def test_single_job(self):
        jobs = [Job(0, 0.0, (2.0,), deadline=4.0)]
        instance = Instance.build(Machine.fleet(1, alpha=2.0), jobs)
        # Optimal: run at speed 0.5 over the whole window: energy 0.25*4 = 1.
        assert yds_energy(instance) == pytest.approx(1.0)

    def test_two_nested_jobs(self):
        # A tight inner job forces high speed inside its window only.
        jobs = [
            Job(0, 0.0, (8.0,), deadline=8.0),
            Job(1, 3.0, (2.0,), deadline=5.0),
        ]
        instance = Instance.build(Machine.fleet(1, alpha=2.0), jobs)
        schedule = yds_schedule(instance=instance)
        assert schedule.energy > 0
        assert schedule.max_speed() >= 1.0
        # Block speeds are non-increasing in selection order (maximum intensity first).
        speeds = [block.speed for block in schedule.blocks]
        assert speeds == sorted(speeds, reverse=True)

    def test_below_avr(self, single_machine_deadline_instance):
        # YDS is the optimal preemptive schedule, AVR is merely 2^alpha-competitive.
        assert yds_energy(single_machine_deadline_instance) <= average_rate_energy(
            single_machine_deadline_instance
        ) + 1e-9

    def test_above_per_job_bound(self, single_machine_deadline_instance):
        assert yds_energy(single_machine_deadline_instance) >= per_job_deadline_energy_lower_bound(
            single_machine_deadline_instance
        ) - 1e-9

    def test_rejects_multi_machine_instances(self, deadline_instance):
        with pytest.raises(InvalidParameterError):
            yds_schedule(instance=deadline_instance)

    def test_explicit_jobs_interface(self):
        schedule = yds_schedule(jobs=[(0, 0.0, 2.0, 1.0), (1, 0.0, 2.0, 1.0)], alpha=2.0)
        assert schedule.energy == pytest.approx(2.0)

    def test_infeasible_window_rejected(self):
        with pytest.raises(InfeasibleInstanceError):
            yds_schedule(jobs=[(0, 5.0, 5.0, 1.0)], alpha=2.0)
