"""Tests for the trace-driven workload subsystem and the scenario catalog.

Covers the NDJSON/CSV trace readers and writers (schema errors with line and
field attribution, byte-exact round trips — including the property-based
generate → export → re-ingest → byte-identical ``SolveOutcome`` loop), the
deterministic chunk-stream transforms, the heavy-traffic scenario catalog
(determinism, session-vs-batch byte identity, workload-suite integration),
experiment E14 and the ``repro trace`` / ``repro serve --trace-format`` CLI.
"""

from __future__ import annotations

import io
import json
import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from test_property_based import flow_instances

import repro
from repro.cli import main
from repro.exceptions import InvalidParameterError, TraceSchemaError
from repro.experiments import run_experiment
from repro.service.ndjson import parse_job_line
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.solvers import solve
from repro.utils.serialization import canonical_json
from repro.workloads import standard_suites, validate_unique_suites
from repro.workloads.generators import InstanceGenerator, JobChunk
from repro.workloads.scenarios import (
    SCENARIOS,
    available_scenarios,
    get_scenario,
    piecewise_warp,
)
from repro.workloads.suites import WorkloadSuite
from repro.workloads.traces import (
    chunks_to_instance,
    merge,
    read_trace_chunks,
    read_trace_jobs,
    renumber,
    scale_load,
    shard,
    time_warp,
    trace_instance,
    trace_stats,
    truncate,
    write_csv_trace,
    write_ndjson_trace,
    write_trace,
)


def _round_trip(instance: Instance, fmt: str) -> Instance:
    buf = io.StringIO()
    if fmt == "csv":
        write_csv_trace(instance.jobs, buf)
    else:
        write_ndjson_trace(instance.jobs, buf)
    buf.seek(0)
    return chunks_to_instance(
        read_trace_chunks(buf, fmt), machines=instance.machines, name=instance.name
    )


def _jobs_dicts(instance: Instance) -> list[dict]:
    return [job.to_dict() for job in instance.jobs]


# --------------------------------------------------------------------------------------
# Row schema and error reporting
# --------------------------------------------------------------------------------------


class TestSchemaErrors:
    def test_missing_field_names_line_and_field(self):
        with pytest.raises(TraceSchemaError) as err:
            parse_job_line('{"id": 1, "sizes": [1.0]}', lineno=7)
        assert "line 7" in str(err.value) and "'release'" in str(err.value)
        assert err.value.lineno == 7 and err.value.field == "release"

    def test_bad_type_names_field(self):
        with pytest.raises(TraceSchemaError) as err:
            parse_job_line('{"id": 1, "release": "soon", "sizes": [1.0]}', lineno=2)
        assert err.value.field == "release"
        with pytest.raises(TraceSchemaError) as err:
            parse_job_line('{"id": 1, "release": 0.0, "sizes": 3}', lineno=2)
        assert err.value.field == "sizes"
        with pytest.raises(TraceSchemaError) as err:
            parse_job_line('{"id": "x7", "release": 0.0, "sizes": [1.0]}', lineno=4)
        assert err.value.field == "id"

    def test_unknown_fields_tolerated_on_ndjson(self):
        # The serve wire format has always ignored client-side metadata on
        # job lines; the trace reader keeps that compatibility.
        job = parse_job_line('{"id": 1, "release": 0.0, "sizes": [1.0], "tenant": "a"}')
        assert job.id == 1 and job.sizes == (1.0,)

    def test_non_finite_values_rejected_with_field(self):
        for field, line in [
            ("release", '{"id": 0, "release": NaN, "sizes": [1.0]}'),
            ("release", '{"id": 0, "release": "inf", "sizes": [1.0]}'),
            ("weight", '{"id": 0, "release": 0.0, "sizes": [1.0], "weight": NaN}'),
            ("deadline", '{"id": 0, "release": 0.0, "sizes": [1.0], "deadline": Infinity}'),
            ("sizes", '{"id": 0, "release": 0.0, "sizes": [NaN]}'),
        ]:
            with pytest.raises(TraceSchemaError) as err:
                parse_job_line(line, lineno=5)
            assert err.value.field == field and err.value.lineno == 5
        # Infinite *sizes* are legitimate: they mark forbidden machines.
        job = parse_job_line('{"id": 0, "release": 0.0, "sizes": [1.0, Infinity]}')
        assert math.isinf(job.sizes[1])

    def test_invariant_violation_carries_line(self):
        with pytest.raises(TraceSchemaError) as err:
            parse_job_line('{"id": 1, "release": -2.0, "sizes": [1.0]}', lineno=3)
        assert "line 3" in str(err.value)

    def test_not_json_and_not_object(self):
        with pytest.raises(TraceSchemaError):
            parse_job_line("{nope", lineno=1)
        with pytest.raises(TraceSchemaError):
            parse_job_line("[1, 2]", lineno=1)

    def test_trace_schema_error_is_invalid_parameter_error(self):
        # The CLI's exit-2 contract catches ReproError; the subclassing keeps
        # pre-existing callers that catch InvalidParameterError working.
        assert issubclass(TraceSchemaError, InvalidParameterError)

    def test_cross_row_release_order_enforced(self):
        rows = "\n".join(
            [
                '{"id": 0, "release": 5.0, "sizes": [1.0]}',
                '{"id": 1, "release": 1.0, "sizes": [1.0]}',
            ]
        )
        with pytest.raises(TraceSchemaError) as err:
            list(read_trace_chunks(io.StringIO(rows)))
        assert err.value.lineno == 2 and err.value.field == "release"

    def test_machine_count_must_be_constant(self):
        rows = "\n".join(
            [
                '{"id": 0, "release": 0.0, "sizes": [1.0]}',
                '{"id": 1, "release": 1.0, "sizes": [1.0, 2.0]}',
            ]
        )
        with pytest.raises(TraceSchemaError) as err:
            list(read_trace_chunks(io.StringIO(rows)))
        assert err.value.lineno == 2 and err.value.field == "sizes"

    def test_mixed_deadlines_rejected(self):
        rows = "\n".join(
            [
                '{"id": 0, "release": 0.0, "sizes": [1.0], "deadline": 9.0}',
                '{"id": 1, "release": 1.0, "sizes": [1.0]}',
            ]
        )
        with pytest.raises(TraceSchemaError) as err:
            list(read_trace_chunks(io.StringIO(rows)))
        assert err.value.field == "deadline"

    def test_csv_header_errors(self):
        with pytest.raises(TraceSchemaError) as err:
            list(read_trace_jobs(io.StringIO("id,release,size_0,bogus\n"), fmt="csv"))
        assert err.value.field == "bogus"
        with pytest.raises(TraceSchemaError) as err:
            list(read_trace_jobs(io.StringIO("id,size_0\n"), fmt="csv"))
        assert err.value.field == "release"
        with pytest.raises(TraceSchemaError):
            list(read_trace_jobs(io.StringIO("id,release,size_1\n"), fmt="csv"))

    def test_csv_cell_count_mismatch(self):
        stream = io.StringIO("id,release,size_0\n0,0.0,1.0,extra\n")
        with pytest.raises(TraceSchemaError) as err:
            list(read_trace_jobs(stream, fmt="csv"))
        assert err.value.lineno == 2

    def test_csv_duplicate_column_rejected(self):
        stream = io.StringIO("id,release,release,size_0\n0,1.0,2.0,3.0\n")
        with pytest.raises(TraceSchemaError) as err:
            list(read_trace_jobs(stream, fmt="csv"))
        assert err.value.field == "release"

    def test_unknown_format_rejected_for_streams_too(self):
        stream = io.StringIO('{"id": 0, "release": 0.0, "sizes": [1.0]}\n')
        with pytest.raises(InvalidParameterError, match="unknown trace format"):
            list(read_trace_jobs(stream, fmt="CSV"))


# --------------------------------------------------------------------------------------
# Round trips
# --------------------------------------------------------------------------------------


class TestRoundTrips:
    @pytest.fixture(scope="class")
    def instance(self):
        return InstanceGenerator(
            num_machines=3, machine_model="restricted", seed=11
        ).generate(60)

    @pytest.mark.parametrize("fmt", ["ndjson", "csv"])
    def test_jobs_identical_after_round_trip(self, instance, fmt):
        back = _round_trip(instance, fmt)
        assert _jobs_dicts(back) == _jobs_dicts(instance)

    @pytest.mark.parametrize("fmt", ["ndjson", "csv"])
    def test_restricted_assignment_inf_survives(self, instance, fmt):
        assert any(math.isinf(p) for job in instance.jobs for p in job.sizes)
        back = _round_trip(instance, fmt)
        assert _jobs_dicts(back) == _jobs_dicts(instance)

    def test_deadline_and_weight_columns(self):
        jobs = [
            Job(0, release=0.0, sizes=(2.0, 3.0), weight=1.5, deadline=9.0),
            Job(1, release=1.0, sizes=(1.0, math.inf), weight=0.25, deadline=4.5),
        ]
        instance = Instance.build(2, jobs)
        for fmt in ("ndjson", "csv"):
            back = _round_trip(instance, fmt)
            assert _jobs_dicts(back) == _jobs_dicts(instance)

    def test_export_is_byte_stable(self, instance):
        first, second = io.StringIO(), io.StringIO()
        write_ndjson_trace(instance.jobs, first)
        write_ndjson_trace(instance.jobs, second)
        assert first.getvalue() == second.getvalue()

    def test_ndjson_csv_ndjson_is_byte_identical(self, instance, tmp_path):
        a = tmp_path / "a.ndjson"
        b = tmp_path / "b.csv"
        c = tmp_path / "c.ndjson"
        write_trace(instance.jobs, a)
        write_trace(read_trace_chunks(a), b)
        write_trace(read_trace_chunks(b), c)
        assert a.read_text() == c.read_text()

    def test_trace_instance_infers_machines(self, instance, tmp_path):
        path = tmp_path / "t.ndjson"
        write_trace(instance.jobs, path)
        back = trace_instance(path)
        assert back.num_machines == instance.num_machines
        assert _jobs_dicts(back) == _jobs_dicts(instance)

    def test_write_trace_is_atomic(self, instance, tmp_path):
        path = tmp_path / "t.ndjson"
        write_trace(instance.jobs, path)
        before = path.read_text()
        # An unknown format is rejected before the destination is touched...
        with pytest.raises(InvalidParameterError, match="unknown trace format"):
            write_trace(instance.jobs, path, fmt="xml")
        assert path.read_text() == before
        # ...and a writer crash mid-stream leaves the old contents intact.
        def exploding():
            yield instance.jobs[0]
            raise RuntimeError("boom")
        with pytest.raises(RuntimeError):
            write_trace(exploding(), path)
        assert path.read_text() == before
        assert list(tmp_path.iterdir()) == [path], "no temp files left behind"

    def test_in_place_convert_is_safe(self, instance, tmp_path):
        path = tmp_path / "t.ndjson"
        write_trace(instance.jobs, path)
        # The reader is lazy and the writer goes through a temp file, so
        # reading and rewriting the same path must not destroy the trace.
        count = write_trace(scale_load(read_trace_chunks(path), 2.0), path)
        assert count == instance.num_jobs
        back = trace_instance(path, machines=instance.machines)
        assert [j.sizes for j in back.jobs] == [
            tuple(p * 2.0 for p in j.sizes) for j in instance.jobs
        ]

    def test_chunk_boundaries_do_not_change_result(self, instance):
        buf = io.StringIO()
        write_ndjson_trace(instance.jobs, buf)
        small = list(read_trace_chunks(io.StringIO(buf.getvalue()), chunk_size=7))
        big = list(read_trace_chunks(io.StringIO(buf.getvalue()), chunk_size=1000))
        assert len(small) > 1 and len(big) == 1
        jobs_small = [j.to_dict() for c in small for j in c.jobs()]
        jobs_big = [j.to_dict() for c in big for j in c.jobs()]
        assert jobs_small == jobs_big

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(instance=flow_instances(), fmt=st.sampled_from(["ndjson", "csv"]))
    def test_property_solve_outcome_byte_identical(self, instance, fmt):
        """generate -> export -> re-ingest -> byte-identical SolveOutcome."""
        back = _round_trip(instance, fmt)
        original = solve(instance, "rejection-flow", epsilon=0.5)
        replayed = solve(back, "rejection-flow", epsilon=0.5)
        assert canonical_json(original.as_row()) == canonical_json(replayed.as_row())
        assert original.result.records == replayed.result.records


# --------------------------------------------------------------------------------------
# Transforms
# --------------------------------------------------------------------------------------


def _chunks(instance: Instance, chunk_size: int = 16):
    buf = io.StringIO()
    write_ndjson_trace(instance.jobs, buf)
    buf.seek(0)
    return read_trace_chunks(buf, chunk_size=chunk_size)


class TestTransforms:
    @pytest.fixture(scope="class")
    def instance(self):
        return InstanceGenerator(num_machines=2, seed=5).generate(50)

    def test_scale_load_multiplies_sizes(self, instance):
        out = chunks_to_instance(scale_load(_chunks(instance), 2.0), machines=2)
        for before, after in zip(instance.jobs, out.jobs):
            assert after.sizes == tuple(p * 2.0 for p in before.sizes)
            assert after.release == before.release

    def test_time_warp_factor(self, instance):
        out = chunks_to_instance(time_warp(_chunks(instance), 0.5), machines=2)
        for before, after in zip(instance.jobs, out.jobs):
            assert after.release == before.release * 0.5

    def test_time_warp_function_applies_to_deadlines(self):
        jobs = [Job(k, release=float(k), sizes=(1.0,), deadline=float(k) + 2.0)
                for k in range(10)]
        instance = Instance.build(1, jobs)
        out = chunks_to_instance(
            time_warp(_chunks(instance), lambda t: t * 3.0), machines=1
        )
        for job in out.jobs:
            assert job.deadline == (job.release / 3.0 + 2.0) * 3.0

    def test_invalid_factors_rejected(self, instance):
        with pytest.raises(InvalidParameterError):
            list(scale_load(_chunks(instance), 0.0))
        with pytest.raises(InvalidParameterError):
            list(time_warp(_chunks(instance), -1.0))

    def test_truncate_by_jobs_and_time(self, instance):
        out = chunks_to_instance(truncate(_chunks(instance), max_jobs=7), machines=2)
        assert out.num_jobs == 7
        assert _jobs_dicts(out) == _jobs_dicts(instance)[:7]
        cutoff = instance.jobs[20].release
        timed = chunks_to_instance(
            truncate(_chunks(instance), max_time=cutoff), machines=2
        )
        assert all(job.release <= cutoff for job in timed.jobs)
        assert timed.num_jobs == sum(1 for j in instance.jobs if j.release <= cutoff)

    def test_shard_partitions_trace(self, instance):
        shards = [
            chunks_to_instance(shard(_chunks(instance), 3, i), machines=2)
            for i in range(3)
        ]
        assert sum(s.num_jobs for s in shards) == instance.num_jobs
        # Shards renumber sequentially and preserve the original interleaving.
        for s in shards:
            assert [job.id for job in s.jobs] == list(range(s.num_jobs))
        releases = sorted(r for s in shards for r in (j.release for j in s.jobs))
        assert releases == [job.release for job in instance.jobs]
        with pytest.raises(InvalidParameterError):
            list(shard(_chunks(instance), 3, 5))

    def test_renumber(self, instance):
        chunks = list(renumber(_chunks(instance, chunk_size=9)))
        ids = [i for c in chunks for i in c.job_ids().tolist()]
        assert ids == list(range(instance.num_jobs))

    def test_merge_orders_by_release_and_renumbers(self):
        a = InstanceGenerator(num_machines=2, seed=1).generate(30)
        b = InstanceGenerator(num_machines=2, seed=2).generate(20)
        merged = chunks_to_instance(
            merge(_chunks(a, 8), _chunks(b, 8), chunk_size=16), machines=2
        )
        assert merged.num_jobs == 50
        assert [job.id for job in merged.jobs] == list(range(50))
        releases = [job.release for job in merged.jobs]
        assert releases == sorted(releases)
        assert sorted(releases) == sorted(
            [j.release for j in a.jobs] + [j.release for j in b.jobs]
        )

    def test_merge_is_deterministic(self):
        a = InstanceGenerator(num_machines=2, seed=1).generate(25)
        b = InstanceGenerator(num_machines=2, seed=2).generate(25)
        one = chunks_to_instance(merge(_chunks(a, 4), _chunks(b, 64)), machines=2)
        two = chunks_to_instance(merge(_chunks(a, 4), _chunks(b, 64)), machines=2)
        assert _jobs_dicts(one) == _jobs_dicts(two)

    def test_merge_rejects_machine_mismatch(self):
        a = InstanceGenerator(num_machines=2, seed=1).generate(10)
        b = InstanceGenerator(num_machines=3, seed=2).generate(10)
        with pytest.raises(InvalidParameterError):
            list(merge(_chunks(a), _chunks(b)))

    def test_stats(self, instance):
        stats = trace_stats(_chunks(instance))
        assert stats.num_jobs == instance.num_jobs
        assert stats.num_machines == 2
        assert stats.first_release == instance.jobs[0].release
        assert stats.last_release == instance.jobs[-1].release
        assert not stats.has_deadlines
        empty = trace_stats(iter(()))
        assert empty.num_jobs == 0


# --------------------------------------------------------------------------------------
# Shard partition stability and the shard -> merge lossless inverse
# --------------------------------------------------------------------------------------


def _ndjson(chunks) -> str:
    buf = io.StringIO()
    write_ndjson_trace(chunks, buf)
    return buf.getvalue()


class TestShardRoundTrip:
    def test_hash_shard_membership_stable_across_chunk_sizes(self):
        # Hash (and tenant) sharding keys on the job's effective id, never on
        # chunk boundaries: re-chunking the same trace must yield the same
        # shards job for job.  (Round-robin keys on stream position, which is
        # also chunking-independent; it is covered by the round trip below.)
        instance = InstanceGenerator(num_machines=2, seed=7).generate(60)
        for mode in ("hash", "tenant"):
            for index in range(3):
                fine = shard(_chunks(instance, chunk_size=7), 3, index,
                             mode=mode, keep_ids=True)
                coarse = shard(_chunks(instance, chunk_size=64), 3, index,
                               mode=mode, keep_ids=True)
                assert _ndjson(fine) == _ndjson(coarse), (mode, index)

    def test_hash_shard_is_a_pure_function_of_the_id(self):
        # Truncating one shard's input must not reassign jobs in another:
        # membership depends only on the id, so a job keeps its shard even
        # when the surrounding stream changes.
        instance = InstanceGenerator(num_machines=2, seed=11).generate(40)
        full = _ndjson(shard(_chunks(instance), 2, 0, mode="hash", keep_ids=True))
        prefix = chunks_to_instance(
            truncate(_chunks(instance), max_jobs=25), machines=2
        )
        partial = _ndjson(shard(_chunks(prefix), 2, 0, mode="hash", keep_ids=True))
        assert full.startswith(partial)

    @pytest.mark.parametrize("scenario_name", sorted(SCENARIOS))
    @pytest.mark.parametrize("mode", ["round-robin", "hash", "tenant"])
    def test_merge_of_shards_round_trips_byte_identically(self, scenario_name, mode):
        # The documented inverse: merge(shard(t, k, i, keep_ids=True) for i)
        # under id tie-break reproduces the original trace byte for byte —
        # for every catalog scenario, including flash-crowd's release-tie
        # bursts and multi-tenant-mix's weight classes.
        chunks = list(
            get_scenario(scenario_name).job_chunks(48, 2, seed=2018)
        )
        original = _ndjson(chunks)
        for num_shards in (1, 3):
            shards = [
                shard(iter(chunks), num_shards, index, mode=mode, keep_ids=True)
                for index in range(num_shards)
            ]
            merged = merge(*shards, tie_break="id")
            assert _ndjson(merged) == original, (scenario_name, mode, num_shards)

    def test_tenant_mode_keeps_weight_classes_together(self):
        chunks = list(get_scenario("multi-tenant-mix").job_chunks(60, 2, seed=3))
        weights = [
            {job.weight for c in shard(iter(chunks), 2, index, mode="tenant")
             for job in c.jobs()}
            for index in range(2)
        ]
        assert not (weights[0] & weights[1])
        all_weights = {job.weight for c in chunks for job in c.jobs()}
        assert weights[0] | weights[1] == all_weights

    def test_unknown_mode_and_tie_break_rejected(self):
        instance = InstanceGenerator(num_machines=2, seed=1).generate(5)
        with pytest.raises(InvalidParameterError):
            list(shard(_chunks(instance), 2, 0, mode="alphabetical"))
        with pytest.raises(InvalidParameterError):
            list(merge(_chunks(instance), tie_break="coin-flip"))


# --------------------------------------------------------------------------------------
# JobChunk ids column
# --------------------------------------------------------------------------------------


class TestChunkIds:
    def test_explicit_ids_used_by_jobs(self):
        chunk = JobChunk(
            start=0,
            releases=np.array([0.0, 1.0]),
            sizes=np.array([[1.0], [2.0]]),
            ids=np.array([7, 3]),
        )
        chunk.validate()
        assert [job.id for job in chunk.jobs()] == [7, 3]
        assert chunk.job_ids().tolist() == [7, 3]

    def test_default_ids_contiguous_from_start(self):
        chunk = JobChunk(5, np.array([0.0, 1.0]), np.array([[1.0], [2.0]]))
        assert chunk.job_ids().tolist() == [5, 6]

    def test_duplicate_and_negative_ids_rejected(self):
        base = dict(start=0, releases=np.array([0.0, 1.0]),
                    sizes=np.array([[1.0], [2.0]]))
        with pytest.raises(Exception):
            JobChunk(**base, ids=np.array([1, 1])).validate()
        with pytest.raises(Exception):
            JobChunk(**base, ids=np.array([-1, 0])).validate()


# --------------------------------------------------------------------------------------
# Scenario catalog
# --------------------------------------------------------------------------------------


class TestScenarios:
    def test_catalog_contents(self):
        catalog = available_scenarios()
        assert {"heavy-tail-pareto", "diurnal-pareto", "flash-crowd",
                "multi-tenant-mix", "load-ramp",
                "drift-diurnal-flash", "drift-ramp-heavytail"} == set(catalog)
        assert all(description for description in catalog.values())

    def test_unknown_scenario(self):
        with pytest.raises(InvalidParameterError):
            get_scenario("nope")

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_deterministic_in_seed(self, name):
        scenario = get_scenario(name)
        one = scenario.instance(40, num_machines=3, seed=9)
        two = scenario.instance(40, num_machines=3, seed=9)
        other = scenario.instance(40, num_machines=3, seed=10)
        assert one.to_dict() == two.to_dict()
        assert one.to_dict() != other.to_dict()
        assert one.num_jobs == 40 and one.num_machines == 3

    @pytest.mark.parametrize(
        "name", ["flash-crowd", "heavy-tail-pareto", "multi-tenant-mix", "load-ramp"]
    )
    def test_session_ingest_matches_batch_solve_byte_identically(self, name):
        """Acceptance: trace -> session reproduces repro.solve byte-identically."""
        scenario = get_scenario(name)
        instance = scenario.instance(60, num_machines=3, seed=4, name="t")
        batch = solve(instance, "rejection-flow", epsilon=0.5)
        session = repro.open_session("rejection-flow", 3, epsilon=0.5, name="t")
        for chunk in scenario.job_chunks(60, num_machines=3, seed=4, chunk_size=13):
            session.submit_many(chunk)
        streamed = session.finalize()
        assert canonical_json(streamed.as_row()) == canonical_json(batch.as_row())
        assert streamed.result.records == batch.result.records
        assert streamed.result.intervals == batch.result.intervals

    def test_exported_scenario_trace_replays_byte_identically(self, tmp_path):
        scenario = get_scenario("diurnal-pareto")
        path = tmp_path / "diurnal.csv"
        write_trace(scenario.job_chunks(50, num_machines=2, seed=3), path)
        batch = solve(scenario.instance(50, num_machines=2, seed=3), "greedy")
        session = repro.open_session("greedy", 2)
        for chunk in read_trace_chunks(path):
            session.submit_many(chunk)
        replayed = session.finalize()
        assert canonical_json(replayed.as_row()) == canonical_json(batch.as_row())

    def test_piecewise_warp_monotone_and_rate_shaped(self):
        warp = piecewise_warp(period=8.0, multipliers=(0.5, 2.0))
        u = np.linspace(0.0, 40.0, 500)
        t = warp(u)
        assert (np.diff(t) >= 0).all()
        # Work accumulates at rate `multiplier`: a unit of work in the slow
        # half spans 4x the wall time of a unit in the fast half (0.5 vs 2).
        assert warp(np.array([2.0]))[0] == pytest.approx(4.0)
        assert warp(np.array([2.0 + 8.0]))[0] == pytest.approx(4.0 + 4.0)
        with pytest.raises(InvalidParameterError):
            piecewise_warp(0.0, (1.0,))
        with pytest.raises(InvalidParameterError):
            piecewise_warp(1.0, (1.0, -2.0))

    def test_suites_expose_scenarios_at_all_scales(self):
        sizes = {}
        for scale in ("small", "medium"):
            suites = standard_suites(scale)
            assert set(suites["scenarios"].labels()) == set(SCENARIOS)
            sizes[scale] = suites["scenarios"].build("flash-crowd").num_jobs
        assert sizes["medium"] > sizes["small"]

    def test_validate_unique_suites(self):
        a, b = WorkloadSuite(name="dup"), WorkloadSuite(name="dup")
        with pytest.raises(InvalidParameterError):
            validate_unique_suites([a, b])
        validate_unique_suites([a, WorkloadSuite(name="other")])


# --------------------------------------------------------------------------------------
# Experiment E14
# --------------------------------------------------------------------------------------


class TestE14:
    _CONFIG = dict(
        scenarios=("flash-crowd", "multi-tenant-mix"),
        algorithms=("rejection-flow", "fcfs"),
        num_jobs=30,
        num_machines=2,
    )

    def test_session_and_batch_ingest_agree(self):
        streamed = run_experiment("E14", ingest="session", **self._CONFIG)
        batch = run_experiment("E14", ingest="batch", **self._CONFIG)
        # Identical measurements; only the recorded ingest-mode label differs.
        strip = lambda raw: {k: v for k, v in raw.items() if k != "ingest"}  # noqa: E731
        assert canonical_json(strip(streamed.raw)) == canonical_json(strip(batch.raw))

    def test_raw_is_byte_reproducible(self):
        one = run_experiment("E14", **self._CONFIG)
        two = run_experiment("E14", **self._CONFIG)
        assert canonical_json(one.raw) == canonical_json(two.raw)

    def test_all_streaming_solvers_by_default(self):
        from repro.service.session import streaming_algorithms

        result = run_experiment(
            "E14", scenarios=("flash-crowd",), num_jobs=20, num_machines=2
        )
        assert {row["algorithm"] for row in result.raw["rows"]} == set(
            streaming_algorithms()
        )

    def test_unknown_ingest_mode(self):
        with pytest.raises(ValueError):
            run_experiment("E14", ingest="teleport", **self._CONFIG)


# --------------------------------------------------------------------------------------
# CLI: repro trace + serve trace formats
# --------------------------------------------------------------------------------------


class TestTraceCli:
    def _generate(self, tmp_path, fmt="ndjson", jobs=40):
        path = tmp_path / f"t.{fmt}"
        code = main(
            ["trace", "generate", "--scenario", "flash-crowd", "--jobs", str(jobs),
             "--machines", "2", "--out", str(path)],
            out=io.StringIO(),
        )
        assert code == 0
        return path

    def test_scenarios_listing(self, capsys):
        assert main(["trace", "scenarios"]) == 0
        out = capsys.readouterr().out
        assert "flash-crowd" in out and "multi-tenant-mix" in out

    def test_generate_and_inspect(self, tmp_path):
        path = self._generate(tmp_path)
        out = io.StringIO()
        assert main(["trace", "inspect", str(path)], out=out) == 0
        assert "num_jobs" in out.getvalue() and ": 40" in out.getvalue()
        as_json = io.StringIO()
        assert main(["trace", "inspect", str(path), "--json"], out=as_json) == 0
        assert json.loads(as_json.getvalue())["num_jobs"] == 40

    def test_convert_round_trip_byte_identical(self, tmp_path):
        src = self._generate(tmp_path)
        csv_path = tmp_path / "t.csv"
        back = tmp_path / "back.ndjson"
        assert main(["trace", "convert", str(src), str(csv_path)], out=io.StringIO()) == 0
        assert main(["trace", "convert", str(csv_path), str(back)], out=io.StringIO()) == 0
        assert src.read_text() == back.read_text()

    def test_convert_transforms(self, tmp_path):
        src = self._generate(tmp_path)
        dst = tmp_path / "out.ndjson"
        code = main(
            ["trace", "convert", str(src), str(dst), "--load-scale", "2.0",
             "--time-warp", "0.5", "--max-jobs", "10"],
            out=io.StringIO(),
        )
        assert code == 0
        assert trace_instance(dst, machines=2).num_jobs == 10
        shard_dst = tmp_path / "shard.ndjson"
        assert main(
            ["trace", "convert", str(src), str(shard_dst), "--shard", "1/4"],
            out=io.StringIO(),
        ) == 0
        assert trace_instance(shard_dst, machines=2).num_jobs == 10

    def test_convert_bad_shard_exits_2(self, tmp_path, capsys):
        src = self._generate(tmp_path)
        code = main(["trace", "convert", str(src), str(tmp_path / "o.ndjson"),
                     "--shard", "nope"])
        assert code == 2
        assert "--shard" in capsys.readouterr().err

    def test_inspect_malformed_exits_2_with_line_and_field(self, tmp_path, capsys):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"id": 0, "release": 0.0, "sizes": [1.0]}\n{"id": 1}\n')
        assert main(["trace", "inspect", str(path)]) == 2
        err = capsys.readouterr().err
        assert "line 2" in err and "'release'" in err

    def test_unknown_scenario_exits_2(self, tmp_path, capsys):
        code = main(["trace", "generate", "--scenario", "nope", "--out",
                     str(tmp_path / "x.ndjson")])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_serve_csv_trace_matches_ndjson_trace(self, tmp_path):
        src = self._generate(tmp_path, jobs=30)
        csv_path = tmp_path / "t.csv"
        assert main(["trace", "convert", str(src), str(csv_path)], out=io.StringIO()) == 0
        out_ndjson, out_csv = io.StringIO(), io.StringIO()
        args = ["serve", "--algorithm", "rejection-flow", "--machines", "2", "--quiet"]
        assert main([*args, "--trace", str(src)], out=out_ndjson) == 0
        assert main([*args, "--trace", str(csv_path)], out=out_csv) == 0
        assert out_ndjson.getvalue() == out_csv.getvalue()
        final = json.loads(out_csv.getvalue().strip().splitlines()[-1])
        assert final["event"] == "final"

    def test_serve_csv_malformed_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("id,release,size_0\n0,0.0,1.0\n1,zzz,1.0\n")
        code = main(["serve", "--machines", "1", "--trace", str(path), "--quiet"])
        assert code == 2
        err = capsys.readouterr().err
        assert "line 3" in err and "'release'" in err
