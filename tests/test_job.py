"""Unit tests for :mod:`repro.simulation.job`."""

import math

import pytest

from repro.exceptions import InvalidInstanceError
from repro.simulation.job import Job


class TestJobValidation:
    def test_valid_job(self):
        job = Job(0, 1.0, (2.0, 3.0), weight=2.0, deadline=5.0)
        assert job.id == 0

    def test_negative_id_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(-1, 0.0, (1.0,))

    def test_negative_release_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(0, -1.0, (1.0,))

    def test_empty_sizes_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(0, 0.0, ())

    def test_non_positive_size_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(0, 0.0, (0.0,))

    def test_all_infinite_sizes_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(0, 0.0, (math.inf, math.inf))

    def test_non_positive_weight_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(0, 0.0, (1.0,), weight=0.0)

    def test_deadline_before_release_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(0, 5.0, (1.0,), deadline=4.0)


class TestJobAccessors:
    def test_size_on(self):
        job = Job(0, 0.0, (2.0, 3.0))
        assert job.size_on(0) == 2.0
        assert job.size_on(1) == 3.0

    def test_density_on(self):
        job = Job(0, 0.0, (2.0, 4.0), weight=4.0)
        assert job.density_on(0) == pytest.approx(2.0)
        assert job.density_on(1) == pytest.approx(1.0)

    def test_density_on_forbidden_machine_is_zero(self):
        job = Job(0, 0.0, (math.inf, 4.0))
        assert job.density_on(0) == 0.0

    def test_eligible_machines(self):
        job = Job(0, 0.0, (math.inf, 4.0, 1.0))
        assert job.eligible_machines() == (1, 2)

    def test_min_size_ignores_infinite(self):
        job = Job(0, 0.0, (math.inf, 4.0, 1.5))
        assert job.min_size() == 1.5

    def test_best_machine(self):
        job = Job(0, 0.0, (3.0, 1.0, 2.0))
        assert job.best_machine() == 1

    def test_window(self):
        job = Job(0, 1.0, (1.0,), deadline=4.0)
        assert job.window() == pytest.approx(3.0)

    def test_window_without_deadline_raises(self):
        with pytest.raises(InvalidInstanceError):
            Job(0, 1.0, (1.0,)).window()


class TestJobConstruction:
    def test_uniform(self):
        job = Job.uniform(3, 1.0, 5.0, machines=4)
        assert job.sizes == (5.0, 5.0, 5.0, 5.0)

    def test_from_mapping_dict(self):
        job = Job.from_mapping(0, 0.0, {1: 3.0}, machines=3)
        assert math.isinf(job.sizes[0]) and job.sizes[1] == 3.0 and math.isinf(job.sizes[2])

    def test_from_mapping_sequence(self):
        job = Job.from_mapping(0, 0.0, [1.0, 2.0], machines=2)
        assert job.sizes == (1.0, 2.0)

    def test_from_mapping_bad_index(self):
        with pytest.raises(InvalidInstanceError):
            Job.from_mapping(0, 0.0, {5: 1.0}, machines=2)


class TestJobSerialisation:
    def test_roundtrip(self):
        job = Job(2, 1.5, (2.0, 3.0), weight=1.5, deadline=9.0)
        assert Job.from_dict(job.to_dict()) == job

    def test_roundtrip_without_deadline(self):
        job = Job(2, 1.5, (2.0,))
        restored = Job.from_dict(job.to_dict())
        assert restored.deadline is None
        assert restored == job

    def test_immutability(self):
        job = Job(0, 0.0, (1.0,))
        with pytest.raises(Exception):
            job.release = 5.0  # type: ignore[misc]
