"""Tests for the solver registry and the ``repro.solve()`` facade."""

import pytest

import repro
from repro.cli import main
from repro.exceptions import (
    InvalidParameterError,
    SolverModelError,
    UnknownAlgorithmError,
)
from repro.simulation.decisions import ArrivalDecision, Rejection, StartDecision
from repro.simulation.engine import FlowTimeEngine, FlowTimePolicy
from repro.simulation.speed_engine import SpeedArrivalDecision, SpeedRejection
from repro.solvers import (
    ParamSpec,
    SolverSpec,
    available_algorithms,
    get_solver,
    list_algorithms,
    make_policy,
    register_solver,
    solve,
    unregister_solver,
)
from repro.workloads.generators import (
    DeadlineInstanceGenerator,
    InstanceGenerator,
    WeightedInstanceGenerator,
)


@pytest.fixture(scope="module")
def instance():
    return InstanceGenerator(num_machines=3, seed=7).generate(40)


@pytest.fixture(scope="module")
def weighted_instance():
    return WeightedInstanceGenerator(num_machines=2, alpha=2.0, seed=7).generate(30)


class TestRegistry:
    def test_every_scheduler_is_registered(self):
        expected = {
            # core algorithms
            "rejection-flow", "rejection-energy-flow", "config-lp-energy",
            # online baselines
            "greedy", "fcfs", "immediate-rejection", "speed-augmentation",
            "energy-flow-no-rejection",
            # preemptive / offline references
            "hdf-preemptive", "srpt-pooled", "avr", "yds", "offline-list",
            "brute-force-flow", "brute-force-energy",
        }
        assert expected <= set(available_algorithms())

    def test_capability_metadata(self):
        rows = {row["algorithm"]: row for row in list_algorithms()}
        assert rows["rejection-flow"]["model"] == "fixed-speed"
        assert rows["rejection-flow"]["supports_rejection"] is True
        assert rows["rejection-energy-flow"]["model"] == "speed-scaling"
        assert rows["rejection-energy-flow"]["objective"] == "weighted-flow-time+energy"
        assert rows["yds"]["model"] == "reference"
        assert rows["greedy"]["supports_rejection"] is False

    def test_unknown_algorithm(self, instance):
        with pytest.raises(UnknownAlgorithmError, match="rejection-flow"):
            solve(instance, "definitely-not-an-algorithm")

    def test_unknown_algorithm_is_invalid_parameter(self, instance):
        # callers catching the broader class keep working
        with pytest.raises(InvalidParameterError):
            get_solver("nope")

    def test_duplicate_registration_rejected(self):
        spec = get_solver("fcfs")
        with pytest.raises(InvalidParameterError, match="already registered"):
            register_solver(spec)

    def test_spec_validates_model_and_objective(self):
        with pytest.raises(InvalidParameterError, match="unknown model"):
            SolverSpec(algorithm_id="x", model="quantum", objective="energy",
                       description="", factory=lambda: None)
        with pytest.raises(InvalidParameterError, match="unknown objective"):
            SolverSpec(algorithm_id="x", model="reference", objective="makespan",
                       description="", runner=lambda instance: None)


class TestRegistryLifecycle:
    def _ad_hoc_spec(self, algorithm_id="test-lifecycle-solver"):
        from repro.baselines.fcfs import FCFSScheduler

        return SolverSpec(
            algorithm_id=algorithm_id,
            model="fixed-speed",
            objective="total-flow-time",
            description="ad-hoc spec for lifecycle tests",
            factory=FCFSScheduler,
        )

    def test_unregister_unknown_id_is_noop_false(self):
        assert unregister_solver("never-was-registered") is False

    def test_unregister_removes_and_reports_true(self):
        spec = self._ad_hoc_spec()
        register_solver(spec)
        try:
            assert unregister_solver(spec.algorithm_id) is True
        finally:
            unregister_solver(spec.algorithm_id)
        with pytest.raises(UnknownAlgorithmError):
            get_solver(spec.algorithm_id)
        # a second unregister of the now-absent id stays a no-op
        assert unregister_solver(spec.algorithm_id) is False

    def test_reregistration_after_unregister_succeeds(self):
        spec = self._ad_hoc_spec()
        register_solver(spec)
        unregister_solver(spec.algorithm_id)
        try:
            assert register_solver(spec) is spec
            assert get_solver(spec.algorithm_id) is spec
        finally:
            unregister_solver(spec.algorithm_id)

    def test_reregistration_of_live_id_rejected(self):
        spec = self._ad_hoc_spec()
        register_solver(spec)
        try:
            with pytest.raises(InvalidParameterError, match="already registered"):
                register_solver(self._ad_hoc_spec())
        finally:
            unregister_solver(spec.algorithm_id)

    def test_get_solver_error_lists_available_algorithms(self):
        with pytest.raises(UnknownAlgorithmError) as excinfo:
            get_solver("no-such-algorithm")
        message = str(excinfo.value)
        assert "no-such-algorithm" in message
        for algorithm_id in ("rejection-flow", "fcfs", "yds"):
            assert algorithm_id in message

    def test_streaming_requires_factory(self):
        with pytest.raises(InvalidParameterError, match="supports_streaming"):
            SolverSpec(
                algorithm_id="bad-streaming",
                model="reference",
                objective="energy",
                description="",
                supports_streaming=True,
                runner=lambda instance: None,
            )

    def test_streaming_metadata_in_rows(self):
        rows = {row["algorithm"]: row for row in list_algorithms()}
        assert rows["rejection-flow"]["supports_streaming"] is True
        assert rows["fcfs"]["supports_streaming"] is True
        assert rows["yds"]["supports_streaming"] is False
        assert rows["speed-augmentation"]["supports_streaming"] is False


class TestParamValidation:
    def test_unknown_param(self, instance):
        with pytest.raises(InvalidParameterError, match="unknown parameter"):
            solve(instance, "rejection-flow", epsilon=0.5, turbo=True)

    def test_out_of_range_epsilon(self, instance):
        with pytest.raises(InvalidParameterError, match="epsilon"):
            solve(instance, "rejection-flow", epsilon=0.0)
        with pytest.raises(InvalidParameterError, match="epsilon"):
            solve(instance, "rejection-flow", epsilon=-0.5)

    def test_epsilon_above_one_keeps_permissive_interpretation(self, instance):
        # check_epsilon accepts epsilon >= 1 (the rules just fire more often);
        # the registry schema must not narrow what direct construction allows.
        outcome = solve(instance, "rejection-flow", epsilon=1.5)
        assert outcome.rejected_fraction <= 1.0

    def test_tuple_param_accepts_comma_separated_string(self, instance):
        outcome = solve(instance, "offline-list", orderings="spt,release")
        assert outcome.params["orderings"] == ("spt", "release")

    def test_wrong_type(self, instance):
        with pytest.raises(InvalidParameterError, match="expects float"):
            solve(instance, "rejection-flow", epsilon="half")
        with pytest.raises(InvalidParameterError, match="expects a bool"):
            solve(instance, "rejection-flow", enable_rule1=1)

    def test_bad_choice(self, instance):
        with pytest.raises(InvalidParameterError, match="one of"):
            solve(instance, "greedy", local_order="lifo")

    def test_defaults_filled_in(self, instance):
        outcome = solve(instance, "rejection-flow")
        assert outcome.params["epsilon"] == 0.5
        assert outcome.params["enable_rule1"] is True

    def test_int_coerced_to_float(self, instance):
        spec = ParamSpec("x", float, minimum=0.0)
        assert spec.validate(1) == 1.0 and isinstance(spec.validate(1), float)


class TestModelDispatch:
    def test_model_pin_matches(self, instance):
        outcome = solve(instance, "greedy", model="fixed-speed")
        assert outcome.model == "fixed-speed"

    def test_model_mismatch_raises(self, instance):
        with pytest.raises(SolverModelError, match="fixed-speed"):
            solve(instance, "greedy", model="speed-scaling")
        with pytest.raises(SolverModelError):
            solve(instance, "rejection-energy-flow", model="fixed-speed")

    def test_factory_producing_wrong_policy_type(self, instance):
        register_solver(
            SolverSpec(
                algorithm_id="test-wrong-model",
                model="speed-scaling",
                objective="weighted-flow-time+energy",
                description="factory lies about its model",
                factory=lambda: make_policy("fcfs"),
            )
        )
        try:
            with pytest.raises(SolverModelError, match="not a SpeedScalingPolicy"):
                solve(instance, "test-wrong-model")
        finally:
            unregister_solver("test-wrong-model")


class TestSolveOutcomes:
    def test_solve_matches_direct_engine_run(self, instance):
        outcome = solve(instance, "rejection-flow", epsilon=0.5)
        direct = FlowTimeEngine(instance).run(repro.RejectionFlowTimeScheduler(epsilon=0.5))
        assert outcome.objective_value == pytest.approx(
            sum(r.flow_time for r in direct.records.values())
        )
        assert outcome.label == direct.algorithm
        assert outcome.summary.rejected_count == outcome.rejected_count
        assert isinstance(outcome.policy, FlowTimePolicy)
        assert outcome.extras["rule1_events"] >= 0  # diagnostics merged

    def test_speed_scaling_outcome(self, weighted_instance):
        outcome = solve(weighted_instance, "rejection-energy-flow", epsilon=0.5)
        assert outcome.model == "speed-scaling"
        assert outcome.breakdown["energy"] > 0
        assert outcome.objective_value == pytest.approx(
            outcome.breakdown["weighted_flow_time"] + outcome.breakdown["energy"]
        )
        assert 0 <= outcome.rejected_weight_fraction <= 0.5 + 1e-9

    def test_reference_outcome_has_no_result(self, instance):
        outcome = solve(instance, "srpt-pooled")
        assert outcome.result is None and outcome.summary is None
        assert outcome.objective_value > 0
        assert outcome.breakdown == {"flow_time": outcome.objective_value}

    def test_reference_energy_solver(self):
        instance = DeadlineInstanceGenerator(
            num_machines=1, slack=3.0, alpha=2.0, seed=3
        ).generate(6)
        yds_outcome = solve(instance, "yds")
        avr_outcome = solve(instance, "avr")
        # AVR is 2^(alpha-1) alpha^alpha-competitive against optimal YDS
        assert yds_outcome.objective_value <= avr_outcome.objective_value + 1e-9

    def test_runner_backed_engine_model(self, instance):
        outcome = solve(instance, "speed-augmentation", epsilon_speed=0.5, epsilon_reject=0.2)
        assert outcome.model == "fixed-speed"
        assert outcome.result is not None
        assert outcome.extras["epsilon_speed"] == 0.5

    def test_as_row_is_flat(self, instance):
        row = solve(instance, "rejection-flow").as_row()
        assert row["algorithm"] == "rejection-flow"
        assert all(not isinstance(v, (dict, list)) for v in row.values())

    def test_make_policy_rejects_reference_algorithms(self):
        with pytest.raises(InvalidParameterError, match="not policy-based"):
            make_policy("yds")

    def test_top_level_exports(self):
        assert repro.solve is solve
        assert callable(repro.list_algorithms)
        assert callable(repro.run_policy)
        assert callable(repro.run_speed_policy)


class TestSharedDecisionTypes:
    def test_speed_aliases_are_shared_types(self):
        assert SpeedArrivalDecision is ArrivalDecision
        assert SpeedRejection is Rejection

    def test_start_decision_positive_speed(self):
        with pytest.raises(Exception, match="positive"):
            StartDecision(job_id=0, speed=0.0)


class TestSolveCli:
    def test_list_algorithms_output(self, capsys):
        assert main(["solve", "--list-algorithms"]) == 0
        out = capsys.readouterr().out
        for algorithm in ("rejection-flow", "rejection-energy-flow", "yds", "greedy"):
            assert algorithm in out
        assert "fixed-speed" in out and "speed-scaling" in out and "reference" in out

    def test_solve_run(self, capsys):
        assert main([
            "solve", "--algorithm", "rejection-flow", "--param", "epsilon=0.5",
            "--jobs", "30", "--machines", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "objective     : total-flow-time" in out
        assert "rejected" in out

    def test_solve_unknown_algorithm_exit_code(self, capsys):
        assert main(["solve", "--algorithm", "nope"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_solve_bad_param_exit_code(self, capsys):
        assert main([
            "solve", "--algorithm", "rejection-flow", "--param", "epsilon=0", "--jobs", "10",
        ]) == 2
        assert "epsilon" in capsys.readouterr().err

    def test_solve_malformed_param(self, capsys):
        assert main(["solve", "--param", "epsilon0.5", "--jobs", "10"]) == 2
        assert "NAME=VALUE" in capsys.readouterr().err


class TestSolverCompareExperiment:
    def test_e10_rows_per_algorithm(self):
        from repro.experiments import run_experiment

        result = run_experiment(
            "E10", algorithms=("rejection-flow", "greedy", "srpt-pooled"), num_jobs=25
        )
        assert [row["algorithm"] for row in result.tables[0].rows] == [
            "rejection-flow", "greedy", "srpt-pooled",
        ]
        models = {row["algorithm"]: row["model"] for row in result.tables[0].rows}
        assert models["srpt-pooled"] == "reference"
