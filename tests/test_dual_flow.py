"""Tests for the Section 2 dual-fitting accountant (Lemma 4, Theorem 1 analysis)."""

import pytest

from repro.core.dual import FlowTimeDualAccountant
from repro.core.flow_time import RejectionFlowTimeScheduler
from repro.exceptions import InvalidParameterError
from repro.simulation.engine import FlowTimeEngine
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.workloads.adversarial import lemma1_instance, overload_burst_instance
from repro.workloads.generators import InstanceGenerator


def _run(instance, epsilon):
    scheduler = RejectionFlowTimeScheduler(epsilon=epsilon)
    result = FlowTimeEngine(instance).run(scheduler)
    return FlowTimeDualAccountant(result, scheduler), result


class TestDualFeasibility:
    @pytest.mark.parametrize("epsilon", [0.25, 0.5, 0.75])
    def test_random_instances(self, epsilon):
        instance = InstanceGenerator(num_machines=3, seed=3).generate(50)
        accountant, _ = _run(instance, epsilon)
        check = accountant.check_feasibility(samples_per_job=15)
        assert check.checked_constraints > 0
        assert check.feasible, f"violations: {check.violations[:3]}"

    def test_adversarial_instance(self):
        accountant, _ = _run(lemma1_instance(length=8.0, epsilon=0.25), 0.25)
        check = accountant.check_feasibility(samples_per_job=10)
        assert check.feasible

    def test_overload_instance(self):
        accountant, _ = _run(overload_burst_instance(2, burst_jobs=3, trailing_shorts=60), 0.5)
        check = accountant.check_feasibility(samples_per_job=10)
        assert check.feasible


class TestDualQuantities:
    def test_beta_integral_matches_definitive_flow(self):
        instance = InstanceGenerator(num_machines=2, seed=4).generate(30)
        accountant, result = _run(instance, 0.5)
        check = accountant.check_feasibility(samples_per_job=5)
        epsilon = 0.5
        scale = epsilon / (1.0 + epsilon) ** 2
        assert check.beta_integral == pytest.approx(scale * check.extended_flow_time)

    def test_extended_flow_at_least_algorithm_flow(self):
        instance = InstanceGenerator(num_machines=2, seed=4).generate(30)
        accountant, result = _run(instance, 0.5)
        check = accountant.check_feasibility(samples_per_job=5)
        # C~_j - r_j >= F_j for every job, so the totals compare the same way.
        assert check.extended_flow_time >= check.algorithm_flow_time - 1e-9

    def test_dual_objective_dominates_analysis_bound(self):
        # The Theorem 1 chain: dual objective >= (eps/(1+eps))^2 sum(C~_j - r_j).
        instance = InstanceGenerator(num_machines=3, seed=9).generate(60)
        accountant, _ = _run(instance, 0.4)
        check = accountant.check_feasibility(samples_per_job=5)
        assert check.dual_objective >= accountant.theoretical_dual_lower_bound() - 1e-6

    def test_pending_count_matches_queue(self):
        jobs = [Job(0, 0.0, (4.0,)), Job(1, 1.0, (2.0,)), Job(2, 1.5, (1.0,))]
        instance = Instance.build(1, jobs)
        scheduler = RejectionFlowTimeScheduler(
            epsilon=0.5, enable_rule1=False, enable_rule2=False
        )
        result = FlowTimeEngine(instance).run(scheduler)
        accountant = FlowTimeDualAccountant(result, scheduler)
        # At time 2.0 job 0 is running and jobs 1, 2 wait (rules disabled, no rejection).
        assert accountant.pending_count(0, 2.0) == 3

    def test_definitive_finish_no_rejections(self):
        jobs = [Job(0, 0.0, (2.0,)), Job(1, 5.0, (1.0,))]
        instance = Instance.build(1, jobs)
        accountant, result = _run(instance, 0.5)
        # Without any rejection C~_j equals the completion time.
        for job_id, record in result.records.items():
            assert accountant.definitive_finish(job_id) == pytest.approx(record.completion)

    def test_requires_populated_scheduler(self):
        instance = Instance.build(1, [Job(0, 0.0, (1.0,))])
        scheduler = RejectionFlowTimeScheduler(epsilon=0.5)
        result = FlowTimeEngine(instance).run(scheduler)
        fresh = RejectionFlowTimeScheduler(epsilon=0.5)
        with pytest.raises(InvalidParameterError):
            FlowTimeDualAccountant(result, fresh)

    def test_dual_to_flow_ratio_positive(self):
        instance = InstanceGenerator(num_machines=2, seed=1).generate(40)
        accountant, _ = _run(instance, 0.5)
        check = accountant.check_feasibility(samples_per_job=5)
        assert check.dual_to_flow_ratio > 0
