"""Tests for arrival processes, size distributions, machine models and generators."""

import math

import pytest

from repro.exceptions import InvalidParameterError
from repro.workloads.arrival_processes import (
    batched_arrivals,
    bursty_arrivals,
    deterministic_arrivals,
    poisson_arrivals,
)
from repro.workloads.generators import (
    DeadlineInstanceGenerator,
    InstanceGenerator,
    WeightedInstanceGenerator,
)
from repro.workloads.machine_models import (
    identical_matrix,
    restricted_assignment_matrix,
    unrelated_matrix,
    uniform_related_matrix,
)
from repro.workloads.processing_times import (
    bimodal_sizes,
    bounded_pareto_sizes,
    exponential_sizes,
    uniform_sizes,
)


class TestArrivalProcesses:
    def test_poisson_count_and_monotone(self):
        times = poisson_arrivals(50, rate=2.0, seed=0)
        assert len(times) == 50
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_poisson_rate_controls_density(self):
        slow = poisson_arrivals(200, rate=0.5, seed=1)[-1]
        fast = poisson_arrivals(200, rate=5.0, seed=1)[-1]
        assert fast < slow

    def test_bursty_structure(self):
        times = bursty_arrivals(60, rate_on=10.0, rate_off=0.1, burst_length=20, seed=2)
        assert len(times) == 60 and all(a <= b for a, b in zip(times, times[1:]))

    def test_batched(self):
        times = batched_arrivals(9, batch_size=3, batch_gap=5.0)
        assert times[:3] == [0.0, 0.0, 0.0]
        assert times[3:6] == [5.0, 5.0, 5.0]

    def test_deterministic(self):
        assert deterministic_arrivals(3, gap=2.0, start=1.0) == [1.0, 3.0, 5.0]

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            poisson_arrivals(5, rate=0.0)
        with pytest.raises(InvalidParameterError):
            batched_arrivals(5, batch_size=0, batch_gap=1.0)
        with pytest.raises(InvalidParameterError):
            bursty_arrivals(5, rate_on=1.0, rate_off=-1.0)


class TestProcessingTimes:
    def test_uniform_range(self):
        sizes = uniform_sizes(100, low=2.0, high=3.0, seed=0)
        assert all(2.0 <= p <= 3.0 for p in sizes)

    def test_exponential_clipped(self):
        sizes = exponential_sizes(100, mean=1.0, minimum=0.5, seed=0)
        assert all(p >= 0.5 for p in sizes)

    def test_pareto_bounded_and_heavy(self):
        sizes = bounded_pareto_sizes(2000, shape=1.5, low=1.0, high=100.0, seed=0)
        assert all(1.0 - 1e-9 <= p <= 100.0 + 1e-9 for p in sizes)
        assert max(sizes) > 20.0  # the tail is actually exercised

    def test_bimodal_values(self):
        sizes = bimodal_sizes(500, short=1.0, long=50.0, long_fraction=0.2, seed=0)
        assert set(sizes) == {1.0, 50.0}
        long_count = sum(1 for p in sizes if p == 50.0)
        assert 0.1 <= long_count / 500 <= 0.3

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            uniform_sizes(5, low=0.0, high=1.0)
        with pytest.raises(InvalidParameterError):
            bounded_pareto_sizes(5, low=2.0, high=1.0)
        with pytest.raises(InvalidParameterError):
            bimodal_sizes(5, long_fraction=1.5)


class TestMachineModels:
    def test_identical(self):
        rows = identical_matrix([2.0, 3.0], num_machines=3)
        assert rows[0] == (2.0, 2.0, 2.0)

    def test_related_has_unit_reference(self):
        rows = uniform_related_matrix([4.0], num_machines=3, seed=0)
        assert rows[0][0] == pytest.approx(4.0)

    def test_unrelated_correlation_one_is_identical(self):
        rows = unrelated_matrix([2.0, 3.0], num_machines=3, correlation=1.0, seed=0)
        assert rows == identical_matrix([2.0, 3.0], 3)

    def test_unrelated_entries_positive(self):
        rows = unrelated_matrix([2.0] * 50, num_machines=4, correlation=0.2, seed=1)
        assert all(all(p > 0 for p in row) for row in rows)

    def test_restricted_has_at_least_one_eligible(self):
        rows = restricted_assignment_matrix([1.0] * 100, num_machines=4, eligible_fraction=0.2, seed=3)
        assert all(any(math.isfinite(p) for p in row) for row in rows)
        assert any(any(math.isinf(p) for p in row) for row in rows)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            unrelated_matrix([1.0], num_machines=0)
        with pytest.raises(InvalidParameterError):
            restricted_assignment_matrix([1.0], num_machines=2, eligible_fraction=0.0)


class TestGenerators:
    def test_reproducible(self):
        a = InstanceGenerator(num_machines=2, seed=5).generate(30)
        b = InstanceGenerator(num_machines=2, seed=5).generate(30)
        assert a.to_dict() == b.to_dict()

    def test_different_seeds_differ(self):
        a = InstanceGenerator(num_machines=2, seed=5).generate(30)
        b = InstanceGenerator(num_machines=2, seed=6).generate(30)
        assert a.to_dict() != b.to_dict()

    def test_job_count_and_machines(self):
        instance = InstanceGenerator(num_machines=3, seed=0).generate(25)
        assert instance.num_jobs == 25 and instance.num_machines == 3

    def test_load_rescaling(self):
        low = InstanceGenerator(num_machines=2, load=0.4, seed=1).generate(200)
        high = InstanceGenerator(num_machines=2, load=1.2, seed=1).generate(200)
        assert sum(j.min_size() for j in high.jobs) > sum(j.min_size() for j in low.jobs)

    def test_weighted_generator(self):
        instance = WeightedInstanceGenerator(
            num_machines=2, weight_low=1.0, weight_high=3.0, seed=2
        ).generate(40)
        assert all(1.0 <= job.weight <= 3.0 for job in instance.jobs)
        assert all(m.alpha == pytest.approx(2.5) for m in instance.machines)

    def test_deadline_generator_windows(self):
        instance = DeadlineInstanceGenerator(num_machines=2, slack=4.0, seed=3).generate(30)
        assert instance.has_deadlines()
        for job in instance.jobs:
            assert job.window() >= 1.99 * job.min_size()  # slack 4 with +-50% jitter

    def test_deadline_generator_requires_slack(self):
        with pytest.raises(InvalidParameterError):
            DeadlineInstanceGenerator(slack=1.0).generate(5)

    def test_invalid_configuration(self):
        with pytest.raises(InvalidParameterError):
            InstanceGenerator(arrival_process="fractal")
        with pytest.raises(InvalidParameterError):
            InstanceGenerator(size_distribution="cauchy")
        with pytest.raises(InvalidParameterError):
            InstanceGenerator(machine_model="quantum")
