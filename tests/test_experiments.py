"""Smoke tests for the experiment suite (E1-E10) at miniature scale."""

import pytest

from repro.analysis.reporting import ExperimentTable
from repro.exceptions import InvalidParameterError
from repro.experiments import EXPERIMENTS, available_experiments, run_experiment


class TestRegistry:
    def test_all_experiments_listed(self):
        assert set(available_experiments()) == {
            *(f"E{i}" for i in range(1, 11)),
            "E12",
            "E14",
            "E15",
            "E16",
            "E17",
        }

    def test_descriptions_non_empty(self):
        assert all(description for description in available_experiments().values())

    def test_unknown_experiment(self):
        with pytest.raises(InvalidParameterError):
            run_experiment("E42")

    def test_case_insensitive(self):
        result = run_experiment("e5", alphas=(2.0,))
        assert result.experiment_id == "E5"


class TestExperimentRuns:
    """Each experiment runs end to end with a tiny configuration and produces rows."""

    def _check(self, result, expect_rows=True):
        assert result.tables
        assert all(isinstance(table, ExperimentTable) for table in result.tables)
        if expect_rows:
            assert all(table.rows for table in result.tables)
        rendered = result.render()
        assert result.experiment_id in rendered

    def test_e1_flow_time(self):
        result = run_experiment(
            "E1", epsilons=(0.5,), workloads=("poisson-pareto",), include_baselines=True
        )
        self._check(result)
        for row in result.raw["rows"]:
            if row["epsilon"] != "-":
                assert row["rejected_fraction"] <= row["budget_2eps"] + 1e-9

    def test_e2_immediate_rejection(self):
        result = run_experiment("E2", lengths=(4.0, 8.0), epsilon=0.25)
        self._check(result)
        rows = result.raw["rows"]
        ours = [r for r in rows if "rejection-flow-time" in r["algorithm"]]
        immediate = [r for r in rows if "immediate" in r["algorithm"]]
        # The immediate-rejection policies degrade as L grows; ours stays flat-ish.
        assert max(r["ratio_vs_lb"] for r in immediate) > max(r["ratio_vs_lb"] for r in ours)

    def test_e3_energy_flow(self):
        result = run_experiment("E3", alphas=(2.0,), epsilons=(0.5,), num_jobs=40)
        self._check(result)
        for row in result.raw["rows"]:
            if row["epsilon"] != "-":
                assert row["rejected_weight_fraction"] <= row["budget_eps"] + 1e-9

    def test_e4_energy_min(self):
        result = run_experiment("E4", alphas=(2.0,), slacks=(3.0,), num_jobs=8)
        self._check(result)
        greedy_rows = [r for r in result.raw["rows"] if r["algorithm"] == "config-lp-greedy"]
        assert all(r["ratio_vs_lb"] >= 1.0 - 1e-9 for r in greedy_rows)

    def test_e5_lemma2(self):
        result = run_experiment("E5", alphas=(2.0, 3.0))
        self._check(result)
        rows = result.raw["rows"]
        assert rows[0]["forced_ratio"] <= rows[0]["theorem3_bound"] + 1e-6
        assert rows[-1]["forced_ratio"] > rows[0]["forced_ratio"]

    def test_e6_speed_vs_rejection(self):
        result = run_experiment("E6", epsilons=(0.5,), workloads=("poisson-pareto",))
        self._check(result)
        assert {row["model"] for row in result.raw["rows"]} == {
            "rejection-only (Thm 1)",
            "speed+rejection (ESA'16)",
        }

    def test_e7_dual_fitting(self):
        result = run_experiment("E7", epsilons=(0.5,), num_jobs=25, samples_per_job=6)
        self._check(result)
        assert all(row["violations"] == 0 for row in result.raw["flow"])
        assert all(row["violations"] == 0 for row in result.raw["energy"])

    def test_e8_scalability(self):
        result = run_experiment("E8", job_counts=(100,), machine_counts=(2,))
        self._check(result)
        assert all(row["events_per_s"] > 0 for row in result.raw["rows"])

    def test_e9_ablation(self):
        result = run_experiment("E9", workloads=("lemma1-L16",), epsilon=0.25)
        self._check(result)
        rows = {row["rules"]: row for row in result.raw["rows"]}
        assert rows["no rejection"]["flow_time"] >= rows["both rules"]["flow_time"]

    def test_e14_robustness(self):
        result = run_experiment(
            "E14",
            scenarios=("flash-crowd", "heavy-tail-pareto"),
            algorithms=("rejection-flow", "greedy"),
            num_jobs=30,
        )
        self._check(result)
        rows = result.tables[0].rows
        assert len(rows) == 4
        assert {row["scenario"] for row in rows} == {"flash-crowd", "heavy-tail-pareto"}
        # Within each (scenario, objective) group the best solver has ratio 1.0
        # and every ratio is at least 1.
        assert all(row["ratio_vs_best"] >= 1.0 for row in rows)
        for scenario in ("flash-crowd", "heavy-tail-pareto"):
            assert min(
                row["ratio_vs_best"] for row in rows if row["scenario"] == scenario
            ) == 1.0
        # Throughput measurement is off by default: no wall-clock anywhere.
        assert all(row["events_per_s"] == "" for row in rows)
        assert all("elapsed_s" not in row for row in result.raw["rows"])

    def test_e10_solver_compare(self):
        result = run_experiment(
            "E10", algorithms=("rejection-flow", "greedy", "srpt-pooled"), num_jobs=30
        )
        self._check(result)
        rows = result.tables[0].rows
        assert [row["algorithm"] for row in rows] == ["rejection-flow", "greedy", "srpt-pooled"]
        assert all(row["objective_value"] > 0 for row in rows)
