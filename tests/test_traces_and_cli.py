"""Tests for the schedule trace export, the ASCII Gantt chart and the CLI."""

import io

import pytest

from repro.analysis.traces import ascii_gantt, result_to_trace, trace_to_csv
from repro.cli import build_parser, main
from repro.core.flow_time import RejectionFlowTimeScheduler
from repro.exceptions import InvalidParameterError
from repro.simulation.engine import FlowTimeEngine
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.workloads.generators import InstanceGenerator


@pytest.fixture
def small_result():
    instance = Instance.single_machine(
        [Job(0, 0.0, (30.0,)), Job(1, 1.0, (1.0,)), Job(2, 2.0, (1.0,)), Job(3, 3.0, (2.0,))]
    )
    scheduler = RejectionFlowTimeScheduler(epsilon=0.5)
    return FlowTimeEngine(instance).run(scheduler)


class TestTraceExport:
    def test_trace_is_chronological(self, small_result):
        trace = result_to_trace(small_result)
        times = [event.time for event in trace]
        assert times == sorted(times)

    def test_every_job_has_release_event(self, small_result):
        trace = result_to_trace(small_result)
        released = {e.job_id for e in trace if e.kind == "release"}
        assert released == set(small_result.records)

    def test_rejected_jobs_have_reject_events(self, small_result):
        trace = result_to_trace(small_result)
        rejected_in_trace = {e.job_id for e in trace if e.kind == "reject"}
        rejected_in_result = {r.job_id for r in small_result.rejected_records()}
        assert rejected_in_trace == rejected_in_result
        assert rejected_in_result  # the workload above does force a Rule-1 rejection

    def test_completion_events_carry_flow(self, small_result):
        trace = result_to_trace(small_result)
        completions = [e for e in trace if e.kind == "complete"]
        assert completions and all(e.detail.startswith("flow=") for e in completions)

    def test_csv_shape(self, small_result):
        csv_text = trace_to_csv(small_result)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "time,kind,job_id,machine,detail"
        assert len(lines) == 1 + len(result_to_trace(small_result))

    def test_event_as_dict(self, small_result):
        event = result_to_trace(small_result)[0]
        assert set(event.as_dict()) == {"time", "kind", "job_id", "machine", "detail"}


class TestAsciiGantt:
    def test_contains_one_row_per_machine(self):
        instance = InstanceGenerator(num_machines=3, seed=0).generate(20)
        result = FlowTimeEngine(instance).run(RejectionFlowTimeScheduler(epsilon=0.5))
        chart = ascii_gantt(result)
        assert chart.count("\n") >= 4  # header + 3 machines + footer
        for machine in range(3):
            assert f"m{machine}" in chart

    def test_rejected_marked_with_x(self, small_result):
        chart = ascii_gantt(small_result)
        assert "x" in chart

    def test_empty_schedule(self):
        instance = Instance.build(1, [])
        result = FlowTimeEngine(instance).run(RejectionFlowTimeScheduler(epsilon=0.5))
        assert ascii_gantt(result) == "(empty schedule)"

    def test_width_validation(self, small_result):
        with pytest.raises(InvalidParameterError):
            ascii_gantt(small_result, width=10)


class TestCLI:
    def _run(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bounds_command(self):
        code, text = self._run(["bounds", "--epsilon", "0.25", "--alpha", "3"])
        assert code == 0
        assert "Theorem 1" in text and "50.000" in text
        assert "Theorem 3" in text and "27.000" in text

    def test_simulate_command(self):
        code, text = self._run(
            ["simulate", "--jobs", "30", "--machines", "2", "--epsilon", "0.5", "--gantt"]
        )
        assert code == 0
        assert "total flow" in text
        assert "m0" in text  # the Gantt chart was printed

    def test_simulate_with_trace_and_other_policies(self):
        for policy in ("greedy", "fcfs", "immediate"):
            code, text = self._run(
                ["simulate", "--jobs", "15", "--machines", "2", "--policy", policy, "--trace"]
            )
            assert code == 0
            assert "time,kind,job_id,machine,detail" in text

    def test_experiments_list(self):
        code, text = self._run(["experiments", "--list"])
        assert code == 0
        assert "E1" in text and "E9" in text

    def test_experiments_single_run(self):
        code, text = self._run(["experiments", "--only", "E5"])
        assert code == 0
        assert "Lemma 2" in text


class TestSolveJsonOutput:
    def _run(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_json_flag_emits_canonical_row(self):
        import json

        argv = ["solve", "--algorithm", "rejection-flow", "--param", "epsilon=0.5",
                "--jobs", "25", "--machines", "2", "--json"]
        code, text = self._run(argv)
        assert code == 0
        row = json.loads(text)
        assert row["algorithm"] == "rejection-flow"
        assert row["objective"] == "total-flow-time"
        assert row["objective_value"] > 0
        assert "breakdown_flow_time" in row
        # the human-readable table is suppressed
        assert "instance      :" not in text

    def test_json_output_is_byte_stable(self):
        argv = ["solve", "--algorithm", "fcfs", "--jobs", "20", "--machines", "2",
                "--seed", "5", "--json"]
        (code1, text1), (code2, text2) = self._run(argv), self._run(argv)
        assert code1 == code2 == 0
        assert text1 == text2


class TestServeCommand:
    def _run(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def _trace_file(self, tmp_path, num_jobs=10, machines=2, seed=1):
        import json

        instance = InstanceGenerator(num_machines=machines, seed=seed).generate(num_jobs)
        path = tmp_path / "jobs.ndjson"
        path.write_text(
            "# recorded workload\n"
            + "\n".join(json.dumps(job.to_dict()) for job in instance.jobs)
            + "\n",
            encoding="utf-8",
        )
        return instance, path

    def test_serve_trace_file_emits_events_and_summary(self, tmp_path):
        import json

        instance, path = self._trace_file(tmp_path)
        code, text = self._run(
            ["serve", "--algorithm", "rejection-flow", "--machines", "2",
             "--param", "epsilon=0.5", "--trace", str(path)]
        )
        assert code == 0
        lines = [json.loads(line) for line in text.splitlines()]
        kinds = [line["event"] for line in lines]
        assert kinds[-1] == "final" and kinds.count("final") == 1
        decisions = [line for line in lines if line["event"] == "decision"]
        assert {d["kind"] for d in decisions} <= {"dispatch", "start", "complete", "reject"}
        # every job shows up in the decision stream
        assert {d["job_id"] for d in decisions} == {job.id for job in instance.jobs}

    def test_serve_final_line_matches_batch_solve(self, tmp_path):
        import json

        from repro.solvers import solve

        instance, path = self._trace_file(tmp_path, num_jobs=15, seed=3)
        code, text = self._run(
            ["serve", "--machines", "2", "--param", "epsilon=0.5",
             "--trace", str(path), "--quiet"]
        )
        assert code == 0
        (final,) = [json.loads(line) for line in text.splitlines()]
        batch = solve(instance, "rejection-flow", epsilon=0.5)
        assert final["objective_value"] == batch.objective_value
        assert final["rejected_count"] == batch.rejected_count

    def test_serve_reads_stdin(self, tmp_path, monkeypatch):
        import json
        import sys

        _, path = self._trace_file(tmp_path, num_jobs=5)
        monkeypatch.setattr(sys, "stdin", io.StringIO(path.read_text(encoding="utf-8")))
        code, text = self._run(["serve", "--machines", "2", "--quiet"])
        assert code == 0
        assert json.loads(text.splitlines()[-1])["event"] == "final"

    def test_serve_non_streaming_algorithm_exits_2(self, tmp_path):
        _, path = self._trace_file(tmp_path, num_jobs=3)
        err = io.StringIO()
        code = main(["serve", "--algorithm", "yds", "--trace", str(path)],
                    out=io.StringIO(), err=err)
        assert code == 2
        assert "streaming" in err.getvalue()

    def test_serve_malformed_line_exits_2(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"id": 0}\n', encoding="utf-8")
        err = io.StringIO()
        code = main(["serve", "--machines", "2", "--trace", str(path)],
                    out=io.StringIO(), err=err)
        assert code == 2
        # The schema error names the line and the missing field.
        assert "line 1" in err.getvalue() and "'release'" in err.getvalue()

    def test_serve_reserved_param_exits_2(self, tmp_path):
        _, path = self._trace_file(tmp_path, num_jobs=3)
        for raw in ("alpha=2", "retain_events=true", "dispatch=scan"):
            err = io.StringIO()
            code = main(["serve", "--machines", "2", "--param", raw,
                         "--trace", str(path)], out=io.StringIO(), err=err)
            assert code == 2
            assert "--param cannot set" in err.getvalue()
