"""Tests for the combinatorial and LP flow-time lower bounds."""

import pytest

from repro.baselines.offline import brute_force_optimal_flow_time
from repro.exceptions import InvalidParameterError
from repro.lowerbounds.flow_combinatorial import (
    best_flow_time_lower_bound,
    busy_interval_lower_bound,
    total_processing_lower_bound,
    weighted_processing_lower_bound,
)
from repro.lowerbounds.flow_lp import FlowTimeLPRelaxation, lp_flow_time_lower_bound
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.workloads.generators import InstanceGenerator


class TestCombinatorialBounds:
    def test_total_processing(self):
        jobs = [Job(0, 0.0, (3.0, 5.0)), Job(1, 0.0, (4.0, 2.0))]
        instance = Instance.build(2, jobs)
        assert total_processing_lower_bound(instance) == pytest.approx(5.0)

    def test_weighted_processing(self):
        jobs = [Job(0, 0.0, (3.0,), weight=2.0), Job(1, 0.0, (4.0,), weight=0.5)]
        instance = Instance.build(1, jobs)
        assert weighted_processing_lower_bound(instance) == pytest.approx(8.0)

    def test_busy_interval_single_machine_burst(self):
        # Four unit jobs released together on one machine: optimum is 1+2+3+4.
        jobs = [Job(j, 0.0, (1.0,)) for j in range(4)]
        instance = Instance.build(1, jobs)
        assert busy_interval_lower_bound(instance) == pytest.approx(10.0)

    def test_busy_interval_beats_processing_bound_on_bursts(self, burst_instance):
        assert busy_interval_lower_bound(burst_instance) > total_processing_lower_bound(
            burst_instance
        )

    def test_busy_interval_certified_against_brute_force(self):
        for seed in range(5):
            instance = InstanceGenerator(
                num_machines=2, arrival_process="batched", batch_size=6, seed=seed
            ).generate(6)
            assert busy_interval_lower_bound(instance) <= brute_force_optimal_flow_time(
                instance
            ) + 1e-9

    def test_best_bound_takes_maximum(self, burst_instance):
        best = best_flow_time_lower_bound(burst_instance)
        assert best == pytest.approx(
            max(
                total_processing_lower_bound(burst_instance),
                busy_interval_lower_bound(burst_instance),
            )
        )


class TestLPBound:
    def test_single_job_value(self):
        # One job of size 2 released at 0: LP objective = fractional flow (1 at
        # best) + processing time-ish; the certified bound is LP/2 <= OPT = 2.
        instance = Instance.build(1, [Job(0, 0.0, (2.0,))])
        bound = lp_flow_time_lower_bound(instance, slot_length=0.5)
        assert 0 < bound <= 2.0 + 1e-6

    def test_certified_against_brute_force(self):
        for seed in range(4):
            instance = InstanceGenerator(num_machines=2, seed=seed).generate(5)
            optimum = brute_force_optimal_flow_time(instance)
            bound = lp_flow_time_lower_bound(instance, slot_length=0.5)
            assert bound <= optimum + 1e-6

    def test_tighter_than_processing_bound_under_contention(self):
        jobs = [Job(j, 0.0, (2.0,)) for j in range(6)]
        instance = Instance.build(1, jobs)
        assert lp_flow_time_lower_bound(instance, slot_length=0.5) > total_processing_lower_bound(
            instance
        )

    def test_rejects_augmented_machines(self, random_instance):
        augmented = random_instance.with_speed_factor(2.0)
        with pytest.raises(InvalidParameterError):
            FlowTimeLPRelaxation(augmented)

    def test_empty_instance(self):
        assert FlowTimeLPRelaxation(Instance.build(1, [])).solve() == 0.0

    def test_include_lp_in_best_bound(self):
        jobs = [Job(j, 0.0, (2.0,)) for j in range(5)]
        instance = Instance.build(1, jobs)
        with_lp = best_flow_time_lower_bound(instance, include_lp=True)
        without_lp = best_flow_time_lower_bound(instance, include_lp=False)
        assert with_lp >= without_lp - 1e-9
