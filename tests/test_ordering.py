"""Unit tests for the precedence orders of Sections 2 and 3."""

import pytest

from repro.core.ordering import (
    density_key,
    density_order,
    position_in_spt_order,
    split_by_precedence,
    spt_key,
    spt_order,
)
from repro.simulation.job import Job


def _jobs():
    return [
        Job(0, release=0.0, sizes=(3.0, 1.0), weight=1.0),
        Job(1, release=1.0, sizes=(1.0, 2.0), weight=4.0),
        Job(2, release=0.5, sizes=(3.0, 3.0), weight=3.0),
        Job(3, release=2.0, sizes=(2.0, 4.0), weight=1.0),
    ]


class TestSPTOrder:
    def test_sorted_by_size_on_machine(self):
        ordered = spt_order(_jobs(), machine=0)
        # Sizes on machine 0: job1=1, job3=2, then the size-3 tie is broken by
        # release time (job0 released before job2).
        assert [job.id for job in ordered] == [1, 3, 0, 2]

    def test_machine_dependence(self):
        ordered = spt_order(_jobs(), machine=1)
        assert [job.id for job in ordered] == [0, 1, 2, 3]

    def test_tie_break_by_release(self):
        # Jobs 0 and 2 both have size 3 on machine 0: job 0 released earlier.
        ordered = spt_order(_jobs(), machine=0)
        assert ordered.index(_jobs()[2]) > 1

    def test_key_monotone_with_size(self):
        jobs = _jobs()
        assert spt_key(jobs[1], 0) < spt_key(jobs[0], 0)

    def test_position_in_order(self):
        jobs = _jobs()
        new = Job(9, release=5.0, sizes=(2.5, 1.0))
        assert position_in_spt_order(new, jobs, machine=0) == 2


class TestDensityOrder:
    def test_sorted_by_density_descending(self):
        ordered = density_order(_jobs(), machine=0)
        densities = [job.density_on(0) for job in ordered]
        assert densities == sorted(densities, reverse=True)

    def test_highest_density_first(self):
        assert density_order(_jobs(), machine=0)[0].id == 1

    def test_key_consistency(self):
        jobs = _jobs()
        assert density_key(jobs[1], 0) < density_key(jobs[0], 0)


class TestSplitByPrecedence:
    def test_split_excludes_job_itself(self):
        jobs = _jobs()
        preceding, succeeding = split_by_precedence(jobs[0], jobs, machine=0)
        assert all(other.id != jobs[0].id for other in preceding + succeeding)

    def test_partition_is_complete(self):
        jobs = _jobs()
        preceding, succeeding = split_by_precedence(jobs[3], jobs, machine=0)
        assert len(preceding) + len(succeeding) == len(jobs) - 1

    def test_spt_semantics(self):
        jobs = _jobs()
        preceding, succeeding = split_by_precedence(jobs[3], jobs, machine=0)
        # On machine 0 job 3 has size 2; job 1 (size 1) precedes, jobs 0 and 2 (size 3) succeed.
        assert {job.id for job in preceding} == {1}
        assert {job.id for job in succeeding} == {0, 2}

    def test_weighted_semantics(self):
        jobs = _jobs()
        preceding, succeeding = split_by_precedence(jobs[3], jobs, machine=0, weighted=True)
        # Densities on machine 0: job1=4, job2=1, job0=1/3, job3=1/2.
        assert {job.id for job in preceding} == {1, 2}
        assert {job.id for job in succeeding} == {0}
