"""Property-based tests (hypothesis) for the core data structures and invariants.

These tests generate random instances and parameters and check properties the
paper's analysis relies on:

* the engines always produce valid non-preemptive schedules and settle every job;
* the Theorem 1 / Theorem 2 rejection budgets hold for every epsilon;
* the certified lower bounds never exceed feasible schedule costs;
* the event queue behaves like a stable priority queue;
* the smooth inequality of Section 4 holds for the reported parameters;
* the greedy energy schedule is never cheaper than the discretised optimum's
  lower bound and never violates a deadline.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bounds import flow_time_rejection_budget
from repro.core.flow_time import RejectionFlowTimeScheduler
from repro.core.flow_time_energy import RejectionEnergyFlowScheduler
from repro.core.smoothness import required_lambda, smoothness_parameters
from repro.lowerbounds.flow_combinatorial import (
    busy_interval_lower_bound,
    total_processing_lower_bound,
)
from repro.simulation.engine import FlowTimeEngine
from repro.simulation.events import EventQueue
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.machine import Machine
from repro.simulation.metrics import (
    rejected_fraction,
    rejected_weight_fraction,
    total_flow_time,
)
from repro.simulation.speed_engine import SpeedScalingEngine
from repro.simulation.validation import validate_result

# ---------------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------------

_sizes = st.floats(min_value=0.1, max_value=20.0, allow_nan=False, allow_infinity=False)
_releases = st.floats(min_value=0.0, max_value=30.0, allow_nan=False, allow_infinity=False)
_weights = st.floats(min_value=0.1, max_value=5.0, allow_nan=False, allow_infinity=False)


@st.composite
def flow_instances(draw, max_jobs: int = 12, max_machines: int = 3) -> Instance:
    """Random small unrelated-machine instances without deadlines."""
    num_machines = draw(st.integers(min_value=1, max_value=max_machines))
    num_jobs = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = []
    for job_id in range(num_jobs):
        release = draw(_releases)
        sizes = tuple(draw(_sizes) for _ in range(num_machines))
        weight = draw(_weights)
        jobs.append(Job(id=job_id, release=release, sizes=sizes, weight=weight))
    return Instance.build(num_machines, jobs)


_epsilons = st.floats(min_value=0.05, max_value=0.95, allow_nan=False)


# ---------------------------------------------------------------------------------
# Engine invariants
# ---------------------------------------------------------------------------------

@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(instance=flow_instances(), epsilon=_epsilons)
def test_flow_engine_produces_valid_schedules(instance, epsilon):
    scheduler = RejectionFlowTimeScheduler(epsilon=epsilon)
    result = FlowTimeEngine(instance).run(scheduler)
    report = validate_result(result, raise_on_error=False)
    assert report.ok, report.violations[:3]
    assert len(result.records) == instance.num_jobs


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(instance=flow_instances(), epsilon=_epsilons)
def test_theorem1_rejection_budget_always_holds(instance, epsilon):
    scheduler = RejectionFlowTimeScheduler(epsilon=epsilon)
    result = FlowTimeEngine(instance).run(scheduler)
    assert rejected_fraction(result) <= flow_time_rejection_budget(epsilon) + 1e-9


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(instance=flow_instances(), epsilon=_epsilons)
def test_theorem2_weight_budget_always_holds(instance, epsilon):
    alpha_instance = instance.with_alpha(2.5)
    scheduler = RejectionEnergyFlowScheduler(epsilon=epsilon)
    result = SpeedScalingEngine(alpha_instance).run(scheduler)
    assert rejected_weight_fraction(result) <= epsilon + 1e-9
    report = validate_result(result, raise_on_error=False)
    assert report.ok, report.violations[:3]


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(instance=flow_instances(max_jobs=8), epsilon=_epsilons)
def test_lower_bounds_below_rejection_free_schedules(instance, epsilon):
    # Any schedule that completes every job costs at least the certified bounds.
    scheduler = RejectionFlowTimeScheduler(
        epsilon=epsilon, enable_rule1=False, enable_rule2=False
    )
    result = FlowTimeEngine(instance).run(scheduler)
    cost = total_flow_time(result)
    assert total_processing_lower_bound(instance) <= cost + 1e-6
    assert busy_interval_lower_bound(instance) <= cost + 1e-6


# ---------------------------------------------------------------------------------
# Event queue behaves like a stable priority queue
# ---------------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=60,
    )
)
def test_event_queue_pops_in_time_order(times):
    queue = EventQueue()
    for job_id, time in enumerate(times):
        queue.push_arrival(time, job_id)
    popped = [queue.pop() for _ in range(len(times))]
    assert [e.time for e in popped] == sorted(times)
    # Stability: equal times pop in insertion order.
    seen_at_time: dict[float, list[int]] = {}
    for event in popped:
        seen_at_time.setdefault(event.time, []).append(event.job_id)
    for ids in seen_at_time.values():
        assert ids == sorted(ids)


# ---------------------------------------------------------------------------------
# Smooth inequality (Section 4 analysis)
# ---------------------------------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(
    alpha=st.sampled_from([1.5, 2.0, 2.5, 3.0]),
    pairs=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
        ),
        min_size=1,
        max_size=6,
    ),
)
def test_smooth_inequality_holds_for_reported_parameters(alpha, pairs):
    a = [p[0] for p in pairs]
    b = [p[1] for p in pairs]
    params = smoothness_parameters(alpha)
    assert required_lambda(alpha, a, b, params.mu) <= params.lam + 1e-9


# ---------------------------------------------------------------------------------
# Serialisation round-trips
# ---------------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(instance=flow_instances())
def test_instance_json_roundtrip(instance):
    restored = Instance.from_json(instance.to_json())
    assert restored.jobs == instance.jobs
    assert restored.machines == instance.machines


# ---------------------------------------------------------------------------------
# Energy-minimisation greedy: feasibility and bound ordering
# ---------------------------------------------------------------------------------

@st.composite
def deadline_instances(draw, max_jobs: int = 6) -> Instance:
    num_jobs = draw(st.integers(min_value=1, max_value=max_jobs))
    alpha = draw(st.sampled_from([1.5, 2.0, 3.0]))
    jobs = []
    for job_id in range(num_jobs):
        release = draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
        volume = draw(st.floats(min_value=0.5, max_value=5.0, allow_nan=False))
        window = draw(st.floats(min_value=1.5, max_value=10.0, allow_nan=False))
        jobs.append(Job(id=job_id, release=release, sizes=(volume,), deadline=release + window))
    return Instance.build(Machine.fleet(1, alpha=alpha), jobs)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(instance=deadline_instances())
def test_energy_greedy_feasible_and_above_bounds(instance):
    from repro.core.energy_min import ConfigLPEnergyScheduler
    from repro.lowerbounds.energy_bounds import per_job_deadline_energy_lower_bound

    schedule = ConfigLPEnergyScheduler(slot_length=0.5).schedule(instance)
    schedule.validate()
    assert schedule.total_energy >= per_job_deadline_energy_lower_bound(instance) - 1e-6
    assert math.isfinite(schedule.total_energy)
