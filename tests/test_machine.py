"""Unit tests for :mod:`repro.simulation.machine`."""

import pytest

from repro.exceptions import InvalidInstanceError
from repro.simulation.machine import Machine


class TestMachineValidation:
    def test_valid_machine(self):
        machine = Machine(0, speed_factor=1.5, alpha=2.0)
        assert machine.id == 0

    def test_negative_id_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Machine(-1)

    def test_non_positive_speed_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Machine(0, speed_factor=0.0)

    def test_alpha_below_one_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Machine(0, alpha=0.5)


class TestMachineBehaviour:
    def test_power(self):
        assert Machine(0, alpha=3.0).power(2.0) == pytest.approx(8.0)

    def test_power_zero_speed(self):
        assert Machine(0, alpha=3.0).power(0.0) == 0.0

    def test_power_negative_speed_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Machine(0).power(-1.0)

    def test_processing_duration_unit_speed(self):
        assert Machine(0).processing_duration(6.0) == pytest.approx(6.0)

    def test_processing_duration_augmented(self):
        assert Machine(0, speed_factor=2.0).processing_duration(6.0) == pytest.approx(3.0)

    def test_processing_duration_explicit_speed(self):
        assert Machine(0).processing_duration(6.0, speed=3.0) == pytest.approx(2.0)

    def test_processing_duration_zero_speed_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Machine(0).processing_duration(6.0, speed=0.0)


class TestMachineFleet:
    def test_fleet_ids_consecutive(self):
        fleet = Machine.fleet(4)
        assert [m.id for m in fleet] == [0, 1, 2, 3]

    def test_fleet_shares_parameters(self):
        fleet = Machine.fleet(3, speed_factor=1.5, alpha=2.0)
        assert all(m.speed_factor == 1.5 and m.alpha == 2.0 for m in fleet)

    def test_fleet_rejects_zero(self):
        with pytest.raises(InvalidInstanceError):
            Machine.fleet(0)

    def test_serialisation_roundtrip(self):
        machine = Machine(2, speed_factor=1.25, alpha=2.5)
        assert Machine.from_dict(machine.to_dict()) == machine
