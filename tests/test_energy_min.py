"""Tests for the Theorem 3 configuration-LP greedy (Section 4 algorithm)."""

import pytest

from repro.baselines.offline import brute_force_optimal_energy
from repro.core.bounds import energy_min_competitive_ratio
from repro.core.energy_min import ConfigLPEnergyScheduler
from repro.core.smoothness import smoothness_parameters
from repro.exceptions import InfeasibleInstanceError, InvalidParameterError
from repro.lowerbounds.energy_bounds import best_energy_lower_bound
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.machine import Machine
from repro.workloads.generators import DeadlineInstanceGenerator


def _deadline_instance(jobs, alpha=2.0, machines=1):
    return Instance.build(Machine.fleet(machines, alpha=alpha), jobs)


class TestScheduleConstruction:
    def test_single_job_runs_slow(self):
        # Volume 2 in a window of 8 slots: the cheapest strategy stretches it out.
        jobs = [Job(0, 0.0, (2.0,), deadline=8.0)]
        schedule = ConfigLPEnergyScheduler(slot_length=1.0).schedule(_deadline_instance(jobs))
        strategy = schedule.strategies[0]
        assert strategy.slots == 8
        assert schedule.total_energy == pytest.approx(8 * (2.0 / 8.0) ** 2.0)

    def test_tight_window_forces_speed(self):
        jobs = [Job(0, 0.0, (4.0,), deadline=2.0)]
        schedule = ConfigLPEnergyScheduler(slot_length=1.0).schedule(_deadline_instance(jobs))
        assert schedule.total_energy == pytest.approx(2 * 2.0**2.0)

    def test_jobs_spread_over_machines(self):
        # Two simultaneous identical jobs and two machines: putting them on
        # different machines is strictly cheaper (convexity), so the greedy does.
        jobs = [
            Job(0, 0.0, (4.0, 4.0), deadline=4.0),
            Job(1, 0.0, (4.0, 4.0), deadline=4.0),
        ]
        schedule = ConfigLPEnergyScheduler(slot_length=1.0).schedule(
            _deadline_instance(jobs, machines=2)
        )
        assert schedule.strategies[0].machine != schedule.strategies[1].machine

    def test_schedule_respects_windows(self, deadline_instance):
        schedule = ConfigLPEnergyScheduler().schedule(deadline_instance)
        schedule.validate()  # raises on any violation
        assert schedule.total_energy > 0

    def test_marginal_costs_sum_to_total_energy(self, deadline_instance):
        schedule = ConfigLPEnergyScheduler().schedule(deadline_instance)
        assert sum(schedule.marginal_costs.values()) == pytest.approx(
            schedule.total_energy, rel=1e-9
        )

    def test_completion_and_start_times(self):
        jobs = [Job(0, 2.0, (2.0,), deadline=6.0)]
        schedule = ConfigLPEnergyScheduler(slot_length=1.0).schedule(_deadline_instance(jobs))
        assert schedule.start_time(0) >= 2.0
        assert schedule.completion_time(0) <= 6.0

    def test_missing_deadline_rejected(self):
        instance = Instance.build(1, [Job(0, 0.0, (1.0,))])
        with pytest.raises(InfeasibleInstanceError):
            ConfigLPEnergyScheduler().schedule(instance)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            ConfigLPEnergyScheduler(slot_length=0.0)
        with pytest.raises(InvalidParameterError):
            ConfigLPEnergyScheduler(speeds_per_job=0)

    def test_effective_slot_length_refines_tight_windows(self):
        jobs = [Job(0, 0.0, (0.4,), deadline=0.5)]
        scheduler = ConfigLPEnergyScheduler(slot_length=1.0)
        assert scheduler.effective_slot_length(_deadline_instance(jobs)) <= 0.25
        schedule = scheduler.schedule(_deadline_instance(jobs))
        schedule.validate()


class TestOptimalityAndBounds:
    def test_matches_brute_force_on_tiny_instances(self):
        generator = DeadlineInstanceGenerator(num_machines=2, slack=3.0, alpha=2.0, seed=8)
        instance = generator.generate(4)
        scheduler = ConfigLPEnergyScheduler(slot_length=1.0, speeds_per_job=8)
        greedy = scheduler.schedule(instance).total_energy
        optimum = brute_force_optimal_energy(instance, slot_length=1.0, speeds_per_job=8)
        assert optimum <= greedy + 1e-9
        # Theorem 3 with a large margin: the greedy is within alpha^alpha of OPT.
        assert greedy <= energy_min_competitive_ratio(2.0) * optimum + 1e-9

    def test_above_certified_lower_bound(self, deadline_instance):
        schedule = ConfigLPEnergyScheduler().schedule(deadline_instance)
        assert schedule.total_energy >= best_energy_lower_bound(deadline_instance) - 1e-9

    def test_dual_variables_certificate(self, deadline_instance):
        scheduler = ConfigLPEnergyScheduler()
        schedule = scheduler.schedule(deadline_instance)
        params = smoothness_parameters(deadline_instance.machines[0].alpha)
        dual = scheduler.dual_variables(schedule, params.lam, params.mu)
        # By construction the dual objective is (1-mu)/lambda times the energy.
        expected = (1.0 - params.mu) / params.lam * schedule.total_energy
        assert dual["dual_objective"] == pytest.approx(expected, rel=1e-9)
        assert dual["certified_ratio_bound"] == pytest.approx(params.lam / (1.0 - params.mu))

    def test_dual_variables_validation(self, deadline_instance):
        scheduler = ConfigLPEnergyScheduler()
        schedule = scheduler.schedule(deadline_instance)
        with pytest.raises(InvalidParameterError):
            scheduler.dual_variables(schedule, smooth_lambda=0.0, smooth_mu=0.5)
        with pytest.raises(InvalidParameterError):
            scheduler.dual_variables(schedule, smooth_lambda=1.0, smooth_mu=1.0)
