"""Unit tests for the rejection counters of Sections 2 and 3."""

import pytest

from repro.core.rejection import (
    MachineArrivalCounter,
    RejectionLog,
    RunningJobCounter,
    WeightedRunningJobCounter,
    check_epsilon,
)
from repro.exceptions import InvalidParameterError


class TestCheckEpsilon:
    def test_valid(self):
        assert check_epsilon(0.5) == 0.5

    def test_zero_rejected(self):
        with pytest.raises(InvalidParameterError):
            check_epsilon(0.0)

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            check_epsilon(-0.1)


class TestRule1Counter:
    def test_threshold_half(self):
        counter = RunningJobCounter(epsilon=0.5)
        assert not counter.record_dispatch()  # 1 < 2
        assert counter.record_dispatch()  # 2 >= 2

    def test_threshold_quarter(self):
        counter = RunningJobCounter(epsilon=0.25)
        fired = [counter.record_dispatch() for _ in range(4)]
        assert fired == [False, False, False, True]

    def test_non_integer_threshold_rounds_up(self):
        counter = RunningJobCounter(epsilon=0.3)  # 1/eps = 3.33 -> fires at 4
        fired = [counter.record_dispatch() for _ in range(4)]
        assert fired == [False, False, False, True]

    def test_fired_property(self):
        counter = RunningJobCounter(epsilon=1.0)
        assert not counter.fired
        counter.record_dispatch()
        assert counter.fired


class TestRule2Counter:
    def test_threshold_and_reset(self):
        counter = MachineArrivalCounter(epsilon=0.5)  # threshold ceil(1 + 2) = 3
        assert [counter.record_dispatch() for _ in range(3)] == [False, False, True]
        # After firing the counter resets and needs another 3 dispatches.
        assert [counter.record_dispatch() for _ in range(3)] == [False, False, True]
        assert counter.fired_times == 2

    def test_rejection_rate_bounded_by_epsilon(self):
        # Over n dispatches the rule fires at most n / ceil(1 + 1/eps) <= eps * n times.
        for epsilon in (0.2, 0.35, 0.5, 0.9):
            counter = MachineArrivalCounter(epsilon=epsilon)
            n = 1000
            fires = sum(counter.record_dispatch() for _ in range(n))
            assert fires <= epsilon * n + 1


class TestWeightedCounter:
    def test_fires_only_above_threshold(self):
        counter = WeightedRunningJobCounter(epsilon=0.5, job_weight=2.0)  # threshold 4.0
        assert not counter.record_dispatch(3.0)
        assert not counter.record_dispatch(1.0)  # exactly 4.0 is not strictly above
        assert counter.record_dispatch(0.1)

    def test_rejected_weight_bounded(self):
        # When the rule fires, the job's weight is less than epsilon times the
        # accumulated dispatched weight - the Theorem 2 budget argument.
        epsilon = 0.25
        counter = WeightedRunningJobCounter(epsilon=epsilon, job_weight=1.0)
        total = 0.0
        while not counter.fired:
            counter.record_dispatch(0.5)
            total += 0.5
        assert 1.0 < epsilon * total + 0.5  # job weight < eps * accumulated (+ last step)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            WeightedRunningJobCounter(epsilon=0.5, job_weight=0.0)
        counter = WeightedRunningJobCounter(epsilon=0.5, job_weight=1.0)
        with pytest.raises(InvalidParameterError):
            counter.record_dispatch(-1.0)


class TestRejectionLog:
    def test_totals(self):
        log = RejectionLog()
        log.rule1.append(1)
        log.rule2.extend([2, 3])
        log.weighted.append(4)
        assert log.total() == 4
        assert log.as_dict() == {
            "rule1_rejections": 1,
            "rule2_rejections": 2,
            "weighted_rejections": 1,
        }
