"""Tests for the Theorem 1 scheduler (Section 2 algorithm)."""

import math

import pytest

from repro.core.bounds import flow_time_rejection_budget
from repro.core.flow_time import RejectionFlowTimeScheduler
from repro.exceptions import InvalidParameterError
from repro.simulation.engine import FlowTimeEngine
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.metrics import rejected_fraction, total_flow_time
from repro.simulation.state import EngineState
from repro.simulation.validation import validate_result
from repro.workloads.adversarial import lemma1_instance, overload_burst_instance
from repro.workloads.generators import InstanceGenerator


class TestLambdaComputation:
    def test_empty_machine(self):
        instance = Instance.build(2, [Job(0, 0.0, (4.0, 6.0))])
        scheduler = RejectionFlowTimeScheduler(epsilon=0.5)
        scheduler.reset(instance)
        state = EngineState(instance)
        job = instance.jobs[0]
        # No pending jobs: lambda_ij = p/eps + p.
        assert scheduler.lambda_ij(job, 0, state) == pytest.approx(4.0 / 0.5 + 4.0)
        assert scheduler.lambda_ij(job, 1, state) == pytest.approx(6.0 / 0.5 + 6.0)

    def test_accounts_for_pending_jobs(self):
        jobs = [Job(0, 0.0, (2.0,)), Job(1, 0.0, (5.0,)), Job(2, 0.0, (3.0,))]
        instance = Instance.build(1, jobs)
        scheduler = RejectionFlowTimeScheduler(epsilon=0.5)
        scheduler.reset(instance)
        state = EngineState(instance)
        state.machines[0].pending.extend([0, 1])  # sizes 2 and 5 are waiting
        new_job = jobs[2]  # size 3: job 0 precedes it, job 1 succeeds it
        expected = 3.0 / 0.5 + (2.0 + 3.0) + 1 * 3.0
        assert scheduler.lambda_ij(new_job, 0, state) == pytest.approx(expected)

    def test_dispatch_to_argmin(self):
        jobs = [Job(0, 0.0, (10.0, 1.0))]
        instance = Instance.build(2, jobs)
        scheduler = RejectionFlowTimeScheduler(epsilon=0.5)
        result = FlowTimeEngine(instance).run(scheduler)
        assert result.record(0).machine == 1

    def test_lambda_recorded_for_every_job(self, random_instance):
        scheduler = RejectionFlowTimeScheduler(epsilon=0.5)
        FlowTimeEngine(random_instance).run(scheduler)
        assert set(scheduler.lambdas) == {job.id for job in random_instance.jobs}
        assert all(value > 0 for value in scheduler.lambdas.values())


class TestRejectionRules:
    def test_rule1_rejects_running_long_job(self):
        # One long job, then ceil(1/eps)=2 short arrivals dispatched to the same
        # machine: the running long job must be rejected at the second arrival.
        jobs = [Job(0, 0.0, (100.0,)), Job(1, 1.0, (1.0,)), Job(2, 2.0, (1.0,))]
        instance = Instance.build(1, jobs)
        scheduler = RejectionFlowTimeScheduler(epsilon=0.5, enable_rule2=False)
        result = FlowTimeEngine(instance).run(scheduler)
        assert result.record(0).rejected
        assert result.record(0).rejection_time == pytest.approx(2.0)
        assert result.record(0).rejection_reason == "rule1"
        # The short jobs then complete quickly.
        assert result.record(1).finished and result.record(2).finished

    def test_rule1_disabled(self):
        jobs = [Job(0, 0.0, (100.0,)), Job(1, 1.0, (1.0,)), Job(2, 2.0, (1.0,))]
        instance = Instance.build(1, jobs)
        scheduler = RejectionFlowTimeScheduler(epsilon=0.5, enable_rule1=False, enable_rule2=False)
        result = FlowTimeEngine(instance).run(scheduler)
        assert not result.record(0).rejected
        assert rejected_fraction(result) == 0.0

    def test_rule2_rejects_largest_pending(self):
        # eps=0.5: Rule 2 fires every ceil(1 + 2) = 3 dispatches and evicts the
        # largest *pending* job (the running one is excluded).
        jobs = [
            Job(0, 0.0, (5.0,)),
            Job(1, 0.1, (9.0,)),
            Job(2, 0.2, (1.0,)),
        ]
        instance = Instance.build(1, jobs)
        scheduler = RejectionFlowTimeScheduler(epsilon=0.5, enable_rule1=False)
        result = FlowTimeEngine(instance).run(scheduler)
        assert result.record(1).rejected
        assert result.record(1).rejection_reason == "rule2"
        assert result.record(1).rejection_time == pytest.approx(0.2)

    def test_rule2_can_reject_the_arriving_job(self):
        jobs = [
            Job(0, 0.0, (5.0,)),
            Job(1, 0.1, (1.0,)),
            Job(2, 0.2, (9.0,)),  # the arriving job is itself the largest pending
        ]
        instance = Instance.build(1, jobs)
        scheduler = RejectionFlowTimeScheduler(epsilon=0.5, enable_rule1=False)
        result = FlowTimeEngine(instance).run(scheduler)
        assert result.record(2).rejected

    def test_rejection_budget_on_random_instances(self):
        for seed in (0, 1, 2):
            for epsilon in (0.2, 0.4, 0.7):
                instance = InstanceGenerator(num_machines=3, seed=seed).generate(120)
                scheduler = RejectionFlowTimeScheduler(epsilon=epsilon)
                result = FlowTimeEngine(instance).run(scheduler)
                assert rejected_fraction(result) <= flow_time_rejection_budget(epsilon) + 1e-9

    def test_rejection_budget_on_adversarial_instances(self):
        for epsilon in (0.25, 0.5):
            for instance in (
                lemma1_instance(length=8.0, epsilon=epsilon),
                overload_burst_instance(2, burst_jobs=4),
            ):
                result = FlowTimeEngine(instance).run(RejectionFlowTimeScheduler(epsilon=epsilon))
                assert rejected_fraction(result) <= flow_time_rejection_budget(epsilon) + 1e-9


class TestSchedulingBehaviour:
    def test_schedules_valid_non_preemptive(self, random_instance):
        scheduler = RejectionFlowTimeScheduler(epsilon=0.3)
        result = FlowTimeEngine(random_instance).run(scheduler)
        validate_result(result)

    def test_spt_local_order(self):
        jobs = [Job(0, 0.0, (1.0,)), Job(1, 0.0, (5.0,)), Job(2, 0.0, (2.0,))]
        instance = Instance.build(1, jobs)
        scheduler = RejectionFlowTimeScheduler(epsilon=0.9, enable_rule1=False, enable_rule2=False)
        result = FlowTimeEngine(instance).run(scheduler)
        starts = {job_id: result.record(job_id).start for job_id in (0, 1, 2)}
        assert starts[0] < starts[2] < starts[1]

    def test_beats_greedy_on_overload(self):
        from repro.baselines.greedy import GreedyDispatchScheduler

        instance = overload_burst_instance(2, burst_jobs=3)
        engine = FlowTimeEngine(instance)
        ours = total_flow_time(engine.run(RejectionFlowTimeScheduler(epsilon=0.25)))
        greedy = total_flow_time(engine.run(GreedyDispatchScheduler()))
        assert ours < greedy

    def test_diagnostics_reported(self, random_instance):
        scheduler = RejectionFlowTimeScheduler(epsilon=0.4)
        FlowTimeEngine(random_instance).run(scheduler)
        diagnostics = scheduler.diagnostics()
        assert diagnostics["lambda_sum"] > 0
        assert diagnostics["rule1_rejections"] >= 0

    def test_restricted_assignment_respected(self):
        jobs = [Job(0, 0.0, (math.inf, 3.0)), Job(1, 0.0, (2.0, math.inf))]
        instance = Instance.build(2, jobs)
        result = FlowTimeEngine(instance).run(RejectionFlowTimeScheduler(epsilon=0.5))
        assert result.record(0).machine == 1
        assert result.record(1).machine == 0

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(InvalidParameterError):
            RejectionFlowTimeScheduler(epsilon=0.0)

    def test_reusable_across_runs(self, random_instance, tiny_instance):
        scheduler = RejectionFlowTimeScheduler(epsilon=0.5)
        first = FlowTimeEngine(random_instance).run(scheduler)
        second = FlowTimeEngine(tiny_instance).run(scheduler)
        assert len(second.records) == tiny_instance.num_jobs
        assert len(scheduler.lambdas) == tiny_instance.num_jobs  # state reset between runs
        del first
