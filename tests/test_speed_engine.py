"""Unit tests for the speed-scaling engine."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.machine import Machine
from repro.simulation.metrics import total_energy, total_weighted_flow_time
from repro.simulation.speed_engine import (
    SpeedArrivalDecision,
    SpeedRejection,
    SpeedScalingEngine,
    SpeedScalingPolicy,
    StartDecision,
)
from repro.simulation.validation import validate_result


class ConstantSpeedPolicy(SpeedScalingPolicy):
    """Dispatch to machine 0 and run everything at a fixed speed, FIFO order."""

    name = "test-constant-speed"

    def __init__(self, speed: float = 2.0) -> None:
        self.speed = speed

    def on_arrival(self, t, job, state):
        return SpeedArrivalDecision.dispatch(0)

    def select_next(self, t, machine, state):
        pending = state.pending_jobs(machine)
        if not pending:
            return None
        job = min(pending, key=lambda j: (j.release, j.id))
        return StartDecision(job_id=job.id, speed=self.speed)


class RejectRunningOnArrival(SpeedScalingPolicy):
    """Interrupts the running job whenever a new one arrives."""

    name = "test-speed-interrupt"

    def on_arrival(self, t, job, state):
        running = state.running(0)
        rejections = [SpeedRejection(running.job.id)] if running else []
        return SpeedArrivalDecision.dispatch(0, rejections)

    def select_next(self, t, machine, state):
        pending = state.pending_jobs(machine)
        if not pending:
            return None
        return StartDecision(job_id=pending[0].id, speed=1.0)


def _single(alpha: float, jobs) -> Instance:
    return Instance.build(Machine.fleet(1, alpha=alpha), jobs)


class TestSpeedExecution:
    def test_duration_scales_with_speed(self):
        instance = _single(2.0, [Job(0, 0.0, (6.0,))])
        result = SpeedScalingEngine(instance).run(ConstantSpeedPolicy(speed=3.0))
        assert result.record(0).completion == pytest.approx(2.0)

    def test_energy_accounting(self):
        # volume 6 at speed 3 for 2 time units: energy = 3^2 * 2 = 18.
        instance = _single(2.0, [Job(0, 0.0, (6.0,))])
        result = SpeedScalingEngine(instance).run(ConstantSpeedPolicy(speed=3.0))
        assert total_energy(result) == pytest.approx(18.0)
        assert result.extras["energy"] == pytest.approx(18.0)

    def test_energy_depends_on_alpha(self):
        instance = _single(3.0, [Job(0, 0.0, (6.0,))])
        result = SpeedScalingEngine(instance).run(ConstantSpeedPolicy(speed=3.0))
        assert total_energy(result) == pytest.approx(3.0**3 * 2.0)

    def test_weighted_flow_time(self):
        instance = _single(2.0, [Job(0, 1.0, (4.0,), weight=2.5)])
        result = SpeedScalingEngine(instance).run(ConstantSpeedPolicy(speed=2.0))
        assert total_weighted_flow_time(result) == pytest.approx(2.5 * 2.0)

    def test_queueing_is_non_preemptive(self):
        instance = _single(2.0, [Job(0, 0.0, (4.0,)), Job(1, 0.5, (1.0,))])
        result = SpeedScalingEngine(instance).run(ConstantSpeedPolicy(speed=1.0))
        assert result.record(1).start == pytest.approx(4.0)
        validate_result(result)

    def test_partial_energy_of_rejected_job_counts(self):
        instance = _single(2.0, [Job(0, 0.0, (10.0,)), Job(1, 3.0, (1.0,))])
        result = SpeedScalingEngine(instance).run(RejectRunningOnArrival())
        # Job 0 ran at speed 1 for 3 time units before being rejected.
        assert total_energy(result) == pytest.approx(3.0 + 1.0)
        assert result.record(0).rejected


class TestSpeedEngineErrors:
    def test_non_positive_speed_rejected(self):
        with pytest.raises(SimulationError):
            StartDecision(job_id=0, speed=0.0)

    def test_invalid_machine(self):
        class Bad(ConstantSpeedPolicy):
            def on_arrival(self, t, job, state):
                return SpeedArrivalDecision.dispatch(5)

        instance = _single(2.0, [Job(0, 0.0, (1.0,))])
        with pytest.raises(SimulationError):
            SpeedScalingEngine(instance).run(Bad())

    def test_starting_non_pending_job(self):
        class Bad(ConstantSpeedPolicy):
            def select_next(self, t, machine, state):
                return StartDecision(job_id=42, speed=1.0)

        instance = _single(2.0, [Job(0, 0.0, (1.0,))])
        with pytest.raises(SimulationError):
            SpeedScalingEngine(instance).run(Bad())
