"""Tests for workload suites, competitive estimates, statistics and reporting."""

import math

import pytest

from repro.analysis.competitive import (
    CompetitiveEstimate,
    energy_competitive_estimate,
    flow_time_competitive_estimate,
    weighted_flow_energy_competitive_estimate,
)
from repro.analysis.reporting import ExperimentTable, render_report
from repro.analysis.statistics import describe, geometric_mean, ratio_statistics, relative_regret
from repro.core.flow_time import RejectionFlowTimeScheduler
from repro.core.flow_time_energy import RejectionEnergyFlowScheduler
from repro.exceptions import InvalidParameterError
from repro.simulation.engine import FlowTimeEngine
from repro.simulation.speed_engine import SpeedScalingEngine
from repro.workloads.suites import WorkloadSuite, standard_suites


class TestWorkloadSuites:
    def test_standard_suites_exist(self):
        suites = standard_suites("small")
        assert set(suites) == {"flow", "weighted", "deadline", "scenarios"}
        assert "poisson-pareto" in suites["flow"].labels()
        assert "flash-crowd" in suites["scenarios"].labels()

    def test_build_is_lazy_and_rebuildable(self):
        suite = standard_suites("small")["flow"]
        first = suite.build("poisson-pareto")
        second = suite.build("poisson-pareto")
        assert first.to_dict() == second.to_dict()

    def test_scales_change_size(self):
        small = standard_suites("small")["flow"].build("poisson-pareto")
        medium = standard_suites("medium")["flow"].build("poisson-pareto")
        assert medium.num_jobs > small.num_jobs

    def test_unknown_scale(self):
        with pytest.raises(InvalidParameterError):
            standard_suites("giant")

    def test_unknown_label(self):
        suite = standard_suites("small")["flow"]
        with pytest.raises(KeyError):
            suite.build("does-not-exist")

    def test_duplicate_label_rejected(self):
        suite = WorkloadSuite(name="custom")
        suite.add("x", lambda: None)
        with pytest.raises(InvalidParameterError):
            suite.add("x", lambda: None)

    def test_build_all(self):
        suite = standard_suites("small")["deadline"]
        instances = suite.build_all()
        assert set(instances) == set(suite.labels())


class TestCompetitiveEstimates:
    def test_flow_time_estimate_brackets(self, random_instance):
        result = FlowTimeEngine(random_instance).run(RejectionFlowTimeScheduler(epsilon=0.5))
        estimate = flow_time_competitive_estimate(result, theoretical_bound=18.0)
        assert estimate.ratio_vs_lower_bound >= estimate.ratio_vs_reference > 0
        assert estimate.within_theoretical_bound is not None

    def test_weighted_estimate(self, weighted_instance):
        result = SpeedScalingEngine(weighted_instance).run(
            RejectionEnergyFlowScheduler(epsilon=0.5)
        )
        estimate = weighted_flow_energy_competitive_estimate(result)
        assert estimate.cost > 0 and estimate.lower_bound > 0

    def test_energy_estimate(self, deadline_instance):
        estimate = energy_competitive_estimate(
            deadline_instance, algorithm_energy=42.0, algorithm="greedy"
        )
        assert estimate.cost == 42.0
        assert estimate.ratio_vs_lower_bound >= 1.0 or estimate.lower_bound > 42.0

    def test_estimate_row_and_bound_flag(self):
        estimate = CompetitiveEstimate(
            algorithm="x", cost=10.0, lower_bound=2.0, reference_cost=5.0, theoretical_bound=4.0
        )
        assert estimate.ratio_vs_lower_bound == pytest.approx(5.0)
        assert estimate.ratio_vs_reference == pytest.approx(2.0)
        assert estimate.within_theoretical_bound is False
        assert estimate.as_row()["ratio_vs_lb"] == pytest.approx(5.0)


class TestStatistics:
    def test_describe(self):
        dist = describe([1.0, 2.0, 3.0, 4.0])
        assert dist.count == 4
        assert dist.mean == pytest.approx(2.5)
        assert dist.median == pytest.approx(2.5)
        assert dist.minimum == 1.0 and dist.maximum == 4.0

    def test_describe_empty(self):
        assert describe([]).count == 0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(InvalidParameterError):
            geometric_mean([1.0, 0.0])

    def test_ratio_statistics(self):
        stats = ratio_statistics([1.0, 2.0, math.inf])
        assert stats["count"] == 2
        assert stats["max"] == 2.0

    def test_relative_regret(self):
        assert relative_regret(12.0, 10.0) == pytest.approx(0.2)
        assert relative_regret(5.0, 0.0) == math.inf


class TestReporting:
    def test_table_rendering(self):
        table = ExperimentTable(title="demo", columns=("a", "b"))
        table.add_row({"a": 1, "b": 2.0})
        table.add_note("footnote")
        text = table.render()
        assert "demo" in text and "footnote" in text

    def test_missing_columns_filled(self):
        table = ExperimentTable(title="demo", columns=("a", "b"))
        table.add_row({"a": 1})
        assert table.rows[0]["b"] == ""

    def test_unknown_column_rejected(self):
        table = ExperimentTable(title="demo", columns=("a",))
        with pytest.raises(InvalidParameterError):
            table.add_row({"a": 1, "zzz": 2})

    def test_column_accessor(self):
        table = ExperimentTable(title="demo", columns=("a",))
        table.add_row({"a": 1})
        table.add_row({"a": 2})
        assert table.column("a") == [1, 2]
        with pytest.raises(InvalidParameterError):
            table.column("zzz")

    def test_render_report_concatenates(self):
        table = ExperimentTable(title="demo", columns=("a",))
        table.add_row({"a": 1})
        report = render_report([table, table], header="HEADER")
        assert report.startswith("HEADER")
        assert report.count("demo") == 2
