"""Tests for the shard-and-merge parallel solver (``repro.parallel``).

Covers the determinism contract the CI ``shard-identity`` gate enforces at
trace scale — k=1 byte-identity with the batch facade, worker-count
invariance of the persisted store, cache-hit resumability, the independent
``solve_to_store`` path writing the exact k=1 artifact pair — plus the
partition/normalisation helpers, the ``repro solve --shards`` /
``repro shard-solve`` CLI, experiment E16 and the property-based
sharded-vs-batch equivalence across all three dispatch modes.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from test_property_based import flow_instances

from repro.campaigns.store import ArtifactStore
from repro.cli import main
from repro.exceptions import InvalidParameterError, StreamingNotSupportedError
from repro.experiments import run_experiment
from repro.parallel import (
    machine_groups,
    normalise_source,
    restrict_chunk,
    shard_solve,
    solve_to_store,
    source_fingerprint,
)
from repro.solvers import solve
from repro.utils.serialization import canonical_json
from repro.workloads.generators import JobChunk
from repro.workloads.scenarios import get_scenario
from repro.workloads.traces import chunks_from_jobs, chunks_to_instance

MACHINES = 4
PARAMS = dict(epsilon=0.5)


def _scenario_chunks(num_jobs: int = 80, seed: int = 2018,
                     name: str = "multi-tenant-mix") -> list[JobChunk]:
    return list(get_scenario(name).job_chunks(num_jobs, MACHINES, seed=seed))


def _store_bytes(root: "Path | str") -> dict:
    """Every artifact file under a store root, relpath -> bytes."""
    root = Path(root)
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


# --------------------------------------------------------------------------------------
# Partition and source-normalisation helpers
# --------------------------------------------------------------------------------------


class TestPartitionHelpers:
    def test_machine_groups_strided_and_exhaustive(self):
        assert machine_groups(8, 3) == ((0, 3, 6), (1, 4, 7), (2, 5))
        assert machine_groups(4, 1) == ((0, 1, 2, 3),)
        groups = machine_groups(5, 5)
        assert sorted(m for group in groups for m in group) == list(range(5))

    def test_more_shards_than_machines_rejected(self):
        with pytest.raises(InvalidParameterError, match="every shard needs"):
            machine_groups(2, 3)
        with pytest.raises(InvalidParameterError):
            machine_groups(4, 0)

    def test_restrict_chunk_slices_columns(self):
        chunk = JobChunk(
            start=0,
            releases=np.array([0.0, 1.0]),
            sizes=np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]),
        )
        out = restrict_chunk(chunk, (0, 2), shard=0)
        assert out.sizes.tolist() == [[1.0, 3.0], [4.0, 6.0]]

    def test_restrict_chunk_rejects_infeasible_job_by_id(self):
        # Job 1 can only run on machine 0; restricting to machine 1 alone
        # leaves it with no finite size, so the partition must be refused.
        chunk = JobChunk(
            start=0,
            releases=np.array([0.0, 1.0]),
            sizes=np.array([[1.0, 1.0], [1.0, np.inf]]),
        )
        with pytest.raises(InvalidParameterError, match="job 1 has no finite size"):
            restrict_chunk(chunk, (1,), shard=1)

    def test_fingerprint_independent_of_chunking_and_entry_point(self):
        chunks = _scenario_chunks(num_jobs=40)
        norm, fleet = normalise_source(chunks, machines=MACHINES)
        rows = [(0, job) for chunk in norm for job in chunk.jobs()]
        rechunked, fleet2 = normalise_source(
            chunks_from_jobs(iter(rows), chunk_size=7), machines=MACHINES
        )
        assert source_fingerprint(norm, fleet) == source_fingerprint(rechunked, fleet2)
        instance = chunks_to_instance(chunks, machines=MACHINES)
        via_instance, inst_fleet = normalise_source(instance)
        assert source_fingerprint(via_instance, inst_fleet) == source_fingerprint(
            norm, fleet
        )

    def test_instance_source_refuses_machines_override(self):
        instance = chunks_to_instance(_scenario_chunks(num_jobs=10), machines=MACHINES)
        with pytest.raises(InvalidParameterError, match="already carries its fleet"):
            normalise_source(instance, machines=2)

    def test_width_fleet_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError, match="per-machine sizes"):
            normalise_source(_scenario_chunks(num_jobs=10), machines=MACHINES + 1)


# --------------------------------------------------------------------------------------
# shard_solve: the determinism contract
# --------------------------------------------------------------------------------------


class TestShardSolve:
    @pytest.fixture(scope="class")
    def chunks(self):
        return _scenario_chunks()

    def test_k1_row_byte_identical_to_batch_solve(self, chunks):
        sharded = shard_solve(chunks, "rejection-flow", 1, machines=MACHINES, **PARAMS)
        batch = solve(
            chunks_to_instance(chunks, machines=MACHINES), "rejection-flow", **PARAMS
        )
        assert canonical_json(sharded.row) == canonical_json(batch.as_row())

    def test_objective_accounting_sums_exactly(self, chunks):
        result = shard_solve(chunks, "rejection-flow", 4, machines=MACHINES, **PARAMS)
        assert result.objective_value == sum(result.shard_objectives)
        assert result.row["rejected_count"] == sum(
            row["rejected_count"] for row in result.shard_rows
        )
        assert result.num_jobs == len(chunks_to_instance(chunks, machines=MACHINES).jobs)

    def test_merged_events_time_ordered_and_cover_every_job(self, chunks):
        result = shard_solve(chunks, "rejection-flow", 4, machines=MACHINES, **PARAMS)
        times = [event["time"] for event in result.events]
        assert times == sorted(times)
        jobs_seen = {event["job_id"] for event in result.events}
        assert jobs_seen == set(range(result.num_jobs))
        # Events name machines by their *global* ids and carry their shard.
        shards_seen = {event["shard"] for event in result.events}
        assert shards_seen == set(range(4))
        machines_seen = {
            event["machine"] for event in result.events
            if event["machine"] is not None
        }
        assert machines_seen <= set(range(MACHINES))

    def test_worker_count_never_changes_store_bytes(self, chunks, tmp_path):
        for workers in (1, 2):
            shard_solve(
                chunks, "rejection-flow", 4, machines=MACHINES, workers=workers,
                store=tmp_path / f"w{workers}", **PARAMS,
            )
        assert _store_bytes(tmp_path / "w1") == _store_bytes(tmp_path / "w2")

    def test_rerun_is_a_full_cache_hit(self, chunks, tmp_path):
        store = tmp_path / "store"
        first = shard_solve(
            chunks, "rejection-flow", 4, machines=MACHINES, store=store, **PARAMS
        )
        assert first.cached == (False,) * 4 and not first.merged_cached
        again = shard_solve(
            chunks, "rejection-flow", 4, machines=MACHINES, store=store, **PARAMS
        )
        assert again.cached == (True,) * 4 and again.merged_cached
        assert again.durations == (None,) * 4
        assert canonical_json(again.payload) == canonical_json(first.payload)

    def test_plain_solve_to_store_writes_the_k1_artifacts(self, chunks, tmp_path):
        plain = solve_to_store(
            chunks, "rejection-flow", store=tmp_path / "plain",
            machines=MACHINES, **PARAMS,
        )
        k1 = shard_solve(
            chunks, "rejection-flow", 1, machines=MACHINES,
            store=tmp_path / "k1", **PARAMS,
        )
        assert plain.merged_key == k1.merged_key
        assert plain.shard_keys == k1.shard_keys
        assert _store_bytes(tmp_path / "plain") == _store_bytes(tmp_path / "k1")

    def test_dispatch_modes_byte_equivalent(self, chunks):
        payloads = [
            canonical_json(
                shard_solve(
                    chunks, "rejection-flow", 2, machines=MACHINES,
                    dispatch=mode, **PARAMS,
                ).payload
            )
            for mode in ("indexed", "scan", "vectorized")
        ]
        assert payloads[0] == payloads[1] == payloads[2]

    def test_partition_modes_all_cover_the_stream(self, chunks):
        n = len(chunks_to_instance(chunks, machines=MACHINES).jobs)
        for partition in ("round-robin", "hash", "tenant"):
            result = shard_solve(
                chunks, "rejection-flow", 2, machines=MACHINES,
                partition=partition, **PARAMS,
            )
            assert result.num_jobs == n
            assert result.partition == partition

    def test_invalid_arguments_rejected(self, chunks):
        with pytest.raises(InvalidParameterError, match="every shard needs"):
            shard_solve(chunks, "rejection-flow", MACHINES + 1,
                        machines=MACHINES, **PARAMS)
        with pytest.raises(InvalidParameterError, match="unknown partition"):
            shard_solve(chunks, "rejection-flow", 2, machines=MACHINES,
                        partition="alphabetical", **PARAMS)
        with pytest.raises(InvalidParameterError, match="workers"):
            shard_solve(chunks, "rejection-flow", 2, machines=MACHINES,
                        workers=0, **PARAMS)
        with pytest.raises(StreamingNotSupportedError):
            shard_solve(chunks, "yds", 2, machines=MACHINES)


# --------------------------------------------------------------------------------------
# CLI: repro solve --shards / repro shard-solve
# --------------------------------------------------------------------------------------


class TestShardSolveCLI:
    _COMMON = ["--scenario", "multi-tenant-mix", "--jobs", "60",
               "--machines", "4", "--seed", "2018", "--param", "epsilon=0.5"]

    def test_plain_store_vs_shards_1_byte_identical(self, tmp_path):
        # The in-process replica of the CI shard-identity gate's first step.
        plain_out, k1_out = io.StringIO(), io.StringIO()
        assert main(["solve", *self._COMMON, "--store", str(tmp_path / "plain"),
                     "--json"], out=plain_out) == 0
        assert main(["shard-solve", *self._COMMON, "--shards", "1",
                     "--store", str(tmp_path / "k1"), "--json"], out=k1_out) == 0
        assert plain_out.getvalue() == k1_out.getvalue()
        assert json.loads(plain_out.getvalue())["algorithm"] == "rejection-flow"
        assert _store_bytes(tmp_path / "plain") == _store_bytes(tmp_path / "k1")

    def test_solve_json_matches_shard_solve_json_without_store(self):
        batch_out, sharded_out = io.StringIO(), io.StringIO()
        assert main(["solve", *self._COMMON, "--json"], out=batch_out) == 0
        assert main(["shard-solve", *self._COMMON, "--shards", "1", "--json"],
                    out=sharded_out) == 0
        assert batch_out.getvalue() == sharded_out.getvalue()

    def test_human_output_reports_cache_state(self, tmp_path):
        args = ["shard-solve", *self._COMMON, "--shards", "2",
                "--store", str(tmp_path / "store")]
        cold, warm = io.StringIO(), io.StringIO()
        assert main(args, out=cold) == 0
        assert "0/2 shard(s) cached, merged computed" in cold.getvalue()
        assert main(args, out=warm) == 0
        assert "2/2 shard(s) cached, merged cached" in warm.getvalue()
        assert "per shard" in warm.getvalue()

    def test_scenario_and_trace_are_mutually_exclusive(self, tmp_path, capsys):
        code = main(["shard-solve", "--scenario", "flash-crowd",
                     "--trace", str(tmp_path / "t.ndjson")])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err


# --------------------------------------------------------------------------------------
# Experiment E16
# --------------------------------------------------------------------------------------


class TestE16:
    _CONFIG = dict(
        scenarios=("flash-crowd",),
        shard_counts=(1, 2),
        num_jobs=30,
        num_machines=4,
    )

    def test_single_coordinator_anchors_ratio_at_one(self):
        result = run_experiment("E16", **self._CONFIG)
        rows = result.raw["rows"]
        assert {row["k"] for row in rows} == {1, 2}
        for row in rows:
            if row["k"] == 1:
                assert row["ratio_vs_single"] == 1.0
            assert row["events"] > 0
            # Throughput stays off by default: artifacts must be reproducible.
            assert "events_per_s" not in row

    def test_raw_is_byte_reproducible(self):
        one = run_experiment("E16", **self._CONFIG)
        two = run_experiment("E16", **self._CONFIG)
        assert canonical_json(one.raw) == canonical_json(two.raw)

    def test_empty_shard_counts_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("E16", shard_counts=())


# --------------------------------------------------------------------------------------
# Property-based: sharded vs batch, across dispatch modes
# --------------------------------------------------------------------------------------


_epsilons = st.floats(min_value=0.05, max_value=0.95, allow_nan=False)
_dispatch = st.sampled_from(("indexed", "scan", "vectorized"))


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(instance=flow_instances(), epsilon=_epsilons, dispatch=_dispatch)
def test_sharded_k1_equals_batch_solve_under_every_dispatch(instance, epsilon, dispatch):
    sharded = shard_solve(
        instance, "rejection-flow", 1, dispatch=dispatch, epsilon=epsilon
    )
    batch = solve(instance, "rejection-flow", dispatch=dispatch, epsilon=epsilon)
    assert canonical_json(sharded.row) == canonical_json(batch.as_row())


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(instance=flow_instances(max_jobs=10, max_machines=3), epsilon=_epsilons)
def test_merged_accounting_is_exact(instance, epsilon):
    k = min(2, instance.num_machines)
    result = shard_solve(instance, "rejection-flow", k, epsilon=epsilon)
    assert result.num_jobs == instance.num_jobs
    assert result.objective_value == sum(result.shard_objectives)
    totals = result.payload["totals"]
    assert totals["rejected_count"] == sum(
        row["rejected_count"] for row in result.shard_rows
    )
    assert totals["num_jobs"] == instance.num_jobs
