"""Tests for the lease protocol and the work-stealing campaign dispatcher.

The protocol pieces (claim/renew/steal/release) are unit-tested with an
injected clock so expiry is deterministic; the dispatcher is integration-
tested with real thread fleets over a shared in-memory backend, including
the crash paths: expired-lease stealing, lost publish races and a worker
killed at the atomic-write boundary.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.campaigns import (
    ArtifactStore,
    CampaignRunner,
    CampaignTask,
    diff_stores,
    gc_store,
    get_grid,
    run_campaign,
    run_worker,
)
from repro.campaigns.backends import MemoryBackend
from repro.campaigns.distributed import (
    LeaseHeartbeat,
    decode_lease,
    default_worker_id,
    encode_lease,
    lease_key_for,
    release_lease,
    renew_lease,
    try_claim,
)
from repro.campaigns.store import LEASE_PREFIX
from repro.cli import main
from repro.exceptions import InvalidParameterError

TINY_E1 = {"epsilons": (0.5,), "workloads": ("poisson-pareto",)}


def _tiny_task(seed=7, variant="tiny"):
    return CampaignTask.create("E1", variant=variant, seed=seed, overrides=TINY_E1)


def _memory_store() -> ArtifactStore:
    return ArtifactStore(backend=MemoryBackend())


KEY = "ab12cd34ab12cd34"


class TestLeaseProtocol:
    def test_fresh_claim_then_rival_blocked_until_expiry(self):
        store = _memory_store()
        token = try_claim(store, KEY, "w1", ttl=30, clock=lambda: 1000.0)
        assert decode_lease(token) == {"worker": "w1", "expires_at": 1030.0, "seq": 0}
        assert try_claim(store, KEY, "w2", ttl=30, clock=lambda: 1000.0) is None
        stolen = try_claim(store, KEY, "w2", ttl=30, clock=lambda: 1031.0)
        assert decode_lease(stolen)["worker"] == "w2"
        assert decode_lease(stolen)["seq"] == 1  # steals are counted

    def test_only_one_concurrent_stealer_wins(self):
        store = _memory_store()
        store.backend.put(lease_key_for(KEY), encode_lease("dead", 0.0, 0))
        barrier = threading.Barrier(4)
        winners = []

        def stealer(i):
            barrier.wait()
            token = try_claim(store, KEY, f"w{i}", ttl=30, clock=lambda: 100.0)
            if token is not None:
                winners.append(i)

        threads = [threading.Thread(target=stealer, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(winners) == 1

    def test_corrupt_lease_blob_is_stealable(self):
        store = _memory_store()
        store.backend.put(lease_key_for(KEY), b"\xffnot json")
        assert decode_lease(b"\xffnot json") is None
        token = try_claim(store, KEY, "w1", ttl=30, clock=lambda: 1000.0)
        assert decode_lease(token)["worker"] == "w1"

    def test_renew_extends_only_with_the_live_token(self):
        store = _memory_store()
        token = try_claim(store, KEY, "w1", ttl=30, clock=lambda: 1000.0)
        renewed = renew_lease(store, KEY, token, "w1", ttl=30, clock=lambda: 1010.0)
        assert decode_lease(renewed)["expires_at"] == 1040.0
        # The superseded token is dead: renewing with it must fail (this is
        # exactly how an owner discovers its lease was stolen).
        assert renew_lease(store, KEY, token, "w1", ttl=30, clock=lambda: 1011.0) is None

    def test_release_only_removes_own_lease(self):
        store = _memory_store()
        token = try_claim(store, KEY, "w1", ttl=30, clock=lambda: 1000.0)
        release_lease(store, KEY, b"someone elses token")
        assert store.backend.exists(lease_key_for(KEY))
        release_lease(store, KEY, token)
        assert not store.backend.exists(lease_key_for(KEY))

    def test_heartbeat_keeps_slow_task_leased(self):
        store = _memory_store()
        token = try_claim(store, KEY, "w1", ttl=0.2, clock=time.time)
        heartbeat = LeaseHeartbeat(store, KEY, token, "w1", ttl=0.2)
        heartbeat.start()
        try:
            time.sleep(0.5)  # well past the original expiry
            assert try_claim(store, KEY, "w2", ttl=0.2) is None
            assert not heartbeat.lost
        finally:
            heartbeat.stop()

    def test_heartbeat_flags_stolen_lease(self):
        store = _memory_store()
        token = try_claim(store, KEY, "w1", ttl=0.2, clock=time.time)
        heartbeat = LeaseHeartbeat(store, KEY, token, "w1", ttl=0.2)
        store.backend.put(lease_key_for(KEY), encode_lease("thief", 9e12, 1))
        heartbeat.start()
        time.sleep(0.2)
        heartbeat.stop()
        assert heartbeat.lost

    def test_default_worker_id_carries_host_and_pid(self):
        assert len(default_worker_id().rsplit("-", 1)) == 2


class TestRunWorker:
    def test_single_worker_matches_pool_runner_bytes(self, tmp_path):
        tasks = get_grid("smoke").tasks()
        pool_store = ArtifactStore(tmp_path / "pool")
        fleet_store = _memory_store()
        CampaignRunner(pool_store, workers=1).run(tasks)
        summary = run_worker(fleet_store, tasks, worker_id="solo")
        assert summary.computed == len(tasks) and summary.cached == 0
        assert diff_stores(pool_store, fleet_store) == []

    def test_thread_fleet_computes_each_task_exactly_once(self):
        store = _memory_store()
        tasks = [_tiny_task(seed=s) for s in range(6)]
        summaries = [None] * 3

        def worker(i):
            summaries[i] = run_worker(
                store, tasks, worker_id=f"w{i}", lease_ttl=5, poll_interval=0.01
            )

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(s.computed for s in summaries) == len(tasks)
        # Every worker accounts for the full grid (computed + cached), and
        # nothing but artifacts survives: all leases were released.
        assert all(s.total == len(tasks) for s in summaries)
        assert len(store) == len(tasks)
        assert store.backend.list_keys(LEASE_PREFIX) == []

    def test_expired_lease_from_crashed_worker_is_stolen(self):
        store = _memory_store()
        task = _tiny_task()
        # A "crashed" rival: claimed long ago, never heartbeat, never freed.
        store.backend.put(
            lease_key_for(task.key()), encode_lease("crashed-worker", 1.0, 0)
        )
        summary = run_worker(store, [task], worker_id="survivor", lease_ttl=5)
        assert summary.computed == 1
        assert store.has(task.key())
        assert store.backend.list_keys(LEASE_PREFIX) == []

    def test_worker_clears_moot_lease_of_finished_task(self):
        store = _memory_store()
        task = _tiny_task()
        CampaignRunner(store, workers=1).run([task])
        store.backend.put(lease_key_for(task.key()), encode_lease("dead", 9e12, 0))
        summary = run_worker(store, [task], worker_id="w1")
        assert summary.cached == 1 and summary.computed == 0
        assert store.backend.list_keys(LEASE_PREFIX) == []

    def test_lost_publish_race_counts_as_cached(self):
        store = _memory_store()
        task = _tiny_task()
        real_runner = __import__(
            "repro.campaigns.tasks", fromlist=["run_task"]
        ).run_task

        def racing_runner(t):
            payload = real_runner(t)
            # A rival stole the lease and published while we computed.
            store.save_if_absent(t.key(), payload)
            return payload

        lines = []
        summary = run_worker(
            store, [task], worker_id="loser", task_runner=racing_runner,
            progress=lines.append,
        )
        assert summary.computed == 0 and summary.cached == 1
        assert any("lost publish race" in line for line in lines)
        assert store.has(task.key())

    def test_duplicate_tasks_deduped_like_pool_runner(self):
        store = _memory_store()
        task = _tiny_task()
        summary = run_worker(store, [task, task], worker_id="w1")
        assert summary.total == 2 and summary.computed == 1 and summary.cached == 1

    def test_invalid_lease_ttl_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_worker(_memory_store(), [_tiny_task()], lease_ttl=0)

    def test_killed_mid_publish_leaves_no_torn_artifact(self, tmp_path, monkeypatch):
        # Kill-point: die exactly at the publish rename.  The store must not
        # contain a half-written artifact, and a clean rerun must produce a
        # store byte-identical to one that never crashed.
        store = ArtifactStore(tmp_path / "crashed")
        task = _tiny_task()

        def exploding_link(src, dst):
            raise KeyboardInterrupt("kill -9 at the worst byte offset")

        # run_worker publishes with save_if_absent -> os.link (atomic create).
        monkeypatch.setattr("repro.campaigns.backends.os.link", exploding_link)
        with pytest.raises(KeyboardInterrupt):
            run_worker(store, [task], worker_id="victim", lease_ttl=5)
        monkeypatch.undo()
        assert list(store.keys()) == []
        gc_store(store)
        summary = run_worker(store, [task], worker_id="recovery", lease_ttl=5)
        assert summary.computed == 1
        pristine = ArtifactStore(tmp_path / "pristine")
        run_worker(pristine, [task], worker_id="ref")
        assert diff_stores(store, pristine) == []


class TestGcStore:
    def test_collects_moot_expired_and_corrupt_leases_only(self):
        store = _memory_store()
        done = _tiny_task(seed=1)
        CampaignRunner(store, workers=1).run([done])
        store.backend.put(lease_key_for(done.key()), encode_lease("w", 9e12, 0))
        store.backend.put(lease_key_for("aa" * 8), encode_lease("w", 50.0, 0))
        store.backend.put(lease_key_for("bb" * 8), b"corrupt")
        store.backend.put(lease_key_for("cc" * 8), encode_lease("live", 9e12, 0))
        removed = gc_store(store, clock=lambda: 100.0)
        assert removed == {"leases": 3, "transients": 0}
        assert store.backend.list_keys(LEASE_PREFIX) == [lease_key_for("cc" * 8)]

    def test_sweeps_filesystem_transients(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.save("ab12cd34", {"x": 1})
        (tmp_path / "store" / "ab" / "orphan.tmp").write_bytes(b"torn")
        removed = gc_store(store)
        assert removed["transients"] == 1
        assert list(store.keys()) == ["ab12cd34"]


class TestRunCampaignDispatch:
    def test_default_mode_uses_pool_runner(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        summary = run_campaign([_tiny_task()], store, workers=1)
        assert summary.computed == 1

    def test_distributed_mode_runs_one_worker(self):
        store = _memory_store()
        summary = run_campaign(
            [_tiny_task()], store, distributed=True, worker_id="w1", lease_ttl=5
        )
        assert summary.computed == 1

    def test_distributed_mode_rejects_worker_pool(self):
        with pytest.raises(InvalidParameterError):
            run_campaign([_tiny_task()], _memory_store(), distributed=True, workers=2)


class TestCampaignCliDistributed:
    def test_worker_flag_runs_fleet_of_one(self, tmp_path, capsys):
        code = main(["campaign", "run", "--grid", "smoke", "--worker",
                     "--worker-id", "cli-w1", "--store", str(tmp_path / "store")])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 computed, 0 cached" in out
        assert "[cli-w1]" in out

    def test_sqlite_backend_flag_equivalent_to_scheme(self, tmp_path, capsys):
        code = main(["campaign", "run", "--grid", "smoke", "--quiet",
                     "--backend", "sqlite", "--store", str(tmp_path / "kv.db")])
        assert code == 0
        code = main(["campaign", "run", "--grid", "smoke", "--quiet",
                     "--store", f"sqlite:{tmp_path / 'kv.db'}"])
        assert code == 0
        assert "100% cache hits" in capsys.readouterr().out

    def test_backend_flag_conflicting_with_scheme_errors(self, tmp_path, capsys):
        code = main(["campaign", "run", "--grid", "smoke",
                     "--backend", "sqlite", "--store", f"file:{tmp_path}"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_worker_conflicts_with_worker_pool(self, tmp_path, capsys):
        code = main(["campaign", "run", "--grid", "smoke", "--worker",
                     "--workers", "2", "--store", str(tmp_path)])
        assert code == 2

    def test_lease_flags_require_worker_mode(self, tmp_path, capsys):
        code = main(["campaign", "run", "--grid", "smoke",
                     "--lease-ttl", "5", "--store", str(tmp_path)])
        assert code == 2

    def test_diff_identical_and_differing_stores(self, tmp_path, capsys):
        for name in ("a", "b"):
            assert main(["campaign", "run", "--grid", "smoke", "--quiet",
                         "--store", str(tmp_path / name)]) == 0
        assert main(["campaign", "diff", str(tmp_path / "a"), str(tmp_path / "b")]) == 0
        assert "stores identical" in capsys.readouterr().out
        ArtifactStore(tmp_path / "b").save("ab12cd34", {"extra": True})
        assert main(["campaign", "diff", str(tmp_path / "a"), str(tmp_path / "b")]) == 1
        assert "stores differ" in capsys.readouterr().out

    def test_gc_reports_removals(self, tmp_path, capsys):
        store = ArtifactStore(tmp_path / "store")
        store.backend.put(lease_key_for("ab" * 8), b"corrupt")
        code = main(["campaign", "gc", "--store", str(tmp_path / "store")])
        assert code == 0
        assert "removed 1 lease(s)" in capsys.readouterr().out
