"""Deprecated ``Speed*`` decision aliases: warning on use, identical behavior.

The shared decision types live in :mod:`repro.simulation.decisions`; the
historical ``SpeedRejection`` / ``SpeedArrivalDecision`` spellings remain for
one release and must (a) emit a :class:`DeprecationWarning` from every module
that exposes them and (b) still *be* the shared types, so existing policies
behave identically.
"""

from __future__ import annotations

import warnings

import pytest

from repro.simulation.decisions import ArrivalDecision, Rejection

_SURFACES = [
    "repro.simulation.decisions",
    "repro.simulation.speed_engine",
    "repro.simulation",
]

_ALIASES = {
    "SpeedRejection": Rejection,
    "SpeedArrivalDecision": ArrivalDecision,
}


def _resolve(module_name: str, attr: str):
    import importlib

    return getattr(importlib.import_module(module_name), attr)


class TestDeprecationWarnings:
    @pytest.mark.parametrize("module_name", _SURFACES)
    @pytest.mark.parametrize("alias", sorted(_ALIASES))
    def test_alias_access_warns(self, module_name, alias):
        with pytest.warns(DeprecationWarning, match=f"{alias} is deprecated"):
            _resolve(module_name, alias)

    @pytest.mark.parametrize("module_name", _SURFACES)
    def test_unknown_attribute_still_raises(self, module_name):
        with pytest.raises(AttributeError):
            _resolve(module_name, "DefinitelyNotAnAttribute")


class TestAliasIdentity:
    @pytest.mark.parametrize("module_name", _SURFACES)
    @pytest.mark.parametrize("alias", sorted(_ALIASES))
    def test_alias_is_shared_type(self, module_name, alias):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert _resolve(module_name, alias) is _ALIASES[alias]

    def test_aliases_behave_identically(self):
        # Not copies with equal behavior — the same classes, so every
        # constructor, helper and equality comparison matches exactly.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.simulation.speed_engine import (  # noqa: F401
                SpeedArrivalDecision,
                SpeedRejection,
            )
        legacy = SpeedArrivalDecision.dispatch(1, [SpeedRejection(7, reason="rule1")])
        modern = ArrivalDecision.dispatch(1, [Rejection(7, reason="rule1")])
        assert legacy == modern
        assert type(legacy) is ArrivalDecision
        assert legacy.rejections[0] == Rejection(7, reason="rule1")
