"""Unit tests for :mod:`repro.utils.tabulate`."""

import pytest

from repro.utils.tabulate import format_table


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        text = format_table(["a", "b"], [[1, 2.5]])
        assert "a" in text and "b" in text
        assert "2.500" in text

    def test_title_rendered(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_scientific_notation_for_extremes(self):
        text = format_table(["v"], [[1e9]])
        assert "e+" in text

    def test_nan_rendered(self):
        text = format_table(["v"], [[float("nan")]])
        assert "nan" in text

    def test_precision(self):
        text = format_table(["v"], [[1.23456]], precision=1)
        assert "1.2" in text and "1.23" not in text

    def test_column_alignment(self):
        text = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = [line for line in text.splitlines() if line.startswith("|")]
        assert len({len(line) for line in lines}) == 1
