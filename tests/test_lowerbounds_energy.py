"""Tests for the energy lower bounds (Sections 3 and 4)."""

import pytest

from repro.baselines.offline import brute_force_optimal_energy
from repro.baselines.yds import yds_energy
from repro.core.energy_min import ConfigLPEnergyScheduler
from repro.exceptions import InvalidParameterError
from repro.lowerbounds.energy_bounds import (
    best_energy_lower_bound,
    per_job_deadline_energy_lower_bound,
    per_job_flow_energy_lower_bound,
    single_job_flow_energy_optimum,
)
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.machine import Machine
from repro.simulation.metrics import flow_plus_energy
from repro.simulation.speed_engine import SpeedScalingEngine
from repro.core.flow_time_energy import RejectionEnergyFlowScheduler
from repro.workloads.generators import DeadlineInstanceGenerator, WeightedInstanceGenerator


class TestSingleJobOptimum:
    def test_closed_form_alpha_two(self):
        # For alpha=2 the optimum of w*p/s + p*s is 2*p*sqrt(w).
        assert single_job_flow_energy_optimum(3.0, 4.0, 2.0) == pytest.approx(2 * 3.0 * 2.0)

    def test_matches_numeric_minimum(self):
        import numpy as np

        volume, weight, alpha = 2.0, 3.0, 2.5
        speeds = np.linspace(0.05, 10.0, 20000)
        numeric = float(np.min(weight * volume / speeds + volume * speeds ** (alpha - 1.0)))
        assert single_job_flow_energy_optimum(volume, weight, alpha) == pytest.approx(
            numeric, rel=1e-3
        )

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            single_job_flow_energy_optimum(0.0, 1.0, 2.0)
        with pytest.raises(InvalidParameterError):
            single_job_flow_energy_optimum(1.0, 1.0, 1.0)


class TestFlowEnergyLowerBound:
    def test_below_any_schedule(self):
        for seed in (0, 1, 2):
            instance = WeightedInstanceGenerator(num_machines=2, alpha=2.5, seed=seed).generate(40)
            result = SpeedScalingEngine(instance).run(
                RejectionEnergyFlowScheduler(epsilon=0.5, enable_rejection=False)
            )
            assert per_job_flow_energy_lower_bound(instance) <= flow_plus_energy(result) + 1e-6

    def test_uses_best_machine(self):
        jobs = [Job(0, 0.0, (10.0, 1.0), weight=1.0)]
        instance = Instance.build(Machine.fleet(2, alpha=2.0), jobs)
        assert per_job_flow_energy_lower_bound(instance) == pytest.approx(
            single_job_flow_energy_optimum(1.0, 1.0, 2.0)
        )


class TestDeadlineEnergyLowerBound:
    def test_single_job_exact(self):
        jobs = [Job(0, 0.0, (2.0,), deadline=4.0)]
        instance = Instance.build(Machine.fleet(1, alpha=2.0), jobs)
        # p * (p/W)^(alpha-1) = 2 * 0.5 = 1, and that is exactly achievable.
        assert per_job_deadline_energy_lower_bound(instance) == pytest.approx(1.0)
        assert yds_energy(instance) == pytest.approx(1.0)

    def test_missing_deadline_rejected(self):
        instance = Instance.build(1, [Job(0, 0.0, (1.0,))])
        with pytest.raises(InvalidParameterError):
            per_job_deadline_energy_lower_bound(instance)

    def test_certified_against_brute_force(self):
        for seed in (0, 1):
            instance = DeadlineInstanceGenerator(
                num_machines=2, slack=3.0, alpha=2.0, seed=seed
            ).generate(5)
            optimum = brute_force_optimal_energy(instance, slot_length=1.0, speeds_per_job=6)
            assert per_job_deadline_energy_lower_bound(instance) <= optimum + 1e-9

    def test_best_bound_uses_yds_on_single_machine(self, single_machine_deadline_instance):
        best = best_energy_lower_bound(single_machine_deadline_instance)
        assert best >= yds_energy(single_machine_deadline_instance) - 1e-9
        assert best >= per_job_deadline_energy_lower_bound(single_machine_deadline_instance) - 1e-9

    def test_best_bound_below_greedy(self, deadline_instance):
        greedy = ConfigLPEnergyScheduler().schedule(deadline_instance).total_energy
        assert best_energy_lower_bound(deadline_instance) <= greedy + 1e-9
