"""Tests for the (λ, μ)-smoothness machinery of Section 4."""

import pytest

from repro.core.smoothness import (
    lambda_single_step,
    mu_default,
    power_smoothness_certificate,
    required_lambda,
    smooth_competitive_ratio,
    smooth_inequality_lhs,
    smooth_inequality_rhs,
    smoothness_parameters,
    verify_smooth_inequality,
)
from repro.exceptions import InvalidParameterError


class TestParameters:
    def test_mu_formula(self):
        assert mu_default(2.0) == pytest.approx(0.5)
        assert mu_default(4.0) == pytest.approx(0.75)

    def test_mu_invalid(self):
        with pytest.raises(InvalidParameterError):
            mu_default(0.5)

    def test_lambda_single_step_alpha_two(self):
        # For alpha=2, mu=1/2 the sup of (t+1)^2 - 1.5 t^2 is 3 (at t = 2).
        assert lambda_single_step(2.0, 0.5) == pytest.approx(3.0, rel=1e-3)

    def test_lambda_grows_like_alpha_power(self):
        values = [smoothness_parameters(alpha).lam for alpha in (2.0, 2.5, 3.0)]
        assert values[0] < values[1] < values[2]

    def test_competitive_ratio_formula(self):
        assert smooth_competitive_ratio(3.0, 0.5) == pytest.approx(6.0)
        with pytest.raises(InvalidParameterError):
            smooth_competitive_ratio(-1.0, 0.5)
        with pytest.raises(InvalidParameterError):
            smooth_competitive_ratio(1.0, 1.0)

    def test_certificate_reports_paper_ratio(self):
        certificate = power_smoothness_certificate(3.0)
        assert certificate["paper_ratio"] == pytest.approx(27.0)
        assert certificate["mu"] == pytest.approx(2.0 / 3.0)
        assert certificate["lambda"] > 0


class TestSmoothInequality:
    def test_lhs_known_value(self):
        # a=(1,1), b=(1,1), alpha=2: [(1+1)^2 - 1] + [(1+2)^2 - 4] = 3 + 5 = 8.
        assert smooth_inequality_lhs(2.0, [1.0, 1.0], [1.0, 1.0]) == pytest.approx(8.0)

    def test_rhs_known_value(self):
        assert smooth_inequality_rhs(2.0, [1.0, 1.0], [1.0, 1.0], lam=3.0, mu=0.5) == (
            pytest.approx(3.0 * 4.0 + 0.5 * 4.0)
        )

    def test_holds_with_default_parameters(self):
        sequences = [
            ([1.0, 1.0], [1.0, 1.0]),
            ([2.0, 0.5, 1.0], [0.5, 3.0, 1.0]),
            ([0.0, 0.0], [2.0, 2.0]),
            ([4.0], [0.1]),
        ]
        for alpha in (1.5, 2.0, 2.5, 3.0):
            for a, b in sequences:
                assert verify_smooth_inequality(alpha, a, b)

    def test_required_lambda_below_parameter(self):
        for alpha in (2.0, 3.0):
            params = smoothness_parameters(alpha)
            for a, b in [([1.0, 2.0, 1.0], [2.0, 0.5, 1.0]), ([0.5] * 5, [1.5] * 5)]:
                assert required_lambda(alpha, a, b, params.mu) <= params.lam + 1e-9

    def test_violations_detected_with_tiny_lambda(self):
        assert not verify_smooth_inequality(2.0, [2.0], [1.0], lam=0.1, mu=0.0)

    def test_rejects_negative_values(self):
        with pytest.raises(InvalidParameterError):
            smooth_inequality_lhs(2.0, [-1.0], [1.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            smooth_inequality_lhs(2.0, [1.0], [1.0, 2.0])

    def test_zero_b_trivial(self):
        assert required_lambda(2.0, [1.0, 2.0], [0.0, 0.0], mu=0.5) == 0.0
