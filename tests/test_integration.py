"""Integration tests: the paper's headline claims checked end to end.

These tests cut across the whole stack (workload generation, engines, the
paper's algorithms, baselines, lower bounds) and assert the *qualitative*
content of each theorem on concrete instances:

* Theorem 1 — bounded rejections, competitive-ratio upper estimate within the
  paper's guarantee, and a large win over rejection-free scheduling on
  adversarial workloads;
* Lemma 1 — immediate rejection degrades with Delta, the paper's algorithm
  does not;
* Theorem 2 — bounded rejected weight and a bounded ratio against the
  certified lower bound;
* Theorem 3 — the greedy stays within alpha^alpha of the certified lower
  bound (and of the discretised optimum on tiny instances);
* Lemma 2 — the adaptive adversary forces a ratio that grows with alpha.
"""

import pytest

from repro.baselines.greedy import GreedyDispatchScheduler
from repro.core.bounds import (
    energy_min_competitive_ratio,
    flow_time_competitive_ratio,
    flow_time_rejection_budget,
)
from repro.core.dual import FlowTimeDualAccountant
from repro.core.energy_min import ConfigLPEnergyScheduler
from repro.core.flow_time import RejectionFlowTimeScheduler
from repro.core.flow_time_energy import RejectionEnergyFlowScheduler
from repro.lowerbounds.energy_bounds import best_energy_lower_bound, per_job_flow_energy_lower_bound
from repro.lowerbounds.flow_combinatorial import best_flow_time_lower_bound
from repro.simulation.engine import FlowTimeEngine
from repro.simulation.metrics import (
    flow_plus_energy,
    rejected_fraction,
    rejected_weight_fraction,
    total_flow_time,
)
from repro.simulation.speed_engine import SpeedScalingEngine
from repro.simulation.validation import validate_result
from repro.workloads.adversarial import Lemma2Adversary, lemma1_instance, overload_burst_instance
from repro.workloads.generators import (
    DeadlineInstanceGenerator,
    InstanceGenerator,
    WeightedInstanceGenerator,
)


class TestTheorem1EndToEnd:
    @pytest.mark.parametrize("epsilon", [0.2, 0.5])
    @pytest.mark.parametrize(
        "generator_kwargs",
        [
            {"size_distribution": "pareto", "arrival_process": "poisson"},
            {"size_distribution": "bimodal", "arrival_process": "bursty"},
            {"machine_model": "restricted", "size_distribution": "exponential"},
        ],
    )
    def test_budget_ratio_and_validity(self, epsilon, generator_kwargs):
        instance = InstanceGenerator(num_machines=3, seed=42, **generator_kwargs).generate(150)
        scheduler = RejectionFlowTimeScheduler(epsilon=epsilon)
        result = FlowTimeEngine(instance).run(scheduler)

        validate_result(result)
        assert rejected_fraction(result) <= flow_time_rejection_budget(epsilon) + 1e-9
        ratio_upper_estimate = total_flow_time(result) / best_flow_time_lower_bound(instance)
        assert ratio_upper_estimate <= flow_time_competitive_ratio(epsilon)

        accountant = FlowTimeDualAccountant(result, scheduler)
        check = accountant.check_feasibility(samples_per_job=6)
        assert check.feasible

    def test_large_win_on_adversarial_workload(self):
        instance = overload_burst_instance(4, burst_jobs=4, trailing_shorts=400)
        engine = FlowTimeEngine(instance)
        ours = total_flow_time(engine.run(RejectionFlowTimeScheduler(epsilon=0.25)))
        greedy = total_flow_time(engine.run(GreedyDispatchScheduler()))
        assert greedy > 3.0 * ours


class TestLemma1EndToEnd:
    def test_immediate_rejection_gap_grows(self):
        from repro.baselines.immediate_rejection import ImmediateRejectionScheduler

        gaps = []
        for length in (4.0, 16.0):
            instance = lemma1_instance(length=length, epsilon=0.25)
            engine = FlowTimeEngine(instance)
            lb = best_flow_time_lower_bound(instance)
            immediate = total_flow_time(
                engine.run(ImmediateRejectionScheduler(epsilon=0.25, variant="largest"))
            )
            ours = total_flow_time(engine.run(RejectionFlowTimeScheduler(epsilon=0.25)))
            gaps.append((immediate / lb, ours / lb))
        # The immediate-rejection ratio grows with Delta, ours stays below the bound.
        assert gaps[1][0] > 2.0 * gaps[0][0]
        assert gaps[1][1] <= flow_time_competitive_ratio(0.25)


class TestTheorem2EndToEnd:
    @pytest.mark.parametrize("alpha", [2.0, 3.0])
    def test_budget_and_ratio(self, alpha):
        epsilon = 0.4
        instance = WeightedInstanceGenerator(num_machines=2, alpha=alpha, seed=17).generate(100)
        scheduler = RejectionEnergyFlowScheduler(epsilon=epsilon)
        result = SpeedScalingEngine(instance).run(scheduler)

        validate_result(result)
        assert rejected_weight_fraction(result) <= epsilon + 1e-9
        objective = flow_plus_energy(result)
        lower_bound = per_job_flow_energy_lower_bound(instance)
        # The certified lower bound is loose, but the observed ratio on random
        # instances should still be a small constant (far below the paper bound).
        assert objective / lower_bound < 10.0

    def test_rejection_improves_worst_case(self):
        # A pathological backlog: without rejection the non-preemptive schedule
        # is dramatically worse.
        from repro.simulation.instance import Instance
        from repro.simulation.job import Job
        from repro.simulation.machine import Machine

        jobs = [Job(0, 0.0, (80.0,), weight=0.2)]
        jobs += [Job(j, 1.0 + 0.05 * j, (1.0,), weight=3.0) for j in range(1, 40)]
        instance = Instance.build(Machine.fleet(1, alpha=2.0), jobs)
        engine = SpeedScalingEngine(instance)
        with_rejection = flow_plus_energy(engine.run(RejectionEnergyFlowScheduler(epsilon=0.3)))
        without = flow_plus_energy(
            engine.run(RejectionEnergyFlowScheduler(epsilon=0.3, enable_rejection=False))
        )
        assert without > 2.0 * with_rejection


class TestTheorem3EndToEnd:
    @pytest.mark.parametrize("alpha", [1.5, 2.0, 3.0])
    def test_ratio_against_certified_bound(self, alpha):
        instance = DeadlineInstanceGenerator(
            num_machines=2, slack=3.0, alpha=alpha, seed=23
        ).generate(20)
        schedule = ConfigLPEnergyScheduler().schedule(instance)
        schedule.validate()
        lower_bound = best_energy_lower_bound(instance)
        assert schedule.total_energy >= lower_bound - 1e-9
        # The certified bound is loose for large slack; on slack-3 instances the
        # observed ratio stays within a small constant of alpha^alpha.
        assert schedule.total_energy <= 2.0 * energy_min_competitive_ratio(alpha) * lower_bound

    def test_lemma2_ratio_grows_with_alpha(self):
        ratios = [Lemma2Adversary(alpha=alpha).play().ratio for alpha in (2.0, 3.0, 4.0)]
        assert ratios[0] < ratios[1] < ratios[2]
        for alpha, ratio in zip((2.0, 3.0, 4.0), ratios):
            assert ratio <= alpha**alpha + 1e-6
