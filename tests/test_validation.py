"""Unit tests for the schedule validator."""

import pytest

from repro.exceptions import ScheduleValidationError
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.schedule import ExecutionInterval, JobRecord, SimulationResult
from repro.simulation.validation import assert_rejection_budget, validate_result


def _instance() -> Instance:
    return Instance.build(1, [Job(0, 0.0, (2.0,)), Job(1, 1.0, (3.0,))])


def _good_result() -> SimulationResult:
    records = {
        0: JobRecord(0, 1.0, 0.0, 0, 0.0, 2.0, False),
        1: JobRecord(1, 1.0, 1.0, 0, 2.0, 5.0, False),
    }
    intervals = [ExecutionInterval(0, 0, 0.0, 2.0), ExecutionInterval(0, 1, 2.0, 5.0)]
    return SimulationResult(_instance(), records, intervals)


class TestValidateResult:
    def test_valid_schedule_passes(self):
        report = validate_result(_good_result())
        assert report.ok

    def test_missing_record_detected(self):
        result = _good_result()
        del result.records[1]
        report = validate_result(result, raise_on_error=False)
        assert not report.ok

    def test_overlap_detected(self):
        result = _good_result()
        result.intervals[1] = ExecutionInterval(0, 1, 1.0, 4.0)
        report = validate_result(result, raise_on_error=False)
        assert any("overlaps" in v for v in report.violations)

    def test_start_before_release_detected(self):
        result = _good_result()
        result.intervals[1] = ExecutionInterval(0, 1, 0.5, 3.5)
        result.records[1] = JobRecord(1, 1.0, 1.0, 0, 0.5, 3.5, False)
        report = validate_result(result, raise_on_error=False)
        assert any("before release" in v for v in report.violations)

    def test_preempted_completed_job_detected(self):
        result = _good_result()
        result.intervals.append(ExecutionInterval(0, 0, 6.0, 6.5))
        report = validate_result(result, raise_on_error=False)
        assert any("non-preemptive" in v for v in report.violations)

    def test_wrong_amount_of_work_detected(self):
        result = _good_result()
        result.intervals[0] = ExecutionInterval(0, 0, 0.0, 1.0)
        report = validate_result(result, raise_on_error=False)
        assert any("units of work" in v for v in report.violations)

    def test_raise_on_error(self):
        result = _good_result()
        del result.records[1]
        with pytest.raises(ScheduleValidationError):
            validate_result(result)

    def test_deadline_check(self):
        jobs = [Job(0, 0.0, (2.0,), deadline=1.5)]
        instance = Instance.build(1, jobs)
        records = {0: JobRecord(0, 1.0, 0.0, 0, 0.0, 2.0, False)}
        intervals = [ExecutionInterval(0, 0, 0.0, 2.0)]
        result = SimulationResult(instance, records, intervals)
        report = validate_result(result, require_deadlines=True, raise_on_error=False)
        assert any("deadline" in v for v in report.violations)
        # Without the deadline requirement the schedule is fine.
        assert validate_result(result, raise_on_error=False).ok


class TestRejectionBudget:
    def _result_with_rejection(self) -> SimulationResult:
        records = {
            0: JobRecord(0, 3.0, 0.0, 0, 0.0, 2.0, False),
            1: JobRecord(1, 1.0, 1.0, 0, None, None, True, rejection_time=1.0),
        }
        intervals = [ExecutionInterval(0, 0, 0.0, 2.0)]
        instance = Instance.build(
            1, [Job(0, 0.0, (2.0,), weight=3.0), Job(1, 1.0, (3.0,), weight=1.0)]
        )
        return SimulationResult(instance, records, intervals)

    def test_count_budget_ok(self):
        assert_rejection_budget(self._result_with_rejection(), max_fraction=0.5)

    def test_count_budget_violated(self):
        with pytest.raises(ScheduleValidationError):
            assert_rejection_budget(self._result_with_rejection(), max_fraction=0.4)

    def test_weight_budget(self):
        result = self._result_with_rejection()
        assert_rejection_budget(result, max_fraction=0.3, weighted=True)
        with pytest.raises(ScheduleValidationError):
            assert_rejection_budget(result, max_fraction=0.2, weighted=True)
