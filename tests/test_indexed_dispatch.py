"""Three-way differential harness over the dispatch backends, plus unit tests.

The contract of the dispatch backends (PRs: indexed scheduler state,
vectorized SoA backend) is that they change *how* decisions are computed —
lazily-invalidated heaps, Fenwick order statistics, struct-of-arrays fused
sweeps — but never *which* decisions are made:
``FlowTimeEngine(instance, dispatch=mode)`` must produce byte-identical
:class:`SimulationResult` objects for every ``mode`` in
:data:`~repro.simulation.engine.DISPATCH_MODES`, for every policy on every
instance.  The equivalence suite drives that claim across the property-based
instance generators of ``test_property_based`` and the named scenario
catalog; the unit tests cover the data structures directly, including lazy
invalidation under mid-run Rule-1 rejection and both Fenwick layouts of the
vectorized backend.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from test_property_based import flow_instances

from repro.baselines.fcfs import FCFSScheduler
from repro.baselines.greedy import GreedyDispatchScheduler
from repro.baselines.immediate_rejection import ImmediateRejectionScheduler
from repro.core.flow_time import RejectionFlowTimeScheduler
from repro.core.flow_time_energy import RejectionEnergyFlowScheduler
from repro.core.ordering import spt_key
from repro.exceptions import SimulationError
from repro.simulation.engine import (
    DISPATCH_MODES,
    FlowTimeEngine,
    default_dispatch_mode,
)
from repro.simulation.indexed import (
    IndexedPending,
    PendingPrefixStats,
    build_priority_ranks,
)
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.kernels import (
    HAVE_NUMBA,
    KERNEL_LAYOUT_ENV_VAR,
    active_layout,
    fenwick_prefix,
    fenwick_update,
    maybe_jit,
)
from repro.simulation.speed_engine import SpeedScalingEngine
from repro.simulation.state import PendingSet
from repro.workloads.adversarial import overload_burst_instance
from repro.workloads.generators import InstanceGenerator
from repro.workloads.scenarios import SCENARIOS, get_scenario

_EPSILONS = st.sampled_from([0.1, 0.3, 0.5, 0.8])


def _assert_identical(*results):
    """Byte-level equivalence of two or more simulation results."""
    first = results[0]
    for other in results[1:]:
        assert first.records == other.records
        assert first.intervals == other.intervals
        assert first.extras == other.extras
        assert first.algorithm == other.algorithm


def _run_modes(instance, policy, engine_cls=FlowTimeEngine, modes=DISPATCH_MODES):
    return [engine_cls(instance, dispatch=mode).run(policy) for mode in modes]


def _run_both(instance, policy, engine_cls=FlowTimeEngine):
    # Name kept for history; runs the full three-way matrix since the
    # vectorized backend landed.
    return _run_modes(instance, policy, engine_cls)


# --------------------------------------------------------------------------------------
# Equivalence suite (property-based)
# --------------------------------------------------------------------------------------


class TestDispatchEquivalence:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=flow_instances(), epsilon=_EPSILONS)
    def test_theorem1_identical(self, instance, epsilon):
        _assert_identical(*_run_modes(instance, RejectionFlowTimeScheduler(epsilon=epsilon)))

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=flow_instances(), epsilon=_EPSILONS)
    def test_theorem1_rule_ablations_identical(self, instance, epsilon):
        for rule1, rule2 in ((True, False), (False, True), (False, False)):
            policy = RejectionFlowTimeScheduler(
                epsilon=epsilon, enable_rule1=rule1, enable_rule2=rule2
            )
            _assert_identical(*_run_modes(instance, policy))

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=flow_instances())
    def test_baselines_identical(self, instance):
        for policy in (
            GreedyDispatchScheduler("spt"),
            GreedyDispatchScheduler("fcfs"),
            FCFSScheduler(),
            ImmediateRejectionScheduler(0.25, "largest"),
            ImmediateRejectionScheduler(0.25, "overload"),
        ):
            _assert_identical(*_run_modes(instance, policy))

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=flow_instances(max_jobs=10), epsilon=_EPSILONS)
    def test_theorem2_speed_scaling_identical(self, instance, epsilon):
        alpha_instance = instance.with_alpha(2.5)
        policy = RejectionEnergyFlowScheduler(epsilon=epsilon)
        _assert_identical(
            *_run_modes(alpha_instance, policy, engine_cls=SpeedScalingEngine)
        )

    def test_large_burst_identical(self):
        # Deep queues force the Fenwick branch of the order statistics and
        # long stale chains in the select heaps.
        instance = overload_burst_instance(num_machines=4, burst_jobs=60, trailing_shorts=150)
        results = _run_modes(instance, RejectionFlowTimeScheduler(epsilon=0.4))
        _assert_identical(*results)
        assert any(r.rejected for r in results[0].records.values())

    def test_generated_poisson_identical(self):
        instance = InstanceGenerator(num_machines=6, seed=42, size_distribution="pareto").generate(
            800
        )
        _assert_identical(*_run_modes(instance, RejectionFlowTimeScheduler(epsilon=0.5)))

    @pytest.mark.parametrize("scenario_name", sorted(SCENARIOS))
    def test_scenario_catalog_identical(self, scenario_name):
        # Every named heavy-traffic shape (heavy_tail, diurnal, flash_crowd,
        # multi_tenant, load_ramp) through the full dispatch matrix.
        instance = get_scenario(scenario_name).instance(num_jobs=300, num_machines=5, seed=11)
        _assert_identical(*_run_modes(instance, RejectionFlowTimeScheduler(epsilon=0.5)))


# --------------------------------------------------------------------------------------
# Rule-2 victim heap vs brute force
# --------------------------------------------------------------------------------------


class _ShadowVictimScheduler(RejectionFlowTimeScheduler):
    """Theorem 1 scheduler asserting the victim heap against a brute-force scan."""

    def _rule2_victim(self, arriving, machine, state):
        victim = super()._rule2_victim(arriving, machine, state)
        candidates = list(state.pending_jobs(machine)) + [arriving]
        expected = max(
            candidates, key=lambda cand: (cand.size_on(machine), -cand.release, cand.id)
        )
        assert victim.id == expected.id, (victim.id, expected.id)
        return victim


class TestRule2VictimHeap:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=flow_instances(max_jobs=14), epsilon=_EPSILONS)
    def test_heap_matches_brute_force(self, instance, epsilon):
        FlowTimeEngine(instance).run(_ShadowVictimScheduler(epsilon=epsilon))

    def test_heap_matches_brute_force_on_burst(self):
        instance = overload_burst_instance(num_machines=3, burst_jobs=30, trailing_shorts=60)
        FlowTimeEngine(instance).run(_ShadowVictimScheduler(epsilon=0.5))


# --------------------------------------------------------------------------------------
# IndexedPending unit tests
# --------------------------------------------------------------------------------------


def _job(job_id: int, size: float, release: float = 0.0) -> Job:
    return Job(id=job_id, release=release, sizes=(size,))


class TestIndexedPending:
    def test_argmin_in_key_order(self):
        index = IndexedPending(1, spt_key)
        live = PendingSet()
        for job in (_job(0, 5.0), _job(1, 2.0), _job(2, 9.0)):
            index.push(0, job)
            live.append(job.id)
        assert index.argmin(0, live).id == 1

    def test_lazy_invalidation_skips_stale_entries(self):
        index = IndexedPending(1, spt_key)
        live = PendingSet()
        for job in (_job(0, 1.0), _job(1, 2.0), _job(2, 3.0)):
            index.push(0, job)
            live.append(job.id)
        # Job 0 starts (leaves pending) without touching the heap: the stale
        # head is discarded on the next argmin.
        live.remove(0)
        assert index.heap_size(0) == 3
        assert index.argmin(0, live).id == 1
        assert index.heap_size(0) == 2  # the stale entry was popped, not job 1

    def test_argmin_empty_when_all_stale(self):
        index = IndexedPending(1, spt_key)
        live = PendingSet()
        index.push(0, _job(0, 1.0))
        assert index.argmin(0, live) is None
        assert index.heap_size(0) == 0

    def test_mid_run_rule1_rejection_invalidates_running_job(self):
        # One long job starts, then ceil(1/eps)=2 short arrivals trigger a
        # Rule-1 rejection of the running job.  The heap entry of the long
        # job went stale when it started; the rejection must not resurrect
        # it, and the short jobs must win every later argmin.
        jobs = [Job(0, 0.0, (100.0,)), Job(1, 1.0, (1.0,)), Job(2, 2.0, (1.0,))]
        instance = Instance.build(1, jobs)
        policy = RejectionFlowTimeScheduler(epsilon=0.5, enable_rule2=False)
        results = _run_modes(instance, policy)
        result = results[0]
        assert result.record(0).rejected
        assert result.record(0).rejection_reason == "rule1"
        assert result.record(1).finished and result.record(2).finished
        _assert_identical(*results)

    def test_mid_run_rejection_of_pending_job(self):
        # Rule 2 rejects a *pending* job: its heap entry must be skipped as
        # stale when it surfaces.
        instance = overload_burst_instance(num_machines=1, burst_jobs=6, trailing_shorts=10)
        policy = RejectionFlowTimeScheduler(epsilon=0.5)
        results = _run_modes(instance, policy)
        assert policy.log.rule2, "scenario must fire Rule 2"
        _assert_identical(*results)


class TestPendingPrefixStats:
    def test_ranks_match_sorted_order(self):
        jobs = [_job(0, 5.0), _job(1, 2.0, release=1.0), _job(2, 2.0), _job(3, 9.0)]
        ranks = build_priority_ranks(jobs, 1, spt_key)[0]
        expected = sorted(jobs, key=lambda j: spt_key(j, 0))
        assert [ranks[j.id] for j in expected] == list(range(len(jobs)))

    def test_stats_below_counts_and_sums(self):
        jobs = [_job(0, 5.0), _job(1, 2.0), _job(2, 3.0), _job(3, 9.0)]
        stats = PendingPrefixStats(build_priority_ranks(jobs, 1, spt_key), len(jobs))
        for job in jobs[:3]:
            stats.add(0, job.id, job.sizes[0])
        # Job 3 (size 9) is preceded by all three pending jobs.
        count, total = stats.prefix_of(0, 3)
        assert count == 3
        assert total == pytest.approx(5.0 + 2.0 + 3.0)
        # Job 0 (size 5) is preceded by sizes 2 and 3.
        count, total = stats.prefix_of(0, 0)
        assert count == 2
        assert total == pytest.approx(2.0 + 3.0)
        stats.remove(0, 1, 2.0)
        count, total = stats.prefix_of(0, 0)
        assert count == 1
        assert total == pytest.approx(3.0)


class TestPendingSet:
    def test_list_like_surface(self):
        pending = PendingSet()
        pending.append(3)
        pending.extend([1, 4])
        assert list(pending) == [3, 1, 4]
        assert 1 in pending and 2 not in pending
        assert len(pending) == 3 and pending
        pending.remove(1)
        assert list(pending) == [3, 4]
        with pytest.raises(ValueError):
            pending.remove(99)
        assert not PendingSet()


class TestDispatchModes:
    def test_default_mode_is_indexed(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISPATCH", raising=False)
        assert default_dispatch_mode() == "indexed"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH", "scan")
        assert default_dispatch_mode() == "scan"
        instance = Instance.build(1, [Job(0, 0.0, (1.0,))])
        assert FlowTimeEngine(instance).dispatch == "scan"

    def test_invalid_env_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH", "quantum")
        with pytest.raises(SimulationError):
            default_dispatch_mode()

    def test_invalid_explicit_mode_rejected(self):
        instance = Instance.build(1, [Job(0, 0.0, (1.0,))])
        with pytest.raises(SimulationError):
            FlowTimeEngine(instance, dispatch="quantum")

    def test_invalid_mode_error_names_valid_modes(self, monkeypatch):
        # The error must tell the operator what the valid values are.
        monkeypatch.setenv("REPRO_DISPATCH", "simd")
        with pytest.raises(SimulationError, match="simd"):
            default_dispatch_mode()

    def test_env_vectorized_selects_soa_stepper(self, monkeypatch):
        from repro.simulation.soa import VectorizedStepper

        monkeypatch.setenv("REPRO_DISPATCH", "vectorized")
        assert default_dispatch_mode() == "vectorized"
        instance = Instance.build(1, [Job(0, 0.0, (1.0,))])
        engine = FlowTimeEngine(instance)
        assert engine.dispatch == "vectorized"
        assert isinstance(engine.stepper(RejectionFlowTimeScheduler(0.5)), VectorizedStepper)


class TestCampaignStoreEquivalence:
    def test_smoke_grid_stores_byte_identical_across_modes(self, tmp_path, monkeypatch):
        # The real equivalence gate: compute the smoke grid under each
        # dispatch mode into its own store and compare the artifact bytes.
        # (Re-running one mode against the other's store only proves the
        # cache keys are stable — cache hits skip computation entirely.)
        from repro.campaigns import ArtifactStore, CampaignRunner, get_grid

        tasks = get_grid("smoke").tasks()
        payloads = {}
        for mode in DISPATCH_MODES:
            monkeypatch.setenv("REPRO_DISPATCH", mode)
            store = ArtifactStore(tmp_path / mode)
            summary = CampaignRunner(store, workers=1).run(tasks)
            assert summary.computed == len(tasks)
            payloads[mode] = sorted(
                (path.name, path.read_bytes())
                for path in (tmp_path / mode).rglob("*.json")
            )
        for mode in DISPATCH_MODES[1:]:
            assert payloads[DISPATCH_MODES[0]] == payloads[mode], mode
        assert payloads[DISPATCH_MODES[0]], "stores must not be empty"


class TestDetachedState:
    def test_select_next_works_without_an_engine(self):
        # Pre-index behavior: policies are usable on a hand-built
        # EngineState (unit tests, custom tooling) without install_priority.
        from repro.simulation.state import EngineState

        jobs = [Job(0, 0.0, (5.0,)), Job(1, 0.0, (2.0,)), Job(2, 1.0, (2.0,))]
        instance = Instance.build(1, jobs)
        state = EngineState(instance)
        state.machines[0].pending.extend([0, 1, 2])
        assert FCFSScheduler().select_next(0.0, 0, state) == 0  # earliest release
        assert RejectionFlowTimeScheduler(0.5).select_next(0.0, 0, state) == 1  # SPT
        assert GreedyDispatchScheduler("spt").select_next(0.0, 0, state) == 1
        assert ImmediateRejectionScheduler(0.2).select_next(0.0, 0, state) == 1


class TestDeliberateIdlePolicy:
    def test_recheck_keeps_offering_idle_machines(self):
        # A policy that refuses to start job 0 until job 1 has been released
        # exercises the recheck set: the machine is idle with pending work
        # while the policy returns None, and must be re-offered at later
        # events (the pre-index engine offered every machine at every event).
        class HoldBack(FCFSScheduler):
            name = "hold-back"

            def select_next(self, t, machine, state):
                pending = state.pending_jobs(machine)
                if not pending:
                    return None
                if t < 5.0:
                    return None  # deliberately idle until the second arrival
                return min(pending, key=lambda job: (job.release, job.id)).id

        jobs = [Job(0, 0.0, (1.0,)), Job(1, 5.0, (1.0,))]
        instance = Instance.build(1, jobs)
        result = FlowTimeEngine(instance, dispatch="indexed").run(HoldBack())
        assert result.record(0).start == pytest.approx(5.0)
        assert result.record(1).finished


# --------------------------------------------------------------------------------------
# Vectorized backend: optional-JIT kernels and Fenwick layouts
# --------------------------------------------------------------------------------------


class TestKernelLayouts:
    def test_auto_layout_matches_numba_availability(self, monkeypatch):
        monkeypatch.delenv(KERNEL_LAYOUT_ENV_VAR, raising=False)
        assert active_layout() == ("numpy" if HAVE_NUMBA else "lists")

    @pytest.mark.parametrize("layout", ["numpy", "lists"])
    def test_explicit_layout_honoured(self, monkeypatch, layout):
        monkeypatch.setenv(KERNEL_LAYOUT_ENV_VAR, layout)
        assert active_layout() == layout

    def test_unknown_layout_rejected(self, monkeypatch):
        from repro.exceptions import InvalidParameterError

        monkeypatch.setenv(KERNEL_LAYOUT_ENV_VAR, "torch")
        with pytest.raises(InvalidParameterError, match=KERNEL_LAYOUT_ENV_VAR):
            active_layout()

    def test_unknown_layout_fails_at_engine_construction(self, monkeypatch):
        # The env var is resolved when the vectorized stepper is built, not
        # lazily at first Fenwick materialisation — a typo must not run a
        # whole workload on a different layout than the operator asked for.
        from repro.exceptions import InvalidParameterError

        monkeypatch.setenv(KERNEL_LAYOUT_ENV_VAR, "torch")
        instance = Instance.build(1, [Job(0, 0.0, (1.0,))])
        engine = FlowTimeEngine(instance, dispatch="vectorized")
        with pytest.raises(InvalidParameterError, match=KERNEL_LAYOUT_ENV_VAR):
            engine.stepper(RejectionFlowTimeScheduler(0.5))

    def test_maybe_jit_degrades_to_identity(self):
        def walk(x):
            return x

        jitted = maybe_jit(walk)
        if HAVE_NUMBA:  # pragma: no cover - depends on the environment
            assert jitted is not walk
        else:
            assert jitted is walk

    def test_fenwick_kernels_roundtrip(self):
        import numpy as np

        n = 8
        counts = np.zeros(n + 1, dtype=np.int64)
        sizes = np.zeros(n + 1, dtype=np.float64)
        fenwick_update(counts, sizes, 3, n, 2.5, 1)
        fenwick_update(counts, sizes, 5, n, 1.5, 1)
        assert fenwick_prefix(counts, sizes, n) == (2, 4.0)
        assert fenwick_prefix(counts, sizes, 4) == (1, 2.5)
        fenwick_update(counts, sizes, 3, n, -2.5, -1)
        assert fenwick_prefix(counts, sizes, n) == (1, 1.5)

    def test_numpy_layout_matches_list_layout_queries(self):
        from repro.simulation.soa import VectorizedPrefixStats

        jobs = [_job(i, size) for i, size in enumerate([5.0, 2.0, 3.0, 9.0, 1.0])]
        ranks = build_priority_ranks(jobs, 1, spt_key)
        listy = VectorizedPrefixStats(ranks, len(jobs), layout="lists")
        numpyish = VectorizedPrefixStats(ranks, len(jobs), layout="numpy")
        for stats in (listy, numpyish):
            for job in jobs[:4]:
                stats.add(0, job.id, job.sizes[0])
        for job in jobs:
            assert numpyish.prefix_of(0, job.id) == listy.prefix_of(0, job.id)
        listy.remove(0, 1, 2.0)
        numpyish.remove(0, 1, 2.0)
        for job in jobs:
            assert numpyish.prefix_of(0, job.id) == listy.prefix_of(0, job.id)

    def test_unknown_stats_layout_rejected(self):
        from repro.simulation.soa import VectorizedPrefixStats

        with pytest.raises(ValueError, match="layout"):
            VectorizedPrefixStats([{}], 1, layout="torch")

    @pytest.mark.parametrize("layout", ["lists", "numpy"])
    def test_layouts_byte_identical_end_to_end(self, monkeypatch, layout):
        # The numba-absent "numpy" path must fingerprint identically to the
        # default list path (and, transitively, to the JIT path, which runs
        # the very same kernel bodies).  Deep queues force the Fenwick
        # branch, so the layout actually carries the run.
        instance = overload_burst_instance(num_machines=4, burst_jobs=60, trailing_shorts=120)
        policy = RejectionFlowTimeScheduler(epsilon=0.4)
        reference = FlowTimeEngine(instance, dispatch="indexed").run(policy)
        monkeypatch.setenv(KERNEL_LAYOUT_ENV_VAR, layout)
        vectorized = FlowTimeEngine(instance, dispatch="vectorized").run(policy)
        _assert_identical(reference, vectorized)


# --------------------------------------------------------------------------------------
# SoA columns
# --------------------------------------------------------------------------------------


class TestSoAColumns:
    def test_ingest_jobs_fills_columns(self):
        from repro.simulation.soa import SoAColumns

        cols = SoAColumns(2)
        cols.ingest_jobs(
            [
                Job(0, 0.0, (1.0, 2.0)),
                Job(1, 1.5, (3.0, 4.0), weight=2.0, deadline=9.0),
            ]
        )
        assert cols.dense
        assert cols.row_map() is None
        assert cols.releases == [0.0, 1.5]
        assert cols.weights == [1.0, 2.0]
        assert cols.deadlines == [None, 9.0]
        assert cols.size_cols[0] == [1.0, 3.0]
        assert cols.size_cols[1] == [2.0, 4.0]

    def test_non_dense_ids_fall_back_to_row_map(self):
        from repro.simulation.soa import SoAColumns

        cols = SoAColumns(1)
        cols.ingest_jobs([Job(7, 0.0, (1.0,)), Job(3, 1.0, (2.0,))])
        assert not cols.dense
        row_of = cols.row_map()
        assert row_of == {7: 0, 3: 1}
        assert cols.size_cols[0][row_of[3]] == 2.0

    def test_ingest_chunk_matches_ingest_jobs(self):
        from repro.simulation.soa import SoAColumns
        from repro.workloads.scenarios import get_scenario

        chunks = list(get_scenario("heavy-tail-pareto").job_chunks(64, num_machines=3, seed=5))
        by_chunk = SoAColumns(3)
        by_rows = SoAColumns(3)
        for chunk in chunks:
            by_chunk.ingest_chunk(chunk)
            by_rows.ingest_jobs(chunk.jobs())
        assert by_chunk.releases == by_rows.releases
        assert by_chunk.weights == by_rows.weights
        assert by_chunk.deadlines == by_rows.deadlines
        assert by_chunk.size_cols == by_rows.size_cols
        assert by_chunk.row_map() == by_rows.row_map()
