"""Streaming ``SchedulerSession``: batch equivalence, checkpointing, stream.

The contract of the streaming API (PR: SchedulerSession) is threefold:

* **Batch equivalence** — replaying any instance through
  ``submit_many`` + ``finalize()`` yields byte-identical schedules and
  objectives to ``repro.solve()`` for every streaming-capable algorithm, in
  both dispatch modes (property-based below, plus a deep-queue burst that
  exercises the Fenwick order-statistics path);
* **Checkpointing** — a canonical-JSON ``snapshot()`` taken mid-run and
  ``restore()``-d resumes to the same final result and the same
  decision-event stream;
* **Observability** — the decision-event stream is complete and consistent
  with the per-job records.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from test_property_based import flow_instances

import repro
from repro.exceptions import (
    InvalidParameterError,
    SessionStateError,
    SimulationError,
    StreamingNotSupportedError,
)
from repro.service import DecisionEvent, SchedulerSession, open_session, streaming_algorithms
from repro.service.ndjson import event_line, parse_job_line, read_jobs
from repro.simulation.engine import FlowTimeEngine
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.solvers import get_solver, solve
from repro.workloads.adversarial import overload_burst_instance
from repro.workloads.generators import InstanceGenerator, WeightedInstanceGenerator

_DISPATCH_MODES = ("indexed", "scan", "vectorized")

#: Streaming algorithms with their parameter sets used across the suite.
_FLOW_STREAMING = [
    ("rejection-flow", {"epsilon": 0.5}),
    ("greedy", {}),
    ("fcfs", {}),
    ("immediate-rejection", {"epsilon": 0.25}),
]


def _assert_outcome_identical(streamed, batch):
    assert streamed.objective_value == batch.objective_value
    assert streamed.breakdown == batch.breakdown
    assert streamed.rejected_count == batch.rejected_count
    assert streamed.result.records == batch.result.records
    assert streamed.result.intervals == batch.result.intervals
    assert streamed.result.extras == batch.result.extras


def _replay(instance, algorithm, dispatch=None, **params):
    session = open_session(algorithm, instance.machines, dispatch=dispatch, **params)
    session.submit_many(instance.jobs)
    return session, session.finalize()


# --------------------------------------------------------------------------------------
# Batch equivalence
# --------------------------------------------------------------------------------------


class TestBatchEquivalence:
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=flow_instances(), epsilon=st.sampled_from([0.1, 0.3, 0.5, 0.8]))
    def test_theorem1_replay_identical(self, instance, epsilon):
        for dispatch in _DISPATCH_MODES:
            batch = solve(instance, "rejection-flow", epsilon=epsilon)
            _, streamed = _replay(instance, "rejection-flow", dispatch=dispatch, epsilon=epsilon)
            _assert_outcome_identical(streamed, batch)

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=flow_instances())
    def test_all_flow_streaming_algorithms_identical(self, instance):
        for algorithm, params in _FLOW_STREAMING:
            batch = solve(instance, algorithm, **params)
            for dispatch in _DISPATCH_MODES:
                _, streamed = _replay(instance, algorithm, dispatch=dispatch, **params)
                _assert_outcome_identical(streamed, batch)

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=flow_instances(max_jobs=10), epsilon=st.sampled_from([0.3, 0.5]))
    def test_speed_scaling_replay_identical(self, instance, epsilon):
        alpha_instance = instance.with_alpha(2.5)
        batch = solve(alpha_instance, "rejection-energy-flow", epsilon=epsilon)
        for dispatch in _DISPATCH_MODES:
            _, streamed = _replay(
                alpha_instance, "rejection-energy-flow", dispatch=dispatch, epsilon=epsilon
            )
            _assert_outcome_identical(streamed, batch)

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=flow_instances())
    def test_interleaved_polling_identical(self, instance):
        # Submitting one job at a time with a poll in between must make the
        # same decisions as the batch run (events observed "as they happen").
        batch = solve(instance, "rejection-flow", epsilon=0.5)
        session = open_session("rejection-flow", instance.machines, epsilon=0.5)
        for job in instance.jobs:
            session.submit(job)
            session.poll()
        _assert_outcome_identical(session.finalize(), batch)

    def test_deep_queue_interleaved_polling_survives_growth(self):
        # Regression: the Fenwick prefix stats materialise mid-stream on
        # this path (queues outgrow the cutoff while later jobs are still
        # unsubmitted); jobs registered afterwards must be rankable — this
        # used to KeyError in prefix_of on the `repro serve` hot path.
        from repro.simulation.validation import validate_result

        instance = overload_burst_instance(num_machines=2, burst_jobs=40, trailing_shorts=80)
        session = open_session("rejection-flow", instance.machines, epsilon=0.4)
        for job in instance.jobs:
            session.submit(job)
            session.poll()
        outcome = session.finalize()
        validate_result(outcome.result)
        assert len(outcome.result.records) == instance.num_jobs
        # Deterministic: replaying the identical op interleaving (what
        # snapshot/restore does) reproduces the identical result.
        repeat = open_session("rejection-flow", instance.machines, epsilon=0.4)
        for job in instance.jobs:
            repeat.submit(job)
            repeat.poll()
        _assert_outcome_identical(repeat.finalize(), outcome)

    def test_deep_queue_burst_identical(self):
        # Queues far beyond PREFIX_SCAN_CUTOFF force the Fenwick
        # order-statistics branch; the session must materialise the same
        # rank universe as the batch run.
        instance = overload_burst_instance(num_machines=4, burst_jobs=60, trailing_shorts=150)
        batch = solve(instance, "rejection-flow", epsilon=0.4)
        assert batch.rejected_count > 0
        for dispatch in _DISPATCH_MODES:
            _, streamed = _replay(instance, "rejection-flow", dispatch=dispatch, epsilon=0.4)
            _assert_outcome_identical(streamed, batch)

    def test_generated_instance_identical(self):
        instance = InstanceGenerator(num_machines=6, seed=42).generate(500)
        batch = solve(instance, "rejection-flow", epsilon=0.5)
        _, streamed = _replay(instance, "rejection-flow", epsilon=0.5)
        _assert_outcome_identical(streamed, batch)

    def test_weighted_speed_scaling_generated(self):
        instance = WeightedInstanceGenerator(num_machines=3, seed=5, alpha=2.5).generate(80)
        batch = solve(instance, "rejection-energy-flow", epsilon=0.5)
        _, streamed = _replay(instance, "rejection-energy-flow", epsilon=0.5)
        _assert_outcome_identical(streamed, batch)


# --------------------------------------------------------------------------------------
# JobChunk ingestion
# --------------------------------------------------------------------------------------


class TestChunkIngestion:
    def test_submit_many_accepts_job_chunks(self):
        generator = InstanceGenerator(num_machines=4, seed=11)
        instance = generator.generate_large(600, chunk_size=128)
        session = open_session("rejection-flow", generator.machines(), epsilon=0.5)
        total = 0
        for chunk in generator.iter_job_chunks(600, chunk_size=128):
            total += session.submit_many(chunk)
        assert total == 600
        streamed = session.finalize()
        batch = solve(instance, "rejection-flow", epsilon=0.5)
        _assert_outcome_identical(streamed, batch)

    def test_chunked_and_listwise_agree(self):
        generator = InstanceGenerator(num_machines=2, seed=3)
        instance = generator.generate_large(100, chunk_size=32)
        by_chunk = open_session("fcfs", generator.machines())
        for chunk in generator.iter_job_chunks(100, chunk_size=32):
            by_chunk.submit_many(chunk)
        by_list = open_session("fcfs", generator.machines())
        by_list.submit_many(instance.jobs)
        _assert_outcome_identical(by_chunk.finalize(), by_list.finalize())

    def test_vectorized_chunk_ingest_identical_to_batch(self):
        # Chunks submitted to a vectorized session take the zero-copy
        # ``offer_chunk`` path (SoA columns filled straight from the chunk
        # arrays); the outcome must stay byte-identical to the batch facade
        # and to listwise submission on the same dispatch mode.
        generator = InstanceGenerator(num_machines=4, seed=11)
        instance = generator.generate_large(600, chunk_size=128)
        batch = solve(instance, "rejection-flow", epsilon=0.5, dispatch="vectorized")
        by_chunk = open_session(
            "rejection-flow", generator.machines(), dispatch="vectorized", epsilon=0.5
        )
        for chunk in generator.iter_job_chunks(600, chunk_size=128):
            by_chunk.submit_many(chunk)
        by_list = open_session(
            "rejection-flow", generator.machines(), dispatch="vectorized", epsilon=0.5
        )
        by_list.submit_many(instance.jobs)
        _assert_outcome_identical(by_chunk.finalize(), batch)
        _assert_outcome_identical(by_list.finalize(), batch)

    def test_vectorized_chunk_ingest_with_interleaved_polling(self):
        # Poll between chunks so the SoA columns grow while the Fenwick
        # stats are already materialised (the `repro serve` hot path).
        generator = InstanceGenerator(num_machines=3, seed=29)
        instance = generator.generate_large(400, chunk_size=64)
        batch = solve(instance, "rejection-flow", epsilon=0.4, dispatch="vectorized")
        session = open_session(
            "rejection-flow", generator.machines(), dispatch="vectorized", epsilon=0.4
        )
        for chunk in generator.iter_job_chunks(400, chunk_size=64):
            session.submit_many(chunk)
            session.poll()
        _assert_outcome_identical(session.finalize(), batch)


# --------------------------------------------------------------------------------------
# Snapshot / restore
# --------------------------------------------------------------------------------------


class TestSnapshotRestore:
    def _mid_run_session(self, instance, polled: bool):
        session = open_session("rejection-flow", instance.machines, epsilon=0.5)
        half = len(instance.jobs) // 2
        for job in instance.jobs[:half]:
            session.submit(job)
        if polled:
            session.poll()
        return session, half

    @pytest.mark.parametrize("polled", [False, True])
    def test_restore_resumes_to_same_final_result(self, polled):
        instance = InstanceGenerator(num_machines=3, seed=17).generate(120)
        batch = solve(instance, "rejection-flow", epsilon=0.5)
        session, half = self._mid_run_session(instance, polled)
        restored = SchedulerSession.restore(session.snapshot())
        for job in instance.jobs[half:]:
            session.submit(job)
            restored.submit(job)
        original = session.finalize()
        resumed = restored.finalize()
        _assert_outcome_identical(resumed, original)
        _assert_outcome_identical(resumed, batch)
        assert restored.events == session.events

    def test_vectorized_snapshot_restore_identical(self):
        # A vectorized session checkpointed mid-run (Fenwick stats
        # materialised, SoA columns half-filled) must restore with the same
        # dispatch mode and resume to the byte-identical batch outcome.
        instance = overload_burst_instance(num_machines=3, burst_jobs=40, trailing_shorts=60)
        batch = solve(instance, "rejection-flow", epsilon=0.4, dispatch="vectorized")
        session = open_session(
            "rejection-flow", instance.machines, dispatch="vectorized", epsilon=0.4
        )
        half = len(instance.jobs) // 2
        for job in instance.jobs[:half]:
            session.submit(job)
        session.poll()
        restored = SchedulerSession.restore(session.snapshot())
        assert restored.dispatch == "vectorized"
        for job in instance.jobs[half:]:
            session.submit(job)
            restored.submit(job)
        original = session.finalize()
        resumed = restored.finalize()
        _assert_outcome_identical(resumed, original)
        _assert_outcome_identical(resumed, batch)
        assert restored.events == session.events

    def test_restore_from_json_string(self):
        instance = InstanceGenerator(num_machines=2, seed=23).generate(40)
        session, half = self._mid_run_session(instance, polled=True)
        payload = session.to_json()
        restored = SchedulerSession.restore(payload)
        assert restored.algorithm == "rejection-flow"
        assert restored.num_submitted == half
        assert restored.time == session.time
        # the restored consume cursor matches: no already-handed-out events
        # are re-delivered.
        assert restored.take_events() == session.take_events()

    def test_snapshot_roundtrip_is_stable(self):
        instance = InstanceGenerator(num_machines=2, seed=29).generate(30)
        session, _ = self._mid_run_session(instance, polled=True)
        snap = session.to_json()
        assert SchedulerSession.restore(snap).to_json() == snap

    def test_op_log_stays_compact_on_serve_pattern(self):
        # One submit + one poll per job (the serve loop) must not grow the
        # op log per job: runs compress to a single submit_poll_each entry,
        # and the snapshot still restores to an identical session.
        session = open_session("fcfs", 2, retain_events=False)
        for i in range(100):
            session.submit(Job(i, float(i), (1.0, 1.0)))
            session.poll()
        snapshot = session.snapshot()
        assert len(snapshot["ops"]) <= 3
        restored = SchedulerSession.restore(snapshot)
        assert restored.to_json() == session.to_json()
        _assert_outcome_identical(restored.finalize(), session.finalize())

    def test_restore_of_unretained_session_matches_buffer_state(self):
        # restore() must reproduce the freed-buffer semantics: events the
        # original handed out (and freed) must not reappear on .events or be
        # re-delivered by take_events().
        instance = InstanceGenerator(num_machines=2, seed=67).generate(40)
        for consume_with in ("advance", "poll"):
            session = open_session(
                "fcfs", instance.machines, retain_events=False
            )
            for job in instance.jobs[:20]:
                session.submit(job)
                if consume_with == "poll":
                    session.poll()
            if consume_with == "advance":
                session.advance_to(session._watermark)
            restored = SchedulerSession.restore(session.snapshot())
            assert restored.events == session.events
            assert restored.take_events() == session.take_events()
            for job in instance.jobs[20:]:
                session.submit(job)
                restored.submit(job)
            _assert_outcome_identical(restored.finalize(), session.finalize())

    def test_restore_rejects_unknown_schema(self):
        session = open_session("fcfs", 2)
        snapshot = session.snapshot()
        snapshot["schema"] = 999
        with pytest.raises(SessionStateError, match="schema"):
            SchedulerSession.restore(snapshot)

    def test_snapshot_after_finalize_rejected(self):
        session = open_session("fcfs", 2)
        session.submit(Job(0, 0.0, (1.0, 2.0)))
        session.finalize()
        with pytest.raises(SessionStateError, match="finalized"):
            session.snapshot()

    def test_deep_queue_snapshot_resumes_identically(self):
        # Snapshot in the middle of a burst (Fenwick stats materialised).
        instance = overload_burst_instance(num_machines=2, burst_jobs=40, trailing_shorts=80)
        session = open_session("rejection-flow", instance.machines, epsilon=0.4)
        cut = 60
        for job in instance.jobs[:cut]:
            session.submit(job)
        session.poll()
        restored = SchedulerSession.restore(session.to_json())
        for job in instance.jobs[cut:]:
            session.submit(job)
            restored.submit(job)
        _assert_outcome_identical(restored.finalize(), session.finalize())


# --------------------------------------------------------------------------------------
# Decision-event stream
# --------------------------------------------------------------------------------------


class TestDecisionStream:
    def test_stream_consistent_with_records(self):
        instance = InstanceGenerator(num_machines=3, seed=31).generate(150)
        session, outcome = _replay(instance, "rejection-flow", epsilon=0.5)
        events = session.events
        by_kind: dict[str, set[int]] = {"dispatch": set(), "start": set(),
                                        "complete": set(), "reject": set()}
        for event in events:
            by_kind[event.kind].add(event.job_id)
        for record in outcome.result.records.values():
            if record.rejected:
                assert record.job_id in by_kind["reject"]
                assert record.job_id not in by_kind["complete"]
            else:
                assert record.job_id in by_kind["dispatch"]
                assert record.job_id in by_kind["start"]
                assert record.job_id in by_kind["complete"]

    def test_stream_is_time_ordered(self):
        instance = InstanceGenerator(num_machines=2, seed=37).generate(60)
        session, _ = _replay(instance, "fcfs")
        times = [event.time for event in session.events]
        assert times == sorted(times)

    def test_unretained_sessions_free_consumed_events(self):
        # Long-lived serve streams pass retain_events=False: handed-out
        # events are dropped from the buffer, so memory stays bounded.
        instance = InstanceGenerator(num_machines=2, seed=43).generate(200)
        session = open_session(
            "rejection-flow", instance.machines, epsilon=0.5, retain_events=False
        )
        handed_out = 0
        for job in instance.jobs:
            session.submit(job)
            handed_out += len(session.poll())
            assert len(session.events) == 0  # everything consumed was freed
        outcome = session.finalize()
        handed_out += len(session.take_events())
        retained = open_session("rejection-flow", instance.machines, epsilon=0.5)
        retained.submit_many(instance.jobs)
        ref = retained.finalize()
        assert handed_out == len(retained.events)
        _assert_outcome_identical(outcome, ref)

    def test_poll_hands_out_each_event_once(self):
        instance = InstanceGenerator(num_machines=2, seed=41).generate(50)
        session = open_session("rejection-flow", instance.machines, epsilon=0.5)
        handed_out: list[DecisionEvent] = []
        for job in instance.jobs:
            session.submit(job)
            handed_out.extend(session.poll())
        session.finalize()
        handed_out.extend(session.take_events())
        assert tuple(handed_out) == session.events

    def test_event_dict_roundtrip(self):
        event = DecisionEvent("reject", 3.5, 7, machine=1, reason="rule2")
        assert DecisionEvent.from_dict(event.as_dict()) == event
        assert DecisionEvent.from_dict(
            {"kind": "start", "time": 1.0, "job_id": 2, "machine": 0, "speed": 2.0}
        ) == DecisionEvent("start", 1.0, 2, machine=0, speed=2.0)


# --------------------------------------------------------------------------------------
# Session state machine and error paths
# --------------------------------------------------------------------------------------


class TestSessionErrors:
    def test_non_streaming_algorithm_rejected(self):
        for algorithm in ("yds", "srpt-pooled", "speed-augmentation", "config-lp-energy"):
            with pytest.raises(StreamingNotSupportedError, match="streaming"):
                open_session(algorithm, 2)

    def test_streaming_metadata_matches_gate(self):
        for algorithm in streaming_algorithms():
            assert get_solver(algorithm).supports_streaming

    def test_out_of_order_release_rejected(self):
        session = open_session("fcfs", 2)
        session.submit(Job(0, 5.0, (1.0, 1.0)))
        with pytest.raises(SessionStateError, match="non-decreasing"):
            session.submit(Job(1, 4.0, (1.0, 1.0)))

    def test_duplicate_id_rejected(self):
        session = open_session("fcfs", 2)
        session.submit(Job(0, 0.0, (1.0, 1.0)))
        with pytest.raises(SimulationError, match="already offered"):
            session.submit(Job(0, 1.0, (1.0, 1.0)))

    def test_submit_many_duplicate_id_is_atomic(self):
        # Regression: a rejected batch must leave the session (and the
        # stepper underneath) exactly as it was — previously the jobs
        # preceding the duplicate were half-ingested, desyncing
        # finalize()/snapshot() from the engine.
        session = open_session("fcfs", 2)
        session.submit(Job(0, 0.0, (1.0, 1.0)))
        with pytest.raises(SimulationError, match="already offered"):
            session.submit_many([Job(1, 1.0, (1.0, 1.0)), Job(0, 1.0, (2.0, 2.0))])
        assert session.num_submitted == 1
        # the session is still fully usable and consistent
        session.submit_many([Job(1, 1.0, (1.0, 1.0)), Job(2, 2.0, (1.0, 1.0))])
        outcome = session.finalize()
        assert sorted(outcome.result.records) == [0, 1, 2]

    def test_submit_many_duplicate_within_batch_is_atomic(self):
        session = open_session("fcfs", 2)
        with pytest.raises(SimulationError, match="already offered"):
            session.submit_many([Job(5, 0.0, (1.0, 1.0)), Job(5, 0.0, (1.0, 1.0))])
        assert session.num_submitted == 0
        assert session.snapshot()["ops"] == []

    def test_wrong_size_vector_rejected(self):
        session = open_session("fcfs", 2)
        with pytest.raises(InvalidParameterError, match="size vector"):
            session.submit(Job(0, 0.0, (1.0,)))

    def test_submit_after_finalize_rejected(self):
        session = open_session("fcfs", 2)
        session.submit(Job(0, 0.0, (1.0, 1.0)))
        session.finalize()
        with pytest.raises(SessionStateError, match="finalized"):
            session.submit(Job(1, 1.0, (1.0, 1.0)))
        with pytest.raises(SessionStateError, match="finalized"):
            session.poll()

    def test_finalize_is_idempotent(self):
        session = open_session("fcfs", 2)
        session.submit(Job(0, 0.0, (1.0, 1.0)))
        assert session.finalize() is session.finalize()

    def test_params_validated_at_open(self):
        with pytest.raises(InvalidParameterError):
            open_session("rejection-flow", 2, epsilon=-1.0)
        with pytest.raises(InvalidParameterError, match="unknown parameter"):
            open_session("rejection-flow", 2, nonsense=1)

    def test_machines_argument_validation(self):
        with pytest.raises(InvalidParameterError, match="machines"):
            open_session("fcfs", [])

    def test_empty_session_finalizes_to_empty_outcome(self):
        session = open_session("fcfs", 2)
        outcome = session.finalize()
        assert outcome.objective_value == 0.0
        assert outcome.result.records == {}

    def test_advance_to_blocks_late_submissions(self):
        session = open_session("fcfs", 2)
        session.submit(Job(0, 0.0, (1.0, 1.0)))
        session.advance_to(10.0)
        with pytest.raises(SessionStateError, match="non-decreasing"):
            session.submit(Job(1, 5.0, (1.0, 1.0)))

    def test_stepper_advance_bound_blocks_late_offers(self):
        # The stepper itself (a public API) enforces the advance_to bound,
        # not just the last processed event time.
        engine = FlowTimeEngine(Instance.build(1, []))
        from repro.baselines.fcfs import FCFSScheduler

        stepper = engine.stepper(FCFSScheduler())
        stepper.offer(Job(0, 0.0, (1.0,)))
        stepper.advance_to(10.0)  # declares: no arrival at or before 10
        with pytest.raises(SimulationError, match="already reached"):
            stepper.offer(Job(1, 5.0, (1.0,)))
        stepper.offer(Job(2, 10.0, (1.0,)))  # at the bound is allowed


# --------------------------------------------------------------------------------------
# Engine stepper (the reentrant core under the session)
# --------------------------------------------------------------------------------------


class TestEngineStepper:
    def _engine(self, machines=1):
        fleet = Instance.build(machines, [])
        from repro.baselines.fcfs import FCFSScheduler

        return FlowTimeEngine(fleet), FCFSScheduler()

    def test_step_on_empty_queue_returns_none(self):
        engine, policy = self._engine()
        stepper = engine.stepper(policy)
        assert stepper.step() is None
        assert stepper.peek_time() is None

    def test_advance_to_respects_time_bound(self):
        engine, policy = self._engine()
        stepper = engine.stepper(policy)
        stepper.offer(Job(0, 0.0, (1.0,)))
        stepper.offer(Job(1, 10.0, (1.0,)))
        assert stepper.advance_to(5.0) == 2  # arrival 0 + its completion at 1.0
        assert stepper.state.time == pytest.approx(1.0)
        assert stepper.drain() == 2
        result = stepper.finish()
        assert len(result.records) == 2

    def test_finish_with_pending_events_raises(self):
        engine, policy = self._engine()
        stepper = engine.stepper(policy)
        stepper.offer(Job(0, 0.0, (1.0,)))
        with pytest.raises(SimulationError, match="unprocessed"):
            stepper.finish()

    def test_offer_into_the_past_raises(self):
        engine, policy = self._engine()
        stepper = engine.stepper(policy)
        stepper.offer(Job(0, 0.0, (5.0,)))
        stepper.advance_to(0.0)
        assert stepper.state.time == 0.0
        stepper.drain()  # completion at 5.0
        with pytest.raises(SimulationError, match="already reached"):
            stepper.offer(Job(1, 2.0, (1.0,)))

    def test_finished_stepper_is_sealed(self):
        engine, policy = self._engine()
        stepper = engine.stepper(policy)
        stepper.offer(Job(0, 0.0, (1.0,)))
        stepper.drain()
        stepper.finish()
        with pytest.raises(SimulationError, match="finished"):
            stepper.offer(Job(1, 2.0, (1.0,)))
        with pytest.raises(SimulationError, match="finished"):
            stepper.step()

    def test_run_is_equivalent_to_manual_stepping(self):
        instance = InstanceGenerator(num_machines=2, seed=53).generate(40)
        from repro.core.flow_time import RejectionFlowTimeScheduler

        batch = FlowTimeEngine(instance).run(RejectionFlowTimeScheduler(epsilon=0.5))
        engine = FlowTimeEngine(Instance(instance.machines, (), name=instance.name))
        stepper = engine.stepper(RejectionFlowTimeScheduler(epsilon=0.5))
        for job in instance.jobs:
            stepper.offer(job)
        while stepper.step() is not None:
            pass
        manual = stepper.finish(instance)
        assert manual.records == batch.records
        assert manual.intervals == batch.intervals
        assert manual.extras == batch.extras


# --------------------------------------------------------------------------------------
# NDJSON wire format
# --------------------------------------------------------------------------------------


class TestNdjson:
    def test_parse_job_line(self):
        job = parse_job_line('{"id": 3, "release": 1.5, "sizes": [2.0, 4.0]}')
        assert job == Job(3, 1.5, (2.0, 4.0))

    def test_parse_errors(self):
        with pytest.raises(InvalidParameterError, match="not valid JSON"):
            parse_job_line("{nope", lineno=7)
        with pytest.raises(InvalidParameterError, match="JSON object"):
            parse_job_line("[1, 2]", lineno=2)
        # Missing fields are reported with the line number and field name
        # (the richer TraceSchemaError contract; still an InvalidParameterError).
        with pytest.raises(InvalidParameterError, match="line 3: field 'release'"):
            parse_job_line('{"id": 1}', lineno=3)

    def test_read_jobs_skips_blank_and_comment_lines(self):
        import io

        stream = io.StringIO(
            '\n# header comment\n{"id": 0, "release": 0.0, "sizes": [1.0]}\n\n'
        )
        rows = list(read_jobs(stream))
        assert len(rows) == 1 and rows[0][0] == 3 and rows[0][1].id == 0

    def test_event_line_is_canonical(self):
        line = event_line(DecisionEvent("dispatch", 1.0, 0, machine=2))
        assert line == (
            '{"event":"decision","job_id":0,"kind":"dispatch",'
            '"machine":2,"reason":null,"speed":null,"time":1.0}'
        )


# --------------------------------------------------------------------------------------
# Recorded session traces in the campaign artifact store
# --------------------------------------------------------------------------------------


class TestSessionTraceReplay:
    def test_record_is_cached_and_replayable(self, tmp_path):
        from repro.campaigns import ArtifactStore, record_session_trace, replay_session_trace

        store = ArtifactStore(tmp_path)
        instance = InstanceGenerator(num_machines=3, seed=47).generate(60)
        first = record_session_trace(store, instance, "rejection-flow", epsilon=0.5)
        second = record_session_trace(store, instance, "rejection-flow", epsilon=0.5)
        assert not first.cached and second.cached
        assert first.payload == second.payload
        assert first.events and first.outcome_row["algorithm"] == "rejection-flow"
        replayed = replay_session_trace(store, first.key)
        assert replayed.payload == first.payload

    def test_key_depends_on_configuration(self, tmp_path):
        from repro.campaigns import ArtifactStore, record_session_trace

        store = ArtifactStore(tmp_path)
        instance = InstanceGenerator(num_machines=2, seed=51).generate(30)
        a = record_session_trace(store, instance, "rejection-flow", epsilon=0.5)
        b = record_session_trace(store, instance, "rejection-flow", epsilon=0.3)
        c = record_session_trace(store, instance, "fcfs")
        assert len({a.key, b.key, c.key}) == 3
        assert len(store) == 3

    def test_artifact_bytes_stable_across_dispatch_modes(self, tmp_path):
        from repro.campaigns import ArtifactStore, record_session_trace

        instance = InstanceGenerator(num_machines=3, seed=57).generate(80)
        payloads = {}
        for mode in ("indexed", "scan"):
            store = ArtifactStore(tmp_path / mode)
            trace = record_session_trace(
                store, instance, "rejection-flow", dispatch=mode, epsilon=0.5
            )
            payloads[mode] = {k: v for k, v in trace.payload.items() if k != "dispatch"}
        assert payloads["indexed"] == payloads["scan"]

    def test_tampered_trace_fails_replay(self, tmp_path):
        from repro.campaigns import ArtifactStore, record_session_trace, replay_session_trace

        store = ArtifactStore(tmp_path)
        instance = InstanceGenerator(num_machines=2, seed=61).generate(20)
        trace = record_session_trace(store, instance, "fcfs")
        tampered = dict(trace.payload)
        tampered["events"] = list(tampered["events"])
        tampered["events"][0] = {**tampered["events"][0], "time": -1.0}
        store.save(trace.key, tampered)
        with pytest.raises(InvalidParameterError, match="diverged"):
            replay_session_trace(store, trace.key)
