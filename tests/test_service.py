"""Multi-session scheduling service: protocol, manager, server, client, CLI.

The service contract under test, layer by layer:

* **Protocol** — bare job lines keep the exact ``repro serve`` schema and
  error type; control messages are versioned, validated and answered by one
  terminator line each; untagged decision lines are byte-identical to the
  stdio serve wire format.
* **Manager** — named-session lifecycle (open/closed/failed), all-or-nothing
  bounded-queue backpressure, periodic checkpointing with atomic persistence,
  crash recovery by deterministic replay, and live export/restore migration.
* **Server/client** — many concurrent sessions over loopback TCP finalize
  byte-identically to the batch ``repro.solve()``; killed-mid-stream clients
  make shutdown drain the abandoned session, flush its summary, and exit
  nonzero (the clean-shutdown contract).
* **Recovery property** — an arbitrary kill point during a scenario stream
  restores to a byte-identical final outcome across all dispatch modes
  (hypothesis).
* **CLI** — the stdio serve path (now a thin manager client) reproduces a
  pinned golden transcript byte-for-byte; ``--list-algorithms --streaming``
  filters; ``repro loadgen`` verifies and reports.
"""

from __future__ import annotations

import io
import json
import os
import signal
import socket
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import cli
from repro.exceptions import (
    ServiceError,
    ServiceProtocolError,
    SessionStateError,
    TraceSchemaError,
)
from repro.service.client import ServiceClient, percentile, run_loadgen
from repro.service.manager import SessionManager, snapshot_job_count
from repro.service.ndjson import event_line
from repro.service.protocol import (
    PROTOCOL_VERSION,
    decision_line,
    final_line,
    parse_request,
    response_line,
)
from repro.service.server import start_server_thread
from repro.service.session import open_session
from repro.solvers import solve
from repro.utils.serialization import canonical_json
from repro.workloads.scenarios import get_scenario

DATA_DIR = Path(__file__).parent / "data"
GOLDEN_TRACE = DATA_DIR / "serve_golden_trace.ndjson"
GOLDEN_OUT = DATA_DIR / "serve_golden_out.ndjson"

_DISPATCH_MODES = ("indexed", "scan", "vectorized")

#: Session options matching the pinned golden transcript.
GOLDEN_OPTS = {"algorithm": "rejection-flow", "machines": 2, "params": {"epsilon": 0.5}}


def _instance(n=24, machines=2, seed=7, scenario="multi-tenant-mix"):
    return get_scenario(scenario).instance(n, machines, seed, alpha=3.0)


def _jobs(n=24, machines=2, seed=7, scenario="multi-tenant-mix"):
    return list(_instance(n, machines, seed, scenario).jobs)


def _reference(n=24, machines=2, seed=7, scenario="multi-tenant-mix", dispatch=None):
    """The batch ``repro.solve()`` row every service path must reproduce."""
    instance = _instance(n, machines, seed, scenario)
    return solve(instance, "rejection-flow", dispatch=dispatch, epsilon=0.5).as_row()


def _strip(final_event: dict) -> dict:
    return {k: v for k, v in final_event.items() if k not in ("event", "session")}


# --------------------------------------------------------------------------------------
# Protocol
# --------------------------------------------------------------------------------------


class TestProtocol:
    def test_bare_job_line_is_backward_compatible_submit(self):
        request = parse_request('{"id": 0, "release": 0.0, "sizes": [1.0, 2.0]}', 3)
        assert request.bare and request.op == "submit"
        assert len(request.jobs) == 1 and request.jobs[0].id == 0
        assert request.lineno == 3

    def test_bad_bare_line_raises_trace_schema_error(self):
        with pytest.raises(TraceSchemaError):
            parse_request('{"id": 0, "release": "soon", "sizes": [1.0]}', 9)

    def test_non_object_line_raises_trace_schema_error(self):
        with pytest.raises(TraceSchemaError):
            parse_request("[1, 2, 3]")
        with pytest.raises(TraceSchemaError):
            parse_request("not json {")

    @pytest.mark.parametrize(
        "line",
        [
            '{"op": "frobnicate"}',
            '{"op": "hello", "v": 99}',
            '{"op": "poll"}',
            '{"op": "submit", "session": "s"}',
            '{"op": "submit", "session": "s", "job": {"id": 0}, "jobs": []}',
            '{"op": "submit", "session": "s", "jobs": {"id": 0}}',
            '{"op": "advance", "session": "s", "t": "soon"}',
            '{"op": "advance", "session": "s"}',
            '{"op": "restore", "session": "s"}',
            '{"op": "migrate", "session": "s", "target": "no-port"}',
            '{"op": "create", "session": "s", "params": [1]}',
        ],
    )
    def test_invalid_control_messages(self, line):
        with pytest.raises(ServiceProtocolError):
            parse_request(line, 5)

    def test_lineno_in_protocol_error(self):
        with pytest.raises(ServiceProtocolError, match="line 42"):
            parse_request('{"op": "nope"}', 42)

    def test_control_payload_excludes_envelope_keys(self):
        request = parse_request(
            '{"op": "create", "session": "s", "v": 1, "algorithm": "fcfs"}'
        )
        assert request.payload == {"algorithm": "fcfs"}
        assert request.session == "s" and not request.bare

    def test_submit_accepts_job_or_jobs(self):
        row = '{"id": 1, "release": 0.5, "sizes": [1.0]}'
        single = parse_request(f'{{"op": "submit", "session": "s", "job": {row}}}')
        many = parse_request(f'{{"op": "submit", "session": "s", "jobs": [{row}]}}')
        assert len(single.jobs) == len(many.jobs) == 1

    def test_untagged_decision_line_matches_stdio_wire_format(self):
        session = open_session("rejection-flow", 2, epsilon=0.5)
        session.submit_many(_jobs(6))
        events = session.poll()
        assert events
        for event in events:
            assert decision_line(event) == event_line(event)
            tagged = json.loads(decision_line(event, "tenant-a"))
            assert tagged["session"] == "tenant-a"

    def test_response_and_final_lines_are_canonical(self):
        assert response_line("hello", protocol=1) == '{"event":"hello","protocol":1}'
        row = json.loads(final_line({"objective_value": 1.5}, "t"))
        assert row == {"event": "final", "objective_value": 1.5, "session": "t"}


# --------------------------------------------------------------------------------------
# SessionManager
# --------------------------------------------------------------------------------------


class TestSessionManager:
    def test_lifecycle_and_batch_identity(self):
        manager = SessionManager(defaults=GOLDEN_OPTS)
        manager.create("tenant")
        for job in _jobs():
            outcome = manager.submit("tenant", [job])
            assert outcome.accepted and outcome.count == 1
            manager.poll("tenant")
        row, _ = manager.close("tenant")
        assert canonical_json(row) == canonical_json(_reference())
        assert manager.get("tenant").state == "closed"
        assert manager.open_sessions() == [] and manager.unclean_sessions() == []

    def test_backpressure_is_all_or_nothing(self):
        jobs = _jobs(12)
        manager = SessionManager(defaults=GOLDEN_OPTS, max_pending=5)
        manager.create("t")
        refused = manager.submit("t", jobs[:6])
        assert not refused.accepted and refused.pending == 0
        assert manager.get("t").session.num_submitted == 0  # nothing ingested
        accepted = manager.submit("t", jobs[:5])
        assert accepted.accepted and accepted.pending == 5
        assert not manager.submit("t", jobs[5:6]).accepted  # queue full
        manager.poll("t")  # draining resets the offer queue
        assert manager.submit("t", jobs[5:10]).accepted

    def test_names_are_unique_and_states_enforced(self):
        manager = SessionManager(defaults=GOLDEN_OPTS)
        manager.create("a")
        with pytest.raises(SessionStateError):
            manager.create("a")
        with pytest.raises(SessionStateError):
            manager.poll("ghost")
        manager.close("a")
        with pytest.raises(SessionStateError):
            manager.submit("a", _jobs(2))  # closed, not open
        with pytest.raises(SessionStateError):
            manager.create("a")  # names are unique across the lifetime

    def test_sessions_listing_rows(self):
        manager = SessionManager(defaults=GOLDEN_OPTS)
        manager.create("b")
        manager.create("a")
        manager.submit("a", _jobs(4))
        rows = manager.sessions()
        assert [r["session"] for r in rows] == ["a", "b"]
        assert rows[0]["state"] == "open" and rows[0]["pending"] == 4
        assert rows[0]["algorithm"] == "rejection-flow"

    def test_drain_closes_everything_and_reports(self):
        manager = SessionManager(defaults=GOLDEN_OPTS)
        manager.create("x")
        manager.create("y")
        manager.submit("x", _jobs(4))
        results = manager.drain()
        assert [name for name, _, _ in results] == ["x", "y"]
        assert all(row is not None and error is None for _, row, error in results)
        assert manager.open_sessions() == []

    def test_checkpoint_recover_is_byte_identical(self, tmp_path):
        jobs = _jobs(20)
        manager = SessionManager(
            defaults=GOLDEN_OPTS, checkpoint_every=1, checkpoint_dir=tmp_path
        )
        manager.create("t")
        crash_at = 11
        for job in jobs[:crash_at]:
            manager.submit("t", [job])
        # Crash: the manager object is gone; only the checkpoint dir survives.
        recovered = SessionManager.recover(tmp_path, defaults=GOLDEN_OPTS)
        assert "t" in recovered and recovered.get("t").state == "open"
        done = snapshot_job_count(recovered.get("t").checkpoint)
        assert done == crash_at  # checkpoint_every=1 persisted every submit
        for job in jobs[done:]:
            recovered.submit("t", [job])
        row, _ = recovered.close("t")
        assert canonical_json(row) == canonical_json(_reference(20))
        # Closing removed the checkpoint file.
        assert list(Path(tmp_path).glob("*.json")) == []

    def test_export_import_migration_is_byte_identical(self):
        jobs = _jobs(18)
        source = SessionManager(defaults=GOLDEN_OPTS)
        source.create("mover")
        for job in jobs[:9]:
            source.submit("mover", [job])
            source.poll("mover")
        snapshot = source.export_session("mover")
        assert "mover" not in source  # released, not finalized
        target = SessionManager(defaults=GOLDEN_OPTS)
        target.restore("mover", snapshot)
        for job in jobs[9:]:
            target.submit("mover", [job])
            target.poll("mover")
        row, _ = target.close("mover")
        assert canonical_json(row) == canonical_json(_reference(18))

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ServiceError):
            SessionManager(max_pending=0)
        with pytest.raises(ServiceError):
            SessionManager(checkpoint_every=0)
        manager = SessionManager(defaults=GOLDEN_OPTS)
        with pytest.raises(ServiceError):
            manager.create("t", max_pending=-1)


# --------------------------------------------------------------------------------------
# Kill-point recovery property (arbitrary crash, all dispatch modes)
# --------------------------------------------------------------------------------------


_KILL_N = 16
_KILL_REFERENCE = {
    dispatch: canonical_json(
        _reference(_KILL_N, scenario="flash-crowd", dispatch=dispatch)
    )
    for dispatch in _DISPATCH_MODES
}


@settings(max_examples=24, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    kill_point=st.integers(min_value=0, max_value=_KILL_N),
    dispatch=st.sampled_from(_DISPATCH_MODES),
)
def test_arbitrary_kill_point_restores_byte_identical(kill_point, dispatch):
    """Crash after any op during a catalog stream; the restored session's
    final outcome is byte-identical to the uninterrupted run, per dispatch."""
    jobs = _jobs(_KILL_N, scenario="flash-crowd")
    opts = {**GOLDEN_OPTS, "dispatch": dispatch}
    manager = SessionManager(defaults=opts, checkpoint_every=1)
    manager.create("t")
    for index, job in enumerate(jobs[:kill_point]):
        manager.submit("t", [job])
        if index % 3 == 2:  # interleave mid-stream polls with pure submits
            manager.poll("t")
    checkpoint = manager.get("t").checkpoint  # the last periodic snapshot
    if checkpoint is None:  # crashed before the first op: start from scratch
        checkpoint = manager.get("t").session.snapshot()
    recovered = SessionManager(defaults=opts)
    recovered.restore("t", checkpoint)
    for job in jobs[snapshot_job_count(checkpoint):]:
        recovered.submit("t", [job])
    row, _ = recovered.close("t")
    assert canonical_json(row) == _KILL_REFERENCE[dispatch]


# --------------------------------------------------------------------------------------
# Server + client over loopback TCP
# --------------------------------------------------------------------------------------


@pytest.fixture()
def server():
    handle = start_server_thread(defaults=GOLDEN_OPTS)
    try:
        yield handle
    finally:
        if handle.server.exit_code is None:
            handle.stop()


class TestServer:
    def test_hello_and_sessions(self, server):
        with ServiceClient(server.host, server.port) as client:
            hello = client.hello()
            assert hello["protocol"] == PROTOCOL_VERSION
            assert "rejection-flow" in hello["algorithms"]
            client.create("t1")
            rows = client.sessions()
            assert [r["session"] for r in rows] == ["t1"]

    def test_session_lifecycle_matches_batch(self, server):
        jobs = _jobs()
        with ServiceClient(server.host, server.port) as client:
            client.create("tenant", algorithm="rejection-flow", machines=2,
                          params={"epsilon": 0.5})
            for offset in range(0, len(jobs), 5):
                reply = client.submit(
                    "tenant", [j.to_dict() for j in jobs[offset : offset + 5]]
                )
                assert reply["event"] == "accepted"
                client.poll("tenant")
            final = client.close_session("tenant")
            assert canonical_json(_strip(final.event)) == canonical_json(_reference())
            assert final.event["session"] == "tenant"

    def test_decisions_are_tagged_with_session(self, server):
        with ServiceClient(server.host, server.port) as client:
            client.create("tagged")
            client.submit("tagged", [j.to_dict() for j in _jobs(6)])
            polled = client.poll("tagged")
            assert polled.decisions
            assert all(d["session"] == "tagged" for d in polled.decisions)

    def test_backpressure_throttles_over_the_wire(self, server):
        jobs = [j.to_dict() for j in _jobs(12)]
        with ServiceClient(server.host, server.port) as client:
            client.create("slow", max_pending=4)
            reply = client.submit("slow", jobs[:5])
            assert reply["event"] == "throttled" and reply["max_pending"] == 4
            assert client.submit("slow", jobs[:4])["event"] == "accepted"
            assert client.submit("slow", jobs[4:5])["event"] == "throttled"
            client.poll("slow")  # drain
            assert client.submit("slow", jobs[4:8])["event"] == "accepted"

    def test_errors_surface_as_service_errors(self, server):
        with ServiceClient(server.host, server.port) as client:
            with pytest.raises(ServiceError, match="no session named"):
                client.poll("ghost")
            client.create("dup")
            with pytest.raises(ServiceError, match="unique"):
                client.create("dup")
            with pytest.raises(ServiceError, match="does not support"):
                client.create("batch-only", algorithm="yds")

    def test_bare_lines_reproduce_the_stdio_golden_transcript(self, server):
        """A connection speaking only bare job lines gets byte-identical
        behaviour to `repro serve` (untagged decisions, final at EOF)."""
        expected = GOLDEN_OUT.read_text(encoding="utf-8")
        with socket.create_connection((server.host, server.port), timeout=30) as sock:
            sock.sendall(GOLDEN_TRACE.read_bytes())
            sock.shutdown(socket.SHUT_WR)  # EOF: the stdio end-of-stream
            received = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                received += chunk
        assert received.decode("utf-8") == expected

    def test_snapshot_restore_round_trip_over_the_wire(self, server):
        jobs = _jobs(14)
        with ServiceClient(server.host, server.port) as client:
            client.create("snap")
            client.submit("snap", [j.to_dict() for j in jobs[:7]])
            client.poll("snap")
            snapshot = client.snapshot("snap")
            restored = client.restore("snap-copy", snapshot)
            assert restored["restored"] and restored["submitted"] == 7
            for name in ("snap", "snap-copy"):
                client.submit(name, [j.to_dict() for j in jobs[7:]])
                final = client.close_session(name)
                assert canonical_json(_strip(final.event)) == canonical_json(
                    _reference(14)
                )

    def test_migrate_moves_a_live_session_between_servers(self, server):
        jobs = _jobs(16)
        target = start_server_thread(defaults=GOLDEN_OPTS)
        try:
            with ServiceClient(server.host, server.port) as client:
                client.create("mover")
                client.submit("mover", [j.to_dict() for j in jobs[:8]])
                client.poll("mover")
                reply = client.migrate("mover", f"{target.host}:{target.port}")
                assert reply["event"] == "migrated"
                with pytest.raises(ServiceError, match="no session named"):
                    client.poll("mover")  # gone from the source
            with ServiceClient(target.host, target.port) as client:
                client.submit("mover", [j.to_dict() for j in jobs[8:]])
                final = client.close_session("mover")
                assert canonical_json(_strip(final.event)) == canonical_json(
                    _reference(16)
                )
        finally:
            target.stop()

    def test_migrate_to_dead_target_self_heals(self, server):
        with ServiceClient(server.host, server.port) as client:
            client.create("stuck")
            client.submit("stuck", [j.to_dict() for j in _jobs(4)])
            # Grab a port with nothing listening on it.
            probe = socket.socket()
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
            probe.close()
            with pytest.raises(ServiceError, match="restored locally"):
                client.migrate("stuck", f"127.0.0.1:{dead_port}")
            assert client.poll("stuck") is not None  # still hosted here

    def test_shutdown_op_exits_zero_when_all_sessions_closed(self, server):
        with ServiceClient(server.host, server.port) as client:
            client.create("tidy")
            client.submit("tidy", [j.to_dict() for j in _jobs(4)])
            client.close_session("tidy")
            assert client.shutdown()["unclean"] == []
        assert server.stop() == 0

    def test_shutdown_with_abandoned_session_exits_nonzero(self, server):
        with ServiceClient(server.host, server.port) as client:
            client.create("abandoned")
            client.submit("abandoned", [j.to_dict() for j in _jobs(4)])
        # The client vanished without closing its session; the drain still
        # flushes the session's summary but reports it unclean.
        assert server.stop() == 1
        out = server.server.out.getvalue()
        finals = [json.loads(line) for line in out.splitlines()
                  if '"event":"final"' in line]
        assert [f["session"] for f in finals] == ["abandoned"]
        shutdown_row = json.loads(out.splitlines()[-1])
        assert shutdown_row["unclean"] == ["abandoned"]


# --------------------------------------------------------------------------------------
# Load generator
# --------------------------------------------------------------------------------------


class TestLoadgen:
    def test_percentile(self):
        assert percentile([], 99) == 0.0
        assert percentile([5.0], 50) == 5.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)
        assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0

    def test_concurrent_sessions_all_verify_byte_identical(self, server):
        report = run_loadgen(
            server.host, server.port, sessions=6, jobs=40, machines=2,
            params={"epsilon": 0.5}, chunk_size=8, verify=True,
        )
        assert len(report.sessions) == 6
        assert report.verified == 6
        assert report.total_jobs == 6 * 40
        assert all(r.matches_batch for r in report.sessions)
        row = report.as_dict()
        assert row["verified"] == 6 and len(row["per_session"]) == 6

    def test_loadgen_rejects_bad_parameters(self, server):
        with pytest.raises(ServiceError):
            run_loadgen(server.host, server.port, sessions=0)
        with pytest.raises(ServiceError):
            run_loadgen(server.host, server.port, chunk_size=0)

    def test_oversized_chunk_fails_instead_of_spinning(self):
        # A chunk larger than max_pending can never be accepted; the worker
        # must error out rather than retry the throttled submit forever.
        with start_server_thread(defaults=GOLDEN_OPTS, max_pending=2) as handle:
            with pytest.raises(ServiceError, match="sessions failed"):
                run_loadgen(
                    handle.host, handle.port, sessions=1, jobs=8, machines=2,
                    params={"epsilon": 0.5}, chunk_size=8,
                )


# --------------------------------------------------------------------------------------
# E15 experiment
# --------------------------------------------------------------------------------------


class TestE15:
    def test_e15_runs_and_verifies(self):
        from repro.experiments import run_experiment

        result = run_experiment(
            "E15", session_counts=(1, 2), jobs_per_session=20, num_machines=2
        )
        rows = result.raw["rows"]
        assert [r["sessions"] for r in rows] == [1, 2]
        assert rows[0]["verified"] == 1 and rows[1]["verified"] == 2
        assert rows[1]["jobs_total"] == 40
        # Wall-clock columns absent by default: artifacts stay byte-stable.
        assert "latency_p99_ms" not in rows[0]
        assert "throughput_jobs_per_s" not in rows[0]

    def test_e15_rejects_impossible_chunking(self):
        from repro.experiments import run_experiment

        with pytest.raises(ValueError, match="throttled forever"):
            run_experiment("E15", chunk_size=64, max_pending=8)

    def test_e15_registered_in_grids(self):
        from repro.campaigns.grids import GRIDS

        small_ids = {entry.experiment_id for entry in GRIDS["small"].entries}
        medium_ids = {entry.experiment_id for entry in GRIDS["medium"].entries}
        assert "E15" in small_ids and "E15" in medium_ids

    def test_e15_bench_registered(self):
        from repro.benchmarking import SPECS

        assert "e15_service" in SPECS and SPECS["e15_service"].quick


# --------------------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------------------


class TestCLI:
    def test_stdio_serve_reproduces_golden_transcript(self):
        out = io.StringIO()
        code = cli.main(
            ["serve", "--algorithm", "rejection-flow", "--machines", "2",
             "--param", "epsilon=0.5", "--trace", str(GOLDEN_TRACE)],
            out=out,
        )
        assert code == 0
        assert out.getvalue() == GOLDEN_OUT.read_text(encoding="utf-8")

    def test_list_algorithms_streaming_filter(self):
        out = io.StringIO()
        assert cli.main(["solve", "--list-algorithms", "--streaming"], out=out) == 0
        listing = out.getvalue()
        assert "streaming-capable" in listing
        assert "rejection-flow" in listing
        assert "yds" not in listing  # batch-only solvers filtered out

    def test_list_algorithms_unfiltered_includes_batch_solvers(self):
        out = io.StringIO()
        assert cli.main(["solve", "--list-algorithms"], out=out) == 0
        assert "yds" in out.getvalue()

    def test_streaming_flag_requires_list(self):
        err = io.StringIO()
        code = cli.main(["solve", "--streaming"], out=io.StringIO(), err=err)
        assert code == 2
        assert "--list-algorithms" in err.getvalue()

    def test_loadgen_cli_json_report(self):
        out = io.StringIO()
        code = cli.main(
            ["loadgen", "--sessions", "2", "--jobs", "20", "--machines", "2",
             "--param", "epsilon=0.5", "--chunk-size", "8", "--verify", "--json"],
            out=out,
        )
        assert code == 0
        report = json.loads(out.getvalue())
        assert report["sessions"] == 2 and report["verified"] == 2

    def test_loadgen_cli_human_report(self):
        out = io.StringIO()
        code = cli.main(
            ["loadgen", "--sessions", "1", "--jobs", "10", "--machines", "2",
             "--param", "epsilon=0.5", "--scenario", "flash-crowd"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "throughput" in text and "flash-crowd" in text

    def test_bad_listen_address_is_a_clean_error(self):
        err = io.StringIO()
        code = cli.main(
            ["serve", "--listen", "nope:notaport"], out=io.StringIO(), err=err
        )
        assert code == 2 and "HOST:PORT" in err.getvalue()

    def test_recover_requires_checkpoint_dir(self):
        err = io.StringIO()
        code = cli.main(
            ["serve", "--listen", "127.0.0.1:0", "--recover"],
            out=io.StringIO(), err=err,
        )
        assert code == 2 and "--checkpoint-dir" in err.getvalue()


# --------------------------------------------------------------------------------------
# Shutdown semantics end to end (subprocess, real signals)
# --------------------------------------------------------------------------------------


def _spawn_server(*extra_args):
    """Start `repro serve --listen` as a real process; return (proc, host, port)."""
    env = dict(os.environ)
    root = Path(__file__).resolve().parents[1]
    env["PYTHONPATH"] = str(root / "src")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--listen", "127.0.0.1:0",
         "--algorithm", "rejection-flow", "--machines", "2",
         "--param", "epsilon=0.5", *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env, cwd=root,
    )
    listening = json.loads(proc.stdout.readline())
    assert listening["event"] == "listening"
    return proc, listening["host"], listening["port"]


class TestShutdownSemantics:
    def test_sigterm_drains_abandoned_session_and_exits_nonzero(self):
        proc, host, port = _spawn_server()
        try:
            client = ServiceClient(host, port, timeout=30)
            client.create("killed-mid-stream")
            client.submit("killed-mid-stream", [j.to_dict() for j in _jobs(8)])
            client.close()  # the client dies without closing its session
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 1, (out, err)
        lines = [json.loads(line) for line in out.splitlines() if line.strip()]
        finals = [row for row in lines if row.get("event") == "final"]
        assert [f["session"] for f in finals] == ["killed-mid-stream"]
        shutdown = lines[-1]
        assert shutdown["event"] == "shutdown"
        assert shutdown["reason"] == "SIGTERM"
        assert shutdown["unclean"] == ["killed-mid-stream"]

    def test_clean_client_shutdown_exits_zero(self):
        proc, host, port = _spawn_server()
        try:
            with ServiceClient(host, port, timeout=30) as client:
                client.create("tidy")
                client.submit("tidy", [j.to_dict() for j in _jobs(6)])
                final = client.close_session("tidy")
                assert final.event["event"] == "final"
                client.shutdown()
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, (out, err)
        shutdown = json.loads(out.splitlines()[-1])
        assert shutdown["unclean"] == [] and shutdown["drained"] == 0

    def test_crash_recovery_across_real_processes(self, tmp_path):
        """Kill -9 a checkpointing server; a recovered one finishes the
        stream byte-identically to the uninterrupted batch run."""
        jobs = _jobs(20)
        reference = canonical_json(_reference(20))
        ckpt = tmp_path / "ckpt"
        proc, host, port = _spawn_server(
            "--checkpoint-dir", str(ckpt), "--checkpoint-every", "1"
        )
        try:
            client = ServiceClient(host, port, timeout=30)
            client.create("durable")
            for job in jobs[:12]:
                client.submit("durable", [job.to_dict()])
            client.close()
            proc.kill()  # SIGKILL: no drain, no flush — a real crash
            proc.communicate()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        proc2, host2, port2 = _spawn_server("--checkpoint-dir", str(ckpt), "--recover")
        try:
            with ServiceClient(host2, port2, timeout=30) as client:
                rows = client.sessions()
                assert [r["session"] for r in rows] == ["durable"]
                done = rows[0]["submitted"]
                assert done == 12  # checkpoint_every=1 persisted every submit
                client.submit("durable", [j.to_dict() for j in jobs[done:]])
                final = client.close_session("durable")
                assert canonical_json(_strip(final.event)) == reference
                client.shutdown()
            out, err = proc2.communicate(timeout=60)
            assert proc2.returncode == 0, (out, err)
        finally:
            if proc2.poll() is None:
                proc2.kill()
                proc2.communicate()
