"""Benchmark E10 — campaign runner: parallel fan-out vs the sequential path.

Runs the same grid of E8-scale simulation tasks (several seeds of the
scalability experiment) three ways — sequentially, with a 4-worker process
pool, and again fully cached — and records the wall-clock comparison.  On a
multi-core machine the pool approaches ``min(workers, tasks)``-fold speedup
because the tasks are embarrassingly parallel and workers only compute (the
parent writes all artifacts); on a single core it documents the fork/IPC
overhead instead.  The cached re-run should be near-instant regardless.
"""

from __future__ import annotations

import shutil
import time

from repro.campaigns import ArtifactStore, CampaignRunner, CampaignTask, render_campaign_report
from repro.utils.rng import seeds_for

WORKERS = 4
NUM_SEEDS = 4

#: E8-scale per-task work: one scalability sweep per seed.
E8_OVERRIDES = dict(job_counts=(500,), machine_counts=(4,), repeats=1)


def _bench_tasks() -> list[CampaignTask]:
    labels = [f"E8/bench/{i}" for i in range(NUM_SEEDS)]
    return [
        CampaignTask.create("E8", variant="bench", seed=seed, overrides=E8_OVERRIDES)
        for seed in seeds_for(2018, labels).values()
    ]


def _timed_run(store_root, workers: int) -> tuple[float, object]:
    shutil.rmtree(store_root, ignore_errors=True)
    store = ArtifactStore(store_root)
    runner = CampaignRunner(store, workers=workers)
    start = time.perf_counter()
    summary = runner.run(_bench_tasks())
    return time.perf_counter() - start, (store, summary)


def test_e10_campaign_speedup(benchmark, report_sink, tmp_path_factory):
    """Compare sequential, parallel and cached campaign execution."""
    seq_root = tmp_path_factory.mktemp("campaign-seq")
    par_root = tmp_path_factory.mktemp("campaign-par")

    seq_time, (seq_store, seq_summary) = _timed_run(seq_root / "store", workers=1)
    par_time, (par_store, par_summary) = benchmark.pedantic(
        lambda: _timed_run(par_root / "store", workers=WORKERS), rounds=1, iterations=1
    )

    # Re-run against the populated store: everything must come from cache.
    cached_start = time.perf_counter()
    cached_summary = CampaignRunner(par_store, workers=WORKERS).run(_bench_tasks())
    cached_time = time.perf_counter() - cached_start

    assert seq_summary.computed == par_summary.computed == NUM_SEEDS
    assert cached_summary.cached == NUM_SEEDS and cached_summary.computed == 0
    assert sorted(seq_store.keys()) == sorted(par_store.keys())

    speedup = seq_time / par_time if par_time > 0 else float("inf")
    report_sink(
        "# E10: campaign runner, {} E8-scale tasks\n"
        "sequential: {:.2f}s   parallel({} workers): {:.2f}s   speedup: {:.2f}x\n"
        "cached re-run: {:.3f}s ({} cache hits)".format(
            NUM_SEEDS, seq_time, WORKERS, par_time, speedup, cached_time,
            cached_summary.cached
        )
    )
    report_sink(render_campaign_report(par_store, _bench_tasks()))


def test_e10_cached_rerun_is_fast(benchmark, tmp_path_factory):
    """A fully cached campaign re-run avoids all simulation work."""
    root = tmp_path_factory.mktemp("campaign-cache") / "store"
    store = ArtifactStore(root)
    CampaignRunner(store, workers=1).run(_bench_tasks())

    summary = benchmark.pedantic(
        lambda: CampaignRunner(store, workers=1).run(_bench_tasks()), rounds=3, iterations=1
    )
    assert summary.cached == NUM_SEEDS and summary.computed == 0
