"""Benchmark suite: pytest-benchmark scripts plus the unified harness.

``bench_e*.py`` are the interactive pytest-benchmark experiments
(``pytest benchmarks/ --benchmark-only``); ``harness.py`` is the
artifact-emitting runner CI uses (``python -m benchmarks.harness``).
"""
