"""Benchmark E6 — rejection only vs speed augmentation plus rejection.

Regenerates the E6 table comparing the Theorem 1 algorithm (unit-speed
machines) against the ESA'16-style baseline running on (1+eps)-fast machines.
"""

from __future__ import annotations

from repro.experiments import run_experiment

E6_KWARGS = dict(epsilons=(0.25, 0.5), workloads=("poisson-pareto", "bursty-bimodal"))


def test_e6_experiment(benchmark, report_sink):
    """Time the E6 comparison and sanity-check the reported models."""
    result = benchmark.pedantic(
        lambda: run_experiment("E6", **E6_KWARGS), rounds=1, iterations=1
    )
    report_sink(result.render())

    rows = result.raw["rows"]
    assert any(row["model"].startswith("rejection-only") for row in rows)
    assert any(row["model"].startswith("speed+rejection") for row in rows)
    # The qualitative claim of the paper: on the same workloads, rejection-only
    # on unit-speed machines stays within a small factor of the augmented runs.
    for workload in {row["workload"] for row in rows}:
        for epsilon in {row["epsilon"] for row in rows}:
            pair = {
                row["model"]: row["ratio_vs_lb"]
                for row in rows
                if row["workload"] == workload and row["epsilon"] == epsilon
            }
            assert pair["rejection-only (Thm 1)"] <= 5.0 * pair["speed+rejection (ESA'16)"]
