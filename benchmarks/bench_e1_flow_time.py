"""Benchmark E1 — Theorem 1: flow time with rejections (DESIGN.md experiment E1).

Regenerates the E1 table (competitive-ratio bracket and rejection fraction per
epsilon and workload) and times both the full experiment and the raw scheduler
on a medium instance.
"""

from __future__ import annotations

import pytest

from repro.core.flow_time import RejectionFlowTimeScheduler
from repro.experiments import run_experiment
from repro.simulation.engine import FlowTimeEngine
from repro.workloads.generators import InstanceGenerator

E1_KWARGS = dict(epsilons=(0.1, 0.25, 0.5), workloads=("poisson-pareto", "overload-burst"))


def test_e1_experiment(benchmark, report_sink):
    """Time the full E1 sweep and record its table."""
    result = benchmark.pedantic(
        lambda: run_experiment("E1", **E1_KWARGS), rounds=1, iterations=1
    )
    report_sink(result.render())
    for row in result.raw["rows"]:
        if row["epsilon"] != "-":
            assert row["rejected_fraction"] <= row["budget_2eps"] + 1e-9
            assert row["ratio_vs_lb"] <= row["paper_bound"] + 1e-9


@pytest.mark.parametrize("epsilon", [0.25, 0.5])
def test_e1_scheduler_throughput(benchmark, epsilon):
    """Time a single Theorem 1 run on a 2000-job workload (scheduler throughput)."""
    instance = InstanceGenerator(num_machines=8, seed=1, size_distribution="pareto").generate(2000)
    engine = FlowTimeEngine(instance)

    def run():
        return engine.run(RejectionFlowTimeScheduler(epsilon=epsilon))

    result = benchmark(run)
    assert len(result.records) == 2000
