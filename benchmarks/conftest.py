"""Shared helpers for the benchmark harness.

Each ``bench_eX_*.py`` regenerates one experiment of DESIGN.md's index (the
reproduction's counterpart of the paper's tables/figures) and times it with
pytest-benchmark.  The rendered result tables are printed at the end of the
session so that running

    pytest benchmarks/ --benchmark-only

produces both the timing table and the experiment tables EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import pytest

_REPORTS: list[str] = []


def record_report(report: str) -> None:
    """Store a rendered experiment table for the end-of-session summary."""
    _REPORTS.append(report)


@pytest.fixture(scope="session")
def report_sink():
    """Fixture handing benchmarks the report recorder."""
    return record_report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every recorded experiment table after the benchmark table."""
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "experiment tables (reproduction of the paper's claims)")
    for report in _REPORTS:
        terminalreporter.write_line(report)
        terminalreporter.write_line("")
