"""Benchmark E13 — streaming-session ingestion throughput vs the batch path.

The streaming ``SchedulerSession`` must be cheap enough to be the default
surface for online workloads: replaying an instance through
``submit_many`` + ``finalize()`` may not add more than 10% on top of the
batch ``repro.solve()`` call, and the per-submit ``poll()`` pattern (the
``repro serve`` hot path) is tracked alongside.  Measured on a 2k-job
instance so the comparison reflects event-loop work, not fixed costs.
"""

from __future__ import annotations

import time

import pytest

from repro.service import open_session
from repro.solvers import solve
from repro.workloads.generators import InstanceGenerator

NUM_JOBS = 2_000
EPSILON = 0.5


@pytest.fixture(scope="module")
def instance():
    return InstanceGenerator(num_machines=8, seed=13, size_distribution="pareto").generate(
        NUM_JOBS
    )


def _session_replay(instance):
    session = open_session("rejection-flow", instance.machines, epsilon=EPSILON)
    session.submit_many(instance.jobs)
    return session.finalize()


def _session_polling(instance):
    session = open_session("rejection-flow", instance.machines, epsilon=EPSILON)
    for job in instance.jobs:
        session.submit(job)
        session.poll()
    return session.finalize()


def test_e13_batch_solve(benchmark, instance):
    """Baseline: the batch facade on the same workload."""
    outcome = benchmark(lambda: solve(instance, "rejection-flow", epsilon=EPSILON))
    assert len(outcome.result.records) == NUM_JOBS


def test_e13_session_replay(benchmark, instance):
    """Streaming replay: submit_many + finalize."""
    outcome = benchmark(lambda: _session_replay(instance))
    assert len(outcome.result.records) == NUM_JOBS


def test_e13_session_polling(benchmark, instance):
    """Serve-style ingestion: one poll per submitted job."""
    outcome = benchmark(lambda: _session_polling(instance))
    assert len(outcome.result.records) == NUM_JOBS


def test_e13_results_identical(instance):
    """Both session patterns finalize to the batch outcome, byte for byte."""
    batch = solve(instance, "rejection-flow", epsilon=EPSILON)
    for streamed in (_session_replay(instance), _session_polling(instance)):
        assert streamed.objective_value == batch.objective_value
        assert streamed.result.records == batch.result.records
        assert streamed.result.intervals == batch.result.intervals


def test_e13_session_overhead_under_10_percent(instance):
    """submit_many + finalize stays within 10% of the batch path."""

    def batch():
        return solve(instance, "rejection-flow", epsilon=EPSILON)

    def streamed():
        return _session_replay(instance)

    # Warm both paths (catalog import, bytecode, allocator) before timing.
    batch()
    streamed()
    # Measure in adjacent (batch, streamed) pairs and take the best per-round
    # ratio: background load hits both halves of a pair almost equally, so at
    # least one round reflects the code paths rather than scheduler noise.
    best_overhead = float("inf")
    best_pair = (0.0, 0.0)
    for _ in range(11):
        start = time.perf_counter()
        batch()
        batch_time = time.perf_counter() - start
        start = time.perf_counter()
        streamed()
        streamed_time = time.perf_counter() - start
        overhead = streamed_time / batch_time - 1.0
        if overhead < best_overhead:
            best_overhead = overhead
            best_pair = (batch_time, streamed_time)
    batch_time, streamed_time = best_pair
    # 10% relative budget with a 1ms absolute floor so sub-millisecond jitter
    # on a fast machine cannot fail the check spuriously.
    assert best_overhead < 0.10 or streamed_time - batch_time < 1e-3, (
        f"session overhead {best_overhead:.1%} (session {streamed_time * 1e3:.2f}ms "
        f"vs batch {batch_time * 1e3:.2f}ms) exceeds the 10% budget"
    )
