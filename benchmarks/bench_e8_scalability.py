"""Benchmark E8 — simulator and algorithm scalability.

Times the flow-time engine directly at several scales (this is the benchmark
version of experiment E8; the experiment's own table reports events/second).
"""

from __future__ import annotations

import pytest

from repro.baselines.greedy import GreedyDispatchScheduler
from repro.core.flow_time import RejectionFlowTimeScheduler
from repro.experiments import run_experiment
from repro.simulation.engine import FlowTimeEngine
from repro.workloads.generators import InstanceGenerator

E8_KWARGS = dict(job_counts=(500, 2000), machine_counts=(4, 16), repeats=1)


def test_e8_experiment(benchmark, report_sink):
    """Run the E8 measurement sweep once and record its table."""
    result = benchmark.pedantic(
        lambda: run_experiment("E8", **E8_KWARGS), rounds=1, iterations=1
    )
    report_sink(result.render())
    assert all(row["events_per_s"] > 0 for row in result.raw["rows"])


@pytest.mark.parametrize("num_jobs", [1000, 5000])
@pytest.mark.parametrize("scheduler_factory", [
    lambda: RejectionFlowTimeScheduler(epsilon=0.5),
    lambda: GreedyDispatchScheduler(),
], ids=["theorem1", "greedy"])
def test_e8_engine_throughput(benchmark, num_jobs, scheduler_factory):
    """Raw engine throughput at 1k and 5k jobs on 8 machines."""
    instance = InstanceGenerator(
        num_machines=8, seed=6, size_distribution="exponential"
    ).generate(num_jobs)
    engine = FlowTimeEngine(instance)

    result = benchmark.pedantic(
        lambda: engine.run(scheduler_factory()), rounds=2, iterations=1
    )
    assert len(result.records) == num_jobs
