"""Cumulative benchmark trajectory: append each CI run's artifacts as NDJSON.

The per-run ``BENCH_<slug>.json`` artifacts are snapshots; this module turns
them into a *trajectory* — one canonical-JSON line per (run × benchmark)
appended to a single NDJSON file that CI persists across runs (cache-restored,
re-uploaded as the ``bench-trajectory`` artifact).  Each line carries the
commit, the run identifier and the measurement fields that matter for
plotting throughput over time::

    {"bench": "e1_flow_time", "commit": "abc123", "events_per_sec": ...,
     "fingerprint": ..., "median_s": ..., "n_jobs": ..., "run": "57"}

Append-only and idempotent per run: re-appending the same artifacts with the
same ``--run`` adds duplicate lines, so CI invokes it exactly once per run.

Usage (what the CI ``bench`` job runs)::

    python -m benchmarks.trajectory --artifacts bench-artifacts \
        --out bench-trajectory/trajectory.ndjson \
        --commit "$GITHUB_SHA" --run "$GITHUB_RUN_NUMBER"
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.benchmarking import ARTIFACT_PREFIX
from repro.utils.serialization import canonical_json

#: Measurement fields copied from each artifact into its trajectory line.
FIELDS = ("bench", "n_jobs", "median_s", "events_per_sec", "fingerprint",
          "peak_rss_bytes")


def trajectory_line(artifact: dict, commit: str = "", run: str = "") -> str:
    """One canonical-JSON trajectory line for a ``BENCH_*.json`` payload."""
    row = {field: artifact.get(field) for field in FIELDS}
    row["commit"] = commit
    row["run"] = run
    return canonical_json(row)


def append_run(
    trajectory_path: "str | Path",
    artifact_dir: "str | Path",
    commit: str = "",
    run: str = "",
) -> int:
    """Append every artifact in ``artifact_dir`` to the trajectory file.

    Creates the file (and parents) on first use; returns the number of lines
    appended.  Artifacts are appended in sorted filename order so the output
    is deterministic for a given artifact set.
    """
    artifact_dir = Path(artifact_dir)
    paths = sorted(artifact_dir.glob(f"{ARTIFACT_PREFIX}*.json"))
    if not paths:
        raise FileNotFoundError(
            f"no {ARTIFACT_PREFIX}*.json artifacts in {artifact_dir}"
        )
    trajectory_path = Path(trajectory_path)
    trajectory_path.parent.mkdir(parents=True, exist_ok=True)
    with trajectory_path.open("a", encoding="utf-8") as stream:
        for path in paths:
            artifact = json.loads(path.read_text(encoding="utf-8"))
            stream.write(trajectory_line(artifact, commit=commit, run=run) + "\n")
    return len(paths)


def read_trajectory(trajectory_path: "str | Path") -> list[dict]:
    """Parse a trajectory file back into its rows (skips blank lines)."""
    rows = []
    for line in Path(trajectory_path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            rows.append(json.loads(line))
    return rows


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="benchmarks.trajectory",
        description="append BENCH_*.json artifacts to a cumulative NDJSON trajectory",
    )
    parser.add_argument("--artifacts", default="bench-artifacts",
                        help="directory holding this run's BENCH_*.json files")
    parser.add_argument("--out", default="bench-trajectory/trajectory.ndjson",
                        help="trajectory NDJSON file to append to")
    parser.add_argument("--commit", default="", help="commit SHA recorded per line")
    parser.add_argument("--run", default="", help="run identifier recorded per line")
    args = parser.parse_args(argv)
    try:
        count = append_run(args.out, args.artifacts, commit=args.commit, run=args.run)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    total = len(read_trajectory(args.out))
    print(f"appended {count} benchmark(s) to {args.out} ({total} lines total)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
