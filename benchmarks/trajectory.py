"""Cumulative benchmark trajectory: append each CI run's artifacts as NDJSON.

The per-run ``BENCH_<slug>.json`` artifacts are snapshots; this module turns
them into a *trajectory* — one canonical-JSON line per (run × benchmark)
appended to a single NDJSON file that CI persists across runs (cache-restored,
re-uploaded as the ``bench-trajectory`` artifact).  Each line carries the
commit, the run identifier and the measurement fields that matter for
plotting throughput over time::

    {"bench": "e1_flow_time", "commit": "abc123", "events_per_sec": ...,
     "fingerprint": ..., "median_s": ..., "n_jobs": ..., "run": "57"}

Append-only and idempotent per run: re-appending the same artifacts with the
same ``--run`` adds duplicate lines, so CI invokes it exactly once per run.

Usage (what the CI ``bench`` job runs)::

    python -m benchmarks.trajectory --artifacts bench-artifacts \
        --out bench-trajectory/trajectory.ndjson \
        --commit "$GITHUB_SHA" --run "$GITHUB_RUN_NUMBER"

``--report`` instead renders the accumulated trajectory as a markdown
events/s-over-time report (per-benchmark summary plus the recent per-run
series), which CI appends to the job summary and uploads as a PR artifact::

    python -m benchmarks.trajectory --report --out trajectory.ndjson \
        --report-out bench-report.md

A missing or empty trajectory file is not an error for ``--report``: the
first run of a fresh cache has no history yet, so the report says so and
falls back to a "this run" table built from the ``--artifacts`` snapshots
(exit code 0 either way — CI must not fail just because history starts now).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.benchmarking import ARTIFACT_PREFIX
from repro.utils.serialization import canonical_json

#: Measurement fields copied from each artifact into its trajectory line.
FIELDS = ("bench", "n_jobs", "median_s", "events_per_sec", "fingerprint",
          "peak_rss_bytes")


def trajectory_line(artifact: dict, commit: str = "", run: str = "") -> str:
    """One canonical-JSON trajectory line for a ``BENCH_*.json`` payload."""
    row = {field: artifact.get(field) for field in FIELDS}
    row["commit"] = commit
    row["run"] = run
    return canonical_json(row)


def append_run(
    trajectory_path: "str | Path",
    artifact_dir: "str | Path",
    commit: str = "",
    run: str = "",
) -> int:
    """Append every artifact in ``artifact_dir`` to the trajectory file.

    Creates the file (and parents) on first use; returns the number of lines
    appended.  Artifacts are appended in sorted filename order so the output
    is deterministic for a given artifact set.
    """
    artifact_dir = Path(artifact_dir)
    paths = sorted(artifact_dir.glob(f"{ARTIFACT_PREFIX}*.json"))
    if not paths:
        raise FileNotFoundError(
            f"no {ARTIFACT_PREFIX}*.json artifacts in {artifact_dir}"
        )
    trajectory_path = Path(trajectory_path)
    trajectory_path.parent.mkdir(parents=True, exist_ok=True)
    with trajectory_path.open("a", encoding="utf-8") as stream:
        for path in paths:
            artifact = json.loads(path.read_text(encoding="utf-8"))
            stream.write(trajectory_line(artifact, commit=commit, run=run) + "\n")
    return len(paths)


def read_trajectory(trajectory_path: "str | Path") -> list[dict]:
    """Parse a trajectory file back into its rows (skips blank lines)."""
    rows = []
    for line in Path(trajectory_path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            rows.append(json.loads(line))
    return rows


def _fmt_rate(value) -> str:
    """Human events/s: ``123.4k`` above a thousand, blank for missing."""
    if not isinstance(value, (int, float)):
        return "-"
    if value >= 1000:
        return f"{value / 1000:.1f}k"
    return f"{value:.1f}"


def render_report(rows: Sequence[dict], series_limit: int = 10) -> str:
    """Render trajectory rows as a markdown events/s-over-time report.

    One summary table across benchmarks (runs seen, first/latest/best
    events/s, latest-vs-first delta) followed by a per-benchmark series of
    the most recent ``series_limit`` runs.  Rows keep file order — the
    append order, which is chronological — and group by ``bench``.
    """
    by_bench: dict[str, list[dict]] = {}
    for row in rows:
        if row.get("bench"):
            by_bench.setdefault(row["bench"], []).append(row)
    lines = ["# Benchmark trajectory", ""]
    if not by_bench:
        lines.append("No trajectory data yet.")
        return "\n".join(lines) + "\n"

    lines += [
        "| bench | runs | first ev/s | latest ev/s | best ev/s | latest vs first |",
        "|---|---|---|---|---|---|",
    ]
    for bench in sorted(by_bench):
        series = by_bench[bench]
        rates = [
            row["events_per_sec"]
            for row in series
            if isinstance(row.get("events_per_sec"), (int, float))
        ]
        first = rates[0] if rates else None
        latest = rates[-1] if rates else None
        best = max(rates) if rates else None
        delta = (
            f"{100 * (latest - first) / first:+.1f}%"
            if rates and first
            else "-"
        )
        lines.append(
            f"| {bench} | {len(series)} | {_fmt_rate(first)} | "
            f"{_fmt_rate(latest)} | {_fmt_rate(best)} | {delta} |"
        )

    for bench in sorted(by_bench):
        series = by_bench[bench][-series_limit:]
        lines += [
            "",
            f"## {bench}",
            "",
            "| run | commit | events/s | median s | n_jobs |",
            "|---|---|---|---|---|",
        ]
        for row in series:
            commit = str(row.get("commit", ""))[:12] or "-"
            median = row.get("median_s")
            median_text = f"{median:.4f}" if isinstance(median, (int, float)) else "-"
            lines.append(
                f"| {row.get('run') or '-'} | {commit} | "
                f"{_fmt_rate(row.get('events_per_sec'))} | {median_text} | "
                f"{row.get('n_jobs', '-')} |"
            )
    return "\n".join(lines) + "\n"


def render_first_run_report(
    artifact_dir: "str | Path",
    trajectory_path: "str | Path",
) -> str:
    """Markdown for the first-run path: no trajectory history exists yet.

    States why the history is empty (file missing vs present-but-empty) and,
    when this run's ``BENCH_*.json`` artifacts are available, renders them as
    a "this run" table so the job summary is useful from run one onward.
    """
    path = Path(trajectory_path)
    state = "empty" if path.is_file() else "missing"
    lines = [
        "# Benchmark trajectory",
        "",
        f"No prior runs recorded: trajectory file `{path}` is {state}. "
        "History accumulates from this run onward.",
    ]
    paths = sorted(Path(artifact_dir).glob(f"{ARTIFACT_PREFIX}*.json"))
    if paths:
        lines += [
            "",
            "## This run",
            "",
            "| bench | events/s | median s | n_jobs |",
            "|---|---|---|---|",
        ]
        for artifact_file in paths:
            artifact = json.loads(artifact_file.read_text(encoding="utf-8"))
            median = artifact.get("median_s")
            median_text = f"{median:.4f}" if isinstance(median, (int, float)) else "-"
            lines.append(
                f"| {artifact.get('bench') or artifact_file.stem} | "
                f"{_fmt_rate(artifact.get('events_per_sec'))} | {median_text} | "
                f"{artifact.get('n_jobs', '-')} |"
            )
    return "\n".join(lines) + "\n"


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="benchmarks.trajectory",
        description="append BENCH_*.json artifacts to a cumulative NDJSON trajectory",
    )
    parser.add_argument("--artifacts", default="bench-artifacts",
                        help="directory holding this run's BENCH_*.json files")
    parser.add_argument("--out", default="bench-trajectory/trajectory.ndjson",
                        help="trajectory NDJSON file to append to")
    parser.add_argument("--commit", default="", help="commit SHA recorded per line")
    parser.add_argument("--run", default="", help="run identifier recorded per line")
    parser.add_argument("--report", action="store_true",
                        help="render the trajectory in --out as a markdown "
                             "events/s-over-time report instead of appending")
    parser.add_argument("--report-out", default=None, metavar="FILE",
                        help="with --report: also write the markdown to FILE")
    args = parser.parse_args(argv)
    if args.report:
        path = Path(args.out)
        rows = read_trajectory(path) if path.is_file() else []
        if rows:
            report = render_report(rows)
        else:
            report = render_first_run_report(args.artifacts, path)
        if args.report_out:
            report_path = Path(args.report_out)
            report_path.parent.mkdir(parents=True, exist_ok=True)
            report_path.write_text(report, encoding="utf-8")
        print(report, end="")
        return 0
    try:
        count = append_run(args.out, args.artifacts, commit=args.commit, run=args.run)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    total = len(read_trajectory(args.out))
    print(f"appended {count} benchmark(s) to {args.out} ({total} lines total)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
