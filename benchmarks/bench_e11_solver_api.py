"""Benchmark E11 — dispatch overhead of the ``repro.solve()`` facade.

The unified solver API must be free in practice: looking an algorithm up in
the registry, validating its parameters against the schema and packaging the
uniform :class:`~repro.solvers.outcome.SolveOutcome` may not add more than 5%
on top of invoking the engine directly.  Measured on a 500-job instance so
the comparison reflects real workloads, not just fixed costs.
"""

from __future__ import annotations

import time

import pytest

from repro.core.flow_time import RejectionFlowTimeScheduler
from repro.simulation.engine import FlowTimeEngine
from repro.solvers import get_solver, solve
from repro.workloads.generators import InstanceGenerator

NUM_JOBS = 500
EPSILON = 0.5


@pytest.fixture(scope="module")
def instance():
    return InstanceGenerator(num_machines=8, seed=11, size_distribution="pareto").generate(
        NUM_JOBS
    )


def _best_runtime(fn, repeats: int = 7) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_e11_solve_facade(benchmark, instance):
    """Time a full ``repro.solve()`` call (registry lookup + engine + outcome)."""
    outcome = benchmark(lambda: solve(instance, "rejection-flow", epsilon=EPSILON))
    assert len(outcome.result.records) == NUM_JOBS


def test_e11_direct_engine(benchmark, instance):
    """Time the equivalent direct engine invocation (the pre-registry API)."""
    engine = FlowTimeEngine(instance)
    result = benchmark(lambda: engine.run(RejectionFlowTimeScheduler(epsilon=EPSILON)))
    assert len(result.records) == NUM_JOBS


def test_e11_dispatch_overhead_under_5_percent(instance):
    """The facade's dispatch overhead stays below 5% of the direct run."""
    engine = FlowTimeEngine(instance)

    def direct():
        return engine.run(RejectionFlowTimeScheduler(epsilon=EPSILON))

    def facade():
        return solve(instance, "rejection-flow", epsilon=EPSILON)

    # Warm both paths (catalog import, bytecode, allocator) before timing.
    direct()
    facade()
    # Measure in adjacent (direct, facade) pairs and take the best per-round
    # ratio: background load hits both halves of a pair almost equally, so at
    # least one round reflects the code paths rather than scheduler noise.
    # (Unpaired min-vs-min still flakes on busy CI boxes.)
    best_overhead = float("inf")
    best_pair = (0.0, 0.0)
    for _ in range(11):
        direct_time = _best_runtime(direct, repeats=1)
        facade_time = _best_runtime(facade, repeats=1)
        overhead = facade_time / direct_time - 1.0
        if overhead < best_overhead:
            best_overhead = overhead
            best_pair = (direct_time, facade_time)
    direct_time, facade_time = best_pair
    # 5% relative budget with a 1ms absolute floor so sub-millisecond jitter
    # on a fast machine cannot fail the check spuriously.
    assert best_overhead < 0.05 or facade_time - direct_time < 1e-3, (
        f"solve() overhead {best_overhead:.1%} (facade {facade_time * 1e3:.2f}ms "
        f"vs direct {direct_time * 1e3:.2f}ms) exceeds the 5% budget"
    )


def test_e11_validation_is_prepaid(instance):
    """Parameter validation alone is microseconds — negligible next to a run."""
    spec = get_solver("rejection-flow")
    validated = spec.validate_params({"epsilon": EPSILON})
    assert validated["epsilon"] == EPSILON
    per_call = _best_runtime(lambda: spec.validate_params({"epsilon": EPSILON}), repeats=5)
    assert per_call < 1e-3
