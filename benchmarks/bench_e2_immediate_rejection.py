"""Benchmark E2 — Lemma 1: immediate rejection vs the Theorem 1 algorithm.

Regenerates the E2 table (flow-time ratio vs Delta for immediate-rejection
policies and for the paper's algorithm on the Lemma 1 instance family).
"""

from __future__ import annotations

from repro.experiments import run_experiment

E2_KWARGS = dict(lengths=(4.0, 8.0, 16.0, 24.0), epsilon=0.25)


def test_e2_experiment(benchmark, report_sink):
    """Time the Lemma 1 sweep and check the separation it demonstrates."""
    result = benchmark.pedantic(
        lambda: run_experiment("E2", **E2_KWARGS), rounds=1, iterations=1
    )
    report_sink(result.render())

    rows = result.raw["rows"]
    ours = {r["L"]: r["ratio_vs_lb"] for r in rows if "rejection-flow-time" in r["algorithm"]}
    immediate = {}
    for row in rows:
        if "immediate" in row["algorithm"]:
            immediate[row["L"]] = max(immediate.get(row["L"], 0.0), row["ratio_vs_lb"])

    lengths = sorted(ours)
    # Immediate rejection degrades as Delta = L^2 grows ...
    assert immediate[lengths[-1]] > 2.0 * immediate[lengths[0]]
    # ... while the Theorem 1 algorithm stays within its guarantee everywhere.
    for length in lengths:
        assert ours[length] <= rows[0]["theorem1_bound"] + 1e-9
