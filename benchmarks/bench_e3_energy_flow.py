"""Benchmark E3 — Theorem 2: weighted flow time plus energy with rejections.

Regenerates the E3 table (objective, rejected-weight fraction and ratio per
alpha/epsilon, with the rejection-free and preemptive-HDF references).
"""

from __future__ import annotations

import pytest

from repro.core.flow_time_energy import RejectionEnergyFlowScheduler
from repro.experiments import run_experiment
from repro.simulation.speed_engine import SpeedScalingEngine
from repro.workloads.generators import WeightedInstanceGenerator

E3_KWARGS = dict(alphas=(2.0, 2.5, 3.0), epsilons=(0.25, 0.5), num_jobs=150)


def test_e3_experiment(benchmark, report_sink):
    """Time the full E3 sweep and verify the Theorem 2 budget on every row."""
    result = benchmark.pedantic(
        lambda: run_experiment("E3", **E3_KWARGS), rounds=1, iterations=1
    )
    report_sink(result.render())
    for row in result.raw["rows"]:
        if row["epsilon"] != "-":
            assert row["rejected_weight_fraction"] <= row["budget_eps"] + 1e-9


@pytest.mark.parametrize("alpha", [2.0, 3.0])
def test_e3_scheduler_throughput(benchmark, alpha):
    """Time a single Theorem 2 run on an 800-job speed-scaling workload."""
    instance = WeightedInstanceGenerator(num_machines=4, alpha=alpha, seed=3).generate(800)
    engine = SpeedScalingEngine(instance)

    def run():
        return engine.run(RejectionEnergyFlowScheduler(epsilon=0.3))

    result = benchmark(run)
    assert len(result.records) == 800
