"""Command-line entry point for the unified benchmark harness.

Usage (from the repository root)::

    PYTHONPATH=src python -m benchmarks.harness --quick --out bench-artifacts
    PYTHONPATH=src python -m benchmarks.harness --list
    PYTHONPATH=src python -m benchmarks.harness --quick \
        --baseline benchmarks/baselines --max-regression 0.25

The heavy lifting lives in :mod:`repro.benchmarking` (also exposed as the
``repro bench`` subcommand); this wrapper only exists so the benchmarks
directory remains the single place to look for performance tooling.  Each run
emits one canonical-JSON ``BENCH_<slug>.json`` per benchmark with the schema
``{bench, n_jobs, median_s, events_per_sec, fingerprint, ...}``.
"""

from __future__ import annotations

import sys

from repro.benchmarking import main

if __name__ == "__main__":
    sys.exit(main())
