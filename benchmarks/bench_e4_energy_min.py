"""Benchmark E4 — Theorem 3: non-preemptive energy minimisation with deadlines.

Regenerates the E4 table (greedy and AVR energy vs the certified lower bound
and the alpha^alpha guarantee) and times the configuration-LP greedy on a
medium deadline workload.
"""

from __future__ import annotations

import pytest

from repro.core.energy_min import ConfigLPEnergyScheduler
from repro.experiments import run_experiment
from repro.workloads.generators import DeadlineInstanceGenerator

E4_KWARGS = dict(
    alphas=(1.5, 2.0, 3.0),
    slacks=(2.0, 4.0),
    num_jobs=25,
    include_brute_force=True,
    brute_force_jobs=5,
)


def test_e4_experiment(benchmark, report_sink):
    """Time the full E4 sweep; on tiny prefixes the greedy must be near the optimum."""
    result = benchmark.pedantic(
        lambda: run_experiment("E4", **E4_KWARGS), rounds=1, iterations=1
    )
    report_sink(result.render())
    for row in result.raw.get("brute_force", []):
        # Theorem 3 against the *discretised optimum*, with generous slack for
        # the alpha^alpha bound (the greedy is usually near-optimal).
        assert row["ratio_vs_opt"] >= 1.0 - 1e-9
        assert row["ratio_vs_opt"] <= row["alpha"] ** row["alpha"] + 1e-6


@pytest.mark.parametrize("slack", [2.0, 6.0])
def test_e4_greedy_throughput(benchmark, slack):
    """Time the configuration-LP greedy on a 60-job deadline instance."""
    instance = DeadlineInstanceGenerator(
        num_machines=3, slack=slack, alpha=2.0, seed=4
    ).generate(60)
    scheduler = ConfigLPEnergyScheduler()

    schedule = benchmark.pedantic(lambda: scheduler.schedule(instance), rounds=2, iterations=1)
    assert len(schedule.strategies) == 60
