"""Benchmark E7 — dual-fitting certificates (Lemma 4 / Lemma 5 / Lemma 6).

Regenerates the E7 tables (constraint checks, dual objective vs the analysis'
lower bound) and times the dual reconstruction itself, which is the heaviest
post-processing step in the library.
"""

from __future__ import annotations

from repro.core.dual import FlowTimeDualAccountant
from repro.core.flow_time import RejectionFlowTimeScheduler
from repro.experiments import run_experiment
from repro.simulation.engine import FlowTimeEngine
from repro.workloads.generators import InstanceGenerator

E7_KWARGS = dict(epsilons=(0.25, 0.5), num_jobs=60, samples_per_job=15)


def test_e7_experiment(benchmark, report_sink):
    """Time the E7 verification sweep; every sampled constraint must hold."""
    result = benchmark.pedantic(
        lambda: run_experiment("E7", **E7_KWARGS), rounds=1, iterations=1
    )
    report_sink(result.render())
    assert all(row["violations"] == 0 for row in result.raw["flow"])
    assert all(row["violations"] == 0 for row in result.raw["energy"])
    assert all(row["monotonicity_violations"] == 0 for row in result.raw["energy"])


def test_e7_dual_reconstruction_throughput(benchmark):
    """Time building the Section 2 dual certificate for a 150-job run."""
    instance = InstanceGenerator(num_machines=3, seed=5).generate(150)
    scheduler = RejectionFlowTimeScheduler(epsilon=0.4)
    result = FlowTimeEngine(instance).run(scheduler)

    def build_and_check():
        accountant = FlowTimeDualAccountant(result, scheduler)
        return accountant.check_feasibility(samples_per_job=8)

    check = benchmark(build_and_check)
    assert check.feasible
