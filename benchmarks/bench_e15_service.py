"""Benchmark E15 — multi-session service capacity and byte-identity.

The asyncio service must scale concurrent sessions without compromising the
determinism contract: every hosted session's final summary is byte-identical
to the batch ``repro.solve()`` of the same instance, no matter how many
tenants share the server.  These benchmarks time the full serving stack
(loopback TCP server + threaded loadgen clients + chunked submit/poll round
trips) at 1 and 8 concurrent sessions, and assert the ≥32-session
acceptance demo: all sessions finalize byte-identically under heavy
concurrency.
"""

from __future__ import annotations

import pytest

from repro.service.client import run_loadgen
from repro.service.server import start_server_thread

JOBS_PER_SESSION = 200
MACHINES = 4
EPSILON = 0.5


def _drive(sessions: int, jobs: int = JOBS_PER_SESSION, verify: bool = False):
    with start_server_thread() as handle:
        return run_loadgen(
            handle.host,
            handle.port,
            sessions=sessions,
            jobs=jobs,
            machines=MACHINES,
            seed=2018,
            params={"epsilon": EPSILON},
            chunk_size=32,
            verify=verify,
        )


def test_e15_single_session(benchmark):
    """Baseline: one session through the full TCP serving stack."""
    report = benchmark(lambda: _drive(1))
    assert report.total_jobs == JOBS_PER_SESSION
    assert report.sessions[0].final_row is not None


def test_e15_eight_sessions(benchmark):
    """The capacity path: 8 concurrent sessions on one server."""
    report = benchmark(lambda: _drive(8))
    assert report.total_jobs == 8 * JOBS_PER_SESSION
    assert all(r.final_row is not None for r in report.sessions)


def test_e15_32_sessions_byte_identical():
    """Acceptance demo: >=32 concurrent sessions, every final summary
    byte-identical to the batch solve of the same instance."""
    report = _drive(32, jobs=60, verify=True)
    assert len(report.sessions) == 32
    assert report.verified == 32
    assert report.total_throttled == 0
