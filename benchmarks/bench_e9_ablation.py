"""Benchmark E9 — ablation of the two rejection rules of the Theorem 1 algorithm.

Regenerates the E9 table (flow time and rejection fraction for each subset of
rules on random and adversarial workloads).
"""

from __future__ import annotations

from repro.experiments import run_experiment

E9_KWARGS = dict(
    workloads=("poisson-pareto", "overload-burst", "lemma1-L16"), epsilon=0.25
)


def test_e9_experiment(benchmark, report_sink):
    """Time the ablation sweep and verify the qualitative ordering of the variants."""
    result = benchmark.pedantic(
        lambda: run_experiment("E9", **E9_KWARGS), rounds=1, iterations=1
    )
    report_sink(result.render())

    rows = result.raw["rows"]
    by_workload: dict[str, dict[str, float]] = {}
    for row in rows:
        by_workload.setdefault(row["workload"], {})[row["rules"]] = row["flow_time"]
    for workload, variants in by_workload.items():
        # Using both rules never loses to using no rejection at all on these
        # workloads (that gap is the point of the paper).
        assert variants["both rules"] <= variants["no rejection"] + 1e-9
