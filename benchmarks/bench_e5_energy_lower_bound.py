"""Benchmark E5 — Lemma 2: the adaptive adversary for energy minimisation.

Regenerates the E5 table (forced ratio vs alpha, next to the (alpha/9)^alpha
lower bound and the alpha^alpha upper bound).
"""

from __future__ import annotations

from repro.experiments import run_experiment

E5_KWARGS = dict(alphas=(2.0, 3.0, 4.0, 5.0))


def test_e5_experiment(benchmark, report_sink):
    """Time the Lemma 2 game sweep and verify the ratio grows with alpha."""
    result = benchmark.pedantic(
        lambda: run_experiment("E5", **E5_KWARGS), rounds=1, iterations=1
    )
    report_sink(result.render())

    rows = result.raw["rows"]
    ratios = [row["forced_ratio"] for row in rows]
    assert ratios == sorted(ratios)  # monotone in alpha
    for row in rows:
        assert row["forced_ratio"] <= row["theorem3_bound"] + 1e-6
