#!/usr/bin/env python3
"""Data-center scenario: bursty heavy-tailed traffic on heterogeneous machines.

This is the scenario the paper's introduction motivates: a cluster scheduler
that cannot afford to preempt large jobs (checkpointing cost) and therefore
schedules non-preemptively, but may *reject* (kill and offload) a small
fraction of jobs.  The example compares, on a bursty bimodal workload over
unrelated machines:

* the Theorem 1 rejection scheduler for several epsilon values,
* the rejection-free greedy and FCFS baselines,
* an immediate-rejection policy (admission control at arrival only),

and prints per-policy flow-time statistics, tail latencies and the rejection
budget actually used.

Run with::

    python examples/datacenter_flow_time.py [--jobs 1500]
"""

from __future__ import annotations

import argparse

from repro import FlowTimeEngine, summarize, validate_result
from repro.analysis import ExperimentTable, describe
from repro.baselines import FCFSScheduler, GreedyDispatchScheduler, ImmediateRejectionScheduler
from repro.core import RejectionFlowTimeScheduler
from repro.core.bounds import flow_time_competitive_ratio
from repro.lowerbounds import best_flow_time_lower_bound
from repro.workloads import InstanceGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1500, help="number of jobs")
    parser.add_argument("--machines", type=int, default=8, help="number of machines")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    args = parser.parse_args()

    generator = InstanceGenerator(
        num_machines=args.machines,
        arrival_process="bursty",
        size_distribution="bimodal",
        size_params={"short": 1.0, "long": 60.0, "long_fraction": 0.08},
        machine_model="unrelated",
        machine_correlation=0.3,
        seed=args.seed,
    )
    instance = generator.generate(args.jobs)
    lower_bound = best_flow_time_lower_bound(instance)
    engine = FlowTimeEngine(instance)

    policies = [
        RejectionFlowTimeScheduler(epsilon=0.1),
        RejectionFlowTimeScheduler(epsilon=0.25),
        RejectionFlowTimeScheduler(epsilon=0.5),
        ImmediateRejectionScheduler(epsilon=0.25, variant="largest"),
        GreedyDispatchScheduler(),
        FCFSScheduler(),
    ]

    table = ExperimentTable(
        title=f"bursty bimodal cluster workload ({args.jobs} jobs, {args.machines} machines)",
        columns=(
            "policy",
            "total_flow",
            "mean_flow",
            "p95_flow",
            "max_flow",
            "rejected_%",
            "ratio_vs_lb",
        ),
    )
    for policy in policies:
        result = engine.run(policy)
        validate_result(result)
        stats = summarize(result)
        flows = [record.flow_time for record in result.completed_records()]
        dist = describe(flows)
        table.add_row(
            {
                "policy": policy.name,
                "total_flow": stats.total_flow_time,
                "mean_flow": dist.mean,
                "p95_flow": dist.p95,
                "max_flow": dist.maximum,
                "rejected_%": 100.0 * stats.rejected_fraction,
                "ratio_vs_lb": stats.total_flow_time / lower_bound,
            }
        )
    table.add_note(
        "paper guarantee at eps=0.25: ratio <= "
        f"{flow_time_competitive_ratio(0.25):.0f}, rejecting <= 50% of jobs "
        "(observed rejections are far lower; the bound is worst-case)."
    )
    print(table.render(precision=2))


if __name__ == "__main__":
    main()
