#!/usr/bin/env python3
"""Streaming sessions: schedule jobs as they arrive, not as a batch.

The paper's setting is online — jobs are revealed at their release times —
and ``repro.open_session()`` is the API surface that matches it.  This
example streams a random workload job-by-job through a
:class:`~repro.service.session.SchedulerSession` running the Theorem 1
scheduler, watches the decision events come out, checkpoints the session
halfway through (snapshot → restore, as a crash/restart would), and shows
that the finalized outcome is byte-identical to the batch ``repro.solve()``
call on the same instance.

Run with::

    python examples/streaming_session.py [--jobs 200] [--machines 4] [--epsilon 0.5]
"""

from __future__ import annotations

import argparse
from collections import Counter

import repro
from repro.workloads import InstanceGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=200, help="number of jobs")
    parser.add_argument("--machines", type=int, default=4, help="number of machines")
    parser.add_argument("--epsilon", type=float, default=0.5, help="rejection parameter")
    parser.add_argument("--seed", type=int, default=2018, help="workload seed")
    args = parser.parse_args()

    generator = InstanceGenerator(
        num_machines=args.machines, size_distribution="pareto", seed=args.seed
    )
    instance = generator.generate(args.jobs)

    # -- stream the first half, observing decisions as they happen ---------------
    session = repro.open_session(
        "rejection-flow", instance.machines, epsilon=args.epsilon, name=instance.name
    )
    half = len(instance.jobs) // 2
    kinds: Counter[str] = Counter()
    for job in instance.jobs[:half]:
        session.submit(job)
        for event in session.poll():
            kinds[event.kind] += 1
    print(f"after {half} submissions: t={session.time:.2f}, "
          + ", ".join(f"{k}={v}" for k, v in sorted(kinds.items())))

    # -- checkpoint and restore (what a restart would do) ------------------------
    checkpoint = session.to_json()
    print(f"checkpoint: {len(checkpoint)} bytes of canonical JSON")
    restored = repro.SchedulerSession.restore(checkpoint)

    # -- stream the rest into the restored session and finalize ------------------
    for job in instance.jobs[half:]:
        restored.submit(job)
        restored.poll()
    outcome = restored.finalize()
    print(f"finalized : {outcome.label}")
    print(f"objective : {outcome.objective} = {outcome.objective_value:.2f}")
    print(f"rejected  : {outcome.rejected_count} jobs "
          f"({100 * outcome.rejected_fraction:.1f}%)")

    # -- the batch facade agrees ---------------------------------------------------
    # Byte-identity to repro.solve() is guaranteed for the ingest-then-
    # finalize replay pattern (a mid-stream-polled session like the one
    # above is deterministic, but on deep queues its float prefix sums may
    # drift from the batch run in the last bits — see the session docs).
    replay = repro.open_session(
        "rejection-flow", instance.machines, epsilon=args.epsilon, name=instance.name
    )
    replay.submit_many(instance.jobs)
    replayed = replay.finalize()
    batch = repro.solve(instance, "rejection-flow", epsilon=args.epsilon)
    assert replayed.objective_value == batch.objective_value
    assert replayed.result.records == batch.result.records
    assert replayed.result.intervals == batch.result.intervals
    print("replay session vs batch repro.solve(): byte-identical schedule ✓")
    same = outcome.result.records == batch.result.records
    print(f"polled session vs batch: {'identical here too' if same else 'diverged in float last bits (allowed)'}")


if __name__ == "__main__":
    main()
