#!/usr/bin/env python3
"""Deadline scenario: non-preemptive energy minimisation (Section 4).

Models firm-real-time batch jobs (every job must finish inside its window)
on speed-scalable machines.  The example runs the configuration-LP greedy of
Theorem 3 against the AVR online reference and the certified lower bound for
several deadline slacks and power exponents, and also plays the Lemma 2
adaptive adversary to show how an adversarial release sequence inflates the
ratio.

Run with::

    python examples/deadline_energy.py [--jobs 40]
"""

from __future__ import annotations

import argparse

from repro import ConfigLPEnergyScheduler
from repro.analysis import ExperimentTable
from repro.baselines import average_rate_energy, yds_energy
from repro.core.bounds import energy_min_competitive_ratio, energy_min_lower_bound
from repro.lowerbounds import best_energy_lower_bound
from repro.workloads import DeadlineInstanceGenerator, Lemma2Adversary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=40, help="number of jobs")
    parser.add_argument("--machines", type=int, default=2, help="number of machines")
    parser.add_argument("--seed", type=int, default=3, help="workload seed")
    args = parser.parse_args()

    table = ExperimentTable(
        title="non-preemptive energy minimisation with deadlines",
        columns=("alpha", "slack", "greedy_energy", "avr_energy", "lower_bound",
                 "greedy_ratio", "paper_bound"),
    )
    for alpha in (2.0, 3.0):
        for slack in (2.0, 4.0, 8.0):
            instance = DeadlineInstanceGenerator(
                num_machines=args.machines, slack=slack, alpha=alpha, seed=args.seed
            ).generate(args.jobs)
            scheduler = ConfigLPEnergyScheduler()
            schedule = scheduler.schedule(instance)
            lb = best_energy_lower_bound(instance)
            table.add_row(
                {
                    "alpha": alpha,
                    "slack": slack,
                    "greedy_energy": schedule.total_energy,
                    "avr_energy": average_rate_energy(instance),
                    "lower_bound": lb,
                    "greedy_ratio": schedule.total_energy / lb,
                    "paper_bound": energy_min_competitive_ratio(alpha),
                }
            )
    print(table.render(precision=2))

    # Single-machine sanity check against the optimal preemptive schedule (YDS).
    single = DeadlineInstanceGenerator(
        num_machines=1, slack=4.0, alpha=2.0, seed=args.seed
    ).generate(max(10, args.jobs // 2))
    greedy_energy = ConfigLPEnergyScheduler().schedule(single).total_energy
    print(f"\nsingle machine: greedy energy {greedy_energy:.2f} vs YDS (preemptive optimum) "
          f"{yds_energy(single):.2f}")

    # The Lemma 2 adaptive adversary.
    adversary_table = ExperimentTable(
        title="Lemma 2 adaptive adversary vs the greedy",
        columns=("alpha", "forced_ratio", "lemma2_lower_bound", "theorem3_upper_bound"),
    )
    for alpha in (2.0, 3.0, 4.0):
        outcome = Lemma2Adversary(alpha=alpha).play()
        adversary_table.add_row(
            {
                "alpha": alpha,
                "forced_ratio": outcome.ratio,
                "lemma2_lower_bound": energy_min_lower_bound(alpha),
                "theorem3_upper_bound": energy_min_competitive_ratio(alpha),
            }
        )
    print("\n" + adversary_table.render(precision=3))


if __name__ == "__main__":
    main()
