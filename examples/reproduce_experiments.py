#!/usr/bin/env python3
"""Regenerate every experiment table (E1-E9) in one run.

This is the batch driver behind EXPERIMENTS.md: it runs the whole experiment
suite at the chosen scale and prints (or writes) the rendered report.  The
per-experiment benchmarks under ``benchmarks/`` time the same entry points.

Run with::

    python examples/reproduce_experiments.py [--scale small] [--only E1 E2] [--output report.md]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import available_experiments, run_experiment

# Per-experiment overrides keeping the default run laptop-friendly.
_SCALE_OVERRIDES: dict[str, dict[str, dict]] = {
    "small": {
        "E1": {"epsilons": (0.1, 0.25, 0.5)},
        "E2": {"lengths": (4.0, 8.0, 16.0)},
        "E3": {"num_jobs": 100},
        "E4": {"num_jobs": 20},
        "E5": {"alphas": (2.0, 3.0, 4.0)},
        "E8": {"job_counts": (200, 1000)},
    },
    "medium": {
        "E1": {"scale": "medium"},
        "E2": {"lengths": (4.0, 8.0, 16.0, 24.0, 32.0)},
        "E3": {"num_jobs": 250},
        "E4": {"num_jobs": 40, "include_brute_force": True},
        "E5": {"alphas": (2.0, 3.0, 4.0, 5.0, 6.0)},
        "E6": {"scale": "medium"},
        "E8": {"job_counts": (1000, 5000, 20000), "machine_counts": (4, 16)},
        "E9": {"scale": "medium"},
    },
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("small", "medium"), default="small")
    parser.add_argument("--only", nargs="*", default=None, help="subset of experiment ids")
    parser.add_argument("--output", default=None, help="write the report to this file")
    args = parser.parse_args()

    experiment_ids = [e.upper() for e in (args.only or available_experiments())]
    overrides = _SCALE_OVERRIDES.get(args.scale, {})

    sections = []
    for experiment_id in experiment_ids:
        start = time.perf_counter()
        result = run_experiment(experiment_id, **overrides.get(experiment_id, {}))
        elapsed = time.perf_counter() - start
        sections.append(result.render() + f"\n\n(ran in {elapsed:.1f}s)")
        print(f"[{experiment_id}] done in {elapsed:.1f}s", file=sys.stderr)

    report = "\n\n\n".join(sections)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"report written to {args.output}", file=sys.stderr)
    else:
        print(report)


if __name__ == "__main__":
    main()
