#!/usr/bin/env python3
"""Speed-scaling scenario: weighted flow time plus energy (Section 3).

Models a power-aware server farm: each machine can run at any speed ``s`` at
power ``s^alpha``, jobs carry weights (priorities), and the operator wants to
minimise weighted response time plus the energy bill.  The example runs the
Theorem 2 rejection scheduler against its rejection-free variant and the
preemptive HDF reference for a sweep of alpha, and prints the objective
decomposition (flow vs energy), the rejected weight and the paper's bound.

Run with::

    python examples/speed_scaling_energy.py [--jobs 250] [--epsilon 0.3]
"""

from __future__ import annotations

import argparse

from repro import SpeedScalingEngine, summarize, validate_result
from repro.analysis import ExperimentTable
from repro.baselines import HighestDensityFirstScheduler, NoRejectionEnergyFlowScheduler
from repro.core import RejectionEnergyFlowScheduler
from repro.core.bounds import energy_flow_competitive_ratio
from repro.lowerbounds import per_job_flow_energy_lower_bound
from repro.workloads import WeightedInstanceGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=250, help="number of jobs")
    parser.add_argument("--machines", type=int, default=4, help="number of machines")
    parser.add_argument("--epsilon", type=float, default=0.3, help="rejected weight budget")
    parser.add_argument("--seed", type=int, default=11, help="workload seed")
    args = parser.parse_args()

    table = ExperimentTable(
        title="weighted flow time + energy under speed scaling",
        columns=(
            "alpha",
            "policy",
            "weighted_flow",
            "energy",
            "objective",
            "rejected_weight_%",
            "ratio_vs_lb",
            "paper_bound",
        ),
    )

    for alpha in (2.0, 2.5, 3.0):
        generator = WeightedInstanceGenerator(
            num_machines=args.machines, alpha=alpha, seed=args.seed
        )
        instance = generator.generate(args.jobs)
        lower_bound = per_job_flow_energy_lower_bound(instance)
        engine = SpeedScalingEngine(instance)

        rows = []
        scheduler = RejectionEnergyFlowScheduler(epsilon=args.epsilon)
        result = engine.run(scheduler)
        validate_result(result)
        rows.append((scheduler.name, result, energy_flow_competitive_ratio(args.epsilon, alpha)))

        no_reject = NoRejectionEnergyFlowScheduler()
        rows.append((no_reject.name, engine.run(no_reject), None))

        for name, res, bound in rows:
            stats = summarize(res)
            table.add_row(
                {
                    "alpha": alpha,
                    "policy": name,
                    "weighted_flow": stats.total_weighted_flow_time,
                    "energy": stats.total_energy,
                    "objective": stats.flow_plus_energy,
                    "rejected_weight_%": 100.0 * stats.rejected_weight_fraction,
                    "ratio_vs_lb": stats.flow_plus_energy / lower_bound,
                    "paper_bound": bound if bound is not None else "-",
                }
            )

        hdf = HighestDensityFirstScheduler()
        reference = hdf.run(instance)
        table.add_row(
            {
                "alpha": alpha,
                "policy": hdf.name,
                "weighted_flow": reference.weighted_flow_time,
                "energy": reference.energy,
                "objective": reference.objective,
                "rejected_weight_%": 0.0,
                "ratio_vs_lb": reference.objective / lower_bound,
                "paper_bound": "-",
            }
        )

    table.add_note(
        "HDF is preemptive, so it is an optimistic reference; the Theorem 2 scheduler is "
        "non-preemptive and still tracks it once it may reject an epsilon fraction of weight."
    )
    print(table.render(precision=2))


if __name__ == "__main__":
    main()
