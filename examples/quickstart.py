#!/usr/bin/env python3
"""Quickstart: schedule a random workload with the paper's flow-time algorithm.

This example builds a small random unrelated-machine instance and runs the
Theorem 1 scheduler (rejection parameter ``epsilon``) next to the
rejection-free greedy baseline — both through ``repro.solve()``, the
algorithm-agnostic entry point backed by the solver registry — then prints
the headline numbers next to the paper's theoretical guarantee.

Run with::

    python examples/quickstart.py [--jobs 300] [--machines 4] [--epsilon 0.5]

``repro.list_algorithms()`` (or ``repro solve --list-algorithms``) shows
every other algorithm id you can pass instead of ``rejection-flow``.
"""

from __future__ import annotations

import argparse

import repro
from repro.core.bounds import flow_time_competitive_ratio, flow_time_rejection_budget
from repro.lowerbounds import best_flow_time_lower_bound
from repro.simulation.validation import validate_result
from repro.workloads import InstanceGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=300, help="number of jobs")
    parser.add_argument("--machines", type=int, default=4, help="number of machines")
    parser.add_argument("--epsilon", type=float, default=0.5, help="rejection parameter")
    parser.add_argument("--seed", type=int, default=2018, help="workload seed")
    args = parser.parse_args()

    generator = InstanceGenerator(
        num_machines=args.machines,
        size_distribution="pareto",
        arrival_process="poisson",
        seed=args.seed,
    )
    instance = generator.generate(args.jobs)
    print(f"instance: {instance.name}  (Delta = {instance.delta():.1f})")

    lower_bound = best_flow_time_lower_bound(instance)

    outcome = repro.solve(instance, algorithm="rejection-flow", epsilon=args.epsilon)
    validate_result(outcome.result)

    baseline = repro.solve(instance, algorithm="greedy")

    print(f"\n{outcome.label}")
    print(f"  total flow time      : {outcome.objective_value:12.1f}")
    print(f"  rejected fraction    : {outcome.rejected_fraction:12.3f}"
          f"   (budget 2*eps = {flow_time_rejection_budget(args.epsilon):.3f})")
    print(f"  ratio vs lower bound : {outcome.objective_value / lower_bound:12.2f}"
          f"   (paper bound = {flow_time_competitive_ratio(args.epsilon):.1f})")

    print(f"\n{baseline.label}")
    print(f"  total flow time      : {baseline.objective_value:12.1f}")
    print(f"  ratio vs lower bound : {baseline.objective_value / lower_bound:12.2f}")

    improvement = baseline.objective_value / max(outcome.objective_value, 1e-9)
    print(f"\nrejecting {outcome.rejected_count} of {len(outcome.result.records)} jobs "
          f"reduced total flow time by a factor of {improvement:.2f}")


if __name__ == "__main__":
    main()
