#!/usr/bin/env python3
"""Quickstart: schedule a random workload with the paper's flow-time algorithm.

This example builds a small random unrelated-machine instance, runs the
Theorem 1 scheduler (rejection parameter ``epsilon``), validates the produced
schedule, and prints the headline numbers next to the rejection-free greedy
baseline and the paper's theoretical guarantee.

Run with::

    python examples/quickstart.py [--jobs 300] [--machines 4] [--epsilon 0.5]
"""

from __future__ import annotations

import argparse

from repro import FlowTimeEngine, RejectionFlowTimeScheduler, summarize, validate_result
from repro.baselines import GreedyDispatchScheduler
from repro.core.bounds import flow_time_competitive_ratio, flow_time_rejection_budget
from repro.lowerbounds import best_flow_time_lower_bound
from repro.workloads import InstanceGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=300, help="number of jobs")
    parser.add_argument("--machines", type=int, default=4, help="number of machines")
    parser.add_argument("--epsilon", type=float, default=0.5, help="rejection parameter")
    parser.add_argument("--seed", type=int, default=2018, help="workload seed")
    args = parser.parse_args()

    generator = InstanceGenerator(
        num_machines=args.machines,
        size_distribution="pareto",
        arrival_process="poisson",
        seed=args.seed,
    )
    instance = generator.generate(args.jobs)
    print(f"instance: {instance.name}  (Delta = {instance.delta():.1f})")

    engine = FlowTimeEngine(instance)
    lower_bound = best_flow_time_lower_bound(instance)

    scheduler = RejectionFlowTimeScheduler(epsilon=args.epsilon)
    result = engine.run(scheduler)
    validate_result(result)
    stats = summarize(result)

    baseline = engine.run(GreedyDispatchScheduler())
    baseline_stats = summarize(baseline)

    print(f"\n{scheduler.name}")
    print(f"  total flow time      : {stats.total_flow_time:12.1f}")
    print(f"  rejected fraction    : {stats.rejected_fraction:12.3f}"
          f"   (budget 2*eps = {flow_time_rejection_budget(args.epsilon):.3f})")
    print(f"  ratio vs lower bound : {stats.total_flow_time / lower_bound:12.2f}"
          f"   (paper bound = {flow_time_competitive_ratio(args.epsilon):.1f})")

    print(f"\n{baseline.algorithm}")
    print(f"  total flow time      : {baseline_stats.total_flow_time:12.1f}")
    print(f"  ratio vs lower bound : {baseline_stats.total_flow_time / lower_bound:12.2f}")

    improvement = baseline_stats.total_flow_time / max(stats.total_flow_time, 1e-9)
    print(f"\nrejecting {stats.rejected_count} of {stats.num_jobs} jobs reduced total "
          f"flow time by a factor of {improvement:.2f}")


if __name__ == "__main__":
    main()
