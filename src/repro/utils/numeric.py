"""Small numeric helpers shared across the library.

The scheduling algorithms manipulate continuous times and the paper's
rejection thresholds (``1/epsilon``, ``1 + 1/epsilon``) which are generally
not integers; these helpers centralise the conventions used to turn them into
executable comparisons.
"""

from __future__ import annotations

import math
from typing import Iterable

#: Absolute tolerance used across the library when comparing continuous times.
EPS: float = 1e-9


def is_close(a: float, b: float, tol: float = EPS) -> bool:
    """Return ``True`` when ``a`` and ``b`` differ by at most ``tol`` (absolute)."""
    return abs(a - b) <= tol


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative integers."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)


def integer_threshold(x: float) -> int:
    """Smallest integer count that *reaches* the real threshold ``x``.

    The paper states rejection rules as "the first time the counter equals
    ``1/epsilon``"; counters are integers (number of dispatched jobs) while
    ``1/epsilon`` need not be.  We interpret the rule as firing the first time
    the integer counter is ``>= x``, i.e. when it reaches ``ceil(x)`` (and at
    least 1 so a rule can fire at all).
    """
    if x <= 0:
        raise ValueError(f"threshold must be positive, got {x}")
    return max(1, math.ceil(x - EPS))


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of positive values; 0.0 for an empty iterable."""
    vals = [v for v in values]
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("harmonic mean requires positive values")
    return len(vals) / sum(1.0 / v for v in vals)


def safe_ratio(numerator: float, denominator: float, default: float = math.inf) -> float:
    """``numerator / denominator`` guarding against a zero denominator."""
    if abs(denominator) <= EPS:
        return default if abs(numerator) > EPS else 1.0
    return numerator / denominator


def geometric_grid(low: float, high: float, count: int) -> list[float]:
    """Geometrically spaced grid of ``count`` values covering ``[low, high]``.

    Used to build discrete speed sets for the Section 4 energy-minimisation
    scheduler.  Endpoints are always included.
    """
    if low <= 0 or high <= 0:
        raise ValueError("geometric grid requires positive endpoints")
    if high < low:
        raise ValueError(f"high ({high}) must be >= low ({low})")
    if count < 1:
        raise ValueError("count must be >= 1")
    if count == 1 or is_close(low, high):
        return [low] if is_close(low, high) else [low, high]
    ratio = (high / low) ** (1.0 / (count - 1))
    grid = [low * ratio**k for k in range(count)]
    grid[-1] = high
    return grid


def weighted_sum(weights: Iterable[float], values: Iterable[float]) -> float:
    """Dot product of two equally long iterables."""
    return sum(w * v for w, v in zip(weights, values, strict=True))
