"""Canonical JSON serialisation and stable content hashing.

The campaign artifact store needs two properties from its serialisation:

* **canonical** — the same value always produces the same bytes (sorted keys,
  fixed separators, no environment-dependent formatting), so artifacts are
  byte-identical across runs and machines; and
* **total** — every value that appears in experiment configs and raw results
  (numpy scalars, tuples, dataclasses, paths) has a defined encoding.

:func:`stable_hash` builds content-addressed keys on top of
:func:`canonical_json`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import PurePath
from typing import Any

import numpy as np


def tuplify(value: Any) -> Any:
    """Recursively turn lists/tuples into tuples.

    The inverse normalisation of a JSON round trip (JSON has no tuple), used
    wherever round-tripped overrides must stay hashable and compare equal to
    their tuple-valued originals.
    """
    if isinstance(value, (list, tuple)):
        return tuple(tuplify(item) for item in value)
    return value


def jsonify(value: Any) -> Any:
    """Recursively convert ``value`` into plain JSON-serialisable types.

    Tuples become lists (JSON has no tuple), numpy scalars become Python
    scalars, numpy arrays become nested lists, dataclasses become dicts and
    paths become strings.  Dict keys are coerced to ``str``.
    """
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: jsonify(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [jsonify(v) for v in items]
    if isinstance(value, PurePath):
        return str(value)
    raise TypeError(f"cannot serialise {type(value).__name__!r} value {value!r}")


def canonical_json(value: Any, indent: int | None = None) -> str:
    """Serialise ``value`` as deterministic JSON text.

    Keys are sorted and separators fixed, so equal values yield identical
    strings.  Non-finite floats are kept (``Infinity``/``NaN`` literals) —
    the store only ever reads its own output back.
    """
    separators = (",", ": ") if indent is not None else (",", ":")
    return json.dumps(jsonify(value), sort_keys=True, indent=indent, separators=separators)


def stable_hash(value: Any, length: int = 16) -> str:
    """A deterministic hex digest of ``value``'s canonical JSON form.

    ``length`` trims the sha256 hex digest (64 chars) for readable artifact
    file names; 16 hex chars keep collision odds negligible at campaign scale.
    """
    digest = hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()
    return digest[:length]
