"""Minimal dependency-free ASCII table rendering for experiment reports."""

from __future__ import annotations

from typing import Iterable, Sequence


def _fmt_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e6 or (0 < abs(value) < 1e-3):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table.

    Floats are formatted with ``precision`` digits; very large/small values
    fall back to scientific notation.  The output is used verbatim in
    EXPERIMENTS.md and by the benchmark harness, so it is deterministic.
    """
    str_rows = [[_fmt_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells)) + " |"

    sep = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    out: list[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
