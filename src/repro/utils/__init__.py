"""Shared utilities: deterministic RNG handling, numeric helpers, tabulation,
canonical serialisation."""

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.numeric import (
    EPS,
    is_close,
    ceil_div,
    integer_threshold,
    harmonic_mean,
    safe_ratio,
)
from repro.utils.serialization import canonical_json, jsonify, stable_hash, tuplify
from repro.utils.tabulate import format_table

__all__ = [
    "make_rng",
    "spawn_rngs",
    "canonical_json",
    "jsonify",
    "stable_hash",
    "tuplify",
    "EPS",
    "is_close",
    "ceil_div",
    "integer_threshold",
    "harmonic_mean",
    "safe_ratio",
    "format_table",
]
