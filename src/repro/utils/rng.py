"""Deterministic random-number-generator helpers.

Every stochastic component of the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  Funnelling construction through
:func:`make_rng` keeps experiments reproducible and lets a single master seed
drive arbitrarily many independent streams via :func:`spawn_rngs`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

RngLike = "int | np.random.Generator | None"


def make_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or pass one through.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, or an existing generator
        (returned unchanged so callers can share a stream deliberately).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: "int | np.random.Generator | None", count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from one seed.

    Uses :meth:`numpy.random.Generator.spawn` under the hood so that streams
    do not overlap even for large ``count``.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = make_rng(seed)
    if count == 0:
        return []
    return list(parent.spawn(count))


def seeds_for(master_seed: int, labels: Sequence[str]) -> dict[str, int]:
    """Map experiment sub-labels to deterministic per-label integer seeds.

    This provides stable seeds for named sub-experiments (e.g. one per
    ``epsilon`` value in a sweep) that do not change if labels are reordered.
    """
    out: dict[str, int] = {}
    mask = (1 << 64) - 1
    for label in labels:
        h = 1469598103934665603  # FNV-1a, 64-bit wrap-around on purpose
        for ch in f"{master_seed}:{label}".encode():
            h = ((h ^ ch) * 1099511628211) & mask
        out[label] = h % (2**31 - 1)
    return out


def shuffled(items: Iterable, seed: "int | np.random.Generator | None" = None) -> list:
    """Return a shuffled copy of ``items`` using a deterministic generator."""
    rng = make_rng(seed)
    out = list(items)
    rng.shuffle(out)
    return out
