"""Process-memory introspection helpers.

Used by the benchmark harness and the scalability experiments to report the
peak resident-set high-water mark alongside wall times.  The numbers are
process-wide and monotone: they never decrease over the life of the process,
so per-phase attributions must compare before/after readings.
"""

from __future__ import annotations

import sys

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]


def peak_rss_bytes() -> int:
    """Peak resident set size of the current process in bytes (0 if unknown).

    ``ru_maxrss`` is reported in kibibytes on Linux and in bytes on macOS.
    """
    if resource is None:
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(usage)
    return int(usage) * 1024
