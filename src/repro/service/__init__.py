"""Streaming service layer: scheduler sessions over the engine stepper.

This subpackage is the online-facing API of the reproduction:

* :mod:`repro.service.session` — :func:`open_session` /
  :class:`SchedulerSession`: incremental job ingestion (single jobs or
  ``JobChunk`` bulk rows), a typed decision-event stream, canonical-JSON
  snapshot/restore checkpointing, and ``finalize()`` into the batch facade's
  :class:`~repro.solvers.outcome.SolveOutcome`;
* :mod:`repro.service.ndjson` — the newline-delimited JSON wire format used
  by the ``repro serve`` CLI (job lines in, decision-event lines out);
* :mod:`repro.service.protocol` — the versioned control-message protocol of
  the multi-session service (bare job lines stay the backward-compatible
  single-session path);
* :mod:`repro.service.manager` — :class:`SessionManager`: many named
  concurrent sessions with lifecycle, bounded-queue backpressure,
  checkpoint/recover crash recovery and migration;
* :mod:`repro.service.server` — the asyncio NDJSON TCP server
  (``repro serve --listen``) hosting one manager for many clients;
* :mod:`repro.service.client` — the blocking reference client and the
  ``repro loadgen`` capacity harness.

The decision-event type itself
(:class:`~repro.simulation.stepper.DecisionEvent`) lives with its emitter in
the simulation layer and is re-exported here.
"""

from repro.simulation.stepper import DECISION_KINDS, DecisionEvent
from repro.service.client import LoadgenReport, ServiceClient, run_loadgen
from repro.service.manager import (
    DEFAULT_MAX_PENDING,
    HostedSession,
    SessionManager,
    SubmitOutcome,
    snapshot_job_count,
)
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.server import ServerHandle, ServiceServer, start_server_thread
from repro.service.session import (
    SNAPSHOT_SCHEMA_VERSION,
    SchedulerSession,
    open_session,
    streaming_algorithms,
)

__all__ = [
    "DECISION_KINDS",
    "DEFAULT_MAX_PENDING",
    "DecisionEvent",
    "HostedSession",
    "LoadgenReport",
    "PROTOCOL_VERSION",
    "SNAPSHOT_SCHEMA_VERSION",
    "SchedulerSession",
    "ServerHandle",
    "ServiceClient",
    "ServiceServer",
    "SessionManager",
    "SubmitOutcome",
    "open_session",
    "run_loadgen",
    "snapshot_job_count",
    "start_server_thread",
    "streaming_algorithms",
]
