"""Streaming service layer: scheduler sessions over the engine stepper.

This subpackage is the online-facing API of the reproduction:

* :mod:`repro.service.session` — :func:`open_session` /
  :class:`SchedulerSession`: incremental job ingestion (single jobs or
  ``JobChunk`` bulk rows), a typed decision-event stream, canonical-JSON
  snapshot/restore checkpointing, and ``finalize()`` into the batch facade's
  :class:`~repro.solvers.outcome.SolveOutcome`;
* :mod:`repro.service.ndjson` — the newline-delimited JSON wire format used
  by the ``repro serve`` CLI (job lines in, decision-event lines out).

The decision-event type itself
(:class:`~repro.simulation.stepper.DecisionEvent`) lives with its emitter in
the simulation layer and is re-exported here.
"""

from repro.simulation.stepper import DECISION_KINDS, DecisionEvent
from repro.service.session import (
    SNAPSHOT_SCHEMA_VERSION,
    SchedulerSession,
    open_session,
    streaming_algorithms,
)

__all__ = [
    "DECISION_KINDS",
    "DecisionEvent",
    "SNAPSHOT_SCHEMA_VERSION",
    "SchedulerSession",
    "open_session",
    "streaming_algorithms",
]
