"""Versioned control-message protocol for the multi-session scheduling service.

The wire is newline-delimited JSON in both directions, layered on the
``repro serve`` NDJSON schema (:mod:`repro.service.ndjson`) so existing
clients keep working:

* a line **without** an ``"op"`` key is a **bare job line** — exactly
  today's ``repro serve`` input schema (:func:`~repro.workloads.traces.parse_job_row`).
  It addresses the connection's implicit single session, which is created on
  first use from the server's defaults; decision lines come back untagged,
  byte-identical to the blocking stdio serve;
* a line **with** an ``"op"`` key is a **control message** addressing a named
  session hosted by the :class:`~repro.service.manager.SessionManager`.

Control messages (``PROTOCOL_VERSION`` = 1)::

    {"op": "hello"}                                       -> hello
    {"op": "create", "session": S, "algorithm": ..., "machines": ...,
     "alpha": ..., "dispatch": ..., "params": {...}}      -> created
    {"op": "submit", "session": S, "jobs": [JOB, ...]}    -> accepted | throttled
    {"op": "submit", "session": S, "job": JOB}            -> accepted | throttled
    {"op": "poll", "session": S}                          -> decision* polled
    {"op": "advance", "session": S, "t": T}               -> decision* advanced
    {"op": "snapshot", "session": S}                      -> snapshot
    {"op": "restore", "session": S, "snapshot": {...}}    -> created (restored)
    {"op": "close", "session": S}                         -> decision* final
    {"op": "stats", "session": S}                         -> stats
    {"op": "sessions"}                                    -> sessions
    {"op": "migrate", "session": S, "target": "H:P"}      -> migrated
    {"op": "shutdown"}                                    -> shutdown

Every request is answered by exactly one **terminator** line (right column;
``error`` on failure), optionally preceded by streamed ``decision`` lines —
so a blocking request/response client needs no framing beyond "read lines
until the terminator".  ``throttled`` is the flow-control response of the
per-session bounded offer queue: the submission was **not** ingested and the
client must ``poll`` (draining the queue) before retrying.

Responses reuse the established line shapes — ``{"event": "decision", ...}``
and ``{"event": "final", ...}`` are exactly the stdio serve lines plus a
``"session"`` tag when they belong to a named session — and control
responses carry ``"event"`` keys of their own.  Canonical JSON keeps every
line byte-stable for identical histories.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.exceptions import ServiceProtocolError, TraceSchemaError
from repro.simulation.job import Job
from repro.simulation.stepper import DecisionEvent
from repro.utils.serialization import canonical_json
from repro.workloads.traces import parse_job_row

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "TERMINATORS",
    "Request",
    "parse_request",
    "response_line",
    "decision_line",
    "final_line",
    "error_line",
]

#: Bump when the control-message schema changes incompatibly; ``hello``
#: advertises it and :func:`parse_request` rejects mismatched ``"v"`` fields.
PROTOCOL_VERSION = 1

#: Recognised control operations.
OPS = (
    "hello",
    "create",
    "submit",
    "poll",
    "advance",
    "snapshot",
    "restore",
    "close",
    "stats",
    "sessions",
    "migrate",
    "shutdown",
)

#: Response event that terminates each op's reply (``error`` always can).
TERMINATORS: dict[str, str] = {
    "hello": "hello",
    "create": "created",
    "submit": "accepted",
    "poll": "polled",
    "advance": "advanced",
    "snapshot": "snapshot",
    "restore": "created",
    "close": "final",
    "stats": "stats",
    "sessions": "sessions",
    "migrate": "migrated",
    "shutdown": "shutdown",
}

#: Ops that must name a session.
_SESSION_OPS = frozenset(
    {"create", "submit", "poll", "advance", "snapshot", "restore", "close", "stats", "migrate"}
)


@dataclass(frozen=True)
class Request:
    """One parsed input line: a control message or a bare job line."""

    op: str
    session: str | None = None
    #: Raw payload fields of the control message (already shape-checked).
    payload: dict = field(default_factory=dict)
    #: Parsed jobs for ``submit`` requests.
    jobs: tuple[Job, ...] = ()
    #: ``True`` for a bare job line (the backward-compatible serve schema).
    bare: bool = False
    lineno: int = 0


def parse_request(line: str, lineno: int = 0) -> Request:
    """Parse one input line into a :class:`Request`.

    Bare job lines raise :class:`~repro.exceptions.TraceSchemaError` on
    schema violations (unchanged serve behaviour); control messages raise
    :class:`~repro.exceptions.ServiceProtocolError`.
    """
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceSchemaError(f"not valid JSON ({exc})", lineno=lineno) from exc
    if not isinstance(data, dict):
        raise TraceSchemaError(
            f"expected a JSON object per line, got {type(data).__name__}", lineno=lineno
        )
    if "op" not in data:
        # Backward-compatible bare job line: the single-session serve schema.
        return Request(
            op="submit", jobs=(parse_job_row(data, lineno),), bare=True, lineno=lineno
        )

    op = data["op"]
    if op not in OPS:
        raise ServiceProtocolError(
            f"unknown op {op!r}; known ops: {sorted(OPS)}", lineno=lineno
        )
    version = data.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ServiceProtocolError(
            f"unsupported protocol version {version!r}; this server speaks "
            f"v{PROTOCOL_VERSION}",
            lineno=lineno,
        )
    session = data.get("session")
    if op in _SESSION_OPS:
        if not isinstance(session, str) or not session:
            raise ServiceProtocolError(
                f"op {op!r} requires a non-empty string 'session' field", lineno=lineno
            )
    elif session is not None and not isinstance(session, str):
        raise ServiceProtocolError(
            f"'session' must be a string, got {type(session).__name__}", lineno=lineno
        )

    jobs: tuple[Job, ...] = ()
    if op == "submit":
        if ("jobs" in data) == ("job" in data):
            raise ServiceProtocolError(
                "op 'submit' requires exactly one of 'job' (object) or "
                "'jobs' (array of objects)",
                lineno=lineno,
            )
        rows = data.get("jobs") if "jobs" in data else [data["job"]]
        if not isinstance(rows, list):
            raise ServiceProtocolError(
                f"'jobs' must be an array, got {type(rows).__name__}", lineno=lineno
            )
        parsed = []
        for row in rows:
            if not isinstance(row, Mapping):
                raise ServiceProtocolError(
                    f"job rows must be objects, got {type(row).__name__}", lineno=lineno
                )
            parsed.append(parse_job_row(row, lineno))
        jobs = tuple(parsed)
    elif op == "advance":
        t = data.get("t")
        if not isinstance(t, (int, float)) or isinstance(t, bool):
            raise ServiceProtocolError(
                "op 'advance' requires a numeric 't' field", lineno=lineno
            )
    elif op == "restore":
        if not isinstance(data.get("snapshot"), Mapping):
            raise ServiceProtocolError(
                "op 'restore' requires a 'snapshot' object "
                "(a SchedulerSession.snapshot payload)",
                lineno=lineno,
            )
    elif op == "migrate":
        target = data.get("target")
        if not isinstance(target, str) or ":" not in target:
            raise ServiceProtocolError(
                "op 'migrate' requires a 'target' of the form 'host:port'",
                lineno=lineno,
            )
    elif op == "create":
        params = data.get("params")
        if params is not None and not isinstance(params, Mapping):
            raise ServiceProtocolError(
                f"'params' must be an object, got {type(params).__name__}",
                lineno=lineno,
            )

    payload = {k: v for k, v in data.items() if k not in ("op", "session", "v")}
    return Request(op=op, session=session, payload=payload, jobs=jobs, lineno=lineno)


# --------------------------------------------------------------------------------------
# Response encoders
# --------------------------------------------------------------------------------------


def response_line(kind: str, session: "str | None" = None, **fields: Any) -> str:
    """Encode one control response as a canonical-JSON line."""
    row: dict[str, Any] = {"event": kind, **fields}
    if session is not None:
        row["session"] = session
    return canonical_json(row)


def decision_line(event: DecisionEvent, session: "str | None" = None) -> str:
    """Encode one decision event, tagged with its session when named.

    With ``session=None`` this is byte-identical to the stdio serve line
    (:func:`repro.service.ndjson.event_line`).
    """
    row: dict[str, Any] = {"event": "decision", **event.as_dict()}
    if session is not None:
        row["session"] = session
    return canonical_json(row)


def final_line(row: Mapping[str, Any], session: "str | None" = None) -> str:
    """Encode the end-of-session summary (``SolveOutcome.as_row()``) line."""
    payload: dict[str, Any] = {"event": "final", **row}
    if session is not None:
        payload["session"] = session
    return canonical_json(payload)


def error_line(
    message: str,
    session: "str | None" = None,
    code: "str | None" = None,
    lineno: "int | None" = None,
) -> str:
    """Encode an error response (the universal terminator)."""
    fields: dict[str, Any] = {"error": message}
    if code is not None:
        fields["code"] = code
    if lineno:
        fields["lineno"] = lineno
    return response_line("error", session, **fields)
