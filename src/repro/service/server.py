"""Asyncio NDJSON server hosting many concurrent scheduler sessions.

``repro serve --listen HOST:PORT`` runs this server: one process, one
:class:`~repro.service.manager.SessionManager`, many TCP client connections
speaking the versioned control protocol of :mod:`repro.service.protocol`.
Sessions are server-global (named, manager-owned), so they survive client
disconnects, can be listed, snapshotted, and **migrated** to another server
instance; a connection that speaks only bare job lines gets a private
implicit session that behaves exactly like the blocking stdio serve.

Flow control happens at two layers: the per-session bounded offer queue
(the manager refuses over-limit submissions with a ``throttled`` line) and
TCP itself (every response line is written through ``drain()``, so a client
that stops reading stalls its own connection, not the server).

Shutdown semantics (the contract the CLI exit code reports):

* SIGINT/SIGTERM (or a client ``shutdown`` op) stop accepting connections,
  close the open ones, then **drain** every still-open session — each is
  finalized and its ``final`` summary line is flushed to the server's own
  output stream;
* the exit code is ``0`` only when every session had been cleanly closed by
  its client before shutdown; a session that was still open (abandoned, e.g.
  its client was killed mid-stream) or whose finalize failed makes the exit
  code ``1`` — the sessions were *unclean* even though their summaries were
  flushed.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
from typing import Any, Mapping

from repro.exceptions import ReproError, ServiceError
from repro.service.manager import SessionManager
from repro.service.protocol import (
    PROTOCOL_VERSION,
    Request,
    decision_line,
    error_line,
    final_line,
    parse_request,
    response_line,
)
from repro.service.session import streaming_algorithms
from repro.utils.serialization import canonical_json

__all__ = ["ServiceServer", "ServerHandle", "start_server_thread", "MAX_LINE_BYTES"]

#: Per-line read limit.  Restore ops carry whole op-log snapshots, which can
#: be orders of magnitude larger than job or control lines.
MAX_LINE_BYTES = 32 * 1024 * 1024


class ServiceServer:
    """One asyncio TCP server multiplexing sessions of one manager."""

    def __init__(
        self,
        manager: "SessionManager | None" = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        out=None,
    ) -> None:
        self.manager = manager if manager is not None else SessionManager()
        self.requested_host = host
        self.requested_port = port
        self.out = out if out is not None else sys.stdout
        self.address: "tuple[str, int] | None" = None
        self._shutdown = asyncio.Event()
        self._shutdown_reason: "str | None" = None
        self._server: "asyncio.AbstractServer | None" = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._implicit_counter = 0
        self.exit_code: "int | None" = None

    # -- lifecycle -----------------------------------------------------------------

    def request_shutdown(self, reason: str = "signal") -> None:
        """Initiate a drain-and-exit (idempotent; safe from signal handlers)."""
        if not self._shutdown.is_set():
            self._shutdown_reason = reason
            self._shutdown.set()

    async def run(
        self,
        *,
        ready: "threading.Event | None" = None,
        install_signal_handlers: bool = True,
    ) -> int:
        """Serve until shutdown is requested; return the process exit code."""
        self._server = await asyncio.start_server(
            self._handle_client,
            self.requested_host,
            self.requested_port,
            limit=MAX_LINE_BYTES,
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        loop = asyncio.get_running_loop()
        if install_signal_handlers:
            for sig in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(sig, self.request_shutdown, sig.name)
        self._print(
            response_line(
                "listening",
                host=self.address[0],
                port=self.address[1],
                protocol=PROTOCOL_VERSION,
            )
        )
        if ready is not None:
            ready.set()
        await self._shutdown.wait()

        self._server.close()
        await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        # Let closed connections unwind before draining the sessions.
        await asyncio.sleep(0)
        self.exit_code = self._drain_and_flush()
        return self.exit_code

    def _drain_and_flush(self) -> int:
        """Drain open sessions, flush their summaries, compute the exit code."""
        abandoned = self.manager.open_sessions()
        for name, row, error in self.manager.drain():
            if error is not None:
                self._print(error_line(error, session=name, code="finalize-failed"))
            else:
                self._print(final_line(row, session=name))
        failed = self.manager.unclean_sessions()
        self._print(
            response_line(
                "shutdown",
                reason=self._shutdown_reason or "requested",
                drained=len(abandoned),
                unclean=sorted(set(abandoned) | set(failed)),
            )
        )
        return 1 if abandoned or failed else 0

    def _print(self, line: str) -> None:
        print(line, file=self.out)
        try:
            self.out.flush()
        except (AttributeError, ValueError):
            pass

    # -- connection handling -------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        self._implicit_counter += 1
        #: Name of this connection's bare-job-line session, created lazily.
        implicit_name: "str | None" = None
        implicit_slot = self._implicit_counter
        try:
            lineno = 0
            while not self._shutdown.is_set():
                try:
                    raw = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    await self._send(writer, [error_line("line too long", code="protocol")])
                    break
                if not raw:
                    break
                lineno += 1
                line = raw.decode("utf-8", errors="replace").strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    request = parse_request(line, lineno)
                except ReproError as exc:
                    await self._send(writer, [error_line(str(exc), code="protocol")])
                    continue
                if request.bare:
                    if implicit_name is None:
                        implicit_name = f"serve#{implicit_slot}"
                        try:
                            self.manager.create(implicit_name)
                        except ReproError as exc:
                            implicit_name = None
                            await self._send(
                                writer, [error_line(str(exc), code="create-failed")]
                            )
                            continue
                    lines = self._dispatch_bare(request, implicit_name)
                    await self._send(writer, lines)
                    continue
                stop_after = False
                if request.op == "shutdown":
                    stop_after = True
                lines = await self._dispatch(request)
                await self._send(writer, lines)
                if stop_after:
                    self.request_shutdown("shutdown-op")
                    break
            # EOF: a connection that streamed bare job lines gets the stdio
            # serve ending — drain its implicit session and flush the final
            # summary before the connection goes away.
            if implicit_name is not None and not self._shutdown.is_set():
                hosted = self.manager.get(implicit_name)
                if hosted is not None and hosted.state == "open":
                    try:
                        row, events = self.manager.close(implicit_name)
                        lines = [decision_line(event) for event in events]
                        lines.append(final_line(row))
                        await self._send(writer, lines)
                    except ReproError as exc:
                        await self._send(
                            writer, [error_line(str(exc), code="finalize-failed")]
                        )
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _send(self, writer: asyncio.StreamWriter, lines: list[str]) -> None:
        if not lines:
            return
        writer.write(("\n".join(lines) + "\n").encode("utf-8"))
        # TCP-level backpressure: a client that stops reading stalls here
        # instead of growing the server's write buffer.
        await writer.drain()

    # -- request dispatch ----------------------------------------------------------

    def _dispatch_bare(self, request: Request, session_name: str) -> list[str]:
        """Bare job line: submit + poll on the implicit session, untagged."""
        try:
            outcome = self.manager.submit(session_name, request.jobs)
            if not outcome.accepted:
                return [
                    response_line(
                        "throttled",
                        pending=outcome.pending,
                        max_pending=outcome.max_pending,
                    )
                ]
            events = self.manager.poll(session_name)
        except ReproError as exc:
            return [error_line(str(exc), code="session")]
        return [decision_line(event) for event in events]

    async def _dispatch(self, request: Request) -> list[str]:
        """One control message -> its response lines (terminator last)."""
        op, name, payload = request.op, request.session, request.payload
        try:
            if op == "hello":
                return [
                    response_line(
                        "hello",
                        protocol=PROTOCOL_VERSION,
                        algorithms=streaming_algorithms(),
                        sessions=len(self.manager),
                    )
                ]
            if op == "sessions":
                return [response_line("sessions", sessions=self.manager.sessions())]
            if op == "create":
                hosted = self.manager.create(
                    name,
                    algorithm=payload.get("algorithm"),
                    machines=payload.get("machines"),
                    alpha=payload.get("alpha"),
                    dispatch=payload.get("dispatch"),
                    params=payload.get("params"),
                    max_pending=payload.get("max_pending"),
                    checkpoint_every=payload.get("checkpoint_every"),
                )
                return [
                    response_line(
                        "created",
                        name,
                        algorithm=hosted.session.algorithm,
                        dispatch=hosted.session.dispatch,
                        max_pending=hosted.max_pending,
                    )
                ]
            if op == "restore":
                hosted = self.manager.restore(name, payload["snapshot"])
                return [
                    response_line(
                        "created",
                        name,
                        algorithm=hosted.session.algorithm,
                        dispatch=hosted.session.dispatch,
                        max_pending=hosted.max_pending,
                        restored=True,
                        submitted=hosted.session.num_submitted,
                    )
                ]
            if op == "submit":
                outcome = self.manager.submit(name, request.jobs)
                kind = "accepted" if outcome.accepted else "throttled"
                return [
                    response_line(
                        kind,
                        name,
                        count=outcome.count,
                        pending=outcome.pending,
                        max_pending=outcome.max_pending,
                    )
                ]
            if op == "stats":
                return [response_line("stats", name, stats=self.manager.stats(name))]
            if op == "poll":
                events = self.manager.poll(name)
                lines = [decision_line(event, name) for event in events]
                lines.append(
                    response_line(
                        "polled",
                        name,
                        count=len(events),
                        time=self.manager.get(name).session.time,
                    )
                )
                return lines
            if op == "advance":
                events = self.manager.advance(name, payload["t"])
                lines = [decision_line(event, name) for event in events]
                lines.append(
                    response_line(
                        "advanced",
                        name,
                        count=len(events),
                        time=self.manager.get(name).session.time,
                    )
                )
                return lines
            if op == "snapshot":
                snapshot = self.manager.checkpoint(name)
                return [response_line("snapshot", name, snapshot=snapshot)]
            if op == "close":
                row, events = self.manager.close(name)
                lines = [decision_line(event, name) for event in events]
                lines.append(final_line(row, name))
                return lines
            if op == "migrate":
                return await self._migrate(name, payload["target"])
            if op == "shutdown":
                return [
                    response_line(
                        "shutdown",
                        reason="shutdown-op",
                        drained=0,
                        unclean=self.manager.open_sessions(),
                    )
                ]
        except ReproError as exc:
            return [error_line(str(exc), session=name, code="session")]
        except Exception as exc:  # noqa: BLE001 - one bad request must not kill the server
            return [error_line(f"internal error: {exc}", session=name, code="internal")]
        return [error_line(f"unhandled op {op!r}", code="internal")]

    async def _migrate(self, name: str, target: str) -> list[str]:
        """Move a live session to another server instance.

        The session is atomically released from this manager first (no new
        ops can interleave with the transfer), then restored on the target
        via its ``restore`` op; on any failure it is re-hosted locally from
        the same snapshot, so the session is never lost.
        """
        host, _, port_text = target.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            return [
                error_line(
                    f"migrate target must be host:port, got {target!r}",
                    session=name,
                    code="protocol",
                )
            ]
        snapshot = self.manager.export_session(name)
        try:
            reader, writer = await asyncio.open_connection(host, port, limit=MAX_LINE_BYTES)
            try:
                message = canonical_json(
                    {"op": "restore", "session": name, "snapshot": snapshot}
                )
                writer.write((message + "\n").encode("utf-8"))
                await writer.drain()
                raw = await reader.readline()
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass
            response = json.loads(raw.decode("utf-8")) if raw else {}
            if response.get("event") != "created":
                raise ServiceError(
                    f"target refused the session: {response.get('error', 'no response')}"
                )
        except (OSError, ValueError, ServiceError) as exc:
            # Self-heal: the session keeps living here.
            self.manager.restore(name, snapshot)
            return [
                error_line(
                    f"migration to {target} failed ({exc}); session restored locally",
                    session=name,
                    code="migrate-failed",
                )
            ]
        return [response_line("migrated", name, target=target)]


# --------------------------------------------------------------------------------------
# Thread-hosted loopback server (tests, loadgen --self-host, E15, benches)
# --------------------------------------------------------------------------------------


class ServerHandle:
    """A server running on its own thread + event loop, stoppable from outside."""

    def __init__(
        self, server: ServiceServer, thread: threading.Thread, loop: asyncio.AbstractEventLoop
    ) -> None:
        self.server = server
        self._thread = thread
        self._loop = loop

    @property
    def host(self) -> str:
        return self.server.address[0]

    @property
    def port(self) -> int:
        return self.server.address[1]

    def stop(self, timeout: float = 30.0) -> int:
        """Request shutdown, join the thread, return the server exit code."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_shutdown, "handle-stop")
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ServiceError("server thread did not stop within the timeout")
        return self.server.exit_code if self.server.exit_code is not None else 0

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_server_thread(
    manager: "SessionManager | None" = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    out=None,
    defaults: "Mapping[str, Any] | None" = None,
    **manager_kwargs: Any,
) -> ServerHandle:
    """Start a loopback server on a background thread and wait until it listens.

    ``manager_kwargs`` (``max_pending``, ``checkpoint_every``,
    ``checkpoint_dir``) build the manager when one is not supplied.  The
    returned handle is a context manager; leaving the block drains and stops
    the server.
    """
    if manager is None:
        manager = SessionManager(defaults=defaults, **manager_kwargs)
    if out is None:
        import io

        out = io.StringIO()
    server = ServiceServer(manager, host=host, port=port, out=out)
    ready = threading.Event()
    loop = asyncio.new_event_loop()

    def _main() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(
                server.run(ready=ready, install_signal_handlers=False)
            )
        finally:
            loop.close()
            ready.set()

    thread = threading.Thread(target=_main, name="repro-service", daemon=True)
    thread.start()
    ready.wait(30.0)
    if server.address is None:
        raise ServiceError("service server failed to start (no listen address)")
    return ServerHandle(server, thread, loop)
