"""Blocking client + load generator for the multi-session scheduling service.

:class:`ServiceClient` is the reference client of the control protocol in
:mod:`repro.service.protocol`: one TCP connection, blocking request/response
("send one control line, read response lines until the op's terminator").
Threads each owning a client is the intended concurrency model — the server
multiplexes them onto one event loop.

:func:`run_loadgen` is the capacity-measurement harness behind
``repro loadgen``, the E15 service-capacity experiment and the
``e15_service`` bench: it drives N concurrent sessions from the scenario
catalog at a controlled rate, records per-chunk decision latencies, and can
verify that every session's final summary is byte-identical to the batch
:func:`repro.solve` of the same instance — the end-to-end determinism claim
of the service layer.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.exceptions import ServiceError
from repro.service.protocol import PROTOCOL_VERSION, TERMINATORS
from repro.service.server import MAX_LINE_BYTES
from repro.utils.serialization import canonical_json
from repro.workloads.scenarios import SCENARIOS, get_scenario

__all__ = [
    "ServiceClient",
    "Reply",
    "SessionReport",
    "LoadgenReport",
    "run_loadgen",
    "percentile",
]


@dataclass(frozen=True)
class Reply:
    """One completed request: the terminator row plus streamed decision rows."""

    event: dict
    decisions: tuple = ()


class ServiceClient:
    """Blocking request/response client of the service control protocol."""

    def __init__(self, host: str, port: int, *, timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # -- transport -----------------------------------------------------------------

    def send_line(self, line: str) -> None:
        """Write one raw NDJSON line (bare job lines use this directly)."""
        self._file.write((line + "\n").encode("utf-8"))
        self._file.flush()

    def read_row(self) -> dict:
        """Read one response line as a dict; raises on EOF."""
        import json

        raw = self._file.readline(MAX_LINE_BYTES)
        if not raw:
            raise ServiceError("server closed the connection")
        return json.loads(raw.decode("utf-8"))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- control ops ---------------------------------------------------------------

    def request(self, op: str, session: "str | None" = None, **fields: Any) -> Reply:
        """Send one control message; collect decisions until the terminator.

        An ``error`` response raises :class:`ServiceError` with the server's
        message.  ``throttled`` (flow control, not an error) terminates a
        ``submit`` like ``accepted`` does — callers check ``reply.event``.
        """
        row: dict[str, Any] = {"op": op, "v": PROTOCOL_VERSION, **fields}
        if session is not None:
            row["session"] = session
        self.send_line(canonical_json(row))
        terminator = TERMINATORS[op]
        decisions: list[dict] = []
        while True:
            response = self.read_row()
            event = response.get("event")
            if event == "decision":
                decisions.append(response)
                continue
            if event == "error":
                raise ServiceError(response.get("error", "unknown service error"))
            if event == terminator or (op == "submit" and event == "throttled"):
                return Reply(event=response, decisions=tuple(decisions))
            raise ServiceError(
                f"protocol violation: expected {terminator!r} terminating {op!r}, "
                f"got {event!r}"
            )

    def hello(self) -> dict:
        return self.request("hello").event

    def create(self, name: str, **options: Any) -> dict:
        """Create a named session (options: algorithm, machines, alpha,
        dispatch, params, max_pending, checkpoint_every)."""
        clean = {k: v for k, v in options.items() if v is not None}
        return self.request("create", name, **clean).event

    def submit(self, name: str, jobs: Sequence[Mapping[str, Any]]) -> dict:
        """Submit job rows; the reply is ``accepted`` or ``throttled``."""
        return self.request("submit", name, jobs=list(jobs)).event

    def poll(self, name: str) -> Reply:
        return self.request("poll", name)

    def advance(self, name: str, t: float) -> Reply:
        return self.request("advance", name, t=t)

    def snapshot(self, name: str) -> dict:
        return self.request("snapshot", name).event["snapshot"]

    def restore(self, name: str, snapshot: Mapping[str, Any]) -> dict:
        return self.request("restore", name, snapshot=dict(snapshot)).event

    def close_session(self, name: str) -> Reply:
        """Close a session; the terminator is its ``final`` summary row."""
        return self.request("close", name)

    def stats(self, name: str) -> dict:
        """Live counters of a hosted session (backlog, submitted/completed/
        rejected, last-event time; adaptive sessions add switch state and
        telemetry).  Read-only — never advances the simulation."""
        return self.request("stats", name).event["stats"]

    def sessions(self) -> list[dict]:
        return list(self.request("sessions").event["sessions"])

    def migrate(self, name: str, target: str) -> dict:
        return self.request("migrate", name, target=target).event

    def shutdown(self) -> dict:
        return self.request("shutdown").event


# --------------------------------------------------------------------------------------
# Load generation
# --------------------------------------------------------------------------------------


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]); 0.0 when empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


@dataclass
class SessionReport:
    """What one loadgen worker did to one session."""

    session: str
    scenario: str
    jobs: int
    decisions: int = 0
    throttled: int = 0
    elapsed: float = 0.0
    #: Per-chunk submit->polled round-trip latencies, seconds.
    latencies: list = field(default_factory=list)
    final_row: "dict | None" = None
    #: Last ``stats`` observation before close (live-session observability).
    last_stats: "dict | None" = None
    #: ``True``/``False`` after a verify pass; ``None`` when verification off.
    matches_batch: "bool | None" = None
    error: "str | None" = None

    def as_dict(self) -> dict[str, Any]:
        row: dict[str, Any] = {
            "session": self.session,
            "scenario": self.scenario,
            "jobs": self.jobs,
            "decisions": self.decisions,
            "throttled": self.throttled,
            "elapsed_s": self.elapsed,
            "latency_p50_ms": percentile(self.latencies, 50.0) * 1e3,
            "latency_p99_ms": percentile(self.latencies, 99.0) * 1e3,
        }
        if self.last_stats is not None:
            row["stats"] = self.last_stats
        if self.matches_batch is not None:
            row["matches_batch"] = self.matches_batch
        if self.error is not None:
            row["error"] = self.error
        return row


@dataclass
class LoadgenReport:
    """Aggregate of one :func:`run_loadgen` run."""

    sessions: list
    elapsed: float
    total_jobs: int
    total_decisions: int
    total_throttled: int
    throughput_jobs_per_s: float
    latency_p50_ms: float
    latency_p99_ms: float
    verified: "int | None" = None

    def as_dict(self) -> dict[str, Any]:
        row: dict[str, Any] = {
            "sessions": len(self.sessions),
            "elapsed_s": self.elapsed,
            "total_jobs": self.total_jobs,
            "total_decisions": self.total_decisions,
            "total_throttled": self.total_throttled,
            "throughput_jobs_per_s": self.throughput_jobs_per_s,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
        }
        if self.verified is not None:
            row["verified"] = self.verified
        row["per_session"] = [report.as_dict() for report in self.sessions]
        return row


def _strip_wire_fields(row: Mapping[str, Any]) -> dict[str, Any]:
    """Drop the envelope keys (``event``, ``session``) off a final line row."""
    return {k: v for k, v in row.items() if k not in ("event", "session")}


def _drive_session(
    report: SessionReport,
    host: str,
    port: int,
    *,
    instance,
    alpha: float,
    algorithm: str,
    dispatch: "str | None",
    params: Mapping[str, Any],
    chunk_size: int,
    rate: "float | None",
    verify: bool,
    timeout: float,
) -> None:
    """Worker body: one connection, one session, one scenario stream."""
    jobs = list(instance.jobs)
    interval = (chunk_size / rate) if rate else 0.0
    with ServiceClient(host, port, timeout=timeout) as client:
        client.create(
            report.session,
            algorithm=algorithm,
            machines=instance.num_machines,
            alpha=alpha,
            dispatch=dispatch,
            params=dict(params) or None,
        )
        started = time.perf_counter()
        next_send = started
        for offset in range(0, len(jobs), chunk_size):
            if interval:
                delay = next_send - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                next_send += interval
            rows = [job.to_dict() for job in jobs[offset : offset + chunk_size]]
            t0 = time.perf_counter()
            while True:
                reply = client.submit(report.session, rows)
                if reply.get("event") != "throttled":
                    break
                if len(rows) > reply.get("max_pending", len(rows)):
                    raise ServiceError(
                        f"chunk of {len(rows)} jobs exceeds the session's "
                        f"max_pending={reply['max_pending']}; no poll can make "
                        "it acceptable — use a smaller --chunk-size"
                    )
                # Flow control: drain the offer queue, then retry the batch.
                report.throttled += 1
                report.decisions += len(client.poll(report.session).decisions)
            polled = client.poll(report.session)
            report.latencies.append(time.perf_counter() - t0)
            report.decisions += len(polled.decisions)
        report.last_stats = client.stats(report.session)
        final = client.close_session(report.session)
        report.decisions += len(final.decisions)
        report.elapsed = time.perf_counter() - started
        report.final_row = _strip_wire_fields(final.event)
    if verify:
        from repro.solvers.facade import solve

        batch = solve(instance, algorithm, dispatch=dispatch, **dict(params))
        report.matches_batch = canonical_json(report.final_row) == canonical_json(
            batch.as_row()
        )


def run_loadgen(
    host: str,
    port: int,
    *,
    sessions: int = 4,
    jobs: int = 256,
    machines: int = 4,
    seed: int = 2018,
    alpha: float = 3.0,
    algorithm: str = "rejection-flow",
    dispatch: "str | None" = None,
    params: "Mapping[str, Any] | None" = None,
    scenarios: "Sequence[str] | None" = None,
    chunk_size: int = 32,
    rate: "float | None" = None,
    verify: bool = False,
    timeout: float = 120.0,
) -> LoadgenReport:
    """Drive ``sessions`` concurrent scenario streams against a running server.

    Session ``i`` streams scenario ``scenarios[i % len]`` (the whole catalog
    by default) with seed ``seed + i`` in chunks of ``chunk_size`` jobs,
    optionally paced to ``rate`` jobs/second.  Each worker thread owns its
    own connection and named session (``lg-000``, ``lg-001``, ...).  With
    ``verify=True`` every final summary is compared byte-for-byte (canonical
    JSON) against the batch :func:`repro.solve` of the identical instance.

    Raises :class:`ServiceError` if any worker failed; otherwise every
    report has its ``final_row``.
    """
    if sessions <= 0:
        raise ServiceError(f"sessions must be positive, got {sessions}")
    if chunk_size <= 0:
        raise ServiceError(f"chunk_size must be positive, got {chunk_size}")
    names = list(scenarios) if scenarios else sorted(SCENARIOS)
    catalog = [get_scenario(name) for name in names]
    params = dict(params or {})

    reports: list[SessionReport] = []
    workers: list[threading.Thread] = []
    started = time.perf_counter()
    for i in range(sessions):
        scenario = catalog[i % len(catalog)]
        instance = scenario.instance(jobs, machines, seed + i, alpha=alpha)
        report = SessionReport(
            session=f"lg-{i:03d}", scenario=scenario.name, jobs=len(instance.jobs)
        )
        reports.append(report)

        def _worker(report=report, instance=instance) -> None:
            try:
                _drive_session(
                    report,
                    host,
                    port,
                    instance=instance,
                    alpha=alpha,
                    algorithm=algorithm,
                    dispatch=dispatch,
                    params=params,
                    chunk_size=chunk_size,
                    rate=rate,
                    verify=verify,
                    timeout=timeout,
                )
            except Exception as exc:  # noqa: BLE001 - reported, then re-raised below
                report.error = f"{type(exc).__name__}: {exc}"

        thread = threading.Thread(target=_worker, name=report.session, daemon=True)
        workers.append(thread)
        thread.start()
    for thread in workers:
        thread.join()
    elapsed = time.perf_counter() - started

    failures = [r for r in reports if r.error is not None]
    if failures:
        details = "; ".join(f"{r.session}: {r.error}" for r in failures[:5])
        raise ServiceError(
            f"{len(failures)}/{len(reports)} loadgen sessions failed ({details})"
        )
    all_latencies = [x for r in reports for x in r.latencies]
    total_jobs = sum(r.jobs for r in reports)
    return LoadgenReport(
        sessions=reports,
        elapsed=elapsed,
        total_jobs=total_jobs,
        total_decisions=sum(r.decisions for r in reports),
        total_throttled=sum(r.throttled for r in reports),
        throughput_jobs_per_s=(total_jobs / elapsed) if elapsed > 0 else 0.0,
        latency_p50_ms=percentile(all_latencies, 50.0) * 1e3,
        latency_p99_ms=percentile(all_latencies, 99.0) * 1e3,
        verified=sum(1 for r in reports if r.matches_batch) if verify else None,
    )
