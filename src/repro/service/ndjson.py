"""Newline-delimited JSON wire format for ``repro serve``.

One JSON object per line, matching the serialisation the rest of the package
already uses (:meth:`Job.to_dict` / :meth:`DecisionEvent.as_dict`, written
through canonical JSON so identical streams are byte-identical):

* **job lines** (input): ``{"id": 0, "release": 0.0, "sizes": [3.0, 4.0]}``
  with optional ``weight`` and ``deadline`` — exactly
  :meth:`~repro.simulation.job.Job.from_dict`;
* **event lines** (output):
  ``{"event": "decision", "kind": "dispatch", "time": ..., "job_id": ...,
  "machine": ..., "speed": ..., "reason": ...}``;
* a final **summary line**: ``{"event": "final", ...SolveOutcome.as_row()}``.
"""

from __future__ import annotations

import json
from typing import Iterator, TextIO

from repro.exceptions import InvalidParameterError
from repro.simulation.job import Job
from repro.simulation.stepper import DecisionEvent
from repro.utils.serialization import canonical_json

__all__ = ["read_jobs", "parse_job_line", "event_line", "final_line"]


def parse_job_line(line: str, lineno: int = 0) -> Job:
    """Decode one NDJSON job line into a :class:`Job`."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise InvalidParameterError(f"line {lineno}: not valid JSON ({exc})") from exc
    if not isinstance(data, dict):
        raise InvalidParameterError(
            f"line {lineno}: expected a JSON object, got {type(data).__name__}"
        )
    try:
        return Job.from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidParameterError(f"line {lineno}: malformed job ({exc})") from exc


def read_jobs(stream: TextIO) -> Iterator[tuple[int, Job]]:
    """Yield ``(lineno, Job)`` for every non-empty, non-comment line."""
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield lineno, parse_job_line(line, lineno)


def event_line(event: DecisionEvent) -> str:
    """Encode one decision event as a canonical-JSON line."""
    return canonical_json({"event": "decision", **event.as_dict()})


def final_line(row: dict) -> str:
    """Encode the end-of-stream summary (``SolveOutcome.as_row()``) line."""
    return canonical_json({"event": "final", **row})
