"""Newline-delimited JSON wire format for ``repro serve``.

One JSON object per line, matching the serialisation the rest of the package
already uses (:meth:`Job.to_dict` / :meth:`DecisionEvent.as_dict`, written
through canonical JSON so identical streams are byte-identical):

* **job lines** (input): ``{"id": 0, "release": 0.0, "sizes": [3.0, 4.0]}``
  with optional ``weight`` and ``deadline`` — exactly
  :meth:`~repro.simulation.job.Job.from_dict`;
* **event lines** (output):
  ``{"event": "decision", "kind": "dispatch", "time": ..., "job_id": ...,
  "machine": ..., "speed": ..., "reason": ...}``;
* a final **summary line**: ``{"event": "final", ...SolveOutcome.as_row()}``.

The job-line schema is shared with the trace subsystem: parsing delegates to
:func:`repro.workloads.traces.parse_job_row`, so a malformed row raises a
:class:`~repro.exceptions.TraceSchemaError` naming the 1-based line number
and the offending field (the CLI maps it to exit code 2) instead of leaking
a raw traceback.
"""

from __future__ import annotations

import json
from typing import Iterator, TextIO

from repro.exceptions import TraceSchemaError
from repro.simulation.job import Job
from repro.simulation.stepper import DecisionEvent
from repro.utils.serialization import canonical_json
from repro.workloads.traces import iter_ndjson_jobs, parse_job_row

__all__ = ["read_jobs", "parse_job_line", "event_line", "final_line"]


def parse_job_line(line: str, lineno: int = 0) -> Job:
    """Decode one NDJSON job line into a :class:`Job`."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceSchemaError(f"not valid JSON ({exc})", lineno=lineno) from exc
    return parse_job_row(data, lineno)


def read_jobs(stream: TextIO) -> Iterator[tuple[int, Job]]:
    """Yield ``(lineno, Job)`` for every non-empty, non-comment line."""
    return iter_ndjson_jobs(stream)


def event_line(event: DecisionEvent) -> str:
    """Encode one decision event as a canonical-JSON line."""
    return canonical_json({"event": "decision", **event.as_dict()})


def final_line(row: dict) -> str:
    """Encode the end-of-stream summary (``SolveOutcome.as_row()``) line."""
    return canonical_json({"event": "final", **row})
