"""Streaming scheduler sessions: incremental ingestion over the engine stepper.

The paper's setting is online — jobs are revealed at their release times and
must be dispatched immediately — but the batch facade (:func:`repro.solve`)
requires the complete instance up front.  A :class:`SchedulerSession` is the
streaming surface on top of the reentrant
:class:`~repro.simulation.stepper.EngineStepper`:

>>> import repro
>>> session = repro.open_session("rejection-flow", machines=2, epsilon=0.5)
>>> session.submit(repro.Job(id=0, release=0.0, sizes=(3.0, 4.0)))
>>> _ = session.poll()                    # decision events so far
>>> outcome = session.finalize()          # -> the facade's SolveOutcome
>>> outcome.objective
'total-flow-time'

Contracts:

* **Jobs arrive in release order.**  Submissions must be non-decreasing in
  release date (exactly the :class:`~repro.simulation.instance.Instance`
  invariant); ids must be unique.
* **Deferred processing.**  ``submit``/``submit_many`` only ingest; events
  are processed when the caller observes the session — :meth:`poll` (process
  everything up to the newest submitted release), :meth:`advance_to` (up to
  an explicit time bound, a declaration that no earlier arrival is coming),
  or :meth:`finalize` (drain everything).  Processing order is identical to
  the batch engine loop, so ingesting an instance and then finalizing yields
  **byte-identical** schedules and objectives to ``repro.solve`` — in both
  dispatch modes (the equivalence suite asserts it).  A session *polled
  mid-stream* is fully deterministic (the same submit/poll interleaving
  always reproduces the same result — what snapshot/restore relies on), but
  once queues outgrow the prefix-stats cutoff its Fenwick trees are built
  over the jobs ingested so far rather than the full instance, so its float
  prefix sums can differ from the batch run's in the last bits; the
  byte-identical-to-batch guarantee is therefore stated for the
  ingest-then-finalize replay pattern.
* **Checkpointing by replay.**  :meth:`snapshot` captures the session
  configuration plus the ingestion/advance operation log as canonical JSON;
  :meth:`SchedulerSession.restore` replays it, which — everything being
  deterministic — reproduces the exact engine state, decision stream and
  final outcome.  Long-running sessions survive restarts by persisting the
  snapshot.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.exceptions import (
    InvalidParameterError,
    SessionStateError,
    StreamingNotSupportedError,
)
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.machine import Machine
from repro.simulation.stepper import DecisionEvent
from repro.solvers.facade import _build_policy, _ENGINES, outcome_from_result
from repro.solvers.outcome import SolveOutcome
from repro.solvers.registry import available_algorithms, get_solver
from repro.utils.serialization import canonical_json, jsonify

__all__ = ["SchedulerSession", "open_session", "streaming_algorithms", "SNAPSHOT_SCHEMA_VERSION"]

#: Bump when the snapshot payload layout changes; restore refuses mismatches
#: instead of silently misreading an old checkpoint.
SNAPSHOT_SCHEMA_VERSION = 1


def streaming_algorithms() -> list[str]:
    """Ids of all registered solvers that can run as a streaming session."""
    return sorted(
        algorithm_id
        for algorithm_id, spec in available_algorithms().items()
        if spec.supports_streaming
    )


def _session_class(algorithm: str) -> type:
    """Session class for ``algorithm``: adaptive solvers get the meta wrapper.

    Solvers tagged ``"adaptive"`` open as
    :class:`~repro.adaptive.meta.MetaSchedulerSession` (adds ``hot_switch``
    and live telemetry); everything else gets the plain
    :class:`SchedulerSession`.  Imported lazily — the adaptive package sits
    on top of this module.
    """
    spec = get_solver(algorithm)
    if "adaptive" in spec.tags:
        from repro.adaptive.meta import MetaSchedulerSession

        return MetaSchedulerSession
    return SchedulerSession


def _normalise_machines(machines: "int | Sequence[Machine]", alpha: float) -> tuple[Machine, ...]:
    if isinstance(machines, int):
        return Machine.fleet(machines, alpha=alpha)
    fleet = tuple(machines)
    if not fleet or not all(isinstance(m, Machine) for m in fleet):
        raise InvalidParameterError(
            "machines must be a positive integer or a non-empty sequence of Machine"
        )
    return fleet


class SchedulerSession:
    """A long-running, resumable streaming run of one registered algorithm.

    Built through :func:`open_session`; see the module docstring for the
    ingestion/processing contract.  The session owns a policy, an engine in
    the requested dispatch mode, and an :class:`EngineStepper`; every
    scheduling decision the stepper makes is recorded in the session's
    decision-event stream (:attr:`events`, :meth:`poll`).
    """

    def __init__(
        self,
        algorithm: str = "rejection-flow",
        machines: "int | Sequence[Machine]" = 4,
        *,
        alpha: float = 3.0,
        dispatch: str | None = None,
        name: str | None = None,
        retain_events: bool = True,
        **params: Any,
    ) -> None:
        spec = get_solver(algorithm)
        if not spec.supports_streaming:
            raise StreamingNotSupportedError(
                f"algorithm {algorithm!r} (model {spec.model!r}) does not support "
                f"streaming sessions; streaming-capable: {streaming_algorithms()}"
            )
        self.spec = spec
        self.params = spec.validate_params(params)
        self.machines = _normalise_machines(machines, alpha)
        self.name = name or f"session:{algorithm}"
        self.policy = _build_policy(spec, self.params)
        fleet_instance = Instance(self.machines, (), name=self.name)
        self.engine = _ENGINES[spec.model](fleet_instance, dispatch=dispatch)
        self._events: list[DecisionEvent] = []
        # O(1) live counters behind stats(); maintained by the observer so
        # observability never scans the decision history.
        self._dispatched = 0
        self._started = 0
        self._completed = 0
        self._rejected = 0
        self._last_event_time = 0.0
        self._stepper = self.engine.stepper(self.policy, observer=self._observe)
        self._jobs: list[Job] = []
        self._watermark = 0.0
        #: When ``False``, events handed out by poll()/take_events() are
        #: dropped from the buffer — a long-lived serve stream would
        #: otherwise retain its whole decision history in memory.
        self._retain_events = retain_events
        self._consumed = 0
        self._consumed_total = 0
        self._ops: list[tuple] = []
        self._outcome: SolveOutcome | None = None

    # -- introspection -------------------------------------------------------------

    @property
    def algorithm(self) -> str:
        """Registry id the session runs."""
        return self.spec.algorithm_id

    @property
    def dispatch(self) -> str:
        """Dispatch mode of the underlying engine (``indexed``/``scan``/``vectorized``)."""
        return self.engine.dispatch

    @property
    def time(self) -> float:
        """Simulation time of the last processed event."""
        return self._stepper.state.time

    @property
    def num_submitted(self) -> int:
        """Number of jobs ingested so far."""
        return len(self._jobs)

    @property
    def finalized(self) -> bool:
        """``True`` once :meth:`finalize` has sealed the run."""
        return self._outcome is not None

    @property
    def events(self) -> tuple[DecisionEvent, ...]:
        """Every decision event emitted so far (dispatch/start/complete/reject).

        With ``retain_events=False`` only the not-yet-consumed tail remains
        (events handed out by :meth:`poll`/:meth:`take_events` are freed).
        """
        return tuple(self._events)

    @property
    def events_emitted(self) -> int:
        """Total decision events emitted so far (consumed or still buffered).

        Monotone over the session's lifetime regardless of
        ``retain_events`` — the service layer reports it per hosted session.
        """
        return self._consumed_total + (len(self._events) - self._consumed)

    def __len__(self) -> int:
        return len(self._jobs)

    def _observe(self, event: DecisionEvent) -> None:
        """Stepper observer: record the event and bump the live counters."""
        self._events.append(event)
        kind = event.kind
        if kind == "complete":
            self._completed += 1
        elif kind == "reject":
            self._rejected += 1
        elif kind == "start":
            self._started += 1
        else:
            self._dispatched += 1
        if event.time > self._last_event_time:
            self._last_event_time = event.time

    def stats(self) -> dict:
        """Live observability counters (cheap: no decision-history scan).

        ``backlog`` counts jobs in flight — submitted but neither completed
        nor rejected; ``last_event_time`` is the timestamp of the newest
        decision event (0.0 before any).  Also the payload of the service
        wire protocol's ``stats`` op.
        """
        submitted = len(self._jobs)
        return {
            "algorithm": self.spec.algorithm_id,
            "dispatch": self.engine.dispatch,
            "finalized": self.finalized,
            "submitted": submitted,
            "dispatched": self._dispatched,
            "started": self._started,
            "completed": self._completed,
            "rejected": self._rejected,
            "backlog": submitted - self._completed - self._rejected,
            "events_emitted": self.events_emitted,
            "last_event_time": self._last_event_time,
            "watermark": self._watermark,
        }

    # -- ingestion -----------------------------------------------------------------

    def submit(self, job: Job) -> None:
        """Ingest one job.  Releases must be non-decreasing across submissions."""
        self._require_open("submit")
        if not isinstance(job, Job):
            raise InvalidParameterError(f"submit expects a Job, got {type(job).__name__}")
        if len(job.sizes) != len(self.machines):
            raise InvalidParameterError(
                f"job {job.id}: size vector has {len(job.sizes)} entries, "
                f"expected {len(self.machines)}"
            )
        if job.release < self._watermark:
            raise SessionStateError(
                f"job {job.id} released at {job.release} arrives before the session's "
                f"ingest watermark {self._watermark}; submissions must be "
                "non-decreasing in release date"
            )
        self._stepper.offer(job)
        self._jobs.append(job)
        self._watermark = job.release
        self._record_jobs(1)

    def submit_many(self, jobs) -> int:
        """Ingest a batch: an iterable of :class:`Job` or a ``JobChunk``.

        ``JobChunk`` rows (the bulk format of the chunked generators,
        :meth:`~repro.workloads.generators.InstanceGenerator.iter_job_chunks`)
        are bulk-validated once and materialised through the trusted path.
        Returns the number of jobs ingested.

        This is the throughput path: one pass over the rows with the same
        per-job contract as :meth:`submit` (machine count, non-decreasing
        releases, unique ids) but without per-job call overhead, and one
        op-log entry for the whole batch.
        """
        self._require_open("submit_many")
        rows: list[Job]
        chunk = None
        if hasattr(jobs, "validate") and hasattr(jobs, "jobs"):  # JobChunk duck type
            jobs.validate()
            chunk = jobs
            rows = jobs.jobs()
        else:
            rows = list(jobs)
        if not rows:
            return 0
        num_machines = len(self.machines)
        watermark = self._watermark
        for job in rows:
            if len(job.sizes) != num_machines:
                raise InvalidParameterError(
                    f"job {job.id}: size vector has {len(job.sizes)} entries, "
                    f"expected {num_machines}"
                )
            if job.release < watermark:
                raise SessionStateError(
                    f"job {job.id} released at {job.release} arrives before the session's "
                    f"ingest watermark {watermark}; submissions must be "
                    "non-decreasing in release date"
                )
            watermark = job.release
        offer_chunk = getattr(self._stepper, "offer_chunk", None)
        if chunk is not None and offer_chunk is not None:
            # Vectorized dispatch: the stepper fills its SoA columns straight
            # from the chunk's numpy arrays instead of re-walking the rows.
            count = offer_chunk(chunk, rows)
        else:
            count = self._stepper.offer_many(rows)
        self._jobs.extend(rows)
        self._watermark = watermark
        self._record_jobs(count)
        return count

    # -- processing / observation --------------------------------------------------

    def poll(self) -> list[DecisionEvent]:
        """Process everything up to the newest submitted release; return new events.

        The returned list contains only events not yet handed out by a
        previous :meth:`poll`.  With the default ``retain_events=True`` the
        full stream additionally stays available on :attr:`events`; with
        ``retain_events=False`` handed-out events are freed.
        """
        self._require_open("poll")
        processed = self._stepper.advance_to(self._watermark)
        if processed:
            # A poll that processed nothing is a replay no-op (the watermark
            # is unchanged, so it neither advances state nor moves the
            # ingest bound); skipping it keeps the op log — and every
            # snapshot — from growing with one entry per quiet poll on the
            # serve hot path.
            self._record_advance(self._watermark)
        return self._new_events()

    def advance_to(self, t: float) -> list[DecisionEvent]:
        """Process every event up to time ``t``; return new events.

        Advancing past the ingest watermark is the caller's declaration that
        no job with an earlier release will be submitted afterwards (later
        out-of-order submissions are rejected).
        """
        self._require_open("advance_to")
        self._stepper.advance_to(t)
        self._watermark = max(self._watermark, t)
        self._record_advance(t)
        return self._new_events()

    def _record_jobs(self, count: int) -> None:
        """Record ``count`` submissions, coalescing consecutive submit runs.

        The op log only needs the *interleaving* of submissions and
        advances; the jobs themselves live once in ``self._jobs`` (append
        order = submission order), so a run of submissions is one
        ``("jobs", n)`` entry — O(#advances) log size instead of one entry
        (and one retained tuple) per job on long-lived streams.
        """
        if self._ops and self._ops[-1][0] == "jobs":
            self._ops[-1] = ("jobs", self._ops[-1][1] + count)
        else:
            self._ops.append(("jobs", count))

    def _record_advance(self, t: float) -> None:
        """Append an advance op, compacting the common shapes.

        Two compactions keep the log from growing per-job on long streams:

        * consecutive advances fold into the later one (no submission in
          between, so they replay identically — the bound is monotone and
          processing deterministic);
        * the serve pattern — one submission followed by a poll to its
          release — becomes a run-length ``("each", k)`` entry: k times
          "submit the next job, then advance to its release".
        """
        ops = self._ops
        if ops and ops[-1][0] == "advance":
            ops[-1] = ("advance", max(ops[-1][1], t))
            return
        if ops and ops[-1] == ("jobs", 1) and t == self._jobs[-1].release:
            if len(ops) >= 2 and ops[-2][0] == "each":
                ops[-2] = ("each", ops[-2][1] + 1)
                ops.pop()
            else:
                ops[-1] = ("each", 1)
            return
        ops.append(("advance", t))

    def take_events(self) -> list[DecisionEvent]:
        """Hand out events not yet consumed, without processing anything.

        Unlike :meth:`poll` this works on a finalized session too, so
        callers can collect the events the final drain emitted.
        """
        return self._new_events()

    def _new_events(self) -> list[DecisionEvent]:
        fresh = self._events[self._consumed :]
        self._consumed_total += len(fresh)
        if self._retain_events:
            self._consumed = len(self._events)
        else:
            # The observer holds a reference to the list, so free in place.
            self._events.clear()
            self._consumed = 0
        return fresh

    # -- sealing -------------------------------------------------------------------

    def finalize(self) -> SolveOutcome:
        """Drain all remaining events and return the batch facade's outcome.

        The outcome is computed by the exact code path :func:`repro.solve`
        uses (objective breakdown, rejection statistics, policy diagnostics),
        over an :class:`Instance` assembled from the submitted jobs — so a
        replayed instance finalizes to byte-identical schedules and
        objectives.  Idempotent: later calls return the same outcome.
        """
        if self._outcome is not None:
            return self._outcome
        self._stepper.drain()
        # The session enforced the instance invariants (machine count,
        # release ordering, id uniqueness) on every submission, so the
        # assembled instance skips the O(n) re-validation.
        instance = Instance.trusted(self.machines, tuple(self._jobs), name=self.name)
        result = self._stepper.finish(instance)
        self._outcome = outcome_from_result(self.spec, self.params, result, policy=self.policy)
        return self._outcome

    def _require_open(self, action: str) -> None:
        if self._outcome is not None:
            raise SessionStateError(f"cannot {action} on a finalized session")

    # -- checkpointing -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Checkpoint: configuration plus the full ingestion/advance op log.

        The snapshot is plain JSON-able data (canonical through
        :func:`repro.utils.serialization.canonical_json`); floats round-trip
        exactly, so :meth:`restore` rebuilds the session by deterministic
        replay — same engine state, same decision stream, same final
        outcome.
        """
        self._require_open("snapshot")
        ops: list[dict] = []
        cursor = 0
        for op in self._ops:
            if op[0] in ("jobs", "each"):
                span = self._jobs[cursor : cursor + op[1]]
                cursor += op[1]
                kind = "submit_many" if op[0] == "jobs" else "submit_poll_each"
                ops.append({"op": kind, "jobs": [job.to_dict() for job in span]})
            else:
                ops.append({"op": "advance", "t": op[1]})
        return {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "algorithm": self.spec.algorithm_id,
            "params": jsonify(self.params),
            "machines": [m.to_dict() for m in self.machines],
            "dispatch": self.engine.dispatch,
            "name": self.name,
            "retain_events": self._retain_events,
            "consumed": self._consumed_total,
            "ops": ops,
        }

    def to_json(self) -> str:
        """Canonical-JSON form of :meth:`snapshot`."""
        return canonical_json(self.snapshot())

    @classmethod
    def restore(cls, snapshot: "Mapping | str") -> "SchedulerSession":
        """Rebuild a session from a :meth:`snapshot` (dict or JSON string).

        Replays the recorded operations in order; determinism of the engine,
        the policy and the indexed dispatch structures guarantees the
        restored session is in the same state as the one that was
        snapshotted (including the exact decision-event stream).
        """
        if isinstance(snapshot, str):
            import json

            snapshot = json.loads(snapshot)
        schema = snapshot.get("schema")
        if schema != SNAPSHOT_SCHEMA_VERSION:
            raise SessionStateError(
                f"cannot restore snapshot with schema {schema!r}; "
                f"this version reads schema {SNAPSHOT_SCHEMA_VERSION}"
            )
        machines = tuple(Machine.from_dict(m) for m in snapshot["machines"])
        params = {str(k): v for k, v in dict(snapshot["params"]).items()}
        if cls is SchedulerSession:
            # Restoring through the base class still honours per-algorithm
            # session classes (the adaptive meta wrapper).
            cls = _session_class(snapshot["algorithm"])
        session = cls(
            snapshot["algorithm"],
            machines,
            dispatch=snapshot.get("dispatch"),
            name=snapshot.get("name"),
            retain_events=bool(snapshot.get("retain_events", True)),
            **params,
        )
        for op in snapshot["ops"]:
            if op["op"] == "submit_many":
                session.submit_many([Job.from_dict(row) for row in op["jobs"]])
            elif op["op"] == "submit_poll_each":
                for row in op["jobs"]:
                    session.submit(Job.from_dict(row))
                    session.poll()
            elif op["op"] == "advance":
                session._stepper.advance_to(op["t"])
                session._watermark = max(session._watermark, float(op["t"]))
                session._ops.append(("advance", float(op["t"])))
            else:
                raise SessionStateError(f"unknown snapshot op {op!r}")
        # Restore the consume cursor so already-handed-out events are not
        # re-delivered.  Replaying "submit_poll_each" ops consumed events
        # through poll() (tracked in _consumed_total), while raw "advance"
        # ops bypassed the cursor and left their events buffered.
        consumed = int(snapshot.get("consumed", 0))
        if session._retain_events:
            session._consumed = min(consumed, len(session._events))
        else:
            # Match the original's freed-buffer state: of the still-buffered
            # events, the first consumed-but-not-yet-freed ones go (in
            # place — the observer holds the list); only the unconsumed
            # tail stays resident.
            still_buffered = max(0, consumed - session._consumed_total)
            del session._events[: min(still_buffered, len(session._events))]
            session._consumed = 0
        session._consumed_total = consumed
        return session


def open_session(
    algorithm: str = "rejection-flow",
    machines: "int | Sequence[Machine]" = 4,
    *,
    alpha: float = 3.0,
    dispatch: str | None = None,
    name: str | None = None,
    retain_events: bool = True,
    **params: Any,
) -> SchedulerSession:
    """Open a streaming :class:`SchedulerSession` for a registered algorithm.

    Parameters
    ----------
    algorithm:
        Registry id of a streaming-capable solver (``supports_streaming`` in
        :func:`repro.list_algorithms`); anything else raises
        :class:`~repro.exceptions.StreamingNotSupportedError`.
    machines:
        A machine count (a fleet of identical unit machines with power
        exponent ``alpha`` is created) or an explicit
        :class:`~repro.simulation.machine.Machine` sequence.
    dispatch:
        Engine dispatch mode override (``indexed``/``scan``/``vectorized``);
        defaults to the engine's environment-controlled default.  All modes
        finalize to byte-identical outcomes.
    name:
        Label used for the assembled instance and result.
    retain_events:
        Keep the full decision-event stream on :attr:`SchedulerSession.events`
        (the default).  Long-lived streams that only consume events through
        ``poll()`` pass ``False`` to keep memory bounded: handed-out events
        are freed.
    params:
        Algorithm parameters, validated against the registry schema before
        the session opens.
    """
    return _session_class(algorithm)(
        algorithm,
        machines,
        alpha=alpha,
        dispatch=dispatch,
        name=name,
        retain_events=retain_events,
        **params,
    )
