"""Multi-session lifecycle management over :class:`SchedulerSession`.

The :class:`SessionManager` is the transport-agnostic core of the scheduling
service: it hosts many named streaming sessions — one per tenant/stream —
and owns everything about them except the wire:

* **Lifecycle.**  ``create`` → (``submit`` | ``poll`` | ``advance``)* →
  ``close``.  A session is ``open`` until closed; ``close`` drains it,
  finalizes into the batch facade's
  :class:`~repro.solvers.outcome.SolveOutcome` row, and keeps the record
  around (state ``closed``) for listing.  A session whose finalize raised is
  ``failed`` — the *unclean* state shutdown exit codes report.
* **Backpressure.**  Each hosted session bounds its *offer queue*: jobs
  submitted but not yet processed by a ``poll``/``advance``/``close``.  A
  submission that would push the queue past ``max_pending`` is refused with
  ``accepted=False`` (the wire layer turns that into a ``throttled``
  response) and **not** ingested — a slow consumer that never polls can
  never grow server memory without bound.
* **Crash recovery.**  With ``checkpoint_every=N`` the manager snapshots a
  session's op log (:meth:`SchedulerSession.snapshot`) every N operations —
  atomically persisted under ``checkpoint_dir`` when set.
  :meth:`SessionManager.recover` rebuilds a manager from that directory;
  determinism of the op-log replay makes the restored session byte-identical
  to the one that crashed, up to its last checkpoint.  Clients re-submit
  anything newer than the checkpoint they were last acknowledged for.
* **Migration.**  :meth:`export_session` hands out a final snapshot and
  releases the live session; importing it on another manager (or another
  server instance, via the ``migrate`` op) resumes the stream exactly where
  it left off.

Everything here is synchronous and deterministic; the asyncio server in
:mod:`repro.service.server` and the blocking stdio ``repro serve`` path are
both thin clients of this class, so the two share error handling and
lifecycle semantics by construction.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.exceptions import ServiceError, SessionStateError
from repro.service.session import SchedulerSession, open_session
from repro.simulation.job import Job
from repro.simulation.stepper import DecisionEvent
from repro.utils.serialization import canonical_json, stable_hash

__all__ = [
    "DEFAULT_MAX_PENDING",
    "HostedSession",
    "SessionManager",
    "SubmitOutcome",
    "snapshot_job_count",
]

#: Default bound on jobs submitted but not yet processed, per session.
DEFAULT_MAX_PENDING = 4096

#: Lifecycle states of a hosted session.
STATES = ("open", "closed", "failed")


@dataclass(frozen=True)
class SubmitOutcome:
    """Result of a submission attempt against a hosted session.

    ``accepted=False`` is the backpressure refusal: nothing was ingested and
    ``pending`` tells the caller how much unprocessed work the session is
    already holding (poll to drain, then retry).
    """

    accepted: bool
    count: int
    pending: int
    max_pending: int


@dataclass
class HostedSession:
    """One named session plus the manager-side state around it."""

    name: str
    session: SchedulerSession
    max_pending: int
    checkpoint_every: "int | None" = None
    state: str = "open"
    #: Jobs submitted since the last poll/advance (the bounded offer queue).
    pending_offers: int = 0
    ops_since_checkpoint: int = 0
    #: Last op-log snapshot taken (also on disk when the manager persists).
    checkpoint: "dict | None" = None
    final_row: "dict | None" = None
    error: "str | None" = None

    def describe(self) -> dict[str, Any]:
        """JSON-able status row (the ``sessions`` listing)."""
        return {
            "session": self.name,
            "algorithm": self.session.algorithm,
            "dispatch": self.session.dispatch,
            "state": self.state,
            "submitted": self.session.num_submitted,
            "pending": self.pending_offers,
            "max_pending": self.max_pending,
            "events": self.session.events_emitted,
            "time": self.session.time,
        }


def snapshot_job_count(snapshot: Mapping[str, Any]) -> int:
    """Number of jobs a :meth:`SchedulerSession.snapshot` payload replays.

    Recovery clients use this to know where to resume their stream: jobs
    submitted after the checkpoint was taken are not in the snapshot and
    must be re-submitted.
    """
    return sum(
        len(op.get("jobs", ())) for op in snapshot.get("ops", ())
    )


def _checkpoint_filename(name: str) -> str:
    """A filesystem-safe, collision-free filename for a session name."""
    safe = re.sub(r"[^A-Za-z0-9._-]", "_", name)[:48]
    return f"{safe}-{stable_hash(name)[:10]}.json"


class SessionManager:
    """Host many concurrent named :class:`SchedulerSession` streams.

    Parameters
    ----------
    defaults:
        Session options used when ``create`` is called without explicit
        values (and for the implicit session the bare-line compatibility
        path creates): ``algorithm``, ``machines``, ``alpha``, ``dispatch``,
        ``params``.
    max_pending:
        Default bound of the per-session offer queue (see module docstring).
    checkpoint_every:
        Snapshot a session's op log every N operations (``None`` disables
        periodic checkpointing; explicit :meth:`checkpoint` always works).
    checkpoint_dir:
        Directory where checkpoints are persisted (atomic write-then-rename,
        one file per session).  Enables :meth:`recover`.
    """

    def __init__(
        self,
        *,
        defaults: "Mapping[str, Any] | None" = None,
        max_pending: int = DEFAULT_MAX_PENDING,
        checkpoint_every: "int | None" = None,
        checkpoint_dir: "str | os.PathLike | None" = None,
    ) -> None:
        if max_pending <= 0:
            raise ServiceError(f"max_pending must be positive, got {max_pending}")
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ServiceError(
                f"checkpoint_every must be positive or None, got {checkpoint_every}"
            )
        self.defaults = dict(defaults or {})
        self.max_pending = max_pending
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        self._sessions: dict[str, HostedSession] = {}

    # -- lookup --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, name: str) -> bool:
        return name in self._sessions

    def get(self, name: str) -> "HostedSession | None":
        return self._sessions.get(name)

    def _require(self, name: str, *, open_: bool = True) -> HostedSession:
        hosted = self._sessions.get(name)
        if hosted is None:
            raise SessionStateError(
                f"no session named {name!r}; create it first "
                f"(hosted: {sorted(self._sessions) or 'none'})"
            )
        if open_ and hosted.state != "open":
            raise SessionStateError(
                f"session {name!r} is {hosted.state}, not open"
            )
        return hosted

    def sessions(self) -> list[dict[str, Any]]:
        """Status rows for every hosted session, sorted by name."""
        return [self._sessions[name].describe() for name in sorted(self._sessions)]

    def open_sessions(self) -> list[str]:
        """Names of sessions still in the ``open`` state, sorted."""
        return sorted(n for n, h in self._sessions.items() if h.state == "open")

    def unclean_sessions(self) -> list[str]:
        """Names of sessions in the ``failed`` state, sorted."""
        return sorted(n for n, h in self._sessions.items() if h.state == "failed")

    # -- lifecycle -----------------------------------------------------------------

    def create(
        self,
        name: str,
        *,
        algorithm: "str | None" = None,
        machines: "int | Sequence | None" = None,
        alpha: "float | None" = None,
        dispatch: "str | None" = None,
        params: "Mapping[str, Any] | None" = None,
        max_pending: "int | None" = None,
        checkpoint_every: "int | None" = None,
    ) -> HostedSession:
        """Create and host a new named session.

        Unset options fall back to the manager's ``defaults``.  Names are
        unique across the manager's lifetime — re-using the name of a closed
        session is refused so checkpoint files and listing rows stay
        unambiguous.
        """
        self._check_new_name(name)
        defaults = self.defaults
        merged_params = dict(defaults.get("params") or {})
        merged_params.update(params or {})
        # open_session rather than direct construction: per-algorithm session
        # classes (the adaptive meta wrapper) apply to hosted sessions too.
        session = open_session(
            algorithm if algorithm is not None else defaults.get("algorithm", "rejection-flow"),
            machines if machines is not None else defaults.get("machines", 4),
            alpha=alpha if alpha is not None else defaults.get("alpha", 3.0),
            dispatch=dispatch if dispatch is not None else defaults.get("dispatch"),
            name=name,
            # The manager's consumption point is poll(); retaining the full
            # decision history would defeat the bounded-memory contract.
            retain_events=False,
            **merged_params,
        )
        return self._host(name, session, max_pending, checkpoint_every)

    def restore(
        self,
        name: str,
        snapshot: "Mapping[str, Any] | str",
        *,
        max_pending: "int | None" = None,
        checkpoint_every: "int | None" = None,
    ) -> HostedSession:
        """Host a session rebuilt from a :meth:`SchedulerSession.snapshot`.

        The restored session continues exactly where the snapshot left off
        (deterministic op-log replay); used by crash recovery and by the
        receiving side of a migration.
        """
        self._check_new_name(name)
        session = SchedulerSession.restore(snapshot)
        hosted = self._host(name, session, max_pending, checkpoint_every)
        # The snapshot that rebuilt the session is its first checkpoint.
        hosted.checkpoint = dict(snapshot) if isinstance(snapshot, Mapping) else None
        return hosted

    def _check_new_name(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise ServiceError("session names must be non-empty strings")
        if name in self._sessions:
            raise SessionStateError(
                f"session {name!r} already exists "
                f"(state {self._sessions[name].state}); session names are unique"
            )

    def _host(
        self,
        name: str,
        session: SchedulerSession,
        max_pending: "int | None",
        checkpoint_every: "int | None",
    ) -> HostedSession:
        bound = max_pending if max_pending is not None else self.max_pending
        if bound <= 0:
            raise ServiceError(f"max_pending must be positive, got {bound}")
        hosted = HostedSession(
            name=name,
            session=session,
            max_pending=bound,
            checkpoint_every=(
                checkpoint_every if checkpoint_every is not None else self.checkpoint_every
            ),
        )
        self._sessions[name] = hosted
        return hosted

    # -- operations ----------------------------------------------------------------

    def submit(self, name: str, jobs: "Iterable[Job] | Any") -> SubmitOutcome:
        """Submit jobs to a session, subject to the offer-queue bound.

        ``jobs`` is an iterable of :class:`Job` or a ``JobChunk``.  Either
        the whole batch is ingested or (when it would overflow the bound)
        none of it — partial ingestion would make client retries ambiguous.
        """
        hosted = self._require(name)
        if hasattr(jobs, "validate") and hasattr(jobs, "jobs"):
            batch: Any = jobs
            count = len(jobs)
        else:
            batch = list(jobs)
            count = len(batch)
        if hosted.pending_offers + count > hosted.max_pending:
            return SubmitOutcome(
                accepted=False,
                count=0,
                pending=hosted.pending_offers,
                max_pending=hosted.max_pending,
            )
        ingested = hosted.session.submit_many(batch)
        hosted.pending_offers += ingested
        self._after_op(hosted)
        return SubmitOutcome(
            accepted=True,
            count=ingested,
            pending=hosted.pending_offers,
            max_pending=hosted.max_pending,
        )

    def poll(self, name: str) -> list[DecisionEvent]:
        """Process everything up to the session's ingest watermark."""
        hosted = self._require(name)
        events = hosted.session.poll()
        hosted.pending_offers = 0
        self._after_op(hosted)
        return events

    def advance(self, name: str, t: float) -> list[DecisionEvent]:
        """Process every event up to time ``t`` (declares no earlier arrivals)."""
        hosted = self._require(name)
        events = hosted.session.advance_to(float(t))
        hosted.pending_offers = 0
        self._after_op(hosted)
        return events

    def stats(self, name: str) -> dict:
        """Live observability counters of a hosted session (any state).

        The session's :meth:`~repro.service.session.SchedulerSession.stats`
        payload plus the manager-side view (lifecycle state, offer-queue
        depth).  Read-only: works on closed/failed sessions and never
        advances the simulation.
        """
        hosted = self._require(name, open_=False)
        stats = hosted.session.stats()
        stats["state"] = hosted.state
        stats["pending"] = hosted.pending_offers
        stats["max_pending"] = hosted.max_pending
        return stats

    def close(self, name: str) -> tuple[dict, list[DecisionEvent]]:
        """Drain, finalize and close a session.

        Returns ``(SolveOutcome.as_row(), remaining decision events)``.  A
        finalize failure marks the session ``failed`` (the unclean state)
        and re-raises.
        """
        hosted = self._require(name)
        try:
            outcome = hosted.session.finalize()
            events = hosted.session.take_events()
        except Exception as exc:
            hosted.state = "failed"
            hosted.error = str(exc)
            raise
        hosted.state = "closed"
        hosted.pending_offers = 0
        hosted.final_row = outcome.as_row()
        self._remove_checkpoint_file(name)
        return hosted.final_row, events

    def drain(self) -> list[tuple[str, "dict | None", "str | None"]]:
        """Close every open session; never raises.

        Returns ``(name, final_row | None, error | None)`` per drained
        session, sorted by name — the shutdown path: flush each session's
        final summary, record failures instead of aborting the drain.
        """
        results: list[tuple[str, "dict | None", "str | None"]] = []
        for name in self.open_sessions():
            try:
                row, _ = self.close(name)
                results.append((name, row, None))
            except Exception as exc:  # noqa: BLE001 - drain must not abort
                results.append((name, None, str(exc)))
        return results

    def _after_op(self, hosted: HostedSession) -> None:
        if hosted.checkpoint_every is None:
            return
        hosted.ops_since_checkpoint += 1
        if hosted.ops_since_checkpoint >= hosted.checkpoint_every:
            self.checkpoint(hosted.name)

    # -- checkpointing & migration -------------------------------------------------

    def checkpoint(self, name: str) -> dict:
        """Snapshot a session's op log now (and persist it when configured)."""
        hosted = self._require(name)
        snapshot = hosted.session.snapshot()
        hosted.checkpoint = snapshot
        hosted.ops_since_checkpoint = 0
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
            path = self.checkpoint_dir / _checkpoint_filename(name)
            payload = canonical_json({"session": name, "snapshot": snapshot})
            tmp = path.with_suffix(".tmp")
            tmp.write_text(payload + "\n", encoding="utf-8")
            os.replace(tmp, path)
        return snapshot

    def _remove_checkpoint_file(self, name: str) -> None:
        if self.checkpoint_dir is None:
            return
        path = self.checkpoint_dir / _checkpoint_filename(name)
        if path.exists():
            path.unlink()

    @classmethod
    def recover(
        cls,
        checkpoint_dir: "str | os.PathLike",
        **kwargs: Any,
    ) -> "SessionManager":
        """Rebuild a manager from a checkpoint directory.

        Every persisted checkpoint is restored into an open hosted session
        (deterministic replay), so a crashed server resumes with the exact
        session states it last persisted.  ``kwargs`` are forwarded to the
        constructor; ``checkpoint_dir`` is set to the recovered directory so
        subsequent checkpoints land in the same place.
        """
        import json as _json

        manager = cls(checkpoint_dir=checkpoint_dir, **kwargs)
        directory = Path(checkpoint_dir)
        if not directory.is_dir():
            return manager
        for path in sorted(directory.glob("*.json")):
            payload = _json.loads(path.read_text(encoding="utf-8"))
            manager.restore(payload["session"], payload["snapshot"])
        return manager

    def export_session(self, name: str) -> dict:
        """Snapshot a live session and release it (the migration source).

        The session is removed from this manager without being finalized;
        the returned snapshot, restored elsewhere, continues the stream.
        """
        hosted = self._require(name)
        snapshot = hosted.session.snapshot()
        del self._sessions[name]
        self._remove_checkpoint_file(name)
        return snapshot
