"""Adaptive algorithm-switching meta-scheduler.

The paper's online algorithms each dominate a different load regime
(experiment E14 measures it: greedy wins calm traffic, the Theorem-1
rejection algorithm wins overload and heavy tails).  This package exploits
that signal *online*:

* :mod:`repro.adaptive.monitor` — a windowed load-telemetry monitor
  (arrival rate, job-size tail index, backlog depth, rejection rate,
  completed-flow mean) with O(1) per-event updates, fed from the engine's
  :class:`~repro.simulation.stepper.DecisionEvent` stream plus the arrival
  hook;
* :mod:`repro.adaptive.policies` — pluggable switch policies (threshold
  rules and a deterministic bandit-style scorer) with hysteresis/cooldown
  against thrashing;
* :mod:`repro.adaptive.solver` — :class:`MetaSchedulingPolicy`, the
  ``"meta"`` solver registered in the solver registry like any other
  algorithm (``supports_streaming=True``); the controller runs *inside* the
  policy, synchronously with the event loop, so batch ``repro.solve()`` and
  streaming sessions make identical switch decisions and stay
  byte-reproducible across all three dispatch modes;
* :mod:`repro.adaptive.meta` — :class:`MetaSchedulerSession`, the streaming
  wrapper adding :meth:`~MetaSchedulerSession.hot_switch` (forced live
  switches via the existing snapshot/restore op-log replay) and live
  telemetry.

Experiment E17 (:mod:`repro.experiments.exp_adaptive`) evaluates the meta
solver on drifting scenarios with regret against the best fixed policy in
hindsight.
"""

from repro.adaptive.monitor import LoadMonitor, TelemetrySnapshot
from repro.adaptive.policies import (
    BanditSwitchPolicy,
    SwitchPolicy,
    ThresholdSwitchPolicy,
    make_switch_policy,
)
from repro.adaptive.solver import MetaSchedulingPolicy, SwitchEvent


def __getattr__(name: str):
    # MetaSchedulerSession pulls in the whole service layer; imported lazily
    # so registering the ``meta`` solver (which imports this package) stays
    # cheap and cycle-free.
    if name == "MetaSchedulerSession":
        from repro.adaptive.meta import MetaSchedulerSession

        return MetaSchedulerSession
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BanditSwitchPolicy",
    "LoadMonitor",
    "MetaSchedulerSession",
    "MetaSchedulingPolicy",
    "SwitchEvent",
    "SwitchPolicy",
    "TelemetrySnapshot",
    "ThresholdSwitchPolicy",
    "make_switch_policy",
]
