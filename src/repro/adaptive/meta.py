"""Streaming session wrapper for the adaptive meta-scheduler.

A :class:`MetaSchedulerSession` is a :class:`~repro.service.session.SchedulerSession`
running the ``meta`` solver, with three additions:

* :meth:`~MetaSchedulerSession.hot_switch` — force a live algorithm switch
  *now* (before the next processed arrival) via the existing
  snapshot/restore op-log replay: the switch is committed into the session's
  ``plan`` parameter and the session rebuilds itself in place by replaying
  its own op log under the extended plan.  Because controller switches
  re-derive deterministically on replay, the snapshot only needs to carry
  the forced entries — and a restored (or crash-recovered) session
  reproduces the hot switch exactly, so ``finalize()`` stays byte-identical
  to an uninterrupted run of the same switch schedule;
* :meth:`~MetaSchedulerSession.telemetry` — the live
  :class:`~repro.adaptive.monitor.TelemetrySnapshot` of the policy's load
  monitor;
* an extended :meth:`~MetaSchedulerSession.stats` payload (switch count,
  active algorithm, telemetry) surfaced through the service wire protocol's
  ``stats`` op.

:func:`repro.open_session` and :meth:`SchedulerSession.restore` return this
class automatically for solvers tagged ``"adaptive"``.
"""

from __future__ import annotations

from repro.adaptive.solver import MetaSchedulingPolicy, SwitchEvent, _validate_sub
from repro.service.session import SchedulerSession

__all__ = ["MetaSchedulerSession"]


class MetaSchedulerSession(SchedulerSession):
    """A streaming session over the ``meta`` solver with live switching."""

    #: The policy built for an adaptive solver (typed for introspection).
    policy: MetaSchedulingPolicy

    # -- live switching ------------------------------------------------------------

    def hot_switch(self, algorithm: str) -> SwitchEvent:
        """Switch the active sub-policy to ``algorithm`` before the next arrival.

        Implemented as *commit-then-replay*: the switch is appended to the
        ``plan`` parameter (keyed by the processed-arrival index, which is
        replay-stable across dispatch modes), the session snapshots itself,
        and rebuilds in place by replaying the op log under the extended
        plan.  The rebuilt session has processed exactly the same events —
        plus the committed switch armed for the next arrival — so all later
        behaviour is identical to a session configured with that plan from
        the start (the hot-switch property test asserts byte-identical
        ``finalize()`` artifacts).

        Returns the committed :class:`~repro.adaptive.solver.SwitchEvent`
        (its ``time`` is the switch's *commit* watermark; the arrival that
        realises it carries the simulation timestamp).
        """
        self._require_open("hot_switch")
        _validate_sub(algorithm)
        index = self.policy.arrivals_processed
        snapshot = self.snapshot()
        plan = list(snapshot["params"].get("plan") or ())
        plan.append(f"{index}:{algorithm}")
        snapshot["params"]["plan"] = plan
        replacement = type(self).restore(snapshot)
        # Become the replacement in place so the caller's (and the service
        # manager's) reference stays valid...
        self.__dict__.clear()
        self.__dict__.update(replacement.__dict__)
        # ... and rebind the stepper's external observer to *this* object:
        # it was chained to the replacement's bound method, which would
        # otherwise keep updating the discarded instance's counters.
        self._stepper.set_observer(self._observe)
        # The committed switch arms for arrival ``index``, which the replay
        # has not processed yet — so the replayed policy's active algorithm
        # is still the one being switched away from.
        return SwitchEvent(
            index=index,
            time=self._watermark,
            previous=self.policy.active_algorithm,
            algorithm=algorithm,
            source="plan",
        )

    # -- observability -------------------------------------------------------------

    @property
    def switch_log(self) -> tuple[SwitchEvent, ...]:
        """Every switch realised so far (controller and forced)."""
        return tuple(self.policy.switch_log)

    @property
    def active_algorithm(self) -> str:
        """Registry id of the currently active sub-policy."""
        return self.policy.active_algorithm

    def telemetry(self):
        """Live :class:`~repro.adaptive.monitor.TelemetrySnapshot`."""
        return self.policy.monitor.snapshot()

    def stats(self) -> dict:
        """Base session stats plus switching state and load telemetry."""
        stats = super().stats()
        stats["active_algorithm"] = self.policy.active_algorithm
        stats["switches"] = len(self.policy.switch_log)
        stats["telemetry"] = self.telemetry().as_dict()
        return stats
