"""Windowed load-telemetry monitor for the adaptive meta-scheduler.

The monitor ingests the engine's decision stream (one
:class:`~repro.simulation.stepper.DecisionEvent` per dispatch / start /
complete / reject) plus one :meth:`LoadMonitor.on_arrival` call per released
job, and maintains sliding-window load statistics with O(1) (amortised)
per-event updates:

* **arrival rate** — arrivals per unit time over the last ``window``
  releases;
* **tail index** — a moment-based Pareto-shape estimate over the last
  ``window`` job sizes: with ``SCV`` the squared coefficient of variation
  (``var/mean^2``), ``alpha_hat = 1 + sqrt(1 + 1/SCV)`` — exactly the shape
  of a Pareto law with that SCV for ``alpha > 2``, saturating at 2 from
  above as the empirical tail gets heavier (infinite-variance territory).
  *Small* values mean *heavy* tails; the statistic is scale-invariant, so
  the generators' load-rescaling of sizes doesn't move it;
* **backlog** — jobs in flight (released minus completed minus rejected),
  a lifetime counter, not windowed;
* **rejection rate** — rejected fraction of the last ``window`` terminal
  (complete/reject) events;
* **mean flow** — mean flow time of the last ``window`` terminal events
  (a rejected job's flow counts up to its rejection, the objective's own
  convention).

Every statistic is a pure function of the event-sequence prefix — no clocks,
no randomness — so a monitor replayed over the same stream reproduces the
same values bit-for-bit, which is what keeps the meta-scheduler's switch
decisions byte-reproducible across dispatch modes and snapshot/restore.
"""

from __future__ import annotations

import math
from collections import deque
from typing import NamedTuple

from repro.simulation.job import Job
from repro.simulation.stepper import DecisionEvent

__all__ = ["LoadMonitor", "TelemetrySnapshot"]

#: Below this squared coefficient of variation the size window is treated as
#: degenerate (all sizes equal): no tail evidence, the estimate is ``inf``.
_MIN_SCV = 1e-9


class TelemetrySnapshot(NamedTuple):
    """One consistent view of the monitor's statistics (JSON-friendly)."""

    arrivals: int
    completed: int
    rejected: int
    backlog: int
    arrival_rate: float
    tail_index: float
    rejection_rate: float
    mean_flow: float
    last_event_time: float

    def as_dict(self) -> dict:
        """Plain-dict view, canonical field order.

        Non-finite floats (the tail index is ``inf`` until two sizes have
        been seen) become ``None`` so the payload stays strict JSON on the
        service wire.
        """
        return {
            name: (None if isinstance(value, float) and not math.isfinite(value) else value)
            for name, value in self._asdict().items()
        }


class LoadMonitor:
    """Sliding-window load statistics over one simulation run.

    Parameters
    ----------
    window:
        Number of recent samples each windowed statistic covers (arrival
        times, log sizes, terminal events).  Small windows react faster;
        large windows are smoother.
    """

    def __init__(self, window: int = 64) -> None:
        if window < 2:
            raise ValueError(f"monitor window must be >= 2, got {window}")
        self.window = window
        # Arrival-time window (rate) and size window (tail index).
        self._arrival_times: deque[float] = deque(maxlen=window)
        self._sizes: deque[float] = deque(maxlen=window)
        self._size_sum = 0.0
        self._size_sq_sum = 0.0
        # Lifetime counters.
        self.arrivals = 0
        self.completed = 0
        self.rejected = 0
        self.last_event_time = 0.0
        # Terminal-event window (rejection rate + mean flow).
        self._terminal: deque[tuple[int, float]] = deque(maxlen=window)
        self._terminal_rejected = 0
        self._terminal_flow = 0.0
        #: Release time per in-flight job, popped on its terminal event.
        self._release: dict[int, float] = {}

    # -- ingestion -----------------------------------------------------------------

    def on_arrival(self, t: float, job: Job) -> None:
        """Record a released job (called once per ``on_arrival`` delegation)."""
        self.arrivals += 1
        self._arrival_times.append(t)
        self._release[job.id] = job.release

        size = min(s for s in job.sizes if not math.isinf(s))
        if len(self._sizes) == self.window:
            old = self._sizes[0]
            self._size_sum -= old
            self._size_sq_sum -= old * old
        self._sizes.append(size)
        self._size_sum += size
        self._size_sq_sum += size * size

    def observe(self, event: DecisionEvent) -> None:
        """Ingest one engine decision event (the stepper's observer hook)."""
        if event.time > self.last_event_time:
            self.last_event_time = event.time
        kind = event.kind
        if kind == "complete":
            self.completed += 1
            self._record_terminal(event, rejected=False)
        elif kind == "reject":
            self.rejected += 1
            self._record_terminal(event, rejected=True)

    def _record_terminal(self, event: DecisionEvent, rejected: bool) -> None:
        release = self._release.pop(event.job_id, event.time)
        flow = event.time - release
        terminal = self._terminal
        if len(terminal) == terminal.maxlen:
            old_rejected, old_flow = terminal[0]
            self._terminal_rejected -= old_rejected
            self._terminal_flow -= old_flow
        terminal.append((1 if rejected else 0, flow))
        self._terminal_rejected += 1 if rejected else 0
        self._terminal_flow += flow

    # -- statistics ----------------------------------------------------------------

    @property
    def backlog(self) -> int:
        """Jobs in flight: released but neither completed nor rejected."""
        return self.arrivals - self.completed - self.rejected

    def arrival_rate(self) -> float:
        """Arrivals per unit time over the arrival-time window (0 when flat)."""
        times = self._arrival_times
        if len(times) < 2:
            return 0.0
        span = times[-1] - times[0]
        if span <= 0.0:
            return 0.0
        return (len(times) - 1) / span

    def tail_index(self) -> float:
        """Moment-based Pareto-shape estimate over the size window (small = heavy).

        ``1 + sqrt(1 + 1/SCV)`` with ``SCV = var/mean^2``: equals the shape of
        a Pareto law with that SCV for shapes above 2 and saturates at 2 from
        above for heavier (infinite-variance) tails.  Returns ``inf`` until
        two sizes have been seen, or while the window is degenerate (all
        sizes equal) — no tail evidence yet.
        """
        n = len(self._sizes)
        if n < 2:
            return math.inf
        mean = self._size_sum / n
        if mean <= 0.0:
            return math.inf
        variance = max(self._size_sq_sum / n - mean * mean, 0.0)
        scv = variance / (mean * mean)
        if scv <= _MIN_SCV:
            return math.inf
        return 1.0 + math.sqrt(1.0 + 1.0 / scv)

    def rejection_rate(self) -> float:
        """Rejected fraction of the last ``window`` terminal events."""
        if not self._terminal:
            return 0.0
        return self._terminal_rejected / len(self._terminal)

    def mean_flow(self) -> float:
        """Mean flow time of the last ``window`` terminal events (0 when none)."""
        if not self._terminal:
            return 0.0
        return self._terminal_flow / len(self._terminal)

    def snapshot(self) -> TelemetrySnapshot:
        """One consistent view of every statistic."""
        return TelemetrySnapshot(
            arrivals=self.arrivals,
            completed=self.completed,
            rejected=self.rejected,
            backlog=self.backlog,
            arrival_rate=self.arrival_rate(),
            tail_index=self.tail_index(),
            rejection_rate=self.rejection_rate(),
            mean_flow=self.mean_flow(),
            last_event_time=self.last_event_time,
        )
