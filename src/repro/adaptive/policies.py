"""Switch policies: when should the meta-scheduler change algorithm?

A switch policy looks at the :class:`~repro.adaptive.monitor.LoadMonitor`
once per arrival and answers "which candidate should be active?" — ``None``
for "stay put".  Two families ship:

* :class:`ThresholdSwitchPolicy` — regime classification by backlog
  high/low-water marks and the size tail index, with a confirmation streak
  (the regime must persist for ``confirm`` consecutive arrivals) on top of
  the shared cooldown, so transient spikes don't cause thrashing;
* :class:`BanditSwitchPolicy` — a deterministic bandit-style scorer: each
  candidate accumulates a cost estimate (exponential moving average of the
  monitor's windowed mean flow while it was active); unplayed candidates are
  explored in declaration order, then the policy switches whenever another
  candidate's estimate undercuts the active one by a relative ``margin``.

Both are pure functions of the arrival-indexed observation sequence — no
clocks, no randomness — which keeps the meta solver byte-reproducible.
Hysteresis lives in the shared base class: after any switch (including
forced plan switches) a policy stays quiet for ``cooldown`` arrivals.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

from repro.adaptive.monitor import LoadMonitor
from repro.exceptions import InvalidParameterError
from repro.solvers.registry import get_solver

__all__ = [
    "SwitchPolicy",
    "ThresholdSwitchPolicy",
    "BanditSwitchPolicy",
    "make_switch_policy",
]


class SwitchPolicy(ABC):
    """Shared cooldown/hysteresis scaffolding of the switch-policy families."""

    def __init__(self, candidates: Sequence[str], cooldown: int = 32) -> None:
        if not candidates:
            raise InvalidParameterError("switch policy needs at least one candidate")
        if cooldown < 1:
            raise InvalidParameterError(f"cooldown must be >= 1, got {cooldown}")
        self.candidates = tuple(candidates)
        self.cooldown = cooldown
        self._last_switch = -cooldown  # ready immediately

    def reset(self, num_machines: int) -> None:
        """Prepare for a fresh run over a fleet of ``num_machines``."""
        self.num_machines = max(1, num_machines)
        self._last_switch = -self.cooldown

    def ready(self, arrival_index: int) -> bool:
        """Whether the cooldown since the last switch has elapsed."""
        return arrival_index - self._last_switch >= self.cooldown

    def record_switch(self, arrival_index: int, algorithm: str) -> None:
        """Note a switch (the policy's own or a forced plan switch)."""
        self._last_switch = arrival_index

    @abstractmethod
    def decide(self, monitor: LoadMonitor, current: str, arrival_index: int) -> str | None:
        """The candidate to switch to before this arrival, or ``None``."""


def _partition_candidates(candidates: Sequence[str]) -> tuple[str, str, str]:
    """``(calm, shed_light, shed_heavy)`` candidates for the regime map.

    Calm traffic wants a rejection-free policy (rejections only cost
    objective there); overload wants a rejecting one.  Among the rejecting
    candidates the *declaration order* is the convention: immediate/cheap
    shedders first, hindsight-robust shedders last — ``shed_light`` is the
    first rejecting candidate (moderate overload, light tails) and
    ``shed_heavy`` the last (heavy tails / saturation, where victims picked
    in hindsight pay off).  Each role falls back to the first candidate when
    the portfolio has no policy of that kind.
    """
    rejecting = [c for c in candidates if get_solver(c).supports_rejection]
    calm = next(
        (c for c in candidates if not get_solver(c).supports_rejection), candidates[0]
    )
    shed_light = rejecting[0] if rejecting else candidates[0]
    shed_heavy = rejecting[-1] if rejecting else candidates[0]
    return calm, shed_light, shed_heavy


class ThresholdSwitchPolicy(SwitchPolicy):
    """Backlog/tail threshold rules with confirmation-streak hysteresis.

    Parameters
    ----------
    high_water / low_water:
        Per-machine backlog marks (``backlog`` counts running jobs, so 1.0
        means "every machine busy, nothing queued").  Backlog above
        ``high_water * m`` classifies the regime as moderate overload
        (``shed_light``); backlog below ``low_water * m`` with a light tail
        classifies it as ``calm``; anything in between keeps the current
        algorithm (the hysteresis band).
    surge_factor:
        Backlog above ``surge_factor * high_water * m`` is *saturation* — a
        flash crowd — and sheds with the hindsight-robust candidate
        (``shed_heavy``) regardless of the tail.
    tail_cutoff:
        Tail-index cutoff; a size window heavier than ``Pareto(tail_cutoff)``
        sheds with ``shed_heavy`` regardless of backlog.  The tail signal is
        trusted only once the monitor's size window has filled — early
        windows are too noisy to restructure the portfolio over.
    confirm / calm_confirm:
        Consecutive arrivals that must agree on the same target before the
        switch happens.  Escalating (toward a shedding candidate) uses
        ``confirm`` — congestion compounds, so it should be fast; relaxing
        back to the calm candidate uses the much longer ``calm_confirm``,
        because a cleared backlog right after shedding is exactly what
        successful shedding looks like, not evidence the storm has passed.
    """

    def __init__(
        self,
        candidates: Sequence[str],
        cooldown: int = 32,
        high_water: float = 1.5,
        low_water: float = 0.5,
        surge_factor: float = 6.0,
        tail_cutoff: float = 2.1,
        confirm: int = 4,
        calm_confirm: int = 48,
    ) -> None:
        super().__init__(candidates, cooldown)
        if low_water > high_water:
            raise InvalidParameterError(
                f"low_water {low_water} must not exceed high_water {high_water}"
            )
        if surge_factor < 1.0:
            raise InvalidParameterError(f"surge_factor must be >= 1, got {surge_factor}")
        if confirm < 1:
            raise InvalidParameterError(f"confirm must be >= 1, got {confirm}")
        if calm_confirm < confirm:
            raise InvalidParameterError(
                f"calm_confirm {calm_confirm} must be >= confirm {confirm}"
            )
        self.high_water = high_water
        self.low_water = low_water
        self.surge_factor = surge_factor
        self.tail_cutoff = tail_cutoff
        self.confirm = confirm
        self.calm_confirm = calm_confirm
        self._calm, self._shed_light, self._shed_heavy = _partition_candidates(
            self.candidates
        )
        self._shedders = frozenset(
            c for c in self.candidates if get_solver(c).supports_rejection
        )
        self._streak_target: str | None = None
        self._streak = 0

    def reset(self, num_machines: int) -> None:
        super().reset(num_machines)
        self._streak_target = None
        self._streak = 0

    def _classify(self, monitor: LoadMonitor, current: str) -> str | None:
        """Target candidate given the telemetry and the *active* candidate.

        Escalation is one-way: heavy tails or a saturated backlog promote to
        the hindsight-robust shedder, but an active shedder never *hops down*
        to the other one on a mere backlog-high reading — the rejection
        budget concentrates where it was committed, and the only way back is
        sustained calm evidence (the ``calm_confirm`` streak).
        """
        per_machine = monitor.backlog / self.num_machines
        # The tail estimate is only trusted on a full size window.
        heavy = (
            monitor.arrivals >= monitor.window
            and monitor.tail_index() < self.tail_cutoff
        )
        if heavy or per_machine > self.surge_factor * self.high_water:
            return self._shed_heavy
        if per_machine > self.high_water:
            return current if current in self._shedders else self._shed_light
        if per_machine < self.low_water:
            return self._calm
        return None  # hysteresis band

    def decide(self, monitor: LoadMonitor, current: str, arrival_index: int) -> str | None:
        target = self._classify(monitor, current)
        if target is None or target == current:
            self._streak_target = None
            self._streak = 0
            return None
        if target == self._streak_target:
            self._streak += 1
        else:
            self._streak_target = target
            self._streak = 1
        needed = self.calm_confirm if target == self._calm else self.confirm
        if self._streak >= needed and self.ready(arrival_index):
            self._streak_target = None
            self._streak = 0
            return target
        return None


class BanditSwitchPolicy(SwitchPolicy):
    """Deterministic bandit-style scorer over the candidate portfolio.

    Each ``decide`` call charges the monitor's windowed mean flow to the
    active candidate's cost estimate (an exponential moving average).
    Unplayed candidates are explored once each, in declaration order; after
    that the policy exploits — it switches whenever another candidate's
    estimate undercuts the active one by a relative ``margin``.  A stale
    estimate that turns out wrong corrects itself: the newly active
    candidate's EMA refreshes and the policy switches back after the
    cooldown, so exploration re-emerges exactly when estimates disagree with
    reality.

    Parameters
    ----------
    margin:
        Relative improvement the best estimate must show over the active
        candidate's before a switch fires (hysteresis).
    ema:
        EMA smoothing factor in ``(0, 1]`` (1 = last sample only).
    """

    def __init__(
        self,
        candidates: Sequence[str],
        cooldown: int = 32,
        margin: float = 0.1,
        ema: float = 0.2,
    ) -> None:
        super().__init__(candidates, cooldown)
        if margin < 0.0:
            raise InvalidParameterError(f"margin must be >= 0, got {margin}")
        if not 0.0 < ema <= 1.0:
            raise InvalidParameterError(f"ema must be in (0, 1], got {ema}")
        self.margin = margin
        self.ema = ema
        self._cost: dict[str, float] = {}
        self._plays: dict[str, int] = {}

    def reset(self, num_machines: int) -> None:
        super().reset(num_machines)
        self._cost = {c: 0.0 for c in self.candidates}
        self._plays = {c: 0 for c in self.candidates}

    def record_switch(self, arrival_index: int, algorithm: str) -> None:
        super().record_switch(arrival_index, algorithm)
        if algorithm in self._plays:
            self._plays[algorithm] += 1

    def decide(self, monitor: LoadMonitor, current: str, arrival_index: int) -> str | None:
        sample = monitor.mean_flow()
        if current in self._cost:
            if self._plays.get(current, 0) == 0:
                # The initial candidate was never "switched to"; count its
                # first charged sample as its first play.
                self._plays[current] = 1
                self._cost[current] = sample
            else:
                self._cost[current] += self.ema * (sample - self._cost[current])
        if not self.ready(arrival_index):
            return None
        for candidate in self.candidates:
            if candidate != current and self._plays[candidate] == 0:
                return candidate
        current_cost = self._cost.get(current, math.inf)
        best, best_cost = None, math.inf
        for candidate in self.candidates:
            if candidate == current:
                continue
            cost = self._cost[candidate]
            if cost < best_cost:
                best, best_cost = candidate, cost
        # Exploit-only with relative hysteresis: a stale estimate that turns
        # out wrong corrects itself — the new active candidate's EMA refreshes
        # and the policy switches back after the cooldown.
        if best is not None and best_cost < current_cost * (1.0 - self.margin):
            return best
        return None


#: Switch-policy family name -> constructor.
_FAMILIES = {
    "threshold": ThresholdSwitchPolicy,
    "bandit": BanditSwitchPolicy,
}


def make_switch_policy(
    family: str, candidates: Sequence[str], cooldown: int = 32, **knobs
) -> SwitchPolicy:
    """Build a switch policy by family name (``threshold`` / ``bandit``)."""
    ctor = _FAMILIES.get(family)
    if ctor is None:
        raise InvalidParameterError(
            f"unknown switch-policy family {family!r}; available: {sorted(_FAMILIES)}"
        )
    return ctor(candidates, cooldown=cooldown, **knobs)
