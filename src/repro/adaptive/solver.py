"""``meta`` — the adaptive algorithm-switching scheduling policy.

The meta-scheduler is a :class:`~repro.simulation.engine.FlowTimePolicy`
holding a portfolio of *candidate* streaming solvers (registry ids).  A
:class:`~repro.adaptive.monitor.LoadMonitor` ingests the run's decision
stream; once per arrival a :class:`~repro.adaptive.policies.SwitchPolicy`
looks at the telemetry and may switch the active sub-policy.  Switching
builds a **fresh** sub-policy instance (clean internal counters); the shared
engine state — pending queues, running jobs — carries over, so a switch is
seamless from the jobs' point of view.

Determinism is the load-bearing property.  The controller runs *inside* the
policy, synchronously with the event loop, and every input it sees (monitor
statistics, arrival index) is a pure function of the event-stream prefix.
Hence:

* batch ``repro.solve(..., algorithm="meta")`` and a streaming session over
  the same jobs make identical switch decisions (finalize stays
  byte-identical to batch);
* the three dispatch modes agree byte-for-byte: the meta policy declares no
  ``priority_key`` and no prefix stats, so every sub-policy decision path
  takes the deterministic scan fallbacks in all modes;
* replaying a snapshot's op log re-derives controller switches exactly, so
  snapshots only need to carry *forced* switches — the ``plan`` parameter, a
  tuple of ``"INDEX:ALGORITHM"`` entries applied before the arrival with
  that processed-arrival index.  :meth:`MetaSchedulerSession.hot_switch
  <repro.adaptive.meta.MetaSchedulerSession.hot_switch>` appends to it.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

from repro.adaptive.monitor import LoadMonitor
from repro.adaptive.policies import SwitchPolicy, make_switch_policy
from repro.exceptions import InvalidParameterError
from repro.simulation.decisions import ArrivalDecision
from repro.simulation.engine import FlowTimePolicy
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.state import EngineState
from repro.simulation.stepper import DecisionEvent

__all__ = ["MetaSchedulingPolicy", "SwitchEvent", "DEFAULT_CANDIDATES", "SWITCH_POLICIES"]

#: Default candidate portfolio.  The first entry is the initial active
#: algorithm: the Lemma-1 immediate-rejection baseline, a safe opening under
#: unknown load (its backlog gate makes it behave like greedy while traffic
#: is light).  Sustained calm evidence relaxes to the rejection-free greedy;
#: heavy tails or saturation escalate to the Theorem-1 rejection algorithm,
#: whose Rule-2 victims are picked in hindsight.  Rejecting candidates are
#: ordered immediate-first, robust-last — the threshold policy relies on
#: that order to pick its shedding algorithm per regime.
DEFAULT_CANDIDATES = ("immediate-rejection", "greedy", "rejection-flow")

#: Recognised values of the ``policy`` parameter; ``"plan"`` disables the
#: controller (only forced ``plan`` entries switch).
SWITCH_POLICIES = ("threshold", "bandit", "plan")


class SwitchEvent(NamedTuple):
    """One algorithm switch: before which arrival, when, to what, and why."""

    index: int
    time: float
    previous: str
    algorithm: str
    source: str  # "threshold" | "bandit" | "plan"

    def as_dict(self) -> dict:
        """Plain-dict view, canonical field order."""
        return dict(self._asdict())


def _validate_sub(algorithm: str):
    """A candidate/plan target must be a streaming engine policy, not meta."""
    from repro.solvers.registry import get_solver

    spec = get_solver(algorithm)
    if (
        spec.model != "fixed-speed"
        or spec.objective != "total-flow-time"
        or not spec.supports_streaming
        or spec.factory is None
        or "adaptive" in spec.tags
    ):
        raise InvalidParameterError(
            f"meta candidate {algorithm!r} must be a streaming fixed-speed "
            "total-flow-time policy (and not itself adaptive)"
        )
    return spec


def _parse_plan(plan: Sequence[str]) -> dict[int, str]:
    """``("idx:alg", ...)`` -> ``{idx: alg}`` (later entries win per index)."""
    forced: dict[int, str] = {}
    for entry in plan:
        text = str(entry)
        index_text, sep, algorithm = text.partition(":")
        if not sep or not algorithm:
            raise InvalidParameterError(
                f"plan entry {text!r} must look like 'INDEX:ALGORITHM'"
            )
        try:
            index = int(index_text)
        except ValueError as exc:
            raise InvalidParameterError(
                f"plan entry {text!r} has a non-integer arrival index"
            ) from exc
        if index < 0:
            raise InvalidParameterError(f"plan entry {text!r} has a negative index")
        _validate_sub(algorithm)
        forced[index] = algorithm
    return forced


class MetaSchedulingPolicy(FlowTimePolicy):
    """Adaptive algorithm-switching policy over the registry's streaming solvers.

    Parameters
    ----------
    candidates:
        Registry ids the controller may switch between; the first is the
        initial active algorithm.  Each must be a streaming fixed-speed
        total-flow-time policy.
    window:
        Monitor window (samples per sliding statistic).
    policy:
        Switch-policy family: ``"threshold"``, ``"bandit"``, or ``"plan"``
        (controller off — only forced plan entries switch).
    cooldown:
        Minimum arrivals between switches (hysteresis).
    margin:
        Bandit's relative-improvement margin (ignored by ``threshold``).
    epsilon:
        Rejection budget forwarded to every candidate whose parameters
        include ``epsilon`` — the whole portfolio plays at the same budget,
        so switch decisions compare like with like.
    plan:
        Forced switches, ``"INDEX:ALGORITHM"`` entries applied before the
        arrival with that processed-arrival index (what
        ``MetaSchedulerSession.hot_switch`` appends to).
    """

    # No priority key and no prefix stats: the engine installs neither the
    # indexed heaps nor the Fenwick trees in ANY dispatch mode, so every
    # sub-policy query (pending_argmin / pending_spt_stats /
    # spt_lambda_argmin) takes the same deterministic scan fallback
    # everywhere — that is what makes switching byte-reproducible.
    priority_key = None
    wants_prefix_stats = False

    def __init__(
        self,
        candidates: Sequence[str] = DEFAULT_CANDIDATES,
        window: int = 64,
        policy: str = "threshold",
        cooldown: int = 32,
        margin: float = 0.1,
        epsilon: float = 0.25,
        plan: Sequence[str] = (),
    ) -> None:
        self.candidates = tuple(str(c) for c in candidates)
        if not self.candidates:
            raise InvalidParameterError("meta needs at least one candidate")
        for candidate in self.candidates:
            _validate_sub(candidate)
        if policy not in SWITCH_POLICIES:
            raise InvalidParameterError(
                f"policy must be one of {SWITCH_POLICIES}, got {policy!r}"
            )
        if window < 2:
            raise InvalidParameterError(f"window must be >= 2, got {window}")
        self.window = int(window)
        self.policy = policy
        self.cooldown = int(cooldown)
        self.margin = float(margin)
        if not 0.0 < float(epsilon) <= 1.0:
            raise InvalidParameterError(f"epsilon must be in (0, 1], got {epsilon}")
        self.epsilon = float(epsilon)
        self.plan = tuple(str(entry) for entry in plan)
        self._forced = _parse_plan(self.plan)
        self.name = f"meta({policy})"
        self.monitor = LoadMonitor(self.window)
        self._controller: SwitchPolicy | None = None
        self._active = None
        self._active_id = self.candidates[0]
        self._arrival_index = 0
        self.switch_log: list[SwitchEvent] = []

    # -- lifecycle -----------------------------------------------------------------

    def _build_sub(self, algorithm: str, instance: Instance):
        from repro.solvers.facade import _build_policy
        from repro.solvers.registry import get_solver

        spec = get_solver(algorithm)
        params = {"epsilon": self.epsilon} if "epsilon" in spec.param_specs() else {}
        sub = _build_policy(spec, spec.validate_params(params))
        sub.reset(instance)
        return sub

    def reset(self, instance: Instance) -> None:
        """Engine hook: fresh monitor, controller and initial sub-policy."""
        self._instance = instance
        self.monitor = LoadMonitor(self.window)
        if self.policy == "plan":
            self._controller = None
        else:
            kwargs = {"margin": self.margin} if self.policy == "bandit" else {}
            self._controller = make_switch_policy(
                self.policy, self.candidates, cooldown=self.cooldown, **kwargs
            )
            self._controller.reset(instance.num_machines)
        self._arrival_index = 0
        self._active_id = self.candidates[0]
        self._active = self._build_sub(self._active_id, instance)
        self.switch_log = []

    # -- telemetry feed ------------------------------------------------------------

    def observe_decision(self, event: DecisionEvent) -> None:
        """Stepper hook: feed the engine's decision stream into the monitor."""
        self.monitor.observe(event)

    # -- switching -----------------------------------------------------------------

    def _switch(self, index: int, t: float, algorithm: str, source: str) -> None:
        self.switch_log.append(
            SwitchEvent(
                index=index,
                time=t,
                previous=self._active_id,
                algorithm=algorithm,
                source=source,
            )
        )
        self._active_id = algorithm
        self._active = self._build_sub(algorithm, self._instance)
        if self._controller is not None:
            self._controller.record_switch(index, algorithm)

    # -- FlowTimePolicy hooks (delegation) -----------------------------------------

    def on_arrival(self, t: float, job: Job, state: EngineState) -> ArrivalDecision:
        """Decide a possible switch, record telemetry, delegate the dispatch."""
        index = self._arrival_index
        self._arrival_index = index + 1
        forced = self._forced.get(index)
        if forced is not None:
            # Forced plan switches always rebuild, even to the same id —
            # hot_switch relies on a replayed run reproducing the rebuild.
            self._switch(index, t, forced, "plan")
        elif self._controller is not None:
            target = self._controller.decide(self.monitor, self._active_id, index)
            if target is not None and target != self._active_id:
                self._switch(index, t, target, self.policy)
        self.monitor.on_arrival(t, job)
        return self._active.on_arrival(t, job, state)

    def select_next(self, t: float, machine: int, state: EngineState) -> int | None:
        """Delegate local scheduling to the active sub-policy."""
        return self._active.select_next(t, machine, state)

    # -- reporting -----------------------------------------------------------------

    @property
    def active_algorithm(self) -> str:
        """Registry id of the currently active sub-policy."""
        return self._active_id

    @property
    def arrivals_processed(self) -> int:
        """Arrivals the policy has processed (the next arrival's index)."""
        return self._arrival_index

    def diagnostics(self) -> dict:
        """Per-run diagnostics merged into the outcome's extras."""
        return {
            "meta_switches": len(self.switch_log),
            "meta_active": self._active_id,
            "meta_switch_trace": ";".join(
                f"{event.index}:{event.algorithm}" for event in self.switch_log
            ),
        }
