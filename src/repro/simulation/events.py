"""Event queue for the discrete-event engines.

Both engines process two kinds of events: job arrivals and job completions.
Completions can become stale when the running job is rejected mid-execution
(Rejection Rule 1 of the paper interrupts the running job); stale events are
invalidated with per-machine version stamps rather than removed from the heap,
the standard lazy-deletion idiom for :mod:`heapq`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, Iterator, Sequence

from repro.exceptions import SimulationError


class EventKind(IntEnum):
    """Kinds of events, ordered so simultaneous events process deterministically.

    At equal timestamps completions are handled before arrivals: a machine
    that finishes exactly when a new job arrives is idle from the arriving
    job's point of view, matching the paper's convention that ``U_i(t)``
    contains only unfinished jobs.
    """

    COMPLETION = 0
    ARRIVAL = 1


@dataclass(frozen=True, slots=True)
class Event:
    """A single simulator event.

    ``machine``/``version`` are only meaningful for completions; ``job_id``
    identifies the arriving or completing job.
    """

    time: float
    kind: EventKind
    job_id: int
    machine: int = -1
    version: int = -1


class EventQueue:
    """A time-ordered queue of :class:`Event` objects backed by ``heapq``.

    Ordering key is ``(time, kind, sequence)``: earlier times first, then
    completions before arrivals, then insertion order for determinism.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event) -> None:
        """Insert an event."""
        if event.time < 0:
            raise SimulationError(f"event time must be non-negative, got {event.time}")
        heapq.heappush(self._heap, (event.time, int(event.kind), next(self._counter), event))

    def push_arrival(self, time: float, job_id: int) -> None:
        """Insert a job-arrival event."""
        self.push(Event(time=time, kind=EventKind.ARRIVAL, job_id=job_id))

    def push_completion(self, time: float, job_id: int, machine: int, version: int) -> None:
        """Insert a job-completion event carrying the machine's version stamp."""
        self.push(
            Event(
                time=time,
                kind=EventKind.COMPLETION,
                job_id=job_id,
                machine=machine,
                version=version,
            )
        )

    def pop(self) -> Event:
        """Remove and return the next event in time order."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)[3]

    def peek_time(self) -> float:
        """Timestamp of the next event without removing it."""
        if not self._heap:
            raise SimulationError("peek on an empty event queue")
        return self._heap[0][0]

    def drain(
        self,
        is_stale: "Callable[[Event], bool] | None" = None,
        machine_versions: "Sequence[int] | None" = None,
    ) -> Iterator[Event]:
        """Yield the remaining events in order, emptying the queue.

        Draining after early termination must apply the same lazy-deletion
        filtering the engines use, otherwise completions whose running job
        was rejected mid-execution come back as dead events.  Two filters
        are supported (combinable):

        * ``machine_versions`` — the engines' per-machine version stamps
          (``[ms.version for ms in state.machines]``); completion events
          whose stamp no longer matches are skipped, exactly like the
          engines' stale-completion check.  Arrivals always pass.
        * ``is_stale`` — an arbitrary predicate; events for which it returns
          ``True`` are skipped.

        The previous implementation popped one event at a time (repeated
        sift-downs); a single sort of the backing heap does the same
        O(n log n) work with one pass and no per-event heap restructuring.
        """
        entries = sorted(self._heap)
        self._heap.clear()
        for entry in entries:
            event = entry[3]
            if machine_versions is not None and event.kind == EventKind.COMPLETION:
                if not (0 <= event.machine < len(machine_versions)):
                    continue
                if machine_versions[event.machine] != event.version:
                    continue
            if is_stale is not None and is_stale(event):
                continue
            yield event
