"""Non-preemptive flow-time engine (unit-speed / fixed-speed machines).

This is the execution model of Section 2 of the paper: jobs arrive online,
are dispatched to a machine immediately, wait in the machine's queue, and run
non-preemptively once started.  The only way to stop a started job is to
*reject* it (Rejection Rule 1), which discards it.

The engine is policy-driven.  A policy implements three hooks:

``on_arrival(t, job, state)``
    Called when a job is released.  Returns an :class:`ArrivalDecision`:
    which machine to dispatch to (or reject the job immediately), plus an
    optional list of other jobs to reject right now (pending or running).

``select_next(t, machine, state)``
    Called whenever a machine is idle and has pending jobs.  Returns the id
    of the pending job to start, or ``None`` to leave the machine idle until
    the next event (the paper's algorithms never idle deliberately).

``reset(instance)``
    Called once per run before any event, so stateful policies (counters)
    can be reused across runs.

The event loop itself (arrival bookkeeping, stale-completion filtering,
rejection of pending or running jobs) is shared with the speed-scaling engine
via :class:`NonPreemptiveEngine`; the two models differ only in how a start
decision translates into a ``(speed, duration)`` pair and in the extras they
attach to the result.
"""

from __future__ import annotations

import math
import os
from abc import ABC, abstractmethod

from repro.exceptions import SimulationError
from repro.simulation.decisions import ArrivalDecision, Rejection
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.indexed import IndexedPending, PendingPrefixStats, build_priority_ranks
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.schedule import ExecutionInterval, JobRecord, SimulationResult
from repro.simulation.state import EngineState, MachineState, RunningInfo

__all__ = [
    "ArrivalDecision",
    "Rejection",
    "FlowTimePolicy",
    "FlowTimeEngine",
    "NonPreemptiveEngine",
    "run_policy",
    "default_dispatch_mode",
]

#: Recognised dispatch modes: ``"indexed"`` answers select-next argmins from
#: lazily-invalidated per-machine heaps (see :mod:`repro.simulation.indexed`);
#: ``"scan"`` keeps the reference linear scans.  Both produce byte-identical
#: schedules; the equivalence suite asserts it.
DISPATCH_MODES = ("indexed", "scan")

#: Environment override for the default mode, read at engine construction so
#: campaign worker processes and tests can pin it without code changes.
DISPATCH_ENV_VAR = "REPRO_DISPATCH"


def default_dispatch_mode() -> str:
    """The dispatch mode engines use when none is passed explicitly."""
    mode = os.environ.get(DISPATCH_ENV_VAR, "indexed")
    if mode not in DISPATCH_MODES:
        raise SimulationError(
            f"{DISPATCH_ENV_VAR} must be one of {DISPATCH_MODES}, got {mode!r}"
        )
    return mode


class FlowTimePolicy(ABC):
    """Interface implemented by online flow-time scheduling policies."""

    #: Human-readable name used in result labels and reports.
    name: str = "flow-time-policy"

    #: Static local-order hook: policies whose pending order never changes
    #: while a job waits override this with a method
    #: ``priority_key(job, machine) -> tuple`` (key must end in ``job.id``),
    #: which lets the engine maintain the select-next argmin in per-machine
    #: heaps.  ``None`` (the default) keeps scan semantics — correct for any
    #: policy, mandatory for time-varying keys.
    priority_key = None

    #: Policies whose dispatch surrogate needs order statistics over the
    #: pending set (count/size-sum of jobs preceding a candidate in the
    #: priority order) set this to ``True``; the engine then maintains
    #: per-machine Fenwick trees the policy queries through
    #: ``state.prefix_stats``.  Requires ``priority_key``.
    wants_prefix_stats = False

    def reset(self, instance: Instance) -> None:  # noqa: B027 - optional hook
        """Prepare internal state for a new run (default: nothing)."""

    @abstractmethod
    def on_arrival(self, t: float, job: Job, state: EngineState) -> ArrivalDecision:
        """Dispatch (or reject) the job released at time ``t``."""

    @abstractmethod
    def select_next(self, t: float, machine: int, state: EngineState) -> int | None:
        """Pick the pending job to start on an idle machine (or ``None``)."""


class NonPreemptiveEngine(ABC):
    """Shared event loop of the two non-preemptive discrete-event simulators.

    Subclasses define how an idle machine turns a policy's start decision into
    a running job (:meth:`_pick_start`) and which extras the result carries
    (:meth:`_result_extras`); everything else — event ordering, dispatching,
    rejection of pending or running jobs, record bookkeeping — is identical in
    the fixed-speed and speed-scaling models and lives here.
    """

    def __init__(self, instance: Instance, dispatch: str | None = None) -> None:
        self.instance = instance
        self.dispatch = default_dispatch_mode() if dispatch is None else dispatch
        if self.dispatch not in DISPATCH_MODES:
            raise SimulationError(
                f"dispatch must be one of {DISPATCH_MODES}, got {self.dispatch!r}"
            )

    # -- public API ----------------------------------------------------------------

    def run(self, policy) -> SimulationResult:
        """Simulate ``policy`` on the engine's instance and return the result."""
        instance = self.instance
        policy.reset(instance)

        state = EngineState(instance)
        key_fn = getattr(policy, "priority_key", None)
        if not callable(key_fn):
            key_fn = None
        index: IndexedPending | None = None
        stats_factory = None
        if key_fn is not None:
            if self.dispatch == "indexed":
                index = IndexedPending(instance.num_machines, key_fn)
            if getattr(policy, "wants_prefix_stats", False):

                def stats_factory(key_fn=key_fn):
                    ranks = build_priority_ranks(instance.jobs, instance.num_machines, key_fn)
                    return PendingPrefixStats(ranks, instance.num_jobs)

        state.install_priority(key_fn, index, stats_factory)

        queue = EventQueue()
        for job in instance.jobs:
            queue.push_arrival(job.release, job.id)

        records: dict[int, JobRecord] = {}
        intervals: list[ExecutionInterval] = []
        dispatched_machine: dict[int, int] = {}
        event_count = 0
        # Machines whose policy declined to start despite pending work; they
        # must be re-offered at every event (pre-index semantics) because
        # their answer may depend on global state the event did not touch.
        recheck: set[int] = set()

        while queue:
            event = queue.pop()
            state.time = event.time
            event_count += 1

            # Only machines the event touched can newly become startable:
            # the completion's machine, the dispatch target, and any machine
            # a rejection freed.  Shipped policies start whenever they have
            # pending work, so untouched machines are either running or have
            # an empty queue; ``recheck`` covers deliberately idling policies.
            if event.kind == EventKind.COMPLETION:
                self._handle_completion(event, state, records, intervals)
                touched = {event.machine}
            else:
                touched = self._handle_arrival(
                    event, policy, state, records, intervals, dispatched_machine
                )

            if recheck:
                touched |= recheck
            self._start_idle_machines(event.time, policy, state, queue, touched, recheck)

        self._check_all_jobs_settled(instance, records)
        return SimulationResult(
            instance=instance,
            records=records,
            intervals=sorted(intervals, key=lambda iv: (iv.start, iv.machine)),
            algorithm=policy.name,
            extras=self._result_extras(intervals, event_count),
        )

    # -- model-specific hooks ------------------------------------------------------

    @abstractmethod
    def _pick_start(
        self, t: float, policy, ms: MachineState, state: EngineState
    ) -> tuple[Job, float, float] | None:
        """Ask ``policy`` what to start on idle machine ``ms``.

        Returns ``(job, speed, duration)`` for the job to start now, or
        ``None`` to leave the machine idle until the next event.  Implementors
        validate the policy's choice (pending membership, finite duration).
        """

    def _result_extras(self, intervals: list[ExecutionInterval], event_count: int) -> dict:
        """Extras attached to the simulation result."""
        return {"events": event_count}

    # -- event handlers ------------------------------------------------------------

    def _handle_completion(
        self,
        event: Event,
        state: EngineState,
        records: dict[int, JobRecord],
        intervals: list[ExecutionInterval],
    ) -> None:
        ms = state.machines[event.machine]
        if ms.version != event.version or ms.running is None or ms.running.job.id != event.job_id:
            return  # stale completion (the job was rejected while running)
        info = ms.running
        ms.running = None
        ms.version += 1
        intervals.append(
            ExecutionInterval(
                machine=event.machine,
                job_id=event.job_id,
                start=info.start,
                end=event.time,
                speed=info.speed,
                completed=True,
            )
        )
        job = info.job
        records[job.id] = JobRecord(
            job_id=job.id,
            weight=job.weight,
            release=job.release,
            machine=event.machine,
            start=info.start,
            completion=event.time,
            rejected=False,
        )

    def _handle_arrival(
        self,
        event: Event,
        policy,
        state: EngineState,
        records: dict[int, JobRecord],
        intervals: list[ExecutionInterval],
        dispatched_machine: dict[int, int],
    ) -> set[int]:
        job = state.job(event.job_id)
        decision = policy.on_arrival(event.time, job, state)
        touched: set[int] = set()

        if decision.machine is None:
            records[job.id] = JobRecord(
                job_id=job.id,
                weight=job.weight,
                release=job.release,
                machine=None,
                start=None,
                completion=None,
                rejected=True,
                rejection_time=event.time,
                rejection_reason="immediate",
            )
        else:
            machine = decision.machine
            if not (0 <= machine < state.num_machines):
                raise SimulationError(
                    f"policy {policy.name!r} dispatched job {job.id} to invalid machine {machine}"
                )
            if math.isinf(job.size_on(machine)):
                raise SimulationError(
                    f"policy {policy.name!r} dispatched job {job.id} to forbidden machine {machine}"
                )
            state.add_pending(machine, job)
            dispatched_machine[job.id] = machine
            touched.add(machine)

        for rejection in decision.rejections:
            touched.add(
                self._apply_rejection(
                    event.time, rejection, state, records, intervals, dispatched_machine
                )
            )
        return touched

    def _apply_rejection(
        self,
        t: float,
        rejection: Rejection,
        state: EngineState,
        records: dict[int, JobRecord],
        intervals: list[ExecutionInterval],
        dispatched_machine: dict[int, int],
    ) -> int:
        job_id = rejection.job_id
        if job_id in records:
            raise SimulationError(f"job {job_id} rejected after it already finished/was rejected")

        # Case 1: the job is running somewhere -> interrupt it (Rule 1).
        for ms in state.machines:
            if ms.running is not None and ms.running.job.id == job_id:
                info = ms.running
                ms.running = None
                ms.version += 1
                if t > info.start:
                    intervals.append(
                        ExecutionInterval(
                            machine=ms.index,
                            job_id=job_id,
                            start=info.start,
                            end=t,
                            speed=info.speed,
                            completed=False,
                        )
                    )
                records[job_id] = JobRecord(
                    job_id=job_id,
                    weight=info.job.weight,
                    release=info.job.release,
                    machine=ms.index,
                    start=info.start,
                    completion=None,
                    rejected=True,
                    rejection_time=t,
                    rejection_reason=rejection.reason,
                )
                return ms.index

        # Case 2: the job is pending on its dispatched machine.
        machine = dispatched_machine.get(job_id)
        if machine is None:
            raise SimulationError(f"cannot reject job {job_id}: it was never dispatched")
        ms = state.machines[machine]
        if job_id not in ms.pending:
            raise SimulationError(
                f"cannot reject job {job_id}: not pending on machine {machine}"
            )
        state.remove_pending(machine, job_id)
        job = state.job(job_id)
        records[job_id] = JobRecord(
            job_id=job_id,
            weight=job.weight,
            release=job.release,
            machine=machine,
            start=None,
            completion=None,
            rejected=True,
            rejection_time=t,
            rejection_reason=rejection.reason,
        )
        return machine

    def _start_idle_machines(
        self,
        t: float,
        policy,
        state: EngineState,
        queue: EventQueue,
        machines: set[int],
        recheck: set[int],
    ) -> None:
        for machine in sorted(machines):
            ms = state.machines[machine]
            if ms.running is not None or not ms.pending:
                recheck.discard(machine)
                continue
            started = self._pick_start(t, policy, ms, state)
            if started is None:
                # The policy idles deliberately; keep re-offering this
                # machine at every future event until it starts something.
                recheck.add(machine)
                continue
            recheck.discard(machine)
            job, speed, duration = started
            state.remove_pending(machine, job.id)
            ms.running = RunningInfo(job=job, start=t, finish=t + duration, speed=speed)
            queue.push_completion(t + duration, job.id, ms.index, ms.version)

    @staticmethod
    def _check_all_jobs_settled(instance: Instance, records: dict[int, JobRecord]) -> None:
        # A policy that leaves a machine idle forever while jobs are pending
        # (select_next returning None with no future events) would starve
        # them; the engine requires every job to finish or be rejected so
        # that flow times are well defined.
        missing = [job.id for job in instance.jobs if job.id not in records]
        if missing:
            raise SimulationError(
                f"{len(missing)} job(s) never finished nor were rejected: {missing[:5]}"
            )


class FlowTimeEngine(NonPreemptiveEngine):
    """Discrete-event simulator for non-preemptive flow-time scheduling."""

    def _pick_start(
        self, t: float, policy: FlowTimePolicy, ms: MachineState, state: EngineState
    ) -> tuple[Job, float, float] | None:
        job_id = policy.select_next(t, ms.index, state)
        if job_id is None:
            return None
        if job_id not in ms.pending:
            raise SimulationError(
                f"policy {policy.name!r} started job {job_id} which is not pending "
                f"on machine {ms.index}"
            )
        job = state.job(job_id)
        machine_spec = self.instance.machines[ms.index]
        duration = machine_spec.processing_duration(job.size_on(ms.index))
        if not math.isfinite(duration):
            raise SimulationError(
                f"job {job_id} has infinite processing time on machine {ms.index}"
            )
        return job, machine_spec.speed_factor, duration


def run_policy(
    instance: Instance, policy: FlowTimePolicy, dispatch: str | None = None
) -> SimulationResult:
    """Convenience wrapper: simulate ``policy`` on ``instance``."""
    return FlowTimeEngine(instance, dispatch=dispatch).run(policy)
