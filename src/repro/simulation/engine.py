"""Non-preemptive flow-time engine (unit-speed / fixed-speed machines).

This is the execution model of Section 2 of the paper: jobs arrive online,
are dispatched to a machine immediately, wait in the machine's queue, and run
non-preemptively once started.  The only way to stop a started job is to
*reject* it (Rejection Rule 1), which discards it.

The engine is policy-driven.  A policy implements three hooks:

``on_arrival(t, job, state)``
    Called when a job is released.  Returns an :class:`ArrivalDecision`:
    which machine to dispatch to (or reject the job immediately), plus an
    optional list of other jobs to reject right now (pending or running).

``select_next(t, machine, state)``
    Called whenever a machine is idle and has pending jobs.  Returns the id
    of the pending job to start, or ``None`` to leave the machine idle until
    the next event (the paper's algorithms never idle deliberately).

``reset(instance)``
    Called once per run before any event, so stateful policies (counters)
    can be reused across runs.

The event loop itself (arrival bookkeeping, stale-completion filtering,
rejection of pending or running jobs) is shared with the speed-scaling engine
via :class:`NonPreemptiveEngine` and lives in the reentrant
:class:`~repro.simulation.stepper.EngineStepper`; the two models differ only
in how a start decision translates into a ``(speed, duration)`` pair and in
the extras they attach to the result.  :meth:`NonPreemptiveEngine.run` is the
batch wrapper — offer every job, drain, finish — while streaming callers
(:mod:`repro.service`) drive a stepper directly.
"""

from __future__ import annotations

import math
import os
from abc import ABC, abstractmethod

from repro.exceptions import SimulationError
from repro.simulation.decisions import ArrivalDecision, Rejection
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.schedule import ExecutionInterval, SimulationResult
from repro.simulation.state import EngineState, MachineState
from repro.simulation.stepper import DecisionEvent, EngineStepper

__all__ = [
    "ArrivalDecision",
    "Rejection",
    "DecisionEvent",
    "EngineStepper",
    "FlowTimePolicy",
    "FlowTimeEngine",
    "NonPreemptiveEngine",
    "run_policy",
    "default_dispatch_mode",
]

#: Recognised dispatch modes: ``"indexed"`` answers select-next argmins from
#: lazily-invalidated per-machine heaps (see :mod:`repro.simulation.indexed`);
#: ``"scan"`` keeps the reference linear scans; ``"vectorized"`` adds the
#: struct-of-arrays backend (:mod:`repro.simulation.soa`) — SoA job columns,
#: an array event queue, a fused event loop and optional numba-JIT Fenwick
#: kernels — on top of the indexed heaps.  All three produce byte-identical
#: schedules; the three-way equivalence suite asserts it.
DISPATCH_MODES = ("indexed", "scan", "vectorized")

#: Environment override for the default mode, read at engine construction so
#: campaign worker processes and tests can pin it without code changes.
DISPATCH_ENV_VAR = "REPRO_DISPATCH"


def default_dispatch_mode() -> str:
    """The dispatch mode engines use when none is passed explicitly."""
    mode = os.environ.get(DISPATCH_ENV_VAR, "indexed")
    if mode not in DISPATCH_MODES:
        raise SimulationError(
            f"{DISPATCH_ENV_VAR} must be one of {DISPATCH_MODES}, got {mode!r}"
        )
    return mode


class FlowTimePolicy(ABC):
    """Interface implemented by online flow-time scheduling policies."""

    #: Human-readable name used in result labels and reports.
    name: str = "flow-time-policy"

    #: Static local-order hook: policies whose pending order never changes
    #: while a job waits override this with a method
    #: ``priority_key(job, machine) -> tuple`` (key must end in ``job.id``),
    #: which lets the engine maintain the select-next argmin in per-machine
    #: heaps.  ``None`` (the default) keeps scan semantics — correct for any
    #: policy, mandatory for time-varying keys.
    priority_key = None

    #: Policies whose dispatch surrogate needs order statistics over the
    #: pending set (count/size-sum of jobs preceding a candidate in the
    #: priority order) set this to ``True``; the engine then maintains
    #: per-machine Fenwick trees the policy queries through
    #: ``state.prefix_stats``.  Requires ``priority_key``.
    wants_prefix_stats = False

    def reset(self, instance: Instance) -> None:  # noqa: B027 - optional hook
        """Prepare internal state for a new run (default: nothing)."""

    @abstractmethod
    def on_arrival(self, t: float, job: Job, state: EngineState) -> ArrivalDecision:
        """Dispatch (or reject) the job released at time ``t``."""

    @abstractmethod
    def select_next(self, t: float, machine: int, state: EngineState) -> int | None:
        """Pick the pending job to start on an idle machine (or ``None``)."""


class NonPreemptiveEngine(ABC):
    """Shared event loop of the two non-preemptive discrete-event simulators.

    Subclasses define how an idle machine turns a policy's start decision into
    a running job (:meth:`_pick_start`) and which extras the result carries
    (:meth:`_result_extras`); everything else — event ordering, dispatching,
    rejection of pending or running jobs, record bookkeeping — is identical in
    the fixed-speed and speed-scaling models and lives here.
    """

    def __init__(self, instance: Instance, dispatch: str | None = None) -> None:
        self.instance = instance
        self.dispatch = default_dispatch_mode() if dispatch is None else dispatch
        if self.dispatch not in DISPATCH_MODES:
            raise SimulationError(
                f"dispatch must be one of {DISPATCH_MODES}, got {self.dispatch!r}"
            )

    # -- public API ----------------------------------------------------------------

    def stepper(self, policy, observer=None) -> EngineStepper:
        """Begin a reentrant run of ``policy``: an :class:`EngineStepper`.

        The stepper owns the event loop state; jobs are ingested with
        ``offer`` and events processed with ``step``/``advance_to``/``drain``.
        ``observer`` receives one :class:`DecisionEvent` per scheduling
        decision.
        """
        if self.dispatch == "vectorized":
            # Imported lazily: soa builds on stepper/state, so a module-level
            # import would be circular, and the other modes never need it.
            from repro.simulation.soa import VectorizedStepper

            return VectorizedStepper(self, policy, observer=observer)
        return EngineStepper(self, policy, observer=observer)

    def run(self, policy) -> SimulationResult:
        """Simulate ``policy`` on the engine's instance and return the result.

        Batch wrapper over the stepper: every job of the instance is offered
        up front (the identical arrival-seeding order of the historical
        inlined loop), then the queue drains to completion — byte-identical
        results in both dispatch modes.
        """
        stepper = self.stepper(policy)
        stepper.offer_many(self.instance.jobs)
        stepper.drain()
        return stepper.finish()

    # -- model-specific hooks ------------------------------------------------------

    @abstractmethod
    def _pick_start(
        self, t: float, policy, ms: MachineState, state: EngineState
    ) -> tuple[Job, float, float] | None:
        """Ask ``policy`` what to start on idle machine ``ms``.

        Returns ``(job, speed, duration)`` for the job to start now, or
        ``None`` to leave the machine idle until the next event.  Implementors
        validate the policy's choice (pending membership, finite duration).
        """

    def _result_extras(self, intervals: list[ExecutionInterval], event_count: int) -> dict:
        """Extras attached to the simulation result."""
        return {"events": event_count}


class FlowTimeEngine(NonPreemptiveEngine):
    """Discrete-event simulator for non-preemptive flow-time scheduling."""

    def _pick_start(
        self, t: float, policy: FlowTimePolicy, ms: MachineState, state: EngineState
    ) -> tuple[Job, float, float] | None:
        job_id = policy.select_next(t, ms.index, state)
        if job_id is None:
            return None
        if job_id not in ms.pending:
            raise SimulationError(
                f"policy {policy.name!r} started job {job_id} which is not pending "
                f"on machine {ms.index}"
            )
        job = state.job(job_id)
        machine_spec = self.instance.machines[ms.index]
        duration = machine_spec.processing_duration(job.size_on(ms.index))
        if not math.isfinite(duration):
            raise SimulationError(
                f"job {job_id} has infinite processing time on machine {ms.index}"
            )
        return job, machine_spec.speed_factor, duration


def run_policy(
    instance: Instance, policy: FlowTimePolicy, dispatch: str | None = None
) -> SimulationResult:
    """Convenience wrapper: simulate ``policy`` on ``instance``."""
    return FlowTimeEngine(instance, dispatch=dispatch).run(policy)
