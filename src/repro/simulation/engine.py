"""Non-preemptive flow-time engine (unit-speed / fixed-speed machines).

This is the execution model of Section 2 of the paper: jobs arrive online,
are dispatched to a machine immediately, wait in the machine's queue, and run
non-preemptively once started.  The only way to stop a started job is to
*reject* it (Rejection Rule 1), which discards it.

The engine is policy-driven.  A policy implements three hooks:

``on_arrival(t, job, state)``
    Called when a job is released.  Returns an :class:`ArrivalDecision`:
    which machine to dispatch to (or reject the job immediately), plus an
    optional list of other jobs to reject right now (pending or running).

``select_next(t, machine, state)``
    Called whenever a machine is idle and has pending jobs.  Returns the id
    of the pending job to start, or ``None`` to leave the machine idle until
    the next event (the paper's algorithms never idle deliberately).

``reset(instance)``
    Called once per run before any event, so stateful policies (counters)
    can be reused across runs.

The event loop itself (arrival bookkeeping, stale-completion filtering,
rejection of pending or running jobs) is shared with the speed-scaling engine
via :class:`NonPreemptiveEngine`; the two models differ only in how a start
decision translates into a ``(speed, duration)`` pair and in the extras they
attach to the result.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.exceptions import SimulationError
from repro.simulation.decisions import ArrivalDecision, Rejection
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.schedule import ExecutionInterval, JobRecord, SimulationResult
from repro.simulation.state import EngineState, MachineState, RunningInfo

__all__ = [
    "ArrivalDecision",
    "Rejection",
    "FlowTimePolicy",
    "FlowTimeEngine",
    "NonPreemptiveEngine",
    "run_policy",
]


class FlowTimePolicy(ABC):
    """Interface implemented by online flow-time scheduling policies."""

    #: Human-readable name used in result labels and reports.
    name: str = "flow-time-policy"

    def reset(self, instance: Instance) -> None:  # noqa: B027 - optional hook
        """Prepare internal state for a new run (default: nothing)."""

    @abstractmethod
    def on_arrival(self, t: float, job: Job, state: EngineState) -> ArrivalDecision:
        """Dispatch (or reject) the job released at time ``t``."""

    @abstractmethod
    def select_next(self, t: float, machine: int, state: EngineState) -> int | None:
        """Pick the pending job to start on an idle machine (or ``None``)."""


class NonPreemptiveEngine(ABC):
    """Shared event loop of the two non-preemptive discrete-event simulators.

    Subclasses define how an idle machine turns a policy's start decision into
    a running job (:meth:`_pick_start`) and which extras the result carries
    (:meth:`_result_extras`); everything else — event ordering, dispatching,
    rejection of pending or running jobs, record bookkeeping — is identical in
    the fixed-speed and speed-scaling models and lives here.
    """

    def __init__(self, instance: Instance) -> None:
        self.instance = instance

    # -- public API ----------------------------------------------------------------

    def run(self, policy) -> SimulationResult:
        """Simulate ``policy`` on the engine's instance and return the result."""
        instance = self.instance
        policy.reset(instance)

        state = EngineState(instance)
        queue = EventQueue()
        for job in instance.jobs:
            queue.push_arrival(job.release, job.id)

        records: dict[int, JobRecord] = {}
        intervals: list[ExecutionInterval] = []
        dispatched_machine: dict[int, int] = {}
        event_count = 0

        while queue:
            event = queue.pop()
            state.time = event.time
            event_count += 1

            if event.kind == EventKind.COMPLETION:
                self._handle_completion(event, state, records, intervals)
            else:
                self._handle_arrival(event, policy, state, records, intervals, dispatched_machine)

            # After any event, idle machines with pending work may start a job.
            self._start_idle_machines(event.time, policy, state, queue)

        self._check_all_jobs_settled(instance, records)
        return SimulationResult(
            instance=instance,
            records=records,
            intervals=sorted(intervals, key=lambda iv: (iv.start, iv.machine)),
            algorithm=policy.name,
            extras=self._result_extras(intervals, event_count),
        )

    # -- model-specific hooks ------------------------------------------------------

    @abstractmethod
    def _pick_start(
        self, t: float, policy, ms: MachineState, state: EngineState
    ) -> tuple[Job, float, float] | None:
        """Ask ``policy`` what to start on idle machine ``ms``.

        Returns ``(job, speed, duration)`` for the job to start now, or
        ``None`` to leave the machine idle until the next event.  Implementors
        validate the policy's choice (pending membership, finite duration).
        """

    def _result_extras(self, intervals: list[ExecutionInterval], event_count: int) -> dict:
        """Extras attached to the simulation result."""
        return {"events": event_count}

    # -- event handlers ------------------------------------------------------------

    def _handle_completion(
        self,
        event: Event,
        state: EngineState,
        records: dict[int, JobRecord],
        intervals: list[ExecutionInterval],
    ) -> None:
        ms = state.machines[event.machine]
        if ms.version != event.version or ms.running is None or ms.running.job.id != event.job_id:
            return  # stale completion (the job was rejected while running)
        info = ms.running
        ms.running = None
        ms.version += 1
        intervals.append(
            ExecutionInterval(
                machine=event.machine,
                job_id=event.job_id,
                start=info.start,
                end=event.time,
                speed=info.speed,
                completed=True,
            )
        )
        job = info.job
        records[job.id] = JobRecord(
            job_id=job.id,
            weight=job.weight,
            release=job.release,
            machine=event.machine,
            start=info.start,
            completion=event.time,
            rejected=False,
        )

    def _handle_arrival(
        self,
        event: Event,
        policy,
        state: EngineState,
        records: dict[int, JobRecord],
        intervals: list[ExecutionInterval],
        dispatched_machine: dict[int, int],
    ) -> None:
        job = state.job(event.job_id)
        decision = policy.on_arrival(event.time, job, state)

        if decision.machine is None:
            records[job.id] = JobRecord(
                job_id=job.id,
                weight=job.weight,
                release=job.release,
                machine=None,
                start=None,
                completion=None,
                rejected=True,
                rejection_time=event.time,
                rejection_reason="immediate",
            )
        else:
            machine = decision.machine
            if not (0 <= machine < state.num_machines):
                raise SimulationError(
                    f"policy {policy.name!r} dispatched job {job.id} to invalid machine {machine}"
                )
            if math.isinf(job.size_on(machine)):
                raise SimulationError(
                    f"policy {policy.name!r} dispatched job {job.id} to forbidden machine {machine}"
                )
            state.machines[machine].pending.append(job.id)
            dispatched_machine[job.id] = machine

        for rejection in decision.rejections:
            self._apply_rejection(
                event.time, rejection, state, records, intervals, dispatched_machine
            )

    def _apply_rejection(
        self,
        t: float,
        rejection: Rejection,
        state: EngineState,
        records: dict[int, JobRecord],
        intervals: list[ExecutionInterval],
        dispatched_machine: dict[int, int],
    ) -> None:
        job_id = rejection.job_id
        if job_id in records:
            raise SimulationError(f"job {job_id} rejected after it already finished/was rejected")

        # Case 1: the job is running somewhere -> interrupt it (Rule 1).
        for ms in state.machines:
            if ms.running is not None and ms.running.job.id == job_id:
                info = ms.running
                ms.running = None
                ms.version += 1
                if t > info.start:
                    intervals.append(
                        ExecutionInterval(
                            machine=ms.index,
                            job_id=job_id,
                            start=info.start,
                            end=t,
                            speed=info.speed,
                            completed=False,
                        )
                    )
                records[job_id] = JobRecord(
                    job_id=job_id,
                    weight=info.job.weight,
                    release=info.job.release,
                    machine=ms.index,
                    start=info.start,
                    completion=None,
                    rejected=True,
                    rejection_time=t,
                    rejection_reason=rejection.reason,
                )
                return

        # Case 2: the job is pending on its dispatched machine.
        machine = dispatched_machine.get(job_id)
        if machine is None:
            raise SimulationError(f"cannot reject job {job_id}: it was never dispatched")
        ms = state.machines[machine]
        if job_id not in ms.pending:
            raise SimulationError(
                f"cannot reject job {job_id}: not pending on machine {machine}"
            )
        ms.pending.remove(job_id)
        job = state.job(job_id)
        records[job_id] = JobRecord(
            job_id=job_id,
            weight=job.weight,
            release=job.release,
            machine=machine,
            start=None,
            completion=None,
            rejected=True,
            rejection_time=t,
            rejection_reason=rejection.reason,
        )

    def _start_idle_machines(
        self,
        t: float,
        policy,
        state: EngineState,
        queue: EventQueue,
    ) -> None:
        for ms in state.machines:
            if ms.running is not None or not ms.pending:
                continue
            started = self._pick_start(t, policy, ms, state)
            if started is None:
                continue
            job, speed, duration = started
            ms.pending.remove(job.id)
            ms.running = RunningInfo(job=job, start=t, finish=t + duration, speed=speed)
            queue.push_completion(t + duration, job.id, ms.index, ms.version)

    @staticmethod
    def _check_all_jobs_settled(instance: Instance, records: dict[int, JobRecord]) -> None:
        # A policy that leaves a machine idle forever while jobs are pending
        # (select_next returning None with no future events) would starve
        # them; the engine requires every job to finish or be rejected so
        # that flow times are well defined.
        missing = [job.id for job in instance.jobs if job.id not in records]
        if missing:
            raise SimulationError(
                f"{len(missing)} job(s) never finished nor were rejected: {missing[:5]}"
            )


class FlowTimeEngine(NonPreemptiveEngine):
    """Discrete-event simulator for non-preemptive flow-time scheduling."""

    def _pick_start(
        self, t: float, policy: FlowTimePolicy, ms: MachineState, state: EngineState
    ) -> tuple[Job, float, float] | None:
        job_id = policy.select_next(t, ms.index, state)
        if job_id is None:
            return None
        if job_id not in ms.pending:
            raise SimulationError(
                f"policy {policy.name!r} started job {job_id} which is not pending "
                f"on machine {ms.index}"
            )
        job = state.job(job_id)
        machine_spec = self.instance.machines[ms.index]
        duration = machine_spec.processing_duration(job.size_on(ms.index))
        if not math.isfinite(duration):
            raise SimulationError(
                f"job {job_id} has infinite processing time on machine {ms.index}"
            )
        return job, machine_spec.speed_factor, duration


def run_policy(instance: Instance, policy: FlowTimePolicy) -> SimulationResult:
    """Convenience wrapper: simulate ``policy`` on ``instance``."""
    return FlowTimeEngine(instance).run(policy)
