"""Discrete timeline for the Section 4 energy-minimisation problem.

Section 4 of the paper works with *discretised* times and speeds (losing only
a ``(1 + epsilon)`` factor).  A job's execution is specified by a *strategy*:
the machine, the starting slot and a constant speed; the strategy determines
the completion time.  The online algorithm greedily picks the strategy with
the minimum marginal increase of energy.

:class:`DiscreteTimeline` maintains, for every machine, the speed profile
``u_i(t)`` accumulated by the strategies committed so far, and answers the
marginal-energy queries the greedy algorithm needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.exceptions import InfeasibleInstanceError, InvalidParameterError, SimulationError
from repro.simulation.instance import Instance
from repro.simulation.job import Job


@dataclass(frozen=True, slots=True)
class Strategy:
    """A valid execution of a job: machine, starting slot, constant speed.

    ``slots`` is the number of whole timeline slots the execution occupies;
    the execution covers slots ``start_slot, ..., start_slot + slots - 1``.
    """

    job_id: int
    machine: int
    start_slot: int
    speed: float
    slots: int

    def __post_init__(self) -> None:
        if self.slots <= 0:
            raise SimulationError(f"strategy of job {self.job_id} occupies no slots")
        if self.speed <= 0:
            raise SimulationError(f"strategy of job {self.job_id} has non-positive speed")

    @property
    def end_slot(self) -> int:
        """First slot *after* the execution."""
        return self.start_slot + self.slots


class DiscreteTimeline:
    """Per-machine speed profiles over a uniform slot grid.

    Parameters
    ----------
    num_machines:
        Number of machines.
    num_slots:
        Number of slots in the horizon.
    slot_length:
        Physical length of each slot (all energies scale linearly with it).
    power:
        Either a single callable ``P(s)`` applied to every machine or a
        sequence of per-machine callables (unrelated power functions are
        allowed; Theorem 3 only needs (λ, μ)-smoothness, not convexity).
    """

    def __init__(
        self,
        num_machines: int,
        num_slots: int,
        slot_length: float = 1.0,
        power: Callable[[float], float] | Sequence[Callable[[float], float]] | None = None,
        alpha: float | Sequence[float] = 3.0,
    ) -> None:
        if num_machines <= 0:
            raise InvalidParameterError("num_machines must be positive")
        if num_slots <= 0:
            raise InvalidParameterError("num_slots must be positive")
        if slot_length <= 0:
            raise InvalidParameterError("slot_length must be positive")
        self.num_machines = num_machines
        self.num_slots = num_slots
        self.slot_length = slot_length
        self._speeds = np.zeros((num_machines, num_slots), dtype=float)

        if power is None:
            alphas = [alpha] * num_machines if isinstance(alpha, (int, float)) else list(alpha)
            if len(alphas) != num_machines:
                raise InvalidParameterError(
                    f"need one alpha per machine ({num_machines}), got {len(alphas)}"
                )
            # Clip tiny negative speeds (floating-point undo noise) before the
            # power so fractional alphas never produce NaN.
            self._powers: list[Callable[[float], float]] = [
                (lambda s, a=a: (s if s > 0.0 else 0.0) ** a) for a in alphas
            ]
        elif callable(power):
            self._powers = [power] * num_machines
        else:
            powers = list(power)
            if len(powers) != num_machines:
                raise InvalidParameterError(
                    f"need one power function per machine ({num_machines}), got {len(powers)}"
                )
            self._powers = powers

    # -- slot arithmetic -----------------------------------------------------------

    def slot_of(self, time: float) -> int:
        """Slot index containing physical time ``time`` (clipped to the horizon)."""
        return min(self.num_slots - 1, max(0, int(math.floor(time / self.slot_length))))

    def time_of(self, slot: int) -> float:
        """Physical start time of slot ``slot``."""
        return slot * self.slot_length

    # -- speed profile queries -----------------------------------------------------

    def speed_at(self, machine: int, slot: int) -> float:
        """Current accumulated speed ``u_i(t)`` of ``machine`` in ``slot``."""
        return float(self._speeds[machine, slot])

    def speed_profile(self, machine: int) -> np.ndarray:
        """Copy of the speed profile of one machine."""
        return self._speeds[machine].copy()

    def machine_energy(self, machine: int) -> float:
        """Energy currently consumed by ``machine`` over the whole horizon."""
        p = self._powers[machine]
        return float(sum(p(s) for s in self._speeds[machine]) * self.slot_length)

    def total_energy(self) -> float:
        """Energy currently consumed by all machines."""
        return sum(self.machine_energy(i) for i in range(self.num_machines))

    # -- marginal energy / commitment ----------------------------------------------

    def marginal_energy(self, machine: int, start_slot: int, slots: int, speed: float) -> float:
        """Energy increase of adding ``speed`` to ``slots`` slots of ``machine``.

        This is the quantity the Section 4 greedy minimises:
        ``sum_t [P_i(u_it + v) - P_i(u_it)]`` over the execution slots.
        """
        if start_slot < 0 or start_slot + slots > self.num_slots:
            raise SimulationError(
                f"slots [{start_slot}, {start_slot + slots}) outside horizon [0, {self.num_slots})"
            )
        p = self._powers[machine]
        window = self._speeds[machine, start_slot : start_slot + slots]
        return float(sum(p(u + speed) - p(u) for u in window) * self.slot_length)

    def commit(self, strategy: Strategy) -> float:
        """Apply a strategy to the timeline and return its marginal energy."""
        delta = self.marginal_energy(
            strategy.machine, strategy.start_slot, strategy.slots, strategy.speed
        )
        self._speeds[strategy.machine, strategy.start_slot : strategy.end_slot] += strategy.speed
        return delta

    # -- strategy enumeration ------------------------------------------------------

    def feasible_strategies(
        self,
        job: Job,
        machine: int,
        speed_grid: Iterable[float],
    ) -> list[Strategy]:
        """All valid (start slot, speed) strategies for ``job`` on ``machine``.

        A strategy is valid when the whole execution fits inside the job's
        ``[release, deadline]`` window and inside the horizon.  Durations are
        rounded *up* to whole slots, so committing a strategy never finishes a
        job later than its continuous-time completion.
        """
        if job.deadline is None:
            raise InfeasibleInstanceError(
                f"job {job.id} has no deadline; the energy-minimisation model requires one"
            )
        volume = job.size_on(machine)
        if math.isinf(volume):
            return []
        release_slot = int(math.ceil(job.release / self.slot_length - 1e-12))
        deadline_slot = int(math.floor(job.deadline / self.slot_length + 1e-12))
        strategies: list[Strategy] = []
        for speed in speed_grid:
            if speed <= 0:
                continue
            duration = volume / speed
            slots = max(1, int(math.ceil(duration / self.slot_length - 1e-12)))
            last_start = min(deadline_slot - slots, self.num_slots - slots)
            for start in range(max(0, release_slot), last_start + 1):
                strategies.append(
                    Strategy(
                        job_id=job.id,
                        machine=machine,
                        start_slot=start,
                        speed=speed,
                        slots=slots,
                    )
                )
        return strategies

    @staticmethod
    def for_instance(
        instance: Instance,
        slot_length: float = 1.0,
        horizon: float | None = None,
    ) -> "DiscreteTimeline":
        """Build a timeline sized for an instance with deadlines."""
        if horizon is None:
            horizon = max(
                (job.deadline for job in instance.jobs if job.deadline is not None),
                default=instance.horizon(),
            )
        num_slots = max(1, int(math.ceil(horizon / slot_length)))
        alphas = [m.alpha for m in instance.machines]
        return DiscreteTimeline(
            num_machines=instance.num_machines,
            num_slots=num_slots,
            slot_length=slot_length,
            alpha=alphas,
        )
