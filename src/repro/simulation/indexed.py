"""Indexed pending-set state: lazily-invalidated per-machine priority heaps.

The paper's online schedulers repeatedly answer one question per idle
machine: *which pending job is first in my local order?*  The reference
implementation answers it with a linear scan (``min(pending, ...)``), which
is O(queue length) per start and caps practical instance sizes.  For every
shipped policy the local order is **static** — the comparison key of a job on
a machine (SPT triple, density triple, release order) never changes while the
job waits — so the argmin can instead be maintained in a binary heap per
machine:

* when the engine dispatches a job to a machine it pushes ``(key, job)`` onto
  that machine's heap (O(log q));
* when a job leaves the pending set (started or rejected) **nothing** is done
  — the heap entry goes stale and is skipped the next time it surfaces, the
  standard lazy-deletion idiom (also used by the engines' version-stamped
  completion events);
* :meth:`IndexedPending.argmin` pops stale heads until the head is live and
  returns it without removing it (the job stays pending until the engine
  says otherwise).

Every job is pushed exactly once per dispatch and popped at most once, so the
total index cost over a run is O(n log n) regardless of rejection pattern.

Keys come from the policy's ``priority_key(job, machine)`` hook and must be
totally ordered and **unique** — every shipped key ends in ``job.id``, which
both guarantees uniqueness and realises the deterministic ``(key, job.id)``
tie-break of the scan path, so indexing changes *how* the argmin is found but
never *which* job wins.  Policies whose keys change over time (none shipped)
simply keep ``priority_key = None`` and fall back to scan semantics.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Container, Sequence

from repro.simulation.job import Job

__all__ = ["IndexedPending", "PendingPrefixStats", "build_priority_ranks"]


class IndexedPending:
    """Per-machine min-heaps over pending jobs, invalidated lazily.

    Parameters
    ----------
    num_machines:
        Size of the machine fleet; machine indices are ``0..m-1``.
    key_fn:
        The policy's static priority key ``key_fn(job, machine)``.  Must be
        unique per (job, machine) — shipped keys end in ``job.id``.
    """

    __slots__ = ("key_fn", "_heaps")

    def __init__(self, num_machines: int, key_fn: Callable[[Job, int], tuple]) -> None:
        self.key_fn = key_fn
        self._heaps: list[list[tuple[tuple, Job]]] = [[] for _ in range(num_machines)]

    def push(self, machine: int, job: Job) -> None:
        """Record that ``job`` became pending on ``machine``."""
        heappush(self._heaps[machine], (self.key_fn(job, machine), job))

    def argmin(self, machine: int, live: Container[int]) -> Job | None:
        """The live pending job with the smallest key on ``machine``.

        ``live`` is the authoritative pending set (membership by job id);
        stale heap heads — jobs that started or were rejected since they were
        pushed — are discarded on the way.  Returns ``None`` when nothing
        live remains in the heap (the caller checks the pending set first, so
        this only happens if a job was dispatched without being pushed).
        """
        heap = self._heaps[machine]
        while heap:
            job = heap[0][1]
            if job.id in live:
                return job
            heappop(heap)
        return None

    def heap_size(self, machine: int) -> int:
        """Number of heap entries (live + stale) for ``machine`` — test hook."""
        return len(self._heaps[machine])


def build_priority_ranks(
    jobs: "Sequence[Job]", num_machines: int, key_fn: Callable[[Job, int], tuple]
) -> list[dict[int, int]]:
    """Per-machine rank of every job in the policy's priority order.

    ``ranks[machine][job_id]`` is the position of the job in the sorted order
    of ``key_fn(job, machine)`` over *all* jobs of the instance.  Keys are
    unique (they end in ``job.id``), so ranks are a faithful integer encoding
    of the priority order: ``rank(a) < rank(b)  <=>  key(a) < key(b)``.

    Computed once per run.  The sort itself runs through ``numpy.lexsort``
    on the key columns (priority keys are numeric tuples, and job ids below
    2**53 convert to float64 exactly), which keeps the O(m · n log n) rank
    build cheap next to the simulation even at 100k jobs.
    """
    import numpy as np

    ranks: list[dict[int, int]] = []
    ids = [job.id for job in jobs]
    n = len(jobs)
    for machine in range(num_machines):
        keys = [key_fn(job, machine) for job in jobs]
        if n == 0:
            ranks.append({})
            continue
        columns = np.asarray(keys, dtype=float)
        # lexsort sorts by the LAST key first; reverse so the tuple's first
        # component is the primary key.
        order = np.lexsort(columns.T[::-1])
        rank_of = np.empty(n, dtype=np.int64)
        rank_of[order] = np.arange(n)
        ranks.append({job_id: int(rank) for job_id, rank in zip(ids, rank_of)})
    return ranks


class PendingPrefixStats:
    """Per-machine Fenwick trees over the priority order of the pending set.

    Answers, in O(log n), the two order statistics the paper's dispatch
    surrogates need about a machine's pending set:

    * how many pending jobs precede a given job in the priority order, and
      the total processing time of those jobs (``lambda_ij``'s *waiting*
      term);
    * how many pending jobs succeed it (``lambda_ij``'s delay multiplier).

    One Fenwick pair per machine, indexed by the precomputed priority ranks
    (:func:`build_priority_ranks`).  Counts are exact integers; size sums are
    float accumulations in Fenwick-node order, which is deterministic but may
    differ from a left-to-right scan in the last bits — both dispatch modes
    share this code path, so indexed and scan runs stay byte-identical.

    The engine adds a job when it is dispatched and removes it when it starts
    or is rejected; unlike the heaps this structure supports true O(log n)
    deletion, so no lazy invalidation is needed.
    """

    __slots__ = ("_ranks", "_size", "_count", "_n")

    def __init__(self, ranks: list[dict[int, int]], num_jobs: int) -> None:
        self._ranks = ranks
        self._n = num_jobs
        self._size: list[list[float]] = [[0.0] * (num_jobs + 1) for _ in ranks]
        self._count: list[list[int]] = [[0] * (num_jobs + 1) for _ in ranks]

    def rank(self, machine: int, job_id: int) -> int:
        """Priority rank of ``job_id`` on ``machine`` (0-based, unique)."""
        return self._ranks[machine][job_id]

    @property
    def universe_size(self) -> int:
        """Number of jobs the rank universe was built over."""
        return self._n

    def knows(self, job_id: int) -> bool:
        """Whether ``job_id`` is part of the rank universe.

        Jobs registered after the build (streaming ingestion) have no rank;
        the engine state routes them to the scan fallback until the trees
        are rebuilt over the grown universe.  Rank dicts share one key set
        across machines, so checking machine 0 suffices.
        """
        return job_id in self._ranks[0]

    def add(self, machine: int, job_id: int, size: float) -> None:
        """Record that the job became pending on ``machine``."""
        self._update(machine, self._ranks[machine][job_id], size, 1)

    def remove(self, machine: int, job_id: int, size: float) -> None:
        """Record that the job left the pending set (started or rejected)."""
        self._update(machine, self._ranks[machine][job_id], -size, -1)

    def _update(self, machine: int, rank: int, size: float, delta: int) -> None:
        size_tree = self._size[machine]
        count_tree = self._count[machine]
        position = rank + 1
        n = self._n
        while position <= n:
            size_tree[position] += size
            count_tree[position] += delta
            position += position & -position

    def stats_below(self, machine: int, rank: int) -> tuple[int, float]:
        """``(count, size sum)`` of pending jobs with rank strictly below ``rank``."""
        size_tree = self._size[machine]
        count_tree = self._count[machine]
        position = rank
        count = 0
        total = 0.0
        while position > 0:
            count += count_tree[position]
            total += size_tree[position]
            position -= position & -position
        return count, total

    def prefix_of(self, machine: int, job_id: int) -> tuple[int, float]:
        """:meth:`stats_below` at the job's own rank — the common query."""
        size_tree = self._size[machine]
        count_tree = self._count[machine]
        position = self._ranks[machine][job_id]
        count = 0
        total = 0.0
        while position > 0:
            count += count_tree[position]
            total += size_tree[position]
            position -= position & -position
        return count, total
