"""Job model for unrelated-machine scheduling.

A job carries a release date, a per-machine size vector (processing time in
the unit-speed model of Section 2, processing *volume* in the speed-scaling
models of Sections 3 and 4), a weight (Section 3) and an optional deadline
(Section 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.exceptions import InvalidInstanceError


@dataclass(frozen=True, slots=True)
class Job:
    """A single job of an unrelated-machine scheduling instance.

    Parameters
    ----------
    id:
        Integer identifier, unique within an :class:`~repro.simulation.instance.Instance`.
    release:
        Release date ``r_j >= 0``; the job is unknown to an online algorithm
        before this time.
    sizes:
        Tuple ``(p_1j, ..., p_mj)`` with the processing time / volume of the
        job on each machine.  Entries must be positive; ``math.inf`` encodes a
        forbidden assignment (restricted-assignment instances).
    weight:
        Positive weight ``w_j`` used by the weighted flow-time objective
        (Section 3).  Defaults to 1.0.
    deadline:
        Absolute deadline ``d_j`` used by the energy-minimisation problem
        (Section 4); ``None`` when the instance has no deadlines.
    """

    id: int
    release: float
    sizes: tuple[float, ...]
    weight: float = 1.0
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.id < 0:
            raise InvalidInstanceError(f"job id must be non-negative, got {self.id}")
        if self.release < 0:
            raise InvalidInstanceError(
                f"job {self.id}: release must be non-negative, got {self.release}"
            )
        if not self.sizes:
            raise InvalidInstanceError(f"job {self.id}: empty size vector")
        for i, p in enumerate(self.sizes):
            if not (p > 0):
                raise InvalidInstanceError(
                    f"job {self.id}: size on machine {i} must be positive, got {p}"
                )
        if all(math.isinf(p) for p in self.sizes):
            raise InvalidInstanceError(
                f"job {self.id}: job cannot be processed on any machine"
            )
        if not (self.weight > 0):
            raise InvalidInstanceError(
                f"job {self.id}: weight must be positive, got {self.weight}"
            )
        if self.deadline is not None and self.deadline <= self.release:
            raise InvalidInstanceError(
                f"job {self.id}: deadline {self.deadline} must exceed release {self.release}"
            )

    # -- accessors -----------------------------------------------------------------

    def size_on(self, machine: int) -> float:
        """Processing time / volume of the job on ``machine``."""
        return self.sizes[machine]

    def density_on(self, machine: int) -> float:
        """Density ``delta_ij = w_j / p_ij`` used by the Section 3 ordering."""
        p = self.sizes[machine]
        if math.isinf(p):
            return 0.0
        return self.weight / p

    def eligible_machines(self) -> tuple[int, ...]:
        """Indices of machines on which the job may run (finite size)."""
        return tuple(i for i, p in enumerate(self.sizes) if math.isfinite(p))

    def min_size(self) -> float:
        """Smallest processing time over all machines."""
        return min(p for p in self.sizes if math.isfinite(p))

    def best_machine(self) -> int:
        """Machine index attaining :meth:`min_size` (lowest index on ties)."""
        best, best_p = 0, math.inf
        for i, p in enumerate(self.sizes):
            if p < best_p:
                best, best_p = i, p
        return best

    def window(self) -> float:
        """Length of the feasibility window ``d_j - r_j`` (requires a deadline)."""
        if self.deadline is None:
            raise InvalidInstanceError(f"job {self.id} has no deadline")
        return self.deadline - self.release

    # -- construction helpers ------------------------------------------------------

    @staticmethod
    def trusted(
        job_id: int,
        release: float,
        sizes: tuple[float, ...],
        weight: float = 1.0,
        deadline: float | None = None,
    ) -> "Job":
        """Construct a job **without** per-field validation.

        The dataclass ``__post_init__`` checks cost more than everything else
        in a 100k-job generator loop; bulk producers (the chunked generators
        in :mod:`repro.workloads.generators`) validate whole numpy chunks at
        once and then build rows through this trusted path.  Callers are
        responsible for upholding the invariants ``__post_init__`` enforces.
        """
        job = object.__new__(Job)
        object.__setattr__(job, "id", job_id)
        object.__setattr__(job, "release", release)
        object.__setattr__(job, "sizes", sizes)
        object.__setattr__(job, "weight", weight)
        object.__setattr__(job, "deadline", deadline)
        return job

    @staticmethod
    def uniform(
        job_id: int,
        release: float,
        size: float,
        machines: int,
        weight: float = 1.0,
        deadline: float | None = None,
    ) -> "Job":
        """Job with the same size on every machine (identical-machines case)."""
        return Job(
            id=job_id,
            release=release,
            sizes=tuple([size] * machines),
            weight=weight,
            deadline=deadline,
        )

    @staticmethod
    def from_mapping(
        job_id: int,
        release: float,
        sizes: Mapping[int, float] | Sequence[float],
        machines: int,
        weight: float = 1.0,
        deadline: float | None = None,
    ) -> "Job":
        """Build a job from a ``{machine: size}`` mapping (missing = forbidden)."""
        if isinstance(sizes, Mapping):
            vec = [math.inf] * machines
            for i, p in sizes.items():
                if not (0 <= i < machines):
                    raise InvalidInstanceError(
                        f"job {job_id}: machine index {i} out of range [0, {machines})"
                    )
                vec[i] = float(p)
            return Job(job_id, release, tuple(vec), weight, deadline)
        return Job(job_id, release, tuple(float(p) for p in sizes), weight, deadline)

    # -- serialisation -------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict representation (JSON-serialisable)."""
        return {
            "id": self.id,
            "release": self.release,
            "sizes": list(self.sizes),
            "weight": self.weight,
            "deadline": self.deadline,
        }

    @staticmethod
    def from_dict(data: Mapping) -> "Job":
        """Inverse of :meth:`to_dict`."""
        return Job(
            id=int(data["id"]),
            release=float(data["release"]),
            sizes=tuple(float(p) for p in data["sizes"]),
            weight=float(data.get("weight", 1.0)),
            deadline=None if data.get("deadline") is None else float(data["deadline"]),
        )
