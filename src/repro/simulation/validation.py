"""Post-hoc validation of simulated schedules.

Validators re-check, from the raw execution intervals and job records, that a
result obeys the execution model the paper assumes.  They are used throughout
the test suite and can be enabled in experiments for defence in depth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import ScheduleValidationError
from repro.simulation.schedule import SimulationResult
from repro.utils.numeric import EPS


@dataclass
class ValidationReport:
    """Outcome of a validation pass: collected violations (empty = valid)."""

    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """``True`` when no violation was found."""
        return not self.violations

    def add(self, message: str) -> None:
        """Record a violation."""
        self.violations.append(message)

    def raise_if_invalid(self) -> None:
        """Raise :class:`ScheduleValidationError` when violations exist."""
        if self.violations:
            raise ScheduleValidationError(
                f"{len(self.violations)} violation(s): " + "; ".join(self.violations[:10])
            )


def validate_result(
    result: SimulationResult,
    tol: float = 1e-6,
    require_deadlines: bool = False,
    raise_on_error: bool = True,
) -> ValidationReport:
    """Check a simulation result against the non-preemptive execution model.

    Verified properties:

    1. every job either completed or was rejected, never both;
    2. no machine runs two jobs at overlapping times;
    3. no job starts before its release date;
    4. every *completed* job has exactly one execution interval whose length
       matches its processing requirement on the machine it ran on;
    5. rejected jobs have at most one (truncated) interval;
    6. with ``require_deadlines``, completed jobs finish by their deadline.

    Returns the :class:`ValidationReport`; raises on violations when
    ``raise_on_error`` is true.
    """
    report = ValidationReport()
    instance = result.instance
    jobs = {job.id: job for job in instance.jobs}

    # 1. Record consistency.
    for job in instance.jobs:
        record = result.records.get(job.id)
        if record is None:
            report.add(f"job {job.id} has no record")
            continue
        if record.rejected and record.completion is not None:
            report.add(f"job {job.id} both rejected and completed")
        if not record.rejected and record.completion is None:
            report.add(f"job {job.id} neither rejected nor completed")
        if record.rejected and record.rejection_time is None:
            report.add(f"job {job.id} rejected without a rejection time")
        if record.rejected and record.rejection_time is not None:
            if record.rejection_time + tol < job.release:
                report.add(f"job {job.id} rejected before its release")

    # 2. Machine capacity: intervals on one machine must not overlap.
    for machine in range(instance.num_machines):
        ivs = result.intervals_on(machine)
        for prev, nxt in zip(ivs, ivs[1:]):
            if nxt.start + tol < prev.end:
                report.add(
                    f"machine {machine}: interval of job {nxt.job_id} starting at {nxt.start} "
                    f"overlaps job {prev.job_id} ending at {prev.end}"
                )

    # 3-5. Per-job interval accounting.
    intervals_by_job: dict[int, list] = {}
    for iv in result.intervals:
        intervals_by_job.setdefault(iv.job_id, []).append(iv)

    for job_id, ivs in intervals_by_job.items():
        job = jobs.get(job_id)
        if job is None:
            report.add(f"interval for unknown job {job_id}")
            continue
        record = result.records.get(job_id)
        for iv in ivs:
            if iv.start + tol < job.release:
                report.add(f"job {job_id} started at {iv.start} before release {job.release}")
        if record is None:
            continue
        if record.finished:
            if len(ivs) != 1:
                report.add(f"completed job {job_id} has {len(ivs)} intervals (non-preemptive!)")
            else:
                iv = ivs[0]
                required = job.size_on(iv.machine)
                executed = iv.work
                if not math.isclose(executed, required, rel_tol=1e-6, abs_tol=tol):
                    report.add(
                        f"completed job {job_id} executed {executed} units of work, "
                        f"needs {required} on machine {iv.machine}"
                    )
                if record.completion is not None and abs(iv.end - record.completion) > tol:
                    report.add(
                        f"completed job {job_id}: interval ends at {iv.end} but record says "
                        f"{record.completion}"
                    )
        elif record.rejected:
            if len(ivs) > 1:
                report.add(f"rejected job {job_id} has {len(ivs)} intervals")
            for iv in ivs:
                if iv.completed:
                    report.add(f"rejected job {job_id} has a completed interval")

    # 6. Deadlines (energy-minimisation model).
    if require_deadlines:
        for record in result.completed_records():
            job = jobs[record.job_id]
            if job.deadline is None:
                report.add(f"job {record.job_id} has no deadline but deadlines are required")
            elif record.completion is not None and record.completion > job.deadline + tol:
                report.add(
                    f"job {record.job_id} completes at {record.completion} after deadline "
                    f"{job.deadline}"
                )

    if raise_on_error:
        report.raise_if_invalid()
    return report


def assert_rejection_budget(
    result: SimulationResult,
    max_fraction: float,
    weighted: bool = False,
    tol: float = EPS,
) -> None:
    """Assert the rejection budget of the paper's theorems.

    ``max_fraction`` is ``2 * epsilon`` for Theorem 1 (count fraction) and
    ``epsilon`` for Theorem 2 (weight fraction, ``weighted=True``).
    """
    if weighted:
        total = sum(r.weight for r in result.records.values())
        rejected = sum(r.weight for r in result.records.values() if r.rejected)
    else:
        total = float(len(result.records))
        rejected = float(sum(1 for r in result.records.values() if r.rejected))
    if total == 0:
        return
    fraction = rejected / total
    if fraction > max_fraction + tol:
        raise ScheduleValidationError(
            f"rejection budget exceeded: rejected fraction {fraction:.4f} > {max_fraction:.4f}"
        )
