"""Reentrant stepping core shared by both non-preemptive engines.

Historically the whole event loop lived inside ``NonPreemptiveEngine.run()``:
the engine seeded the queue with every arrival of a complete
:class:`~repro.simulation.instance.Instance` and looped until the queue
drained.  That shape is batch-only — the caller must know all jobs up front.
The paper's setting is *online*, so the loop now lives here as an explicit,
resumable session object:

* :meth:`EngineStepper.offer` ingests one job (registers it with the state
  and enqueues its arrival event) — jobs may keep arriving while the
  simulation is under way, as long as time never runs backwards;
* :meth:`EngineStepper.step` processes exactly one event;
* :meth:`EngineStepper.advance_to` processes every event up to a time bound;
* :meth:`EngineStepper.drain` processes everything currently enqueued;
* :meth:`EngineStepper.finish` runs the end-of-simulation invariants and
  builds the :class:`~repro.simulation.schedule.SimulationResult`.

``NonPreemptiveEngine.run()`` is a thin wrapper — offer every job of the
instance in order, drain, finish — that performs the *identical* sequence of
queue and state operations the old inlined loop performed, so batch results
are byte-for-byte unchanged in both dispatch modes (the equivalence suite
asserts it).

The stepper also carries the engine's **decision-event stream**: an optional
``observer`` callable receives one :class:`DecisionEvent` per scheduling
decision (dispatch / start / complete / reject, with timestamps), which is
what the streaming :class:`~repro.service.session.SchedulerSession` exposes
to callers.  With no observer installed the stream costs one attribute check
per decision.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, NamedTuple

from repro.exceptions import SimulationError
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.indexed import IndexedPending, PendingPrefixStats, build_priority_ranks
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.schedule import ExecutionInterval, JobRecord, SimulationResult
from repro.simulation.state import EngineState, RunningInfo

__all__ = ["DecisionEvent", "DECISION_KINDS", "EngineStepper"]

#: Kinds of decision events a stepper emits, in no particular order.
DECISION_KINDS = ("dispatch", "start", "complete", "reject")


class DecisionEvent(NamedTuple):
    """One observable scheduling decision.

    A ``NamedTuple`` rather than a dataclass: sessions record one of these
    per decision on the engine's hot path, and tuple construction is several
    times cheaper — the difference between the streaming path meeting its
    <10% overhead budget and missing it.

    Attributes
    ----------
    kind:
        ``"dispatch"`` (an arriving job was assigned to a machine's queue),
        ``"start"`` (a pending job began executing), ``"complete"`` (a
        running job finished) or ``"reject"`` (a job was discarded — at
        arrival, while pending, or while running).
    time:
        Simulation timestamp of the decision.
    job_id / machine:
        The job concerned and the machine involved (``None`` for immediate
        rejections, which never reach a queue).
    speed:
        Execution speed for ``start``/``complete`` events (``None`` otherwise).
    reason:
        Rejection reason (``"immediate"``, ``"rule1"``, ``"rule2"``, ...) for
        ``reject`` events; ``None`` otherwise.
    """

    kind: str
    time: float
    job_id: int
    machine: int | None = None
    speed: float | None = None
    reason: str | None = None

    def as_dict(self) -> dict:
        """Plain-dict representation (JSON-serialisable, canonical field order)."""
        return {
            "kind": self.kind,
            "time": self.time,
            "job_id": self.job_id,
            "machine": self.machine,
            "speed": self.speed,
            "reason": self.reason,
        }

    @staticmethod
    def from_dict(data: Mapping) -> "DecisionEvent":
        """Inverse of :meth:`as_dict`."""
        return DecisionEvent(
            kind=str(data["kind"]),
            time=float(data["time"]),
            job_id=int(data["job_id"]),
            machine=None if data.get("machine") is None else int(data["machine"]),
            speed=None if data.get("speed") is None else float(data["speed"]),
            reason=None if data.get("reason") is None else str(data["reason"]),
        )


class EngineStepper:
    """Resumable event-loop state of one simulation run.

    Construction prepares everything ``run()`` used to prepare — policy
    reset, engine state, the indexed dispatch structures — but processes no
    events.  Jobs enter through :meth:`offer`; events are processed by
    :meth:`step` / :meth:`advance_to` / :meth:`drain`; :meth:`finish` seals
    the run.

    The stepper is single-use: after :meth:`finish` it refuses further
    offers and steps (build a new stepper for a new run).
    """

    def __init__(self, engine, policy, observer: Callable[[DecisionEvent], None] | None = None):
        self.engine = engine
        self.policy = policy
        self.set_observer(observer)
        instance = engine.instance
        policy.reset(instance)

        state = self._make_state(instance)
        key_fn = getattr(policy, "priority_key", None)
        if not callable(key_fn):
            key_fn = None
        index: IndexedPending | None = None
        stats_factory = None
        if key_fn is not None:
            # Both the indexed and the vectorized modes answer select-next
            # argmins from the lazily-invalidated heaps; only scan keeps
            # the reference linear scans.
            if engine.dispatch in ("indexed", "vectorized"):
                index = IndexedPending(instance.num_machines, key_fn)
            if getattr(policy, "wants_prefix_stats", False):
                num_machines = instance.num_machines
                make_stats = self._make_stats

                build_ranks = self._build_ranks

                def stats_factory(state=state, key_fn=key_fn, num_machines=num_machines):
                    # Ranks cover every job registered with the state at
                    # materialisation time: the full instance on the batch
                    # path (all jobs are offered before any event runs),
                    # everything ingested so far on a streaming session.
                    jobs = list(state.jobs_by_id.values())
                    ranks = build_ranks(jobs, num_machines, key_fn)
                    return make_stats(ranks, len(jobs))

        state.install_priority(key_fn, index, stats_factory)

        self.state = state
        self.queue = self._make_queue()
        self.records: dict[int, JobRecord] = {}
        self.intervals: list[ExecutionInterval] = []
        self.event_count = 0
        self._dispatched_machine: dict[int, int] = {}
        self._offered: set[int] = set()
        #: Time the simulation is known to have moved past: the latest
        #: processed event or the highest ``advance_to`` bound.  Offers
        #: below it would rewrite observed history and are rejected.
        self._floor = 0.0
        # Machines whose policy declined to start despite pending work; they
        # must be re-offered at every event (pre-index semantics) because
        # their answer may depend on global state the event did not touch.
        self._recheck: set[int] = set()
        self._finished = False

    def set_observer(self, observer: Callable[[DecisionEvent], None] | None) -> None:
        """Install ``observer`` as the external decision-event sink.

        Policies that watch their own run (the adaptive meta-scheduler's
        telemetry monitor) expose ``observe_decision``; it is chained in
        front of the external observer so the decision stream feeds the
        policy identically on the batch and streaming paths.  Sessions that
        replace themselves in place (``hot_switch``) re-call this to rebind
        the external sink.
        """
        policy_observer = getattr(self.policy, "observe_decision", None)
        if callable(policy_observer):
            if observer is None:
                observer = policy_observer
            else:
                external = observer

                def observer(event, _policy=policy_observer, _external=external):
                    _policy(event)
                    _external(event)

        self.observer = observer

    # -- construction hooks (overridden by the vectorized backend) -----------------

    def _make_state(self, instance: Instance) -> EngineState:
        """Build the engine state; ``dispatch="vectorized"`` swaps in the SoA state."""
        return EngineState(instance)

    def _make_queue(self) -> EventQueue:
        """Build the event queue; the vectorized backend uses an array-backed one."""
        return EventQueue()

    def _make_stats(self, ranks: list[dict[int, int]], num_jobs: int) -> PendingPrefixStats:
        """Build the Fenwick prefix stats over freshly computed priority ranks."""
        return PendingPrefixStats(ranks, num_jobs)

    def _build_ranks(self, jobs, num_machines: int, key_fn) -> list[dict[int, int]]:
        """Compute per-machine priority ranks; the SoA backend builds columnar."""
        return build_priority_ranks(jobs, num_machines, key_fn)

    # -- ingestion -----------------------------------------------------------------

    def offer(self, job: Job) -> None:
        """Ingest ``job``: register it with the state and enqueue its arrival.

        Streaming callers may keep offering jobs between steps; an offer in
        the simulation's past — release earlier than an already-processed
        event or below an :meth:`advance_to` bound — would rewrite observed
        history and is rejected.
        """
        if self._finished:
            raise SimulationError("cannot offer jobs to a finished stepper")
        if job.id in self._offered:
            raise SimulationError(f"job id {job.id} was already offered")
        if job.release < self._floor:
            raise SimulationError(
                f"job {job.id} released at {job.release} but the simulation "
                f"already reached {self._floor}"
            )
        self._offered.add(job.id)
        self.state.register_job(job)
        self.queue.push_arrival(job.release, job.id)

    def offer_many(self, jobs) -> int:
        """Bulk :meth:`offer`: the same contract, atomically.

        The whole batch is validated before anything mutates, so a rejected
        batch (duplicate id, release in the past) leaves the stepper exactly
        as it was — callers' bookkeeping cannot drift out of sync with a
        half-ingested batch.  Ingestion is on the streaming hot path (one
        call per submitted job otherwise); the cached-locals loops are what
        keep session ingestion within the batch path's throughput budget.
        """
        if self._finished:
            raise SimulationError("cannot offer jobs to a finished stepper")
        rows = jobs if isinstance(jobs, (list, tuple)) else list(jobs)
        offered = self._offered
        floor = self._floor
        batch_ids: set[int] = set()
        for job in rows:
            job_id = job.id
            if job_id in offered or job_id in batch_ids:
                raise SimulationError(f"job id {job_id} was already offered")
            if job.release < floor:
                raise SimulationError(
                    f"job {job_id} released at {job.release} but the simulation "
                    f"already reached {floor}"
                )
            batch_ids.add(job_id)
        register = self.state.register_job
        push = self.queue.push_arrival
        for job in rows:
            register(job)
            push(job.release, job.id)
        offered.update(batch_ids)
        return len(rows)

    # -- stepping ------------------------------------------------------------------

    def peek_time(self) -> float | None:
        """Timestamp of the next enqueued event (``None`` when idle)."""
        return self.queue.peek_time() if self.queue else None

    def step(self) -> Event | None:
        """Process exactly one event; returns it (``None`` when idle)."""
        if self._finished:
            raise SimulationError("cannot step a finished stepper")
        if not self.queue:
            return None
        event = self.queue.pop()
        state = self.state
        state.time = event.time
        if event.time > self._floor:
            self._floor = event.time
        self.event_count += 1

        # Only machines the event touched can newly become startable: the
        # completion's machine, the dispatch target, and any machine a
        # rejection freed.  Shipped policies start whenever they have pending
        # work, so untouched machines are either running or have an empty
        # queue; ``_recheck`` covers deliberately idling policies.
        if event.kind == EventKind.COMPLETION:
            self._handle_completion(event)
            touched = {event.machine}
        else:
            touched = self._handle_arrival(event)

        if self._recheck:
            touched |= self._recheck
        self._start_idle_machines(event.time, touched)
        return event

    def advance_to(self, t: float) -> int:
        """Process every enqueued event with timestamp at most ``t``.

        Returns the number of events processed.  Advancing is the caller's
        assertion that no job released strictly before ``t`` will be offered
        afterwards (the stepper enforces it on later offers; release exactly
        at the bound stays allowed — arrivals at equal timestamps process in
        offer order either way).
        """
        processed = 0
        queue = self.queue
        while queue and queue.peek_time() <= t:
            self.step()
            processed += 1
        if t > self._floor:
            self._floor = t
        return processed

    def drain(self) -> int:
        """Process every enqueued event; returns the number processed."""
        processed = 0
        while self.queue:
            self.step()
            processed += 1
        return processed

    # -- sealing -------------------------------------------------------------------

    def finish(self, instance: Instance | None = None) -> SimulationResult:
        """Seal the run and build the result.

        ``instance`` defaults to the engine's instance; streaming sessions
        pass the instance they assembled from the offered jobs.  Requires a
        drained queue, and — as in the batch loop — every offered job must
        have completed or been rejected.
        """
        if self.queue:
            raise SimulationError(
                f"finish() with {len(self.queue)} unprocessed event(s); drain() first"
            )
        missing = [job_id for job_id in self.state.jobs_by_id if job_id not in self.records]
        if missing:
            # A policy that leaves a machine idle forever while jobs are
            # pending (select_next returning None with no future events)
            # would starve them; every job must finish or be rejected so
            # that flow times are well defined.
            raise SimulationError(
                f"{len(missing)} job(s) never finished nor were rejected: {missing[:5]}"
            )
        self._finished = True
        result_instance = self.engine.instance if instance is None else instance
        if instance is None and self._offered and not result_instance.jobs:
            # Streaming run over a fleet-only engine instance: assemble the
            # result instance from the offered jobs.  offer() does not
            # require release-ordered ingestion (only releases at or above
            # the floor), so sort the way Instance.build does.
            result_instance = Instance(
                result_instance.machines,
                tuple(sorted(self.state.jobs_by_id.values(), key=lambda j: (j.release, j.id))),
                name=result_instance.name,
            )
        return SimulationResult(
            instance=result_instance,
            records=self.records,
            intervals=sorted(self.intervals, key=lambda iv: (iv.start, iv.machine)),
            algorithm=self.policy.name,
            extras=self.engine._result_extras(self.intervals, self.event_count),
        )

    # -- event handlers (the former run() loop body) -------------------------------

    def _handle_completion(self, event: Event) -> None:
        ms = self.state.machines[event.machine]
        if ms.version != event.version or ms.running is None or ms.running.job.id != event.job_id:
            return  # stale completion (the job was rejected while running)
        info = ms.running
        ms.running = None
        ms.version += 1
        self.intervals.append(
            ExecutionInterval(
                machine=event.machine,
                job_id=event.job_id,
                start=info.start,
                end=event.time,
                speed=info.speed,
                completed=True,
            )
        )
        job = info.job
        self.records[job.id] = JobRecord(
            job_id=job.id,
            weight=job.weight,
            release=job.release,
            machine=event.machine,
            start=info.start,
            completion=event.time,
            rejected=False,
        )
        if self.observer is not None:
            self.observer(DecisionEvent("complete", event.time, job.id, event.machine, info.speed))

    def _handle_arrival(self, event: Event) -> set[int]:
        state = self.state
        policy = self.policy
        job = state.job(event.job_id)
        decision = policy.on_arrival(event.time, job, state)
        touched: set[int] = set()

        if decision.machine is None:
            self.records[job.id] = JobRecord(
                job_id=job.id,
                weight=job.weight,
                release=job.release,
                machine=None,
                start=None,
                completion=None,
                rejected=True,
                rejection_time=event.time,
                rejection_reason="immediate",
            )
            if self.observer is not None:
                self.observer(DecisionEvent("reject", event.time, job.id, None, None, "immediate"))
        else:
            machine = decision.machine
            if not (0 <= machine < state.num_machines):
                raise SimulationError(
                    f"policy {policy.name!r} dispatched job {job.id} to invalid machine {machine}"
                )
            if math.isinf(job.size_on(machine)):
                raise SimulationError(
                    f"policy {policy.name!r} dispatched job {job.id} to forbidden machine {machine}"
                )
            state.add_pending(machine, job)
            self._dispatched_machine[job.id] = machine
            touched.add(machine)
            if self.observer is not None:
                self.observer(DecisionEvent("dispatch", event.time, job.id, machine))

        for rejection in decision.rejections:
            touched.add(self._apply_rejection(event.time, rejection))
        return touched

    def _apply_rejection(self, t: float, rejection) -> int:
        state = self.state
        job_id = rejection.job_id
        if job_id in self.records:
            raise SimulationError(f"job {job_id} rejected after it already finished/was rejected")

        # Case 1: the job is running somewhere -> interrupt it (Rule 1).
        for ms in state.machines:
            if ms.running is not None and ms.running.job.id == job_id:
                info = ms.running
                ms.running = None
                ms.version += 1
                if t > info.start:
                    self.intervals.append(
                        ExecutionInterval(
                            machine=ms.index,
                            job_id=job_id,
                            start=info.start,
                            end=t,
                            speed=info.speed,
                            completed=False,
                        )
                    )
                self.records[job_id] = JobRecord(
                    job_id=job_id,
                    weight=info.job.weight,
                    release=info.job.release,
                    machine=ms.index,
                    start=info.start,
                    completion=None,
                    rejected=True,
                    rejection_time=t,
                    rejection_reason=rejection.reason,
                )
                if self.observer is not None:
                    self.observer(
                        DecisionEvent("reject", t, job_id, ms.index, None, rejection.reason)
                    )
                return ms.index

        # Case 2: the job is pending on its dispatched machine.
        machine = self._dispatched_machine.get(job_id)
        if machine is None:
            raise SimulationError(f"cannot reject job {job_id}: it was never dispatched")
        ms = state.machines[machine]
        if job_id not in ms.pending:
            raise SimulationError(
                f"cannot reject job {job_id}: not pending on machine {machine}"
            )
        state.remove_pending(machine, job_id)
        job = state.job(job_id)
        self.records[job_id] = JobRecord(
            job_id=job_id,
            weight=job.weight,
            release=job.release,
            machine=machine,
            start=None,
            completion=None,
            rejected=True,
            rejection_time=t,
            rejection_reason=rejection.reason,
        )
        if self.observer is not None:
            self.observer(DecisionEvent("reject", t, job_id, machine, None, rejection.reason))
        return machine

    def _start_idle_machines(self, t: float, machines: set[int]) -> None:
        state = self.state
        for machine in sorted(machines):
            ms = state.machines[machine]
            if ms.running is not None or not ms.pending:
                self._recheck.discard(machine)
                continue
            started = self.engine._pick_start(t, self.policy, ms, state)
            if started is None:
                # The policy idles deliberately; keep re-offering this
                # machine at every future event until it starts something.
                self._recheck.add(machine)
                continue
            self._recheck.discard(machine)
            job, speed, duration = started
            state.remove_pending(machine, job.id)
            ms.running = RunningInfo(job=job, start=t, finish=t + duration, speed=speed)
            self.queue.push_completion(t + duration, job.id, ms.index, ms.version)
            if self.observer is not None:
                self.observer(DecisionEvent("start", t, job.id, machine, speed))
