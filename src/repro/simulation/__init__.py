"""Event-driven scheduling simulator substrate.

This subpackage implements the execution model the paper analyses:

* continuous-time, online arrival of jobs;
* unrelated machines (each job has a machine-dependent size / volume);
* non-preemptive execution — once started a job runs to completion unless the
  algorithm *rejects* it (which interrupts and discards it);
* optionally, speed scaling with power ``P(s) = s**alpha`` (Sections 3 and 4).

The engines are policy-driven: scheduling algorithms implement small policy
interfaces (:class:`~repro.simulation.engine.FlowTimePolicy`,
:class:`~repro.simulation.speed_engine.SpeedScalingPolicy`) and the engines
take care of event ordering, bookkeeping and metric collection.
"""

from repro.simulation.job import Job
from repro.simulation.machine import Machine
from repro.simulation.instance import Instance
from repro.simulation.schedule import (
    ExecutionInterval,
    JobRecord,
    SimulationResult,
)
from repro.simulation.decisions import ArrivalDecision, Rejection, StartDecision
from repro.simulation.engine import (
    FlowTimeEngine,
    FlowTimePolicy,
    NonPreemptiveEngine,
    default_dispatch_mode,
    run_policy,
)
from repro.simulation.indexed import IndexedPending, PendingPrefixStats
from repro.simulation.stepper import DecisionEvent, EngineStepper
from repro.simulation.speed_engine import (
    SpeedScalingEngine,
    SpeedScalingPolicy,
    run_speed_policy,
)

from repro.simulation.timeline import DiscreteTimeline, Strategy
from repro.simulation.metrics import (
    total_flow_time,
    total_weighted_flow_time,
    total_energy,
    rejected_fraction,
    rejected_weight_fraction,
    summarize,
)
from repro.simulation.validation import validate_result


# Deprecated ``Speed*`` aliases (``SpeedArrivalDecision``, ``SpeedRejection``)
# resolve lazily so each use warns; the previous eager re-export bypassed the
# deprecation machinery entirely.
from repro.simulation.decisions import make_deprecated_getattr as _make_deprecated_getattr

__getattr__ = _make_deprecated_getattr(__name__)


__all__ = [
    "Job",
    "Machine",
    "Instance",
    "ExecutionInterval",
    "JobRecord",
    "SimulationResult",
    "DecisionEvent",
    "EngineStepper",
    "FlowTimeEngine",
    "FlowTimePolicy",
    "NonPreemptiveEngine",
    "IndexedPending",
    "PendingPrefixStats",
    "default_dispatch_mode",
    "ArrivalDecision",
    "Rejection",
    "SpeedScalingEngine",
    "SpeedScalingPolicy",
    # Deprecated alias, kept listed for its one-release window; star-imports
    # resolve it through __getattr__ and therefore see the warning.
    "SpeedArrivalDecision",
    "StartDecision",
    "run_policy",
    "run_speed_policy",
    "DiscreteTimeline",
    "Strategy",
    "total_flow_time",
    "total_weighted_flow_time",
    "total_energy",
    "rejected_fraction",
    "rejected_weight_fraction",
    "summarize",
    "validate_result",
]
