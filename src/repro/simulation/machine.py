"""Machine model.

Machines are *unrelated*: the relation between machines and jobs is carried
entirely by the per-job size vectors (:class:`~repro.simulation.job.Job.sizes`).
A :class:`Machine` therefore only holds the attributes the execution model
needs beyond that matrix:

* ``speed_factor`` — a resource-augmentation speed multiplier.  The paper's
  algorithms run with factor 1; the speed-augmentation baseline of [5] runs
  with factor ``1 + epsilon_s``.
* ``alpha`` — the exponent of the power function ``P(s) = s**alpha`` in the
  speed-scaling models (Sections 3 and 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import InvalidInstanceError


@dataclass(frozen=True, slots=True)
class Machine:
    """Specification of a single machine.

    Parameters
    ----------
    id:
        Index of the machine inside its instance.
    speed_factor:
        Multiplicative speed augmentation; processing a job of size ``p`` at
        unit nominal speed takes ``p / speed_factor`` time.  Must be positive.
    alpha:
        Power-function exponent for the speed-scaling model; must be > 1 when
        energy is part of the objective.  Kept at the conventional default 3
        (cube-root rule) otherwise unused.
    """

    id: int
    speed_factor: float = 1.0
    alpha: float = 3.0

    def __post_init__(self) -> None:
        if self.id < 0:
            raise InvalidInstanceError(f"machine id must be non-negative, got {self.id}")
        if not (self.speed_factor > 0):
            raise InvalidInstanceError(
                f"machine {self.id}: speed_factor must be positive, got {self.speed_factor}"
            )
        if not (self.alpha >= 1):
            raise InvalidInstanceError(
                f"machine {self.id}: alpha must be >= 1, got {self.alpha}"
            )

    def power(self, speed: float) -> float:
        """Instantaneous power ``P(s) = s**alpha`` at the given speed."""
        if speed < 0:
            raise InvalidInstanceError(f"speed must be non-negative, got {speed}")
        return speed**self.alpha

    def processing_duration(self, size: float, speed: float | None = None) -> float:
        """Wall-clock time to run a job of the given size.

        ``speed`` overrides the machine's nominal (augmented) speed; when it
        is ``None`` the duration is ``size / speed_factor`` which is the
        unit-speed model used in Section 2.
        """
        s = self.speed_factor if speed is None else speed
        if not (s > 0):
            raise InvalidInstanceError(f"speed must be positive, got {s}")
        return size / s

    def to_dict(self) -> dict:
        """Plain-dict representation (JSON-serialisable)."""
        return {"id": self.id, "speed_factor": self.speed_factor, "alpha": self.alpha}

    @staticmethod
    def from_dict(data: Mapping) -> "Machine":
        """Inverse of :meth:`to_dict`."""
        return Machine(
            id=int(data["id"]),
            speed_factor=float(data.get("speed_factor", 1.0)),
            alpha=float(data.get("alpha", 3.0)),
        )

    @staticmethod
    def fleet(count: int, speed_factor: float = 1.0, alpha: float = 3.0) -> tuple["Machine", ...]:
        """Create ``count`` machines sharing the same speed factor and alpha."""
        if count <= 0:
            raise InvalidInstanceError(f"machine count must be positive, got {count}")
        return tuple(Machine(i, speed_factor, alpha) for i in range(count))
