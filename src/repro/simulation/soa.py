"""Struct-of-arrays dispatch backend (``dispatch="vectorized"``).

The third dispatch mode next to ``indexed`` and ``scan``.  The engine loop,
the decisions and every float operation are the same — what changes is the
data layout and the per-event Python frame count:

* **Job attributes as columns** (:class:`SoAColumns`): release / weight /
  size-per-machine / deadline lists indexed by row, filled directly from
  :class:`~repro.workloads.generators.JobChunk` numpy columns on the chunked
  ingestion path (one ``tolist`` per column instead of one ``Job`` attribute
  walk per row).  The hot dispatch scans read these columns instead of
  chasing ``Job`` objects through a dict.
* **A fused λ-sweep** (:meth:`VectorizedState.spt_lambda_argmin`): one call
  per arrival that inlines the per-machine SPT order statistics (dispatch
  -order scan below :data:`~repro.simulation.state.PREFIX_SCAN_CUTOFF`,
  Fenwick prefix walk above it) and the ``lambda_ij`` argmin — replacing the
  ``on_arrival -> lambda_ij -> pending_spt_stats -> pending_prefix ->
  prefix_of`` chain of ~5 Python frames per machine per arrival.
* **An array event queue** (:class:`_ArrayEventQueue`): arrivals live in two
  parallel sorted lists consumed by a cursor (releases are non-decreasing on
  every shipped ingestion path, so pushes are appends); completions live in
  a small heap of plain tuples.  No :class:`~repro.simulation.events.Event`
  allocation on the fused loop.
* **A fused event loop** (:meth:`VectorizedStepper._run_core`): ``drain`` /
  ``advance_to`` process events without constructing ``Event`` objects or
  dispatching through ``step()``, with the same handler bodies inlined.
* **Optional numba JIT** (:mod:`repro.simulation.kernels`): the Fenwick
  trees switch to a numpy layout walked by JIT-able kernels when numba is
  importable (or when forced via ``REPRO_VECTORIZED_KERNELS``); the default
  pure-Python list layout is the fallback and produces identical bits.

Byte-identity with the other two modes is by construction — identical float
expressions evaluated in identical order, identical event ordering
``(time, kind, seq)``, identical tie-breaks — and is enforced by the
three-way differential harness in ``tests/test_indexed_dispatch.py``.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Iterable, Iterator, Sequence

from repro.exceptions import SimulationError
from repro.simulation.events import Event, EventKind
from repro.simulation.indexed import PendingPrefixStats
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.kernels import active_layout, fenwick_prefix, fenwick_update
from repro.simulation.schedule import ExecutionInterval, JobRecord
from repro.simulation.state import PREFIX_SCAN_CUTOFF, EngineState, RunningInfo
from repro.simulation.stepper import DecisionEvent, EngineStepper

__all__ = [
    "SoAColumns",
    "VectorizedPrefixStats",
    "VectorizedState",
    "VectorizedStepper",
]


class SoAColumns:
    """Struct-of-arrays store of every job offered to a vectorized run.

    One row per offered job, in offer order.  Rows are addressed by job id:
    directly while ids are dense (``id == row``, the contiguous-generator
    common case), through an incrementally-maintained ``id -> row`` dict
    otherwise.  Columns hold exactly the float values the ``Job`` rows carry
    — chunk ingestion converts numpy ``float64`` via ``tolist``, which is
    bit-exact — so scans over columns reproduce scans over jobs.
    """

    __slots__ = ("num_machines", "ids", "releases", "weights", "deadlines",
                 "size_cols", "_row_of", "_dense")

    def __init__(self, num_machines: int) -> None:
        self.num_machines = num_machines
        self.ids: list[int] = []
        self.releases: list[float] = []
        self.weights: list[float] = []
        self.deadlines: list[float | None] = []
        #: One size column per machine: ``size_cols[i][row]`` is ``p_ij``.
        self.size_cols: list[list[float]] = [[] for _ in range(num_machines)]
        self._row_of: dict[int, int] | None = None
        self._dense = True

    def __len__(self) -> int:
        return len(self.ids)

    @property
    def dense(self) -> bool:
        """``True`` while job ids equal their row index (no dict needed)."""
        return self._dense

    def row_map(self) -> "dict[int, int] | None":
        """The ``id -> row`` map, or ``None`` while ids are dense."""
        return self._row_of

    def _append_ids(self, ids: Sequence[int]) -> None:
        existing = self.ids
        row = len(existing)
        if self._dense and all(job_id == row + k for k, job_id in enumerate(ids)):
            existing.extend(ids)
            return
        if self._dense:
            self._dense = False
            self._row_of = {job_id: r for r, job_id in enumerate(existing)}
        row_of = self._row_of
        for job_id in ids:
            row_of[job_id] = row
            existing.append(job_id)
            row += 1

    def ingest_jobs(self, rows: Iterable[Job]) -> None:
        """Append ``Job`` rows (the non-chunked ingestion path)."""
        rows = rows if isinstance(rows, (list, tuple)) else list(rows)
        self._append_ids([job.id for job in rows])
        self.releases.extend(job.release for job in rows)
        self.weights.extend(job.weight for job in rows)
        self.deadlines.extend(job.deadline for job in rows)
        cols = self.size_cols
        for job in rows:
            sizes = job.sizes
            for machine in range(self.num_machines):
                cols[machine].append(sizes[machine])

    def ingest_chunk(self, chunk) -> None:
        """Append a validated :class:`JobChunk` — columns filled from its arrays.

        ``numpy.float64 -> float`` via ``tolist`` is exact, so these columns
        are bit-identical to what :meth:`ingest_jobs` over ``chunk.jobs()``
        would have stored, without materialising per-row tuples twice.
        """
        k = len(chunk)
        if k == 0:
            return
        self._append_ids(chunk.job_ids().tolist())
        self.releases.extend(chunk.releases.tolist())
        if chunk.weights is not None:
            self.weights.extend(chunk.weights.tolist())
        else:
            self.weights.extend([1.0] * k)
        if chunk.deadlines is not None:
            self.deadlines.extend(chunk.deadlines.tolist())
        else:
            self.deadlines.extend([None] * k)
        sizes = chunk.sizes
        for machine, col in enumerate(self.size_cols):
            col.extend(sizes[:, machine].tolist())


class VectorizedPrefixStats(PendingPrefixStats):
    """Fenwick order statistics with a selectable tree layout.

    ``layout="lists"`` inherits the plain-list trees of the base class —
    the fast pure-Python path.  ``layout="numpy"`` stores both trees as
    contiguous 2-D arrays (one row per machine) and walks them through the
    :mod:`~repro.simulation.kernels` functions, which numba JIT-compiles
    when importable.  Both layouts add floats in Fenwick-node order, so
    query results are bit-identical (the layout-equivalence tests assert
    it on full runs).
    """

    __slots__ = ("layout",)

    def __init__(self, ranks: list[dict[int, int]], num_jobs: int,
                 layout: str = "lists") -> None:
        super().__init__(ranks, num_jobs)
        if layout not in ("lists", "numpy"):
            raise ValueError(f"layout must be 'lists' or 'numpy', got {layout!r}")
        self.layout = layout
        if layout == "numpy":
            import numpy as np

            self._size = np.zeros((len(ranks), num_jobs + 1), dtype=np.float64)
            self._count = np.zeros((len(ranks), num_jobs + 1), dtype=np.int64)

    def _update(self, machine: int, rank: int, size: float, delta: int) -> None:
        if self.layout == "lists":
            super()._update(machine, rank, size, delta)
            return
        fenwick_update(self._count[machine], self._size[machine],
                       rank + 1, self._n, size, delta)

    def stats_below(self, machine: int, rank: int) -> tuple[int, float]:
        if self.layout == "lists":
            return super().stats_below(machine, rank)
        count, total = fenwick_prefix(self._count[machine], self._size[machine], rank)
        return int(count), float(total)

    def prefix_of(self, machine: int, job_id: int) -> tuple[int, float]:
        if self.layout == "lists":
            return super().prefix_of(machine, job_id)
        return self.stats_below(machine, self._ranks[machine][job_id])


class VectorizedState(EngineState):
    """Engine state whose dispatch surrogates run over the SoA columns.

    Inherits all bookkeeping (pending sets, size sums, Fenwick add/remove,
    materialisation and rebuild policy) unchanged; adds the fused
    :meth:`spt_lambda_argmin` sweep the Theorem-1 policy calls once per
    arrival instead of one ``pending_spt_stats`` chain per machine.
    """

    def __init__(self, instance: Instance) -> None:
        super().__init__(instance)
        self.columns = SoAColumns(instance.num_machines)
        # ``PendingSet`` never replaces its backing dict, so the sweep can
        # hold direct references and skip the ``__len__``/``__iter__``
        # method dispatch on every machine of every arrival.
        self._pending_items = [ms.pending._items for ms in self.machines]
        # Cached direct references into the materialised prefix stats, so
        # the sweep walks trees without per-query attribute/method hops.
        # Refreshed whenever ``prefix_stats`` changes identity (first
        # materialisation or an amortised rebuild).
        self._fen_stats: PendingPrefixStats | None = None
        self._fen_ranks: list[dict[int, int]] | None = None
        self._fen_counts = None
        self._fen_sizes = None
        self._fen_numpy = False

    def _fen_cache(self) -> "PendingPrefixStats | None":
        stats = self.prefix_stats
        if stats is not None and stats is not self._fen_stats:
            self._fen_stats = stats
            self._fen_ranks = stats._ranks
            self._fen_counts = stats._count
            self._fen_sizes = stats._size
            self._fen_numpy = getattr(stats, "layout", "lists") == "numpy"
        return stats

    def spt_lambda_argmin(self, job: Job, epsilon: float) -> tuple[int | None, float]:
        """``(argmin_i lambda_ij, min_i lambda_ij)`` — the Theorem-1 dispatch rule.

        Bit-identical to the reference per-machine loop
        (``lambda_ij = p_ij/eps + (waiting + p_ij) + succeeding * p_ij`` with
        strict ``<`` keeping the lowest machine index on ties): the order
        statistics come from the same scan-below-cutoff / Fenwick-above
        branch structure as
        :meth:`~repro.simulation.state.EngineState.pending_spt_stats`, with
        the same materialisation and amortised-rebuild timing (delegated to
        :meth:`pending_prefix` off the fast path), and float expressions are
        evaluated in the same order.  Returns ``(None, inf)`` when no machine
        is eligible.
        """
        pending_items = self._pending_items
        sizes = job.sizes
        release = job.release
        job_id = job.id
        inf = math.inf
        cutoff = PREFIX_SCAN_CUTOFF
        cols = self.columns
        size_cols = cols.size_cols
        releases = cols.releases
        row_of = cols.row_map()
        stats = self._fen_cache()
        unranked = self._stats_unranked
        fen_ranks = self._fen_ranks
        fen_counts = self._fen_counts
        fen_sizes = self._fen_sizes
        fen_numpy = self._fen_numpy
        best_machine: int | None = None
        best_lambda = inf

        for machine in range(self.num_machines):
            p_ij = sizes[machine]
            if p_ij == inf:
                continue
            pending = pending_items[machine]
            q = len(pending)
            prefix = None
            if q > cutoff:
                if stats is not None and not unranked[machine]:
                    rank = fen_ranks[machine].get(job_id)
                    if rank is not None:
                        if fen_numpy:
                            count, total = fenwick_prefix(
                                fen_counts[machine], fen_sizes[machine], rank
                            )
                            prefix = (int(count), float(total))
                        else:
                            ctree = fen_counts[machine]
                            stree = fen_sizes[machine]
                            pos = rank
                            count = 0
                            total = 0.0
                            while pos > 0:
                                count += ctree[pos]
                                total += stree[pos]
                                pos -= pos & -pos
                            prefix = (count, total)
                if prefix is None:
                    # Not materialised yet, an unranked job in play, or a
                    # job outside the rank universe: the slow path owns the
                    # materialise/rebuild policy so its timing stays
                    # identical to the other dispatch modes.
                    prefix = self.pending_prefix(machine, job_id)
                    if self.prefix_stats is not stats:
                        stats = self._fen_cache()
                        fen_ranks = self._fen_ranks
                        fen_counts = self._fen_counts
                        fen_sizes = self._fen_sizes
                        fen_numpy = self._fen_numpy
            if prefix is not None:
                preceding, waiting = prefix
                succeeding = q - preceding
            elif q == 0:
                waiting = 0.0
                succeeding = 0
            else:
                # Dispatch-order scan over the SoA columns: same iteration
                # order and summation order as the reference scan in
                # pending_spt_stats, same ``(p, release, id) <= key``
                # tie-break unrolled into float comparisons.
                col = size_cols[machine]
                waiting = 0.0
                succeeding = 0
                if row_of is None:
                    for other_id in pending:
                        if other_id == job_id:
                            continue
                        p_other = col[other_id]
                        if p_other < p_ij:
                            waiting += p_other
                        elif p_other > p_ij:
                            succeeding += 1
                        else:
                            r_other = releases[other_id]
                            if r_other < release or (r_other == release and other_id < job_id):
                                waiting += p_other
                            else:
                                succeeding += 1
                else:
                    for other_id in pending:
                        if other_id == job_id:
                            continue
                        row = row_of[other_id]
                        p_other = col[row]
                        if p_other < p_ij:
                            waiting += p_other
                        elif p_other > p_ij:
                            succeeding += 1
                        else:
                            r_other = releases[row]
                            if r_other < release or (r_other == release and other_id < job_id):
                                waiting += p_other
                            else:
                                succeeding += 1
            lam = (p_ij / epsilon) + (waiting + p_ij) + succeeding * p_ij
            if lam < best_lambda:
                best_machine = machine
                best_lambda = lam
        return best_machine, best_lambda


class _ArrayEventQueue:
    """Drop-in :class:`~repro.simulation.events.EventQueue` replacement.

    Arrivals: two parallel lists sorted by time plus a consume cursor —
    pushes are O(1) appends on release-ordered streams (every shipped
    ingestion path), a ``bisect`` insert into the unconsumed suffix
    otherwise.  Completions: a heap of plain ``(time, seq, job_id, machine,
    version)`` tuples.  The pop order is exactly the reference ``(time,
    kind, seq)`` order: completions before arrivals at equal timestamps,
    insertion order within a kind.

    The object API (``push*``/``pop``/``peek_time``/``drain``/``len``)
    matches ``EventQueue`` so the inherited ``step()``/``finish()`` paths
    work unchanged; the fused loop reaches into the underlying arrays.
    """

    __slots__ = ("_arr_times", "_arr_ids", "_arr_pos", "_comp", "_seq")

    def __init__(self) -> None:
        self._arr_times: list[float] = []
        self._arr_ids: list[int] = []
        self._arr_pos = 0
        self._comp: list[tuple[float, int, int, int, int]] = []
        self._seq = 0

    def __len__(self) -> int:
        return (len(self._arr_times) - self._arr_pos) + len(self._comp)

    def __bool__(self) -> bool:
        return self._arr_pos < len(self._arr_times) or bool(self._comp)

    def push(self, event: Event) -> None:
        """Insert a generic event (API parity with ``EventQueue``)."""
        if event.kind == EventKind.ARRIVAL:
            self.push_arrival(event.time, event.job_id)
        else:
            self.push_completion(event.time, event.job_id, event.machine, event.version)

    def push_arrival(self, time: float, job_id: int) -> None:
        """Insert a job-arrival event (append on release-ordered streams)."""
        if time < 0:
            raise SimulationError(f"event time must be non-negative, got {time}")
        times = self._arr_times
        if times and time < times[-1]:
            # Out-of-order offer: place it in the unconsumed suffix after
            # any equal timestamps — later pushes carry larger sequence
            # numbers in the reference heap, so stability preserves order.
            from bisect import bisect_right

            pos = bisect_right(times, time, lo=self._arr_pos)
            times.insert(pos, time)
            self._arr_ids.insert(pos, job_id)
        else:
            times.append(time)
            self._arr_ids.append(job_id)

    def push_completion(self, time: float, job_id: int, machine: int, version: int) -> None:
        """Insert a completion carrying the machine's version stamp."""
        if time < 0:
            raise SimulationError(f"event time must be non-negative, got {time}")
        self._seq += 1
        heappush(self._comp, (time, self._seq, job_id, machine, version))

    def peek_time(self) -> float:
        """Timestamp of the next event without removing it."""
        pos = self._arr_pos
        arr_time = self._arr_times[pos] if pos < len(self._arr_times) else None
        comp_time = self._comp[0][0] if self._comp else None
        if arr_time is None and comp_time is None:
            raise SimulationError("peek on an empty event queue")
        if comp_time is None:
            return arr_time
        if arr_time is None:
            return comp_time
        return comp_time if comp_time <= arr_time else arr_time

    def pop(self) -> Event:
        """Remove and return the next event in ``(time, kind, seq)`` order."""
        pos = self._arr_pos
        arr_time = self._arr_times[pos] if pos < len(self._arr_times) else None
        comp = self._comp
        if comp and (arr_time is None or comp[0][0] <= arr_time):
            time, _, job_id, machine, version = heappop(comp)
            return Event(time=time, kind=EventKind.COMPLETION, job_id=job_id,
                         machine=machine, version=version)
        if arr_time is None:
            raise SimulationError("pop from an empty event queue")
        self._arr_pos = pos + 1
        return Event(time=arr_time, kind=EventKind.ARRIVAL, job_id=self._arr_ids[pos])

    def drain(self, is_stale=None, machine_versions=None) -> Iterator[Event]:
        """Yield the remaining events in order with ``EventQueue.drain`` filtering."""
        while self:
            event = self.pop()
            if machine_versions is not None and event.kind == EventKind.COMPLETION:
                if not (0 <= event.machine < len(machine_versions)):
                    continue
                if machine_versions[event.machine] != event.version:
                    continue
            if is_stale is not None and is_stale(event):
                continue
            yield event


class VectorizedStepper(EngineStepper):
    """Engine stepper of the ``vectorized`` dispatch mode.

    Same construction, validation, handler semantics and single-use
    contract as :class:`EngineStepper` — the overrides swap in the SoA
    state, the array event queue, the layout-selectable prefix stats, a
    columnar ``offer_chunk`` ingestion path and the fused
    ``drain``/``advance_to`` loop.  ``step()`` is inherited and still
    processes one :class:`Event` at a time for API parity.
    """

    def _make_state(self, instance: Instance) -> VectorizedState:
        # Resolve the kernel-layout env var up front: an invalid value must
        # fail at engine construction, not whenever the Fenwick stats happen
        # to materialise mid-run, and the layout stays pinned for the run.
        self._kernel_layout = active_layout()
        return VectorizedState(instance)

    def _make_queue(self) -> _ArrayEventQueue:
        return _ArrayEventQueue()

    def _make_stats(self, ranks: list[dict[int, int]], num_jobs: int) -> VectorizedPrefixStats:
        return VectorizedPrefixStats(ranks, num_jobs, layout=self._kernel_layout)

    def _build_ranks(self, jobs, num_machines: int, key_fn) -> list[dict[int, int]]:
        """Columnar rank build: lexsort straight over the SoA columns.

        When the policy exposes its priority key as SoA columns
        (``priority_rank_columns``) and every registered job is in the
        column store, the O(n·m) ``key_fn`` tuple walk of
        :func:`~repro.simulation.indexed.build_priority_ranks` collapses to
        one ``numpy.lexsort`` per machine over the already-resident columns.
        Keys are unique (they end in the job id), so the resulting ranks are
        identical to the generic build no matter the input order.
        """
        columns = self.state.columns
        rank_columns = getattr(self.policy, "priority_rank_columns", None)
        if rank_columns is None or len(columns) != len(jobs):
            return super()._build_ranks(jobs, num_machines, key_fn)
        import numpy as np

        ids = columns.ids
        n = len(ids)
        ranks: list[dict[int, int]] = []
        for key_cols in rank_columns(columns):
            if n == 0:
                ranks.append({})
                continue
            arrays = [np.asarray(col, dtype=float) for col in key_cols]
            # lexsort sorts by the LAST key first; reverse so the first
            # column is the primary key (same convention as the generic
            # build over key tuples).
            order = np.lexsort(tuple(reversed(arrays)))
            rank_of = np.empty(n, dtype=np.int64)
            rank_of[order] = np.arange(n)
            ranks.append({job_id: int(rank) for job_id, rank in zip(ids, rank_of)})
        return ranks

    # -- ingestion -----------------------------------------------------------------

    def offer(self, job: Job) -> None:
        super().offer(job)
        self.state.columns.ingest_jobs((job,))

    def offer_many(self, jobs) -> int:
        rows = jobs if isinstance(jobs, (list, tuple)) else list(jobs)
        count = super().offer_many(rows)
        self.state.columns.ingest_jobs(rows)
        return count

    def offer_chunk(self, chunk, rows: "list[Job] | None" = None) -> int:
        """Bulk-offer a **validated** :class:`JobChunk`, columns from its arrays.

        ``rows`` is the chunk's materialised job list when the caller
        already built it (the session validates releases against its
        watermark on the rows); otherwise it is materialised here.  The
        offer contract (atomic validation, duplicate/floor checks) is the
        inherited ``offer_many``; only the column fill differs — straight
        from the chunk's numpy columns.
        """
        if rows is None:
            rows = chunk.jobs()
        count = super().offer_many(rows)
        self.state.columns.ingest_chunk(chunk)
        return count

    # -- fused stepping ------------------------------------------------------------

    def advance_to(self, t: float) -> int:
        processed = self._run_core(t)
        if t > self._floor:
            self._floor = t
        return processed

    def drain(self) -> int:
        return self._run_core(None)

    def _run_core(self, bound: "float | None") -> int:
        """Process events up to ``bound`` (all of them when ``None``).

        The bodies of ``step()`` / ``_handle_completion`` /
        ``_handle_arrival`` / ``_start_idle_machines`` inlined over the
        array queue: identical state mutations, record/interval contents,
        observer calls and machine-iteration order, without per-event
        ``Event`` construction or handler dispatch.  Any behavioural
        divergence from the inherited loop is a bug the three-way
        differential harness is designed to catch.
        """
        if self._finished:
            if len(self.queue) and (bound is None or self.queue.peek_time() <= bound):
                raise SimulationError("cannot step a finished stepper")
            return 0
        state = self.state
        policy = self.policy
        machines = state.machines
        num_machines = state.num_machines
        observer = self.observer
        records = self.records
        intervals = self.intervals
        jobs = state.jobs_by_id
        pick_start = self.engine._pick_start
        on_arrival = policy.on_arrival
        recheck = self._recheck
        dispatched = self._dispatched_machine
        aq = self.queue
        arr_times = aq._arr_times
        arr_ids = aq._arr_ids
        comp = aq._comp
        inf = math.inf
        processed = 0
        floor = self._floor
        event_count = self.event_count
        # Local mirror of the consume cursor; written back on every
        # consume so mid-loop pushes (e.g. from an observer) keep the
        # queue view consistent.  ``arr_times`` only ever grows, so the
        # fresh ``len`` per iteration stays correct under such pushes.
        arr_pos = aq._arr_pos

        while True:
            arr_time = arr_times[arr_pos] if arr_pos < len(arr_times) else inf
            if comp and comp[0][0] <= arr_time:
                t = comp[0][0]
                if bound is not None and t > bound:
                    break
                _, _, job_id, machine, version = heappop(comp)
                state.time = t
                if t > floor:
                    floor = t
                event_count += 1
                processed += 1
                ms = machines[machine]
                info = ms.running
                if ms.version == version and info is not None and info.job.id == job_id:
                    ms.running = None
                    ms.version += 1
                    intervals.append(
                        ExecutionInterval(
                            machine=machine,
                            job_id=job_id,
                            start=info.start,
                            end=t,
                            speed=info.speed,
                            completed=True,
                        )
                    )
                    job = info.job
                    records[job_id] = JobRecord(
                        job_id=job_id,
                        weight=job.weight,
                        release=job.release,
                        machine=machine,
                        start=info.start,
                        completion=t,
                        rejected=False,
                    )
                    if observer is not None:
                        observer(DecisionEvent("complete", t, job_id, machine, info.speed))
                # A stale completion still re-offers its machine, exactly
                # like the event-object loop does.
                if recheck:
                    to_try = sorted({machine} | recheck)
                else:
                    to_try = (machine,)
            else:
                if arr_time == inf:
                    break
                if bound is not None and arr_time > bound:
                    break
                pos = arr_pos
                arr_pos = pos + 1
                aq._arr_pos = arr_pos
                t = arr_time
                state.time = t
                if t > floor:
                    floor = t
                event_count += 1
                processed += 1
                job = jobs[arr_ids[pos]]
                decision = on_arrival(t, job, state)
                machine = decision.machine
                if machine is None:
                    records[job.id] = JobRecord(
                        job_id=job.id,
                        weight=job.weight,
                        release=job.release,
                        machine=None,
                        start=None,
                        completion=None,
                        rejected=True,
                        rejection_time=t,
                        rejection_reason="immediate",
                    )
                    if observer is not None:
                        observer(DecisionEvent("reject", t, job.id, None, None, "immediate"))
                    touched: list[int] = []
                else:
                    if not (0 <= machine < num_machines):
                        raise SimulationError(
                            f"policy {policy.name!r} dispatched job {job.id} "
                            f"to invalid machine {machine}"
                        )
                    if math.isinf(job.sizes[machine]):
                        raise SimulationError(
                            f"policy {policy.name!r} dispatched job {job.id} "
                            f"to forbidden machine {machine}"
                        )
                    state.add_pending(machine, job)
                    dispatched[job.id] = machine
                    if observer is not None:
                        observer(DecisionEvent("dispatch", t, job.id, machine))
                    touched = [machine]
                rejections = decision.rejections
                if rejections:
                    apply_rejection = self._apply_rejection
                    for rejection in rejections:
                        touched.append(apply_rejection(t, rejection))
                if recheck:
                    to_try = sorted(set(touched) | recheck)
                elif len(touched) > 1:
                    to_try = sorted(set(touched))
                else:
                    to_try = touched

            for machine in to_try:
                ms = machines[machine]
                if ms.running is not None or not ms.pending:
                    recheck.discard(machine)
                    continue
                started = pick_start(t, policy, ms, state)
                if started is None:
                    recheck.add(machine)
                    continue
                recheck.discard(machine)
                sjob, speed, duration = started
                state.remove_pending(machine, sjob.id)
                finish = t + duration
                ms.running = RunningInfo(job=sjob, start=t, finish=finish, speed=speed)
                aq.push_completion(finish, sjob.id, machine, ms.version)
                if observer is not None:
                    observer(DecisionEvent("start", t, sjob.id, machine, speed))

        self._floor = floor
        self.event_count = event_count
        return processed
