"""Decision dataclasses shared by both non-preemptive engines.

Historically :mod:`repro.simulation.engine` and
:mod:`repro.simulation.speed_engine` each defined their own (structurally
identical) ``Rejection`` / ``ArrivalDecision`` pair.  The types live here now
and are shared by both execution models; the old ``Speed*`` names remain as
deprecated aliases in :mod:`repro.simulation.speed_engine` for one release.

``StartDecision`` is only meaningful in the speed-scaling model (fixed-speed
machines derive the speed from the machine spec), but it lives here with its
siblings so policies import every decision type from one module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import SimulationError


@dataclass(frozen=True, slots=True)
class Rejection:
    """A request by a policy to reject a specific job right now."""

    job_id: int
    reason: str = "policy"


@dataclass(frozen=True, slots=True)
class ArrivalDecision:
    """Decision returned by a policy's ``on_arrival`` hook.

    Attributes
    ----------
    machine:
        Index of the machine the arriving job is dispatched to, or ``None``
        to reject the arriving job immediately (immediate-rejection baselines).
    rejections:
        Other jobs to reject at the arrival instant (pending or running jobs,
        on any machine).  Used by the paper's Rule 1 / Rule 2 and by the
        weighted rejection rule of the speed-scaling algorithm.
    """

    machine: int | None
    rejections: tuple[Rejection, ...] = ()

    @staticmethod
    def dispatch(machine: int, rejections: Sequence[Rejection] = ()) -> "ArrivalDecision":
        """Dispatch the arriving job to ``machine`` with optional extra rejections."""
        return ArrivalDecision(machine=machine, rejections=tuple(rejections))

    @staticmethod
    def reject(rejections: Sequence[Rejection] = ()) -> "ArrivalDecision":
        """Reject the arriving job immediately."""
        return ArrivalDecision(machine=None, rejections=tuple(rejections))


@dataclass(frozen=True, slots=True)
class StartDecision:
    """Which pending job to start and at what (constant) speed."""

    job_id: int
    speed: float

    def __post_init__(self) -> None:
        if not (self.speed > 0):
            raise SimulationError(f"start speed must be positive, got {self.speed}")
