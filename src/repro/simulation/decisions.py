"""Decision dataclasses shared by both non-preemptive engines.

Historically :mod:`repro.simulation.engine` and
:mod:`repro.simulation.speed_engine` each defined their own (structurally
identical) ``Rejection`` / ``ArrivalDecision`` pair.  The types live here now
and are shared by both execution models; the old ``Speed*`` names remain as
deprecated aliases in :mod:`repro.simulation.speed_engine` for one release.

``StartDecision`` is only meaningful in the speed-scaling model (fixed-speed
machines derive the speed from the machine spec), but it lives here with its
siblings so policies import every decision type from one module.

The deprecated ``Speed*`` aliases resolve here too (module ``__getattr__``),
emitting a :class:`DeprecationWarning` on every use; they behave identically
to the shared types — they *are* the shared types — and will be removed next
release.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import SimulationError


@dataclass(frozen=True, slots=True)
class Rejection:
    """A request by a policy to reject a specific job right now."""

    job_id: int
    reason: str = "policy"


@dataclass(frozen=True, slots=True)
class ArrivalDecision:
    """Decision returned by a policy's ``on_arrival`` hook.

    Attributes
    ----------
    machine:
        Index of the machine the arriving job is dispatched to, or ``None``
        to reject the arriving job immediately (immediate-rejection baselines).
    rejections:
        Other jobs to reject at the arrival instant (pending or running jobs,
        on any machine).  Used by the paper's Rule 1 / Rule 2 and by the
        weighted rejection rule of the speed-scaling algorithm.
    """

    machine: int | None
    rejections: tuple[Rejection, ...] = ()

    @staticmethod
    def dispatch(machine: int, rejections: Sequence[Rejection] = ()) -> "ArrivalDecision":
        """Dispatch the arriving job to ``machine`` with optional extra rejections."""
        return ArrivalDecision(machine=machine, rejections=tuple(rejections))

    @staticmethod
    def reject(rejections: Sequence[Rejection] = ()) -> "ArrivalDecision":
        """Reject the arriving job immediately."""
        return ArrivalDecision(machine=None, rejections=tuple(rejections))


@dataclass(frozen=True, slots=True)
class StartDecision:
    """Which pending job to start and at what (constant) speed."""

    job_id: int
    speed: float

    def __post_init__(self) -> None:
        if not (self.speed > 0):
            raise SimulationError(f"start speed must be positive, got {self.speed}")


#: Deprecated names kept for one release; resolving one warns (see
#: :func:`make_deprecated_getattr`).  They are plain aliases: identity with
#: the shared types is guaranteed, only the spelling is deprecated.
DEPRECATED_ALIASES = {
    "SpeedRejection": Rejection,
    "SpeedArrivalDecision": ArrivalDecision,
}


def make_deprecated_getattr(module_name: str):
    """Module ``__getattr__`` resolving the ``Speed*`` aliases with a warning.

    One shared implementation for every module that historically exposed the
    aliases (this one, :mod:`repro.simulation.speed_engine` and the
    :mod:`repro.simulation` package), so the alias table and the message
    format live in exactly one place.
    """

    def __getattr__(name: str):
        replacement = DEPRECATED_ALIASES.get(name)
        if replacement is not None:
            warnings.warn(
                f"{module_name}.{name} is deprecated; use "
                f"repro.simulation.decisions.{replacement.__name__} instead",
                DeprecationWarning,
                stacklevel=2,
            )
            return replacement
        raise AttributeError(f"module {module_name!r} has no attribute {name!r}")

    return __getattr__


__getattr__ = make_deprecated_getattr(__name__)
