"""Scheduling instance: a machine fleet plus an ordered list of jobs.

An :class:`Instance` is the immutable input handed to every scheduler,
baseline and lower-bound computation in the library.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import InvalidInstanceError
from repro.simulation.job import Job
from repro.simulation.machine import Machine


@dataclass(frozen=True)
class InstanceStats:
    """Summary statistics of an instance used in reports and workload suites."""

    num_jobs: int
    num_machines: int
    min_size: float
    max_size: float
    delta: float
    total_min_size: float
    total_weight: float
    makespan_lower_bound: float
    has_deadlines: bool
    max_release: float


@dataclass(frozen=True)
class Instance:
    """An unrelated-machine scheduling instance.

    Parameters
    ----------
    machines:
        The machine fleet; indices must be ``0..m-1`` in order.
    jobs:
        Jobs sorted by non-decreasing release date (ties allowed).  Each job's
        size vector must have exactly ``len(machines)`` entries.
    name:
        Optional human-readable label used in experiment reports.
    """

    machines: tuple[Machine, ...]
    jobs: tuple[Job, ...]
    name: str = "instance"

    def __post_init__(self) -> None:
        if not self.machines:
            raise InvalidInstanceError("instance needs at least one machine")
        for expected, machine in enumerate(self.machines):
            if machine.id != expected:
                raise InvalidInstanceError(
                    f"machine ids must be consecutive from 0; position {expected} has id {machine.id}"
                )
        m = len(self.machines)
        seen: set[int] = set()
        prev_release = -math.inf
        for job in self.jobs:
            if len(job.sizes) != m:
                raise InvalidInstanceError(
                    f"job {job.id}: size vector has {len(job.sizes)} entries, expected {m}"
                )
            if job.id in seen:
                raise InvalidInstanceError(f"duplicate job id {job.id}")
            seen.add(job.id)
            if job.release < prev_release:
                raise InvalidInstanceError(
                    "jobs must be sorted by non-decreasing release date "
                    f"(job {job.id} released at {job.release} after {prev_release})"
                )
            prev_release = job.release

    # -- basic properties ----------------------------------------------------------

    @property
    def num_machines(self) -> int:
        """Number of machines ``m``."""
        return len(self.machines)

    @property
    def num_jobs(self) -> int:
        """Number of jobs ``n``."""
        return len(self.jobs)

    @property
    def total_weight(self) -> float:
        """Sum of job weights."""
        return sum(job.weight for job in self.jobs)

    def job_by_id(self, job_id: int) -> Job:
        """Return the job with the given id (O(n); cached lookups belong to engines)."""
        for job in self.jobs:
            if job.id == job_id:
                return job
        raise KeyError(f"no job with id {job_id}")

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __len__(self) -> int:
        return len(self.jobs)

    # -- derived statistics --------------------------------------------------------

    def finite_sizes(self) -> list[float]:
        """All finite entries of the processing-time matrix."""
        return [p for job in self.jobs for p in job.sizes if math.isfinite(p)]

    def delta(self) -> float:
        """Ratio of the maximum over the minimum finite processing time (Δ)."""
        sizes = self.finite_sizes()
        if not sizes:
            return 1.0
        return max(sizes) / min(sizes)

    def stats(self) -> InstanceStats:
        """Aggregate statistics used by workload suites and reports."""
        sizes = self.finite_sizes()
        total_min = sum(job.min_size() for job in self.jobs)
        return InstanceStats(
            num_jobs=self.num_jobs,
            num_machines=self.num_machines,
            min_size=min(sizes) if sizes else 0.0,
            max_size=max(sizes) if sizes else 0.0,
            delta=self.delta(),
            total_min_size=total_min,
            total_weight=self.total_weight,
            makespan_lower_bound=total_min / self.num_machines,
            has_deadlines=all(job.deadline is not None for job in self.jobs)
            and self.num_jobs > 0,
            max_release=max((job.release for job in self.jobs), default=0.0),
        )

    def has_deadlines(self) -> bool:
        """``True`` when every job carries a deadline (Section 4 instances)."""
        return self.num_jobs > 0 and all(job.deadline is not None for job in self.jobs)

    def horizon(self) -> float:
        """A safe upper bound on the time by which any reasonable schedule ends.

        Sum of the largest release date and the total of worst-case finite
        processing times; used to size discrete timelines and LP horizons.
        """
        total_worst = sum(
            max((p for p in job.sizes if math.isfinite(p)), default=0.0) for job in self.jobs
        )
        max_release = max((job.release for job in self.jobs), default=0.0)
        max_deadline = max(
            (job.deadline for job in self.jobs if job.deadline is not None), default=0.0
        )
        return max(max_release + total_worst, max_deadline)

    # -- transformations -----------------------------------------------------------

    def with_machines(self, machines: Sequence[Machine]) -> "Instance":
        """Return a copy of the instance with a replaced machine fleet.

        The number of machines must not change (job size vectors keep their
        meaning); used to apply speed augmentation or change alpha.
        """
        if len(machines) != self.num_machines:
            raise InvalidInstanceError(
                "with_machines cannot change the number of machines "
                f"({len(machines)} != {self.num_machines})"
            )
        return Instance(tuple(machines), self.jobs, self.name)

    def with_speed_factor(self, speed_factor: float) -> "Instance":
        """Copy of the instance whose machines all run ``speed_factor`` times faster."""
        machines = tuple(
            Machine(m.id, speed_factor=m.speed_factor * speed_factor, alpha=m.alpha)
            for m in self.machines
        )
        return self.with_machines(machines)

    def with_alpha(self, alpha: float) -> "Instance":
        """Copy of the instance with every machine's power exponent set to ``alpha``."""
        machines = tuple(
            Machine(m.id, speed_factor=m.speed_factor, alpha=alpha) for m in self.machines
        )
        return self.with_machines(machines)

    def with_name(self, name: str) -> "Instance":
        """Copy of the instance with a new label."""
        return Instance(self.machines, self.jobs, name)

    def restrict_jobs(self, predicate: Callable[[Job], bool], name: str | None = None) -> "Instance":
        """Instance containing only the jobs satisfying ``predicate``."""
        jobs = tuple(job for job in self.jobs if predicate(job))
        return Instance(self.machines, jobs, name or self.name)

    def prefix(self, count: int) -> "Instance":
        """Instance containing only the first ``count`` jobs (release order)."""
        return Instance(self.machines, self.jobs[:count], f"{self.name}[:{count}]")

    # -- construction --------------------------------------------------------------

    @staticmethod
    def build(
        machines: Sequence[Machine] | int,
        jobs: Iterable[Job],
        name: str = "instance",
    ) -> "Instance":
        """Build an instance, sorting jobs by release date.

        ``machines`` may be an integer (a fleet of identical unit machines is
        created) or an explicit sequence of :class:`Machine`.
        """
        if isinstance(machines, int):
            fleet = Machine.fleet(machines)
        else:
            fleet = tuple(machines)
        ordered = tuple(sorted(jobs, key=lambda j: (j.release, j.id)))
        return Instance(fleet, ordered, name)

    @staticmethod
    def single_machine(jobs: Iterable[Job], name: str = "single-machine", alpha: float = 3.0) -> "Instance":
        """Convenience constructor for one-machine instances (Lemma 1 / Lemma 2)."""
        return Instance.build((Machine(0, alpha=alpha),), jobs, name)

    @staticmethod
    def trusted(
        machines: tuple[Machine, ...], jobs: tuple[Job, ...], name: str = "instance"
    ) -> "Instance":
        """Construct an instance **without** the ``__post_init__`` validation.

        The counterpart of :meth:`Job.trusted` for producers that already
        enforce the instance invariants incrementally — the streaming
        session validates machine count, release ordering and id uniqueness
        per submission, so re-scanning all jobs at finalize time would be
        pure overhead.  Callers are responsible for upholding the invariants.
        """
        instance = object.__new__(Instance)
        object.__setattr__(instance, "machines", machines)
        object.__setattr__(instance, "jobs", jobs)
        object.__setattr__(instance, "name", name)
        return instance

    # -- serialisation -------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict representation (JSON-serialisable)."""
        return {
            "name": self.name,
            "machines": [m.to_dict() for m in self.machines],
            "jobs": [j.to_dict() for j in self.jobs],
        }

    @staticmethod
    def from_dict(data: Mapping) -> "Instance":
        """Inverse of :meth:`to_dict`."""
        machines = tuple(Machine.from_dict(m) for m in data["machines"])
        jobs = tuple(Job.from_dict(j) for j in data["jobs"])
        return Instance(machines, jobs, str(data.get("name", "instance")))

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict())

    @staticmethod
    def from_json(payload: str) -> "Instance":
        """Deserialise from :meth:`to_json` output."""
        return Instance.from_dict(json.loads(payload))
