"""Non-preemptive speed-scaling engine (Section 3 execution model).

Machines can run at any non-negative speed; running at speed ``s`` consumes
power ``P(s) = s**alpha``.  A job is executed non-preemptively at a *constant*
speed chosen when it starts (the paper's algorithm fixes the speed at start
time and never changes it).  Rejecting a running job interrupts it; the energy
already spent is still accounted for in the measured objective.

The event loop is shared with
:class:`~repro.simulation.engine.FlowTimeEngine` through
:class:`~repro.simulation.engine.NonPreemptiveEngine`; here a start decision
carries a speed, and the result's extras record the total energy.  The
decision dataclasses likewise live in :mod:`repro.simulation.decisions` and
are shared by both models; ``SpeedRejection`` and ``SpeedArrivalDecision``
remain as deprecated aliases of the shared types for one release.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.exceptions import SimulationError
from repro.simulation.decisions import (
    ArrivalDecision,
    Rejection,
    StartDecision,
    make_deprecated_getattr,
)
from repro.simulation.engine import NonPreemptiveEngine
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.schedule import ExecutionInterval, SimulationResult
from repro.simulation.state import EngineState, MachineState

__all__ = [
    "SpeedRejection",
    "SpeedArrivalDecision",
    "StartDecision",
    "SpeedScalingPolicy",
    "SpeedScalingEngine",
    "run_speed_policy",
]

# Deprecated ``Speed*`` aliases resolve lazily with a DeprecationWarning;
# the alias table and the handler live with the shared decision types.
__getattr__ = make_deprecated_getattr(__name__)


class SpeedScalingPolicy(ABC):
    """Interface implemented by online speed-scaling scheduling policies."""

    #: Human-readable name used in result labels and reports.
    name: str = "speed-scaling-policy"

    #: Static local-order hook (see
    #: :attr:`repro.simulation.engine.FlowTimePolicy.priority_key`); the
    #: density order of Section 3 is static, so the Theorem 2 policy opts in.
    priority_key = None

    #: See :attr:`repro.simulation.engine.FlowTimePolicy.wants_prefix_stats`.
    wants_prefix_stats = False

    def reset(self, instance: Instance) -> None:  # noqa: B027 - optional hook
        """Prepare internal state for a new run (default: nothing)."""

    @abstractmethod
    def on_arrival(self, t: float, job: Job, state: EngineState) -> ArrivalDecision:
        """Dispatch (or reject) the job released at time ``t``."""

    @abstractmethod
    def select_next(self, t: float, machine: int, state: EngineState) -> StartDecision | None:
        """Pick the pending job to start on an idle machine and its speed."""


class SpeedScalingEngine(NonPreemptiveEngine):
    """Discrete-event simulator for non-preemptive speed-scaling scheduling."""

    def _pick_start(
        self, t: float, policy: SpeedScalingPolicy, ms: MachineState, state: EngineState
    ) -> tuple[Job, float, float] | None:
        decision = policy.select_next(t, ms.index, state)
        if decision is None:
            return None
        if decision.job_id not in ms.pending:
            raise SimulationError(
                f"policy {policy.name!r} started job {decision.job_id} which is not pending "
                f"on machine {ms.index}"
            )
        job = state.job(decision.job_id)
        volume = job.size_on(ms.index)
        duration = volume / decision.speed
        if not math.isfinite(duration):
            raise SimulationError(
                f"job {decision.job_id} has infinite duration on machine {ms.index}"
            )
        return job, decision.speed, duration

    def _result_extras(self, intervals: list[ExecutionInterval], event_count: int) -> dict:
        energy = sum(
            iv.energy(self.instance.machines[iv.machine].alpha) for iv in intervals
        )
        return {"events": event_count, "energy": energy}


def run_speed_policy(
    instance: Instance, policy: SpeedScalingPolicy, dispatch: str | None = None
) -> SimulationResult:
    """Convenience wrapper: simulate ``policy`` on ``instance``."""
    return SpeedScalingEngine(instance, dispatch=dispatch).run(policy)
