"""Non-preemptive speed-scaling engine (Section 3 execution model).

Machines can run at any non-negative speed; running at speed ``s`` consumes
power ``P(s) = s**alpha``.  A job is executed non-preemptively at a *constant*
speed chosen when it starts (the paper's algorithm fixes the speed at start
time and never changes it).  Rejecting a running job interrupts it; the energy
already spent is still accounted for in the measured objective.

The engine mirrors :class:`~repro.simulation.engine.FlowTimeEngine` but start
decisions carry a speed, and the result's extras record the total energy.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import SimulationError
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.schedule import ExecutionInterval, JobRecord, SimulationResult
from repro.simulation.state import EngineState, RunningInfo


@dataclass(frozen=True, slots=True)
class SpeedRejection:
    """A request to reject a specific job (pending or running) right now."""

    job_id: int
    reason: str = "policy"


@dataclass(frozen=True, slots=True)
class SpeedArrivalDecision:
    """Dispatch decision at a job arrival in the speed-scaling model."""

    machine: int | None
    rejections: tuple[SpeedRejection, ...] = ()

    @staticmethod
    def dispatch(machine: int, rejections: Sequence[SpeedRejection] = ()) -> "SpeedArrivalDecision":
        """Dispatch the arriving job to ``machine``."""
        return SpeedArrivalDecision(machine=machine, rejections=tuple(rejections))

    @staticmethod
    def reject(rejections: Sequence[SpeedRejection] = ()) -> "SpeedArrivalDecision":
        """Reject the arriving job immediately."""
        return SpeedArrivalDecision(machine=None, rejections=tuple(rejections))


@dataclass(frozen=True, slots=True)
class StartDecision:
    """Which pending job to start and at what (constant) speed."""

    job_id: int
    speed: float

    def __post_init__(self) -> None:
        if not (self.speed > 0):
            raise SimulationError(f"start speed must be positive, got {self.speed}")


class SpeedScalingPolicy(ABC):
    """Interface implemented by online speed-scaling scheduling policies."""

    #: Human-readable name used in result labels and reports.
    name: str = "speed-scaling-policy"

    def reset(self, instance: Instance) -> None:  # noqa: B027 - optional hook
        """Prepare internal state for a new run (default: nothing)."""

    @abstractmethod
    def on_arrival(self, t: float, job: Job, state: EngineState) -> SpeedArrivalDecision:
        """Dispatch (or reject) the job released at time ``t``."""

    @abstractmethod
    def select_next(self, t: float, machine: int, state: EngineState) -> StartDecision | None:
        """Pick the pending job to start on an idle machine and its speed."""


class SpeedScalingEngine:
    """Discrete-event simulator for non-preemptive speed-scaling scheduling."""

    def __init__(self, instance: Instance) -> None:
        self.instance = instance

    def run(self, policy: SpeedScalingPolicy) -> SimulationResult:
        """Simulate ``policy`` on the engine's instance and return the result."""
        instance = self.instance
        policy.reset(instance)

        state = EngineState(instance)
        queue = EventQueue()
        for job in instance.jobs:
            queue.push_arrival(job.release, job.id)

        records: dict[int, JobRecord] = {}
        intervals: list[ExecutionInterval] = []
        dispatched_machine: dict[int, int] = {}
        event_count = 0

        while queue:
            event = queue.pop()
            state.time = event.time
            event_count += 1

            if event.kind == EventKind.COMPLETION:
                self._handle_completion(event, state, records, intervals)
            else:
                self._handle_arrival(
                    event, policy, state, records, intervals, dispatched_machine
                )

            self._start_idle_machines(event.time, policy, state, queue)

        missing = [job.id for job in instance.jobs if job.id not in records]
        if missing:
            raise SimulationError(
                f"{len(missing)} job(s) never finished nor were rejected: {missing[:5]}"
            )

        energy = sum(
            iv.energy(instance.machines[iv.machine].alpha) for iv in intervals
        )
        return SimulationResult(
            instance=instance,
            records=records,
            intervals=sorted(intervals, key=lambda iv: (iv.start, iv.machine)),
            algorithm=policy.name,
            extras={"events": event_count, "energy": energy},
        )

    # -- event handlers ------------------------------------------------------------

    def _handle_completion(
        self,
        event: Event,
        state: EngineState,
        records: dict[int, JobRecord],
        intervals: list[ExecutionInterval],
    ) -> None:
        ms = state.machines[event.machine]
        if ms.version != event.version or ms.running is None or ms.running.job.id != event.job_id:
            return
        info = ms.running
        ms.running = None
        ms.version += 1
        intervals.append(
            ExecutionInterval(
                machine=event.machine,
                job_id=event.job_id,
                start=info.start,
                end=event.time,
                speed=info.speed,
                completed=True,
            )
        )
        job = info.job
        records[job.id] = JobRecord(
            job_id=job.id,
            weight=job.weight,
            release=job.release,
            machine=event.machine,
            start=info.start,
            completion=event.time,
            rejected=False,
        )

    def _handle_arrival(
        self,
        event: Event,
        policy: SpeedScalingPolicy,
        state: EngineState,
        records: dict[int, JobRecord],
        intervals: list[ExecutionInterval],
        dispatched_machine: dict[int, int],
    ) -> None:
        job = state.job(event.job_id)
        decision = policy.on_arrival(event.time, job, state)

        if decision.machine is None:
            records[job.id] = JobRecord(
                job_id=job.id,
                weight=job.weight,
                release=job.release,
                machine=None,
                start=None,
                completion=None,
                rejected=True,
                rejection_time=event.time,
                rejection_reason="immediate",
            )
        else:
            machine = decision.machine
            if not (0 <= machine < state.num_machines):
                raise SimulationError(
                    f"policy {policy.name!r} dispatched job {job.id} to invalid machine {machine}"
                )
            if math.isinf(job.size_on(machine)):
                raise SimulationError(
                    f"policy {policy.name!r} dispatched job {job.id} to forbidden machine {machine}"
                )
            state.machines[machine].pending.append(job.id)
            dispatched_machine[job.id] = machine

        for rejection in decision.rejections:
            self._apply_rejection(
                event.time, rejection, state, records, intervals, dispatched_machine
            )

    def _apply_rejection(
        self,
        t: float,
        rejection: SpeedRejection,
        state: EngineState,
        records: dict[int, JobRecord],
        intervals: list[ExecutionInterval],
        dispatched_machine: dict[int, int],
    ) -> None:
        job_id = rejection.job_id
        if job_id in records:
            raise SimulationError(f"job {job_id} rejected after it already finished/was rejected")

        for ms in state.machines:
            if ms.running is not None and ms.running.job.id == job_id:
                info = ms.running
                ms.running = None
                ms.version += 1
                if t > info.start:
                    intervals.append(
                        ExecutionInterval(
                            machine=ms.index,
                            job_id=job_id,
                            start=info.start,
                            end=t,
                            speed=info.speed,
                            completed=False,
                        )
                    )
                records[job_id] = JobRecord(
                    job_id=job_id,
                    weight=info.job.weight,
                    release=info.job.release,
                    machine=ms.index,
                    start=info.start,
                    completion=None,
                    rejected=True,
                    rejection_time=t,
                    rejection_reason=rejection.reason,
                )
                return

        machine = dispatched_machine.get(job_id)
        if machine is None:
            raise SimulationError(f"cannot reject job {job_id}: it was never dispatched")
        ms = state.machines[machine]
        if job_id not in ms.pending:
            raise SimulationError(
                f"cannot reject job {job_id}: not pending on machine {machine}"
            )
        ms.pending.remove(job_id)
        job = state.job(job_id)
        records[job_id] = JobRecord(
            job_id=job_id,
            weight=job.weight,
            release=job.release,
            machine=machine,
            start=None,
            completion=None,
            rejected=True,
            rejection_time=t,
            rejection_reason=rejection.reason,
        )

    def _start_idle_machines(
        self,
        t: float,
        policy: SpeedScalingPolicy,
        state: EngineState,
        queue: EventQueue,
    ) -> None:
        for ms in state.machines:
            if ms.running is not None or not ms.pending:
                continue
            decision = policy.select_next(t, ms.index, state)
            if decision is None:
                continue
            if decision.job_id not in ms.pending:
                raise SimulationError(
                    f"policy {policy.name!r} started job {decision.job_id} which is not pending "
                    f"on machine {ms.index}"
                )
            job = state.job(decision.job_id)
            volume = job.size_on(ms.index)
            duration = volume / decision.speed
            if not math.isfinite(duration):
                raise SimulationError(
                    f"job {decision.job_id} has infinite duration on machine {ms.index}"
                )
            ms.pending.remove(decision.job_id)
            ms.running = RunningInfo(
                job=job, start=t, finish=t + duration, speed=decision.speed
            )
            queue.push_completion(t + duration, decision.job_id, ms.index, ms.version)


def run_speed_policy(instance: Instance, policy: SpeedScalingPolicy) -> SimulationResult:
    """Convenience wrapper: simulate ``policy`` on ``instance``."""
    return SpeedScalingEngine(instance).run(policy)
