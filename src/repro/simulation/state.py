"""Read-only runtime state exposed to scheduling policies.

The engines own all mutation; policies observe the state through
:class:`EngineState` and return decisions.  This keeps the paper's algorithms,
the baselines and the ablations side-effect free with respect to the engine's
bookkeeping, which in turn makes the validators meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.exceptions import SimulationError
from repro.simulation.instance import Instance
from repro.simulation.job import Job


@dataclass
class RunningInfo:
    """Information about the job currently executing on a machine."""

    job: Job
    start: float
    finish: float
    speed: float

    def remaining_time(self, t: float) -> float:
        """Wall-clock time still needed after time ``t`` (0 if already done)."""
        return max(0.0, self.finish - t)

    def remaining_work(self, t: float) -> float:
        """Remaining processing volume after time ``t`` (q_ik(t) in the paper)."""
        return self.remaining_time(t) * self.speed

    def elapsed(self, t: float) -> float:
        """Time the job has already been running at time ``t``."""
        return max(0.0, min(t, self.finish) - self.start)


@dataclass
class MachineState:
    """Mutable per-machine runtime state (owned by the engine)."""

    index: int
    pending: list[int] = field(default_factory=list)
    running: RunningInfo | None = None
    version: int = 0

    def is_idle(self) -> bool:
        """``True`` when no job is executing on the machine."""
        return self.running is None


class EngineState:
    """Snapshot view of the simulation handed to policies.

    Policies may call the read accessors freely; they must not mutate the
    underlying lists (the engine treats any such mutation as a bug).
    """

    def __init__(self, instance: Instance) -> None:
        self.instance = instance
        self.time: float = 0.0
        self._jobs: dict[int, Job] = {job.id: job for job in instance.jobs}
        self.machines: list[MachineState] = [
            MachineState(index=i) for i in range(instance.num_machines)
        ]

    # -- job / machine accessors ---------------------------------------------------

    @property
    def num_machines(self) -> int:
        """Number of machines in the instance."""
        return len(self.machines)

    def job(self, job_id: int) -> Job:
        """Look up a job by id."""
        try:
            return self._jobs[job_id]
        except KeyError as exc:
            raise SimulationError(f"unknown job id {job_id}") from exc

    def pending_ids(self, machine: int) -> tuple[int, ...]:
        """Ids of jobs dispatched to ``machine`` that are waiting (not running)."""
        return tuple(self._machine(machine).pending)

    def pending_jobs(self, machine: int) -> list[Job]:
        """Waiting jobs of ``machine`` in dispatch order."""
        return [self._jobs[j] for j in self._machine(machine).pending]

    def running(self, machine: int) -> RunningInfo | None:
        """Info on the job currently executing on ``machine`` (``None`` if idle)."""
        return self._machine(machine).running

    def is_idle(self, machine: int) -> bool:
        """``True`` when ``machine`` executes nothing."""
        return self._machine(machine).is_idle()

    def queue_size(self, machine: int) -> int:
        """Number of pending (waiting) jobs on ``machine``."""
        return len(self._machine(machine).pending)

    def pending_total_size(self, machine: int) -> float:
        """Total processing time of waiting jobs on ``machine`` (their size there)."""
        return sum(self._jobs[j].size_on(machine) for j in self._machine(machine).pending)

    def pending_total_weight(self, machine: int) -> float:
        """Total weight of waiting jobs on ``machine``."""
        return sum(self._jobs[j].weight for j in self._machine(machine).pending)

    def all_pending(self) -> Iterable[tuple[int, int]]:
        """Yield ``(machine, job_id)`` pairs for every waiting job."""
        for ms in self.machines:
            for job_id in ms.pending:
                yield ms.index, job_id

    # -- internal ------------------------------------------------------------------

    def _machine(self, machine: int) -> MachineState:
        if not (0 <= machine < len(self.machines)):
            raise SimulationError(
                f"machine index {machine} out of range [0, {len(self.machines)})"
            )
        return self.machines[machine]
