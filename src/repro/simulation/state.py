"""Read-only runtime state exposed to scheduling policies.

The engines own all mutation; policies observe the state through
:class:`EngineState` and return decisions.  This keeps the paper's algorithms,
the baselines and the ablations side-effect free with respect to the engine's
bookkeeping, which in turn makes the validators meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.exceptions import SimulationError
from repro.simulation.instance import Instance
from repro.simulation.job import Job

if TYPE_CHECKING:
    from repro.simulation.indexed import IndexedPending, PendingPrefixStats

#: Queue length above which :meth:`EngineState.pending_spt_stats` switches
#: from the dispatch-order scan to the Fenwick prefix query.  The scan is
#: cheaper for the short queues the rejection rules maintain on smooth
#: traffic; the Fenwicks win as soon as queues build up.
PREFIX_SCAN_CUTOFF = 16


class PendingSet:
    """Insertion-ordered set of pending job ids with O(1) membership and removal.

    Semantically a list of job ids in dispatch order (which is what policies
    iterate), but backed by a dict so the engine's membership tests and
    removals are constant time — the difference between O(n) and O(n^2)
    bookkeeping on 100k-job instances.  The mutating surface mirrors the
    ``list`` methods the engine (and a few tests) use.
    """

    __slots__ = ("_items",)

    def __init__(self, ids: Iterable[int] = ()) -> None:
        self._items: dict[int, None] = dict.fromkeys(ids)

    def append(self, job_id: int) -> None:
        """Add a job id at the end of the dispatch order."""
        self._items[job_id] = None

    def extend(self, ids: Iterable[int]) -> None:
        """Append every id in ``ids`` in order."""
        for job_id in ids:
            self._items[job_id] = None

    def remove(self, job_id: int) -> None:
        """Remove a job id; raises ``ValueError`` when absent (list semantics)."""
        try:
            del self._items[job_id]
        except KeyError:
            raise ValueError(f"job id {job_id} not pending") from None

    def __contains__(self, job_id: object) -> bool:
        return job_id in self._items

    def __iter__(self) -> Iterator[int]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PendingSet({list(self._items)!r})"


@dataclass(slots=True)
class RunningInfo:
    """Information about the job currently executing on a machine."""

    job: Job
    start: float
    finish: float
    speed: float

    def remaining_time(self, t: float) -> float:
        """Wall-clock time still needed after time ``t`` (0 if already done)."""
        return max(0.0, self.finish - t)

    def remaining_work(self, t: float) -> float:
        """Remaining processing volume after time ``t`` (q_ik(t) in the paper)."""
        return self.remaining_time(t) * self.speed

    def elapsed(self, t: float) -> float:
        """Time the job has already been running at time ``t``."""
        return max(0.0, min(t, self.finish) - self.start)


@dataclass(slots=True)
class MachineState:
    """Mutable per-machine runtime state (owned by the engine)."""

    index: int
    pending: PendingSet = field(default_factory=PendingSet)
    running: RunningInfo | None = None
    version: int = 0

    def is_idle(self) -> bool:
        """``True`` when no job is executing on the machine."""
        return self.running is None


class EngineState:
    """Snapshot view of the simulation handed to policies.

    Policies may call the read accessors freely; they must not mutate the
    underlying lists (the engine treats any such mutation as a bug).
    """

    def __init__(self, instance: Instance) -> None:
        self.instance = instance
        self.time: float = 0.0
        self._jobs: dict[int, Job] = {job.id: job for job in instance.jobs}
        self.machines: list[MachineState] = [
            MachineState(index=i) for i in range(instance.num_machines)
        ]
        #: Priority key of the running policy (``priority_key(job, machine)``),
        #: installed by the engine when the policy declares a static key.
        self._priority_key: Callable[[Job, int], tuple] | None = None
        #: Lazily-invalidated per-machine heaps over the pending sets; ``None``
        #: in scan mode or when the policy has no static key.
        self._index: "IndexedPending | None" = None
        #: Fenwick order statistics over the priority order; materialised
        #: lazily (same in both dispatch modes) the first time a pending set
        #: outgrows :data:`PREFIX_SCAN_CUTOFF`, so smooth workloads whose
        #: queues stay short never pay for rank building or tree updates.
        self.prefix_stats: "PendingPrefixStats | None" = None
        self._stats_factory: Callable[[], "PendingPrefixStats"] | None = None
        #: Per-machine pending job ids outside the materialised rank
        #: universe (streaming ingestion after materialisation).  While a
        #: machine has any, its prefix queries fall back to the scan;
        #: cleared on every rebuild.
        self._stats_unranked: list[set[int]] = [set() for _ in range(instance.num_machines)]
        #: ``True`` while an engine drives this state (mutations flow through
        #: :meth:`add_pending`/:meth:`remove_pending`, so the running totals
        #: below are trustworthy).
        self.engine_attached = False
        #: Engine-maintained total processing time of each machine's pending
        #: set (the job's size *on that machine*).  Incremental float sums:
        #: deterministic, may differ from a fresh scan in the last bits.
        self._size_sums: list[float] = [0.0] * instance.num_machines

    # -- indexed dispatch ------------------------------------------------------------

    def install_priority(
        self,
        key_fn: Callable[[Job, int], tuple] | None,
        index: "IndexedPending | None",
        stats_factory: Callable[[], "PendingPrefixStats"] | None = None,
    ) -> None:
        """Engine hook: install the policy's static priority key (and heaps).

        With ``index`` set, :meth:`pending_argmin` answers from the heaps;
        with only ``key_fn`` set it scans the pending set — same argmin,
        different mechanics (the scan reference path used by the equivalence
        tests).  ``stats_factory`` builds the Fenwick order statistics on
        first demand; it is mode-independent: it serves the dispatch
        surrogates (``lambda_ij``), not the argmin.
        """
        self._priority_key = key_fn
        self._index = index
        self._stats_factory = stats_factory
        self.engine_attached = True

    def register_job(self, job: Job) -> None:
        """Engine hook: make ``job`` known to the state.

        The batch path pre-registers every job of the instance at
        construction; streaming sessions register jobs as they are ingested.
        Re-registering an already-known id is a no-op overwrite that keeps
        the registration order (``dict`` insertion order), which is what the
        lazily-built prefix-rank universe iterates.

        Jobs registered after the Fenwick prefix stats materialised are not
        part of their rank universe; :meth:`add_pending` tracks them aside
        and :meth:`pending_prefix` serves affected machines by scan until
        the amortised rebuild policy rebuilds the trees (never hit by the
        batch path, where every registration precedes the first event).
        """
        self._jobs[job.id] = job

    def add_pending(self, machine: int, job: Job) -> None:
        """Engine hook: ``job`` was dispatched to ``machine`` and now waits there.

        Keeps every installed structure in sync: the authoritative pending
        set, the running size total, the select-next heap and the prefix
        Fenwicks.  All engine-side pending mutations go through here and
        :meth:`remove_pending`.
        """
        ms = self.machines[machine]
        ms.pending.append(job.id)
        size = job.sizes[machine]
        self._size_sums[machine] += size
        if self._index is not None:
            self._index.push(machine, job)
        if self.prefix_stats is not None:
            if self.prefix_stats.knows(job.id):
                self.prefix_stats.add(machine, job.id, size)
            else:
                self._stats_unranked[machine].add(job.id)

    def remove_pending(self, machine: int, job_id: int) -> None:
        """Engine hook: the pending job started or was rejected."""
        ms = self.machines[machine]
        ms.pending.remove(job_id)
        size = self._jobs[job_id].sizes[machine]
        self._size_sums[machine] -= size
        # The select-next heaps invalidate lazily: the stale entry is skipped
        # when it surfaces in argmin.  The Fenwicks support true deletion.
        if self.prefix_stats is not None:
            unranked = self._stats_unranked[machine]
            if unranked and job_id in unranked:
                unranked.discard(job_id)
            else:
                self.prefix_stats.remove(machine, job_id, size)

    def pending_size_sum(self, machine: int) -> float:
        """Engine-maintained total pending processing time on ``machine``.

        O(1); equal to :meth:`pending_total_size` up to float accumulation
        order.  Only meaningful while an engine drives the state (direct
        mutations of ``machines[i].pending`` bypass the running total).
        """
        return self._size_sums[machine]

    def pending_spt_stats(self, machine: int, job: Job) -> tuple[float, int]:
        """``(waiting size sum, succeeding count)`` of ``job`` vs the pending set.

        The two order statistics the SPT-ordered dispatch surrogates need
        (``lambda_ij``'s waiting term and its delay multiplier): the total
        size of pending jobs at or before ``job`` in the SPT order
        ``(size on machine, release, id)``, and the number strictly after it.
        The job itself is never counted.

        Short queues are scanned in dispatch order — bit-identical to the
        reference ``split_by_precedence`` + ``sum`` formulation, and correct
        on detached states; past :data:`PREFIX_SCAN_CUTOFF` the answer comes
        from the Fenwick trees via :meth:`pending_prefix` (only installed for
        policies whose ``priority_key`` *is* the SPT order).
        """
        pending = self._machine(machine).pending
        if not pending:
            return 0.0, 0
        prefix = self.pending_prefix(machine, job.id)
        if prefix is not None:
            preceding, waiting = prefix
            return waiting, len(pending) - preceding
        jobs = self._jobs
        p_ij = job.sizes[machine]
        key = (p_ij, job.release, job.id)
        job_id = job.id
        waiting = 0.0
        succeeding = 0
        for other_id in pending:
            if other_id == job_id:
                continue
            other = jobs[other_id]
            p_other = other.sizes[machine]
            if (p_other, other.release, other_id) <= key:
                waiting += p_other
            else:
                succeeding += 1
        return waiting, succeeding

    def pending_prefix(self, machine: int, job_id: int) -> tuple[int, float] | None:
        """Fenwick ``(count, size sum)`` of pending jobs preceding ``job_id``.

        Returns ``None`` when the caller should scan instead: the queue is
        within :data:`PREFIX_SCAN_CUTOFF` (a dispatch-order scan is cheaper
        *and* reproduces the reference float summation bit-for-bit) or the
        policy never opted into prefix stats.  Past the cutoff the Fenwick
        trees answer in O(log n) — same count, same sum up to float
        accumulation order, fully deterministic, and shared by both dispatch
        modes, so indexed and scan runs stay byte-identical.  Assumes the job
        itself is not pending (true during dispatch).

        The trees are materialised on first use: rank building and tree
        updates cost nothing on workloads whose queues stay short.
        """
        if len(self.machines[machine].pending) <= PREFIX_SCAN_CUTOFF:
            return None
        stats = self.prefix_stats
        if stats is None:
            factory = self._stats_factory
            if factory is None:
                return None
            stats = self._materialise_stats(factory)
        if self._stats_unranked[machine] or not stats.knows(job_id):
            # Streaming ingestion grew the job universe past what the trees
            # were ranked over.  Rebuilding per new job would be quadratic
            # on a bursty serve stream, so rebuilds are amortised: only once
            # the registered universe has doubled (geometric growth, O(n
            # log n) total rebuild work); until then the affected queries
            # take the scan fallback, which is correct at any queue length.
            if len(self._jobs) < 2 * stats.universe_size:
                return None
            stats = self._materialise_stats(self._stats_factory)
        return stats.prefix_of(machine, job_id)

    def _materialise_stats(self, factory: Callable[[], "PendingPrefixStats"]) -> "PendingPrefixStats":
        """Build the Fenwick trees and load the current pending sets into them.

        Bulk-adds follow machine order then dispatch order, so right after
        materialisation every tree sum equals the dispatch-order scan sum
        exactly; drift (float accumulation order) only appears with later
        removals, and identically in both dispatch modes.

        The factory is kept installed: streaming ingestion grows the job
        universe, and :meth:`pending_prefix`'s amortised rebuild policy
        re-invokes it here over the grown universe (clearing the unranked
        overflow sets — every registered job is rankable again).
        """
        stats = factory()
        jobs = self._jobs
        for ms in self.machines:
            for job_id in ms.pending:
                stats.add(ms.index, job_id, jobs[job_id].sizes[ms.index])
        self.prefix_stats = stats
        for unranked in self._stats_unranked:
            unranked.clear()
        return stats

    def pending_argmin(
        self, machine: int, key_fn: Callable[[Job, int], tuple] | None = None
    ) -> Job | None:
        """The pending job minimising the policy's priority key on ``machine``.

        Policies whose local order is static (SPT, density, release order)
        implement ``select_next`` as
        ``state.pending_argmin(machine, self.priority_key)``; the engine
        decides whether the argmin is found through the heaps or by a linear
        scan.  On a detached state (no engine attached) the passed ``key_fn``
        drives the scan, so policies keep working outside an engine.  Ties
        cannot occur: every key ends in the job id.
        """
        ms = self._machine(machine)
        pending = ms.pending
        if not pending:
            return None
        if self._index is not None:
            return self._index.argmin(machine, pending)
        key_fn = self._priority_key or key_fn
        if key_fn is None:
            raise SimulationError(
                "pending_argmin requires a priority key (from the policy's "
                "priority_key hook or the key_fn argument)"
            )
        jobs = self._jobs
        best: Job | None = None
        best_key: tuple | None = None
        for job_id in pending:
            job = jobs[job_id]
            key = key_fn(job, machine)
            if best_key is None or key < best_key:
                best, best_key = job, key
        return best

    # -- job / machine accessors ---------------------------------------------------

    @property
    def num_machines(self) -> int:
        """Number of machines in the instance."""
        return len(self.machines)

    def job(self, job_id: int) -> Job:
        """Look up a job by id."""
        try:
            return self._jobs[job_id]
        except KeyError as exc:
            raise SimulationError(f"unknown job id {job_id}") from exc

    @property
    def jobs_by_id(self) -> dict[int, Job]:
        """Read-only id -> :class:`Job` mapping (do not mutate)."""
        return self._jobs

    def machine_pending(self, machine: int) -> PendingSet:
        """The pending-id set of ``machine`` in dispatch order (do not mutate).

        This is the zero-copy accessor the hot dispatch loops iterate;
        :meth:`pending_jobs` materialises the same jobs as a list.
        """
        return self._machine(machine).pending

    def pending_ids(self, machine: int) -> tuple[int, ...]:
        """Ids of jobs dispatched to ``machine`` that are waiting (not running)."""
        return tuple(self._machine(machine).pending)

    def pending_jobs(self, machine: int) -> list[Job]:
        """Waiting jobs of ``machine`` in dispatch order."""
        return [self._jobs[j] for j in self._machine(machine).pending]

    def running(self, machine: int) -> RunningInfo | None:
        """Info on the job currently executing on ``machine`` (``None`` if idle)."""
        return self._machine(machine).running

    def is_idle(self, machine: int) -> bool:
        """``True`` when ``machine`` executes nothing."""
        return self._machine(machine).is_idle()

    def queue_size(self, machine: int) -> int:
        """Number of pending (waiting) jobs on ``machine``."""
        return len(self._machine(machine).pending)

    def pending_total_size(self, machine: int) -> float:
        """Total processing time of waiting jobs on ``machine`` (their size there)."""
        return sum(self._jobs[j].size_on(machine) for j in self._machine(machine).pending)

    def pending_total_weight(self, machine: int) -> float:
        """Total weight of waiting jobs on ``machine``."""
        return sum(self._jobs[j].weight for j in self._machine(machine).pending)

    def all_pending(self) -> Iterable[tuple[int, int]]:
        """Yield ``(machine, job_id)`` pairs for every waiting job."""
        for ms in self.machines:
            for job_id in ms.pending:
                yield ms.index, job_id

    # -- internal ------------------------------------------------------------------

    def _machine(self, machine: int) -> MachineState:
        if not (0 <= machine < len(self.machines)):
            raise SimulationError(
                f"machine index {machine} out of range [0, {len(self.machines)})"
            )
        return self.machines[machine]
