"""Objective-value computation over :class:`~repro.simulation.schedule.SimulationResult`.

All metrics follow the paper's accounting conventions:

* the flow time of a rejected job is the time between its release and the
  moment the algorithm decides to reject it;
* energy includes the energy spent on partially executed (rejected) jobs;
* the rejection budget of Theorem 1 is measured in *number of jobs*, the one
  of Theorem 2 in *total weight*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.simulation.schedule import SimulationResult


def total_flow_time(result: SimulationResult, include_rejected: bool = True) -> float:
    """Sum of flow times over all jobs (optionally excluding rejected ones)."""
    total = 0.0
    for record in result.records.values():
        if record.rejected and not include_rejected:
            continue
        total += record.flow_time
    return total


def total_weighted_flow_time(result: SimulationResult, include_rejected: bool = True) -> float:
    """Sum of ``w_j * F_j`` over all jobs (optionally excluding rejected ones)."""
    total = 0.0
    for record in result.records.values():
        if record.rejected and not include_rejected:
            continue
        total += record.weighted_flow_time
    return total


def total_energy(result: SimulationResult) -> float:
    """Total energy ``sum_i integral P_i(s_i(t)) dt`` of the schedule.

    Computed from the execution intervals using each machine's power exponent;
    includes energy spent on jobs that were later rejected while running.
    """
    instance = result.instance
    return sum(iv.energy(instance.machines[iv.machine].alpha) for iv in result.intervals)


def flow_plus_energy(result: SimulationResult, include_rejected: bool = True) -> float:
    """Weighted flow time plus energy (the Section 3 objective)."""
    return total_weighted_flow_time(result, include_rejected) + total_energy(result)


def rejected_count(result: SimulationResult) -> int:
    """Number of rejected jobs."""
    return sum(1 for record in result.records.values() if record.rejected)


def rejected_fraction(result: SimulationResult) -> float:
    """Fraction of jobs rejected (Theorem 1 budget)."""
    n = len(result.records)
    if n == 0:
        return 0.0
    return rejected_count(result) / n


def rejected_weight(result: SimulationResult) -> float:
    """Total weight of rejected jobs."""
    return sum(record.weight for record in result.records.values() if record.rejected)


def rejected_weight_fraction(result: SimulationResult) -> float:
    """Fraction of total weight rejected (Theorem 2 budget)."""
    total = sum(record.weight for record in result.records.values())
    if total == 0:
        return 0.0
    return rejected_weight(result) / total


def max_flow_time(result: SimulationResult, include_rejected: bool = True) -> float:
    """Maximum flow time over the (optionally non-rejected) jobs."""
    flows = [
        record.flow_time
        for record in result.records.values()
        if include_rejected or not record.rejected
    ]
    return max(flows, default=0.0)


def mean_stretch(result: SimulationResult) -> float:
    """Mean of flow time divided by the job's best processing time (completed jobs)."""
    instance = result.instance
    jobs = {job.id: job for job in instance.jobs}
    stretches = []
    for record in result.completed_records():
        best = jobs[record.job_id].min_size()
        if best > 0:
            stretches.append(record.flow_time / best)
    if not stretches:
        return 0.0
    return sum(stretches) / len(stretches)


def machine_utilisation(result: SimulationResult) -> list[float]:
    """Busy-time fraction of each machine over the schedule's makespan."""
    makespan = result.makespan()
    if makespan <= 0:
        return [0.0] * result.instance.num_machines
    return [
        result.machine_busy_time(i) / makespan for i in range(result.instance.num_machines)
    ]


@dataclass(frozen=True)
class ResultSummary:
    """A flat bundle of the metrics used throughout the experiment reports."""

    algorithm: str
    num_jobs: int
    num_machines: int
    total_flow_time: float
    total_weighted_flow_time: float
    total_energy: float
    flow_plus_energy: float
    rejected_count: int
    rejected_fraction: float
    rejected_weight_fraction: float
    max_flow_time: float
    makespan: float

    def as_dict(self) -> dict:
        """Plain-dict view (stable key order for reporting)."""
        return {
            "algorithm": self.algorithm,
            "num_jobs": self.num_jobs,
            "num_machines": self.num_machines,
            "total_flow_time": self.total_flow_time,
            "total_weighted_flow_time": self.total_weighted_flow_time,
            "total_energy": self.total_energy,
            "flow_plus_energy": self.flow_plus_energy,
            "rejected_count": self.rejected_count,
            "rejected_fraction": self.rejected_fraction,
            "rejected_weight_fraction": self.rejected_weight_fraction,
            "max_flow_time": self.max_flow_time,
            "makespan": self.makespan,
        }


def summarize(result: SimulationResult) -> ResultSummary:
    """Compute every standard metric of a simulation result at once."""
    return ResultSummary(
        algorithm=result.algorithm,
        num_jobs=len(result.records),
        num_machines=result.instance.num_machines,
        total_flow_time=total_flow_time(result),
        total_weighted_flow_time=total_weighted_flow_time(result),
        total_energy=total_energy(result),
        flow_plus_energy=flow_plus_energy(result),
        rejected_count=rejected_count(result),
        rejected_fraction=rejected_fraction(result),
        rejected_weight_fraction=rejected_weight_fraction(result),
        max_flow_time=max_flow_time(result),
        makespan=result.makespan(),
    )
