"""Schedule output containers produced by the simulation engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.exceptions import SimulationError
from repro.simulation.instance import Instance


@dataclass(frozen=True, slots=True)
class ExecutionInterval:
    """One contiguous execution of (part of) a job on a machine.

    A non-preemptive schedule has exactly one interval per completed job.
    Jobs rejected by Rule 1 while running leave a truncated interval
    (``completed=False``) that still consumes machine time and, in the
    speed-scaling model, energy.
    """

    machine: int
    job_id: int
    start: float
    end: float
    speed: float = 1.0
    completed: bool = True

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError(
                f"interval for job {self.job_id} ends before it starts ({self.end} < {self.start})"
            )
        if self.speed <= 0:
            raise SimulationError(f"interval speed must be positive, got {self.speed}")

    @property
    def duration(self) -> float:
        """Wall-clock length of the interval."""
        return self.end - self.start

    @property
    def work(self) -> float:
        """Processing volume executed during the interval (duration x speed)."""
        return self.duration * self.speed

    def energy(self, alpha: float) -> float:
        """Energy spent over the interval under power ``P(s) = s**alpha``."""
        return (self.speed**alpha) * self.duration


@dataclass(frozen=True, slots=True)
class JobRecord:
    """Final outcome of one job in a simulation.

    Exactly one of the following holds:

    * completed: ``completion`` is set, ``rejected`` is ``False``;
    * rejected: ``rejected`` is ``True`` and ``rejection_time`` is set
      (``completion`` is ``None``);
    * never started nor rejected (only possible for malformed policies); the
      validator flags this case.
    """

    job_id: int
    weight: float
    release: float
    machine: int | None
    start: float | None
    completion: float | None
    rejected: bool
    rejection_time: float | None = None
    rejection_reason: str | None = None

    @property
    def finished(self) -> bool:
        """``True`` when the job completed normally."""
        return self.completion is not None and not self.rejected

    @property
    def flow_time(self) -> float:
        """Flow time as defined by the paper.

        For a completed job this is ``C_j - r_j``; for a rejected job the
        paper defines it as the time between release and rejection.
        """
        if self.rejected:
            if self.rejection_time is None:
                raise SimulationError(f"rejected job {self.job_id} has no rejection time")
            return self.rejection_time - self.release
        if self.completion is None:
            raise SimulationError(f"job {self.job_id} neither completed nor rejected")
        return self.completion - self.release

    @property
    def weighted_flow_time(self) -> float:
        """``w_j * F_j``."""
        return self.weight * self.flow_time


@dataclass
class SimulationResult:
    """Everything an engine run produces.

    Attributes
    ----------
    instance:
        The input instance (kept for metric computation and validation).
    records:
        Mapping from job id to its :class:`JobRecord`.
    intervals:
        Every execution interval, in chronological order of start time.
    algorithm:
        Label of the policy that produced the schedule.
    extras:
        Free-form per-algorithm diagnostics (e.g. dual objective values,
        counter statistics); never required by the metrics.
    """

    instance: Instance
    records: dict[int, JobRecord]
    intervals: list[ExecutionInterval]
    algorithm: str = "unknown"
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        job_ids = {job.id for job in self.instance.jobs}
        for job_id in self.records:
            if job_id not in job_ids:
                raise SimulationError(f"record for unknown job id {job_id}")

    # -- convenience accessors -----------------------------------------------------

    def record(self, job_id: int) -> JobRecord:
        """Record of a single job."""
        return self.records[job_id]

    def completed_records(self) -> list[JobRecord]:
        """Records of jobs that completed normally."""
        return [r for r in self.records.values() if r.finished]

    def rejected_records(self) -> list[JobRecord]:
        """Records of rejected jobs."""
        return [r for r in self.records.values() if r.rejected]

    def intervals_on(self, machine: int) -> list[ExecutionInterval]:
        """Execution intervals of one machine, sorted by start time."""
        return sorted(
            (iv for iv in self.intervals if iv.machine == machine), key=lambda iv: iv.start
        )

    def machine_busy_time(self, machine: int) -> float:
        """Total busy time of a machine."""
        return sum(iv.duration for iv in self.intervals if iv.machine == machine)

    def makespan(self) -> float:
        """Completion time of the last interval (0 for an empty schedule)."""
        return max((iv.end for iv in self.intervals), default=0.0)

    def __iter__(self) -> Iterator[JobRecord]:
        return iter(self.records.values())
