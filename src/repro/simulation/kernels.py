"""Optional-JIT kernels for the vectorized dispatch backend.

The vectorized backend keeps two interchangeable layouts for its Fenwick
order statistics (:class:`~repro.simulation.soa.VectorizedPrefixStats`):

* ``"lists"`` — plain Python lists, walked by inlined Python loops.  This is
  the default without numba: list indexing from bytecode beats numpy scalar
  indexing by a wide margin, so the pure-Python walk *is* the fast fallback.
* ``"numpy"`` — contiguous ``float64``/``int64`` arrays, walked by the
  kernels below.  With numba importable the kernels are JIT-compiled and the
  array layout wins; without numba they still run as plain Python over numpy
  scalars — slower, but bit-identical, which is what the fallback-equivalence
  tests pin down.

Both layouts perform float additions in the exact same (Fenwick-node) order,
so results are byte-identical across layouts and JIT states.  numba is never
required: :data:`HAVE_NUMBA` reports availability and :func:`maybe_jit`
degrades to the identity decorator.
"""

from __future__ import annotations

import os

from repro.exceptions import InvalidParameterError

__all__ = [
    "HAVE_NUMBA",
    "KERNEL_LAYOUT_ENV_VAR",
    "maybe_jit",
    "active_layout",
    "fenwick_prefix",
    "fenwick_update",
]

#: Environment override for the Fenwick tree layout used by the vectorized
#: backend: ``auto`` (numpy iff numba is importable), ``numpy`` or ``lists``.
#: The layout-equivalence tests force each side explicitly.
KERNEL_LAYOUT_ENV_VAR = "REPRO_VECTORIZED_KERNELS"

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:
    numba = None
    HAVE_NUMBA = False


def maybe_jit(fn):
    """``numba.njit(cache=True)`` when numba is importable, identity otherwise.

    Compilation is deferred to the first call either way, so importing this
    module costs nothing on the (common) numba-less path.
    """
    if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
        return numba.njit(cache=True)(fn)
    return fn


def active_layout() -> str:
    """The Fenwick layout the vectorized backend should use right now.

    ``auto`` (the default) picks ``numpy`` exactly when the kernels are
    JIT-compiled; anything else would pay numpy scalar-indexing overhead in
    the hot walk for no benefit.  An unknown value raises immediately rather
    than silently running a different layout than the operator asked for.
    """
    choice = os.environ.get(KERNEL_LAYOUT_ENV_VAR, "auto")
    if choice == "auto":
        return "numpy" if HAVE_NUMBA else "lists"
    if choice not in ("numpy", "lists"):
        raise InvalidParameterError(
            f"{KERNEL_LAYOUT_ENV_VAR} must be one of ('auto', 'numpy', 'lists'), "
            f"got {choice!r}"
        )
    return choice


def _fenwick_prefix(count_tree, size_tree, position):
    """``(count, size sum)`` over Fenwick nodes below ``position``.

    The node visit order (descending node value = ascending set bit) matches
    :meth:`~repro.simulation.indexed.PendingPrefixStats.stats_below` exactly,
    so float accumulation is bit-identical to the list layout.
    """
    count = 0
    total = 0.0
    while position > 0:
        count += count_tree[position]
        total += size_tree[position]
        position -= position & -position
    return count, total


def _fenwick_update(count_tree, size_tree, position, n, size, delta):
    """Point update of both trees at ``position`` (1-based)."""
    while position <= n:
        size_tree[position] += size
        count_tree[position] += delta
        position += position & -position


fenwick_prefix = maybe_jit(_fenwick_prefix)
fenwick_update = maybe_jit(_fenwick_update)
