"""Source normalisation and machine partitioning for shard-and-merge solving.

:func:`repro.parallel.shard_solve` accepts three source shapes — a fully
built :class:`~repro.simulation.instance.Instance`, a trace file path, or an
iterable of :class:`~repro.workloads.generators.JobChunk` blocks (what the
scenario catalog and the chunked generators produce).  This module turns any
of them into the one canonical form the parallel pipeline works on: a
materialised chunk list with **explicit job ids** plus the machine fleet.

Explicit ids matter twice: hash partitioning must be a pure function of the
id (so the partition is stable under re-chunking), and the per-shard decision
streams must name jobs by their *global* ids so the merged stream reads like
one coordinator's.  Machines are partitioned strided (shard ``i`` of ``k``
owns global machines ``{j : j % k == i}``), each shard renumbering its group
to the consecutive local ids the :class:`Instance` invariant requires;
:func:`restrict_chunk` slices the size matrix down to a group and rejects
partitions that leave any job with no finite size (an infeasible shard).
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.simulation.instance import Instance
from repro.simulation.machine import Machine
from repro.utils.serialization import stable_hash
from repro.workloads.generators import JobChunk
from repro.workloads.traces import chunks_from_jobs, read_trace_chunks

__all__ = [
    "machine_groups",
    "normalise_source",
    "restrict_chunk",
    "source_fingerprint",
]


def machine_groups(num_machines: int, num_shards: int) -> tuple[tuple[int, ...], ...]:
    """Strided machine partition: shard ``i`` owns ``{j : j % num_shards == i}``.

    Striding (rather than contiguous blocks) keeps heterogeneous fleets
    balanced — speed factors that trend along the machine index spread
    evenly across shards.  Every shard must own at least one machine.
    """
    if num_shards <= 0:
        raise InvalidParameterError(f"num_shards must be positive, got {num_shards}")
    if num_shards > num_machines:
        raise InvalidParameterError(
            f"cannot split {num_machines} machine(s) into {num_shards} shards; "
            "every shard needs at least one machine"
        )
    return tuple(
        tuple(range(index, num_machines, num_shards)) for index in range(num_shards)
    )


def _fleet_for(
    chunks: "list[JobChunk]",
    machines: "int | Sequence[Machine] | None",
    alpha: float,
) -> tuple[Machine, ...]:
    if machines is None:
        width = next((c.sizes.shape[1] for c in chunks if len(c)), None)
        if width is None:
            raise InvalidParameterError(
                "empty job source: pass machines= to size the fleet explicitly"
            )
        return Machine.fleet(width, alpha=alpha)
    if isinstance(machines, int):
        return Machine.fleet(machines, alpha=alpha)
    fleet = tuple(machines)
    if not fleet or not all(isinstance(m, Machine) for m in fleet):
        raise InvalidParameterError(
            "machines must be a positive integer or a non-empty sequence of Machine"
        )
    return fleet


def _with_explicit_ids(chunks: Iterable[JobChunk]) -> list[JobChunk]:
    """Materialise a chunk stream, assigning effective ids where implicit.

    The assigned id is the job's global stream position (exactly what
    :meth:`JobChunk.job_ids` would report for a well-formed stream), made
    explicit so hash partitioning, decision streams and the merged artifact
    all name jobs identically regardless of how the source was chunked.
    """
    out: list[JobChunk] = []
    position = 0
    for chunk in chunks:
        if not (hasattr(chunk, "sizes") and hasattr(chunk, "validate")):
            raise InvalidParameterError(
                f"expected a stream of JobChunk blocks, got {type(chunk).__name__}"
            )
        chunk.validate()
        ids = (
            chunk.ids
            if chunk.ids is not None
            else np.arange(position, position + len(chunk), dtype=np.int64)
        )
        out.append(replace(chunk, ids=ids))
        position += len(chunk)
    return out


def normalise_source(
    source: "Instance | str | Path | Iterable[JobChunk]",
    machines: "int | Sequence[Machine] | None" = None,
    alpha: float = 3.0,
) -> tuple[list[JobChunk], tuple[Machine, ...]]:
    """Resolve any accepted job source into ``(chunks, fleet)``.

    * an :class:`Instance` contributes both jobs and fleet (``machines``
      must then be ``None`` — the instance already carries its machines);
    * a path is read as a trace file (format sniffed from the extension);
    * anything else is treated as an iterable of :class:`JobChunk` blocks.

    The returned chunks always carry explicit ids (see
    :func:`_with_explicit_ids`); the fleet defaults to identical unit
    machines matching the trace width.
    """
    if isinstance(source, Instance):
        if machines is not None:
            raise InvalidParameterError(
                "machines= only applies to trace/chunk sources; "
                "an Instance already carries its fleet"
            )
        chunks = _with_explicit_ids(chunks_from_jobs((0, job) for job in source.jobs))
        return chunks, source.machines
    if isinstance(source, (str, Path)):
        chunks = _with_explicit_ids(read_trace_chunks(source))
    else:
        chunks = _with_explicit_ids(source)
    fleet = _fleet_for(chunks, machines, alpha)
    width = next((c.sizes.shape[1] for c in chunks if len(c)), len(fleet))
    if width != len(fleet):
        raise InvalidParameterError(
            f"source jobs have {width} per-machine sizes but the fleet has "
            f"{len(fleet)} machine(s)"
        )
    return chunks, fleet


def source_fingerprint(chunks: Sequence[JobChunk], fleet: Sequence[Machine]) -> str:
    """Content hash of the normalised source (jobs + machines).

    A pure function of the job rows and the fleet — independent of chunking,
    of whether the source arrived as an instance, a trace file or a chunk
    stream, and of everything about how it will be solved.  Artifact keys
    are derived from this, so identical workloads share cache entries across
    entry points.
    """
    return stable_hash(
        {
            "machines": [machine.to_dict() for machine in fleet],
            "jobs": [job.to_dict() for chunk in chunks for job in chunk.jobs()],
        }
    )


def restrict_chunk(chunk: JobChunk, cols: Sequence[int], shard: int) -> JobChunk:
    """Slice a chunk's size matrix down to one shard's machine group.

    Column ``j`` of the result is the job's size on the group's ``j``-th
    machine (the shard's *local* machine ``j``).  A job left with no finite
    size anywhere in the group cannot run on this shard — the partition is
    infeasible and rejected up front rather than failing inside a worker.
    """
    index = np.asarray(cols, dtype=np.intp)
    sizes = np.ascontiguousarray(chunk.sizes[:, index])
    feasible = np.isfinite(sizes).any(axis=1)
    if not bool(feasible.all()):
        bad = int(chunk.job_ids()[int(np.flatnonzero(~feasible)[0])])
        raise InvalidParameterError(
            f"job {bad} has no finite size on shard {shard}'s machine group "
            f"{tuple(int(c) for c in cols)}; this partition makes the instance infeasible"
        )
    out = replace(chunk, sizes=sizes)
    out.validate()
    return out
