"""Shard-and-merge parallel solving: partition, fan out, merge, cache.

:func:`shard_solve` answers the ROADMAP's partitioned-coordination question
operationally: split one job stream across ``k`` independent
:class:`~repro.service.session.SchedulerSession` solvers (each owning a
disjoint machine group), run them across worker processes, and merge the
per-shard decision streams into one combined outcome with a merged
objective breakdown.

Determinism contract (enforced by tests and the CI ``shard-identity`` gate):

* the merged artifact is a pure function of
  ``(source, algorithm, params, k, partition)`` — byte-identical regardless
  of ``workers`` or result interleaving (workers compute, the coordinator
  persists, and every payload field is derived from per-shard state, never
  from arrival order);
* ``k == 1`` is byte-identical to plain :func:`repro.solve`: the single
  shard sees the same jobs with the same ids on the same fleet, and every
  merged-row field degenerates to the exact expression the batch facade
  evaluated (left-to-right ``sum()`` over one element is the identity; the
  rejection fractions divide the same floats).

Artifacts go into a content-addressed
:class:`~repro.campaigns.store.ArtifactStore` (one payload per shard plus
one merged payload), so re-runs are resumable: already-solved shards are
cache hits and only missing ones are recomputed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.campaigns.runner import run_mapped
from repro.campaigns.store import ArtifactStore
from repro.exceptions import InvalidParameterError, StreamingNotSupportedError
from repro.parallel.partition import (
    machine_groups,
    normalise_source,
    restrict_chunk,
    source_fingerprint,
)
from repro.parallel.tasks import (
    PARALLEL_SCHEMA_VERSION,
    ShardTask,
    artifact_keys,
    run_shard_task,
    shard_payload,
)
from repro.service.session import open_session
from repro.simulation.instance import Instance
from repro.simulation.machine import Machine
from repro.solvers.registry import get_solver
from repro.utils.serialization import jsonify
from repro.workloads.generators import JobChunk
from repro.workloads.traces import SHARD_MODES, shard as shard_stream

__all__ = [
    "ShardSolveResult",
    "merge_decision_streams",
    "shard_solve",
    "solve_to_store",
]

_IDENTITY_FIELDS = ("algorithm", "label", "model", "objective")


def merge_decision_streams(streams: Sequence[Sequence[Mapping]]) -> list[dict]:
    """Time-ordered k-way merge of per-shard decision streams.

    Each stream is already internally ordered (one session's event log);
    the merge interleaves them by event time, breaking ties toward the
    lower-indexed shard so the result is a deterministic function of the
    streams alone.  With one stream this is the identity.
    """
    merged: list[dict] = []
    heap = [
        (stream[0]["time"], index, 0)
        for index, stream in enumerate(streams)
        if stream
    ]
    heapq.heapify(heap)
    while heap:
        _, index, position = heapq.heappop(heap)
        stream = streams[index]
        merged.append(dict(stream[position]))
        position += 1
        if position < len(stream):
            heapq.heappush(heap, (stream[position]["time"], index, position))
    return merged


def _merged_totals(shard_totals: Sequence[Mapping]) -> dict:
    return {
        "num_jobs": sum(int(totals["num_jobs"]) for totals in shard_totals),
        "rejected_count": sum(int(totals["rejected_count"]) for totals in shard_totals),
        "rejected_weight": sum(totals["rejected_weight"] for totals in shard_totals),
        "total_weight": sum(totals["total_weight"] for totals in shard_totals),
    }


def _merged_row(shard_rows: Sequence[Mapping], totals: Mapping) -> dict:
    """Combine per-shard report rows into one merged row.

    Additive fields (objective value, every breakdown component, rejected
    count) sum left-to-right over shards; the rejection fractions recompute
    from the summed raw totals exactly as
    :mod:`repro.simulation.metrics` defines them.  At ``k == 1`` every
    expression degenerates to the plain solve's value bit-for-bit.
    """
    base = shard_rows[0]
    row: dict[str, Any] = {name: base[name] for name in _IDENTITY_FIELDS}
    row["objective_value"] = sum(r["objective_value"] for r in shard_rows)
    row["rejected_count"] = int(totals["rejected_count"])
    num_jobs = int(totals["num_jobs"])
    row["rejected_fraction"] = (
        totals["rejected_count"] / num_jobs if num_jobs != 0 else 0.0
    )
    row["rejected_weight_fraction"] = (
        totals["rejected_weight"] / totals["total_weight"]
        if totals["total_weight"] != 0
        else 0.0
    )
    for name in base:
        if name.startswith("breakdown_"):
            row[name] = sum(r[name] for r in shard_rows)
    return row


def _merged_payload(
    *,
    algorithm: str,
    params: Mapping[str, Any],
    fingerprint: str,
    num_shards: int,
    partition: str,
    shard_keys: Sequence[str],
    shard_payloads: Sequence[Mapping],
) -> dict:
    rows = [payload["row"] for payload in shard_payloads]
    totals = _merged_totals([payload["totals"] for payload in shard_payloads])
    return {
        "schema": PARALLEL_SCHEMA_VERSION,
        "kind": "merged",
        "algorithm": algorithm,
        "params": jsonify(dict(params)),
        "fingerprint": fingerprint,
        "num_shards": num_shards,
        "partition": partition,
        "machine_groups": [list(payload["machine_group"]) for payload in shard_payloads],
        "num_jobs": totals["num_jobs"],
        "engine_events": sum(int(payload["engine_events"]) for payload in shard_payloads),
        "shards": list(shard_keys),
        "shard_objectives": [row["objective_value"] for row in rows],
        "totals": totals,
        "row": _merged_row(rows, totals),
        "events": merge_decision_streams([payload["events"] for payload in shard_payloads]),
    }


@dataclass(frozen=True)
class ShardSolveResult:
    """Outcome of one :func:`shard_solve` (or :func:`solve_to_store`) call.

    ``payload`` is the merged artifact exactly as persisted; ``shard_rows``
    are the per-shard report rows; ``cached`` flags which shards were store
    hits (``durations`` holds ``None`` for those).  ``store_root`` is
    ``None`` for in-memory runs.
    """

    algorithm: str
    num_shards: int
    partition: str
    workers: int
    shard_keys: tuple[str, ...]
    merged_key: str
    payload: Mapping[str, Any]
    shard_rows: tuple[Mapping[str, Any], ...]
    cached: tuple[bool, ...]
    merged_cached: bool
    durations: tuple[float | None, ...]
    store_root: Path | None

    @property
    def row(self) -> dict:
        """Merged report row (same shape as ``SolveOutcome.as_row()``)."""
        return dict(self.payload["row"])

    @property
    def events(self) -> list[dict]:
        """Merged, time-ordered decision stream across all shards."""
        return list(self.payload["events"])

    @property
    def objective_value(self) -> float:
        return self.payload["row"]["objective_value"]

    @property
    def num_jobs(self) -> int:
        return int(self.payload["num_jobs"])

    @property
    def shard_objectives(self) -> tuple[float, ...]:
        return tuple(self.payload["shard_objectives"])

    def describe(self) -> str:
        """One-line human summary for the CLI."""
        computed = sum(1 for hit in self.cached if not hit)
        return (
            f"{self.algorithm} over {self.num_jobs} job(s) in {self.num_shards} "
            f"shard(s) [{self.partition}]: objective {self.objective_value:.6g}, "
            f"{computed} shard(s) computed, {len(self.cached) - computed} cached "
            f"[{self.merged_key}]"
        )


def _as_store(store: "ArtifactStore | str | Path | None") -> ArtifactStore | None:
    if store is None or isinstance(store, ArtifactStore):
        return store
    return ArtifactStore(store)


def shard_solve(
    source: "Instance | str | Path | Iterable[JobChunk]",
    algorithm: str = "rejection-flow",
    num_shards: int = 2,
    *,
    partition: str = "hash",
    workers: int = 1,
    dispatch: str | None = None,
    store: "ArtifactStore | str | Path | None" = None,
    machines: "int | Sequence[Machine] | None" = None,
    alpha: float = 3.0,
    **params: Any,
) -> ShardSolveResult:
    """Solve a job stream with ``num_shards`` independent parallel solvers.

    The stream is partitioned by :func:`repro.workloads.traces.shard` under
    ``partition`` (``"hash"`` — stable splitmix64 of the job id,
    ``"tenant"`` — jobs sharing a weight class stay together,
    ``"round-robin"`` — by stream position); the fleet is partitioned
    strided (shard ``i`` owns global machines ``{j : j % k == i}``).  Each
    shard runs a full :class:`~repro.service.session.SchedulerSession` over
    its sub-stream and local machine group; shards are mapped over
    ``workers`` processes via the campaign fan-out, and their decision
    streams are merged time-ordered into one combined outcome.

    With ``store`` set (an :class:`ArtifactStore` or a path), every shard
    payload and the merged payload are persisted content-addressed; re-runs
    skip already-solved shards.  ``store=None`` runs fully in memory.

    See the module docstring for the determinism contract.
    """
    spec = get_solver(algorithm)
    if not spec.supports_streaming:
        raise StreamingNotSupportedError(
            f"algorithm '{spec.algorithm_id}' does not support streaming sessions, "
            "which shard_solve requires"
        )
    if partition not in SHARD_MODES:
        raise InvalidParameterError(
            f"unknown partition '{partition}'; expected one of {SHARD_MODES}"
        )
    validated = spec.validate_params(params)
    chunks, fleet = normalise_source(source, machines=machines, alpha=alpha)
    groups = machine_groups(len(fleet), num_shards)
    if workers < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")

    fingerprint = source_fingerprint(chunks, fleet)
    shard_keys, merged_key = artifact_keys(
        fingerprint, spec.algorithm_id, validated, num_shards, partition
    )
    store_obj = _as_store(store)

    cached = tuple(
        store_obj is not None and store_obj.has(key) for key in shard_keys
    )
    pending: list[int] = [index for index in range(num_shards) if not cached[index]]
    tasks: list[ShardTask] = []
    for index in pending:
        sub_stream = tuple(
            restrict_chunk(chunk, groups[index], shard=index)
            for chunk in shard_stream(
                chunks, num_shards, index, mode=partition, keep_ids=True
            )
        )
        tasks.append(
            ShardTask(
                shard=index,
                num_shards=num_shards,
                algorithm=spec.algorithm_id,
                params=tuple(sorted(validated.items())),
                dispatch=dispatch,
                machine_group=groups[index],
                machines=tuple(
                    (fleet[g].speed_factor, fleet[g].alpha) for g in groups[index]
                ),
                chunks=sub_stream,
            )
        )

    payloads: dict[int, Mapping] = {}
    durations: list[float | None] = [None] * num_shards
    for position, payload, duration in run_mapped(tasks, run_shard_task, workers=workers):
        index = pending[position]
        payloads[index] = payload
        durations[index] = duration
        if store_obj is not None:
            store_obj.save(shard_keys[index], payload)
    for index in range(num_shards):
        if index not in payloads:
            payloads[index] = store_obj.load(shard_keys[index])
    ordered = [payloads[index] for index in range(num_shards)]

    merged_cached = store_obj is not None and store_obj.has(merged_key)
    if merged_cached:
        merged = store_obj.load(merged_key)
    else:
        merged = _merged_payload(
            algorithm=spec.algorithm_id,
            params=validated,
            fingerprint=fingerprint,
            num_shards=num_shards,
            partition=partition,
            shard_keys=shard_keys,
            shard_payloads=ordered,
        )
        if store_obj is not None:
            store_obj.save(merged_key, merged)

    return ShardSolveResult(
        algorithm=spec.algorithm_id,
        num_shards=num_shards,
        partition=partition,
        workers=workers,
        shard_keys=tuple(shard_keys),
        merged_key=merged_key,
        payload=merged,
        shard_rows=tuple(payload["row"] for payload in ordered),
        cached=cached,
        merged_cached=merged_cached,
        durations=tuple(durations),
        store_root=store_obj.root if store_obj is not None else None,
    )


def solve_to_store(
    source: "Instance | str | Path | Iterable[JobChunk]",
    algorithm: str = "rejection-flow",
    *,
    store: "ArtifactStore | str | Path",
    partition: str = "hash",
    dispatch: str | None = None,
    machines: "int | Sequence[Machine] | None" = None,
    alpha: float = 3.0,
    **params: Any,
) -> ShardSolveResult:
    """Plain (unsharded) solve that persists the ``k == 1`` artifact pair.

    Deliberately an *independent* code path from :func:`shard_solve`: no
    partitioning, no machine renumbering, no fan-out — one session over the
    raw stream on the full fleet, then the shared payload builders.  The CI
    ``shard-identity`` gate ``diff -r``-compares a store written by this
    function against one written by ``shard_solve(..., num_shards=1)``;
    byte equality proves the shard pipeline at ``k == 1`` is the identity.
    """
    spec = get_solver(algorithm)
    if not spec.supports_streaming:
        raise StreamingNotSupportedError(
            f"algorithm '{spec.algorithm_id}' does not support streaming sessions, "
            "which solve_to_store requires"
        )
    if partition not in SHARD_MODES:
        raise InvalidParameterError(
            f"unknown partition '{partition}'; expected one of {SHARD_MODES}"
        )
    validated = spec.validate_params(params)
    chunks, fleet = normalise_source(source, machines=machines, alpha=alpha)
    store_obj = _as_store(store)
    if store_obj is None:
        raise InvalidParameterError("solve_to_store requires a store")

    fingerprint = source_fingerprint(chunks, fleet)
    shard_keys, merged_key = artifact_keys(
        fingerprint, spec.algorithm_id, validated, 1, partition
    )
    group = tuple(range(len(fleet)))

    cached = store_obj.has(shard_keys[0])
    duration: float | None = None
    if cached:
        payload = store_obj.load(shard_keys[0])
    else:
        [(_, payload, duration)] = run_mapped(
            [
                ShardTask(
                    shard=0,
                    num_shards=1,
                    algorithm=spec.algorithm_id,
                    params=tuple(sorted(validated.items())),
                    dispatch=dispatch,
                    machine_group=group,
                    machines=tuple((m.speed_factor, m.alpha) for m in fleet),
                    chunks=tuple(chunks),
                )
            ],
            _run_plain,
            workers=1,
        )
        store_obj.save(shard_keys[0], payload)

    merged_cached = store_obj.has(merged_key)
    if merged_cached:
        merged = store_obj.load(merged_key)
    else:
        merged = _merged_payload(
            algorithm=spec.algorithm_id,
            params=validated,
            fingerprint=fingerprint,
            num_shards=1,
            partition=partition,
            shard_keys=shard_keys,
            shard_payloads=[payload],
        )
        store_obj.save(merged_key, merged)

    return ShardSolveResult(
        algorithm=spec.algorithm_id,
        num_shards=1,
        partition=partition,
        workers=1,
        shard_keys=tuple(shard_keys),
        merged_key=merged_key,
        payload=merged,
        shard_rows=(payload["row"],),
        cached=(cached,),
        merged_cached=merged_cached,
        durations=(duration,),
        store_root=store_obj.root,
    )


def _run_plain(task: ShardTask) -> dict:
    """Unsharded solve path for :func:`solve_to_store`.

    Opens one session over the raw chunk stream on the full fleet — no
    :func:`repro.workloads.traces.shard`, no column restriction, no machine
    renumbering (the machine group is the identity map) — then builds the
    payload with the shared :func:`shard_payload` builder.
    """
    fleet = tuple(
        Machine(id=local, speed_factor=speed, alpha=alpha)
        for local, (speed, alpha) in enumerate(task.machines)
    )
    session = open_session(
        task.algorithm,
        fleet,
        dispatch=task.dispatch,
        name="solve",
        retain_events=True,
        **dict(task.params),
    )
    for chunk in task.chunks:
        session.submit_many(chunk)
    outcome = session.finalize()
    return shard_payload(
        shard=0,
        num_shards=1,
        machine_group=task.machine_group,
        outcome=outcome,
        events=session.events,
    )
