"""Picklable shard-solve tasks, their artifact keys, and payload builders.

A :class:`ShardTask` is the unit of work :func:`repro.parallel.shard_solve`
fans out over worker processes: one shard's job sub-stream plus its local
machine group, everything plain tuples/arrays so :mod:`multiprocessing` can
pickle it.  :func:`run_shard_task` (module-level, pickled by reference) opens
a :class:`~repro.service.session.SchedulerSession` over the shard's local
fleet, streams the chunks in, finalizes, and returns the shard's
content-addressed artifact payload.

Payload discipline mirrors :mod:`repro.campaigns.tasks`: canonical-JSON
friendly values only, no wall-clock timings (those stay in run summaries so
artifacts are byte-reproducible), and machine ids remapped back to *global*
ids inside the worker — the coordinator's merge is then a pure interleave.
Artifact keys hash the semantic coordinates (source fingerprint, algorithm,
validated params, shard layout) and deliberately exclude the dispatch mode:
the three dispatch backends are byte-equivalent (CI enforces this via the
campaign cache-hit gate), so they share cache entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.service.session import open_session
from repro.simulation.machine import Machine
from repro.simulation.metrics import rejected_weight
from repro.solvers.outcome import SolveOutcome
from repro.utils.serialization import jsonify, stable_hash
from repro.workloads.generators import JobChunk

PARALLEL_SCHEMA_VERSION = 1

__all__ = [
    "PARALLEL_SCHEMA_VERSION",
    "ShardTask",
    "artifact_keys",
    "run_shard_task",
    "shard_payload",
]


@dataclass(frozen=True)
class ShardTask:
    """One shard's solve, self-contained and picklable.

    ``machines`` carries ``(speed_factor, alpha)`` per *local* machine; the
    worker rebuilds the fleet with consecutive local ids (the
    :class:`~repro.simulation.instance.Instance` invariant) and
    ``machine_group`` maps local id → global id when the decision stream is
    serialised.  ``params`` is the validated parameter dict as sorted items,
    hashable and pickle-stable.
    """

    shard: int
    num_shards: int
    algorithm: str
    params: tuple[tuple[str, Any], ...]
    dispatch: str | None
    machine_group: tuple[int, ...]
    machines: tuple[tuple[float, float], ...]
    chunks: tuple[JobChunk, ...]


def artifact_keys(
    fingerprint: str,
    algorithm: str,
    params: Mapping[str, Any],
    num_shards: int,
    partition: str,
) -> tuple[list[str], str]:
    """Content-addressed keys for the per-shard payloads and the merged one.

    Returns ``(shard_keys, merged_key)``.  Keys are a pure function of the
    semantic coordinates — notably *not* of ``workers`` (pure fan-out width)
    or ``dispatch`` (byte-equivalent backends) — so re-runs under different
    parallelism hit the same cache entries.
    """
    base = {
        "schema": PARALLEL_SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "algorithm": algorithm,
        "params": jsonify(dict(params)),
        "num_shards": num_shards,
        "partition": partition,
    }
    shard_keys = [
        stable_hash({**base, "kind": "shard", "shard": shard})
        for shard in range(num_shards)
    ]
    merged_key = stable_hash({**base, "kind": "merged"})
    return shard_keys, merged_key


def shard_payload(
    *,
    shard: int,
    num_shards: int,
    machine_group: Sequence[int],
    outcome: SolveOutcome,
    events: Sequence,
) -> dict:
    """Build one shard's artifact payload from its finalized session.

    ``totals`` keeps the *raw* accounting terms (job count, rejected count,
    rejected weight, total weight) so the merged artifact can recompute the
    rejection fractions from summed numerators/denominators — at ``k == 1``
    those are the very divisions :mod:`repro.simulation.metrics` performed,
    which is what makes the merged row byte-identical to the plain one.
    """
    group = [int(machine) for machine in machine_group]
    stream = []
    for event in events:
        data = event.as_dict()
        if data["machine"] is not None:
            data["machine"] = group[data["machine"]]
        data["shard"] = shard
        stream.append(data)
    result = outcome.result
    records = result.records.values()
    totals = {
        "num_jobs": len(result.records),
        "rejected_count": outcome.rejected_count,
        "rejected_weight": rejected_weight(result),
        "total_weight": sum(record.weight for record in records),
    }
    return {
        "schema": PARALLEL_SCHEMA_VERSION,
        "kind": "shard",
        "shard": shard,
        "num_shards": num_shards,
        "machine_group": group,
        "num_jobs": len(result.records),
        "engine_events": int(result.extras.get("events", 0)),
        "row": jsonify(outcome.as_row()),
        "totals": jsonify(totals),
        "events": jsonify(stream),
    }


def run_shard_task(task: ShardTask) -> dict:
    """Worker entry point: solve one shard, return its artifact payload.

    Module-level so the campaign fan-out
    (:func:`repro.campaigns.runner.run_mapped`) can pickle it by reference.
    Workers only compute — the coordinator persists payloads, preserving the
    artifact store's single-writer invariant.
    """
    fleet = tuple(
        Machine(id=local, speed_factor=speed, alpha=alpha)
        for local, (speed, alpha) in enumerate(task.machines)
    )
    session = open_session(
        task.algorithm,
        fleet,
        dispatch=task.dispatch,
        name=f"shard-{task.shard}-of-{task.num_shards}",
        retain_events=True,
        **dict(task.params),
    )
    for chunk in task.chunks:
        session.submit_many(chunk)
    outcome = session.finalize()
    return shard_payload(
        shard=task.shard,
        num_shards=task.num_shards,
        machine_group=task.machine_group,
        outcome=outcome,
        events=session.events,
    )
