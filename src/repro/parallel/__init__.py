"""Shard-and-merge parallel solving over worker processes.

The paper's online model assumes one coordinator sees every arrival.  This
package asks — and answers operationally — what happens when it doesn't:
:func:`shard_solve` partitions a job stream across ``k`` independent
streaming solvers (each owning a disjoint machine group), fans them out over
worker processes via the campaign runner's pool, persists per-shard decision
streams content-addressed (resumable re-runs), and merges them time-ordered
into one combined outcome.  E16 (``exp_partition_cost``) measures the
objective price of that partitioning across the scenario catalog.

Layering: sits above :mod:`repro.workloads` (shard/merge transforms),
:mod:`repro.service` (streaming sessions) and :mod:`repro.campaigns`
(fan-out + artifact store); below the CLI (``repro shard-solve``) and the
experiments that consume it.

Determinism contract — see :mod:`repro.parallel.solve`.
"""

from repro.parallel.partition import (
    machine_groups,
    normalise_source,
    restrict_chunk,
    source_fingerprint,
)
from repro.parallel.solve import (
    ShardSolveResult,
    merge_decision_streams,
    shard_solve,
    solve_to_store,
)
from repro.parallel.tasks import (
    PARALLEL_SCHEMA_VERSION,
    ShardTask,
    artifact_keys,
    run_shard_task,
    shard_payload,
)

__all__ = [
    "PARALLEL_SCHEMA_VERSION",
    "ShardSolveResult",
    "ShardTask",
    "artifact_keys",
    "machine_groups",
    "merge_decision_streams",
    "normalise_source",
    "restrict_chunk",
    "run_shard_task",
    "shard_payload",
    "shard_solve",
    "solve_to_store",
]
