"""Analysis utilities: competitive ratios, summary statistics, report tables."""

from repro.analysis.competitive import (
    CompetitiveEstimate,
    flow_time_competitive_estimate,
    weighted_flow_energy_competitive_estimate,
    energy_competitive_estimate,
)
from repro.analysis.statistics import describe, ratio_statistics, geometric_mean
from repro.analysis.reporting import ExperimentTable, render_report

__all__ = [
    "CompetitiveEstimate",
    "flow_time_competitive_estimate",
    "weighted_flow_energy_competitive_estimate",
    "energy_competitive_estimate",
    "describe",
    "ratio_statistics",
    "geometric_mean",
    "ExperimentTable",
    "render_report",
]
