"""Summary statistics used by experiment reports."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class Distribution:
    """Five-number-plus summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float

    def as_dict(self) -> dict:
        """Plain-dict view."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p95": self.p95,
            "max": self.maximum,
        }


def describe(values: Iterable[float]) -> Distribution:
    """Compute the standard summary of a sample (empty samples allowed)."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        zero = 0.0
        return Distribution(0, zero, zero, zero, zero, zero, zero, zero, zero)
    return Distribution(
        count=int(data.size),
        mean=float(np.mean(data)),
        std=float(np.std(data)),
        minimum=float(np.min(data)),
        p25=float(np.percentile(data, 25)),
        median=float(np.percentile(data, 50)),
        p75=float(np.percentile(data, 75)),
        p95=float(np.percentile(data, 95)),
        maximum=float(np.max(data)),
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (the right average for ratios)."""
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise InvalidParameterError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(np.asarray(values, dtype=float)))))


def ratio_statistics(ratios: Sequence[float]) -> dict:
    """Summary of a collection of competitive ratios (geometric mean + extremes)."""
    finite = [r for r in ratios if math.isfinite(r)]
    if not finite:
        return {"count": 0, "geomean": math.nan, "max": math.nan, "min": math.nan}
    return {
        "count": len(finite),
        "geomean": geometric_mean(finite),
        "max": max(finite),
        "min": min(finite),
    }


def relative_regret(cost: float, best: float) -> float:
    """``cost/best - 1`` — how much worse than the best observed algorithm."""
    if best <= 0:
        return math.inf if cost > 0 else 0.0
    return cost / best - 1.0
