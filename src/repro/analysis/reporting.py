"""Experiment report tables.

An :class:`ExperimentTable` collects homogeneous rows (dicts) and renders them
as the ASCII tables embedded in EXPERIMENTS.md and printed by the benchmark
harness.  Keeping rendering here means the benchmarks, the examples and the
documentation all show identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.exceptions import InvalidParameterError
from repro.utils.tabulate import format_table


@dataclass
class ExperimentTable:
    """An ordered collection of result rows with a fixed column set."""

    title: str
    columns: Sequence[str]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, row: Mapping) -> None:
        """Append a row; missing columns become empty strings, extras are rejected."""
        unknown = set(row) - set(self.columns)
        if unknown:
            raise InvalidParameterError(f"row has unknown columns: {sorted(unknown)}")
        self.rows.append({col: row.get(col, "") for col in self.columns})

    def add_note(self, note: str) -> None:
        """Attach a free-form footnote rendered under the table."""
        self.notes.append(note)

    def render(self, precision: int = 3) -> str:
        """Render the table (plus footnotes) as ASCII text."""
        body = format_table(
            headers=list(self.columns),
            rows=[[row[col] for col in self.columns] for row in self.rows],
            precision=precision,
            title=f"== {self.title} ==",
        )
        if self.notes:
            body += "\n" + "\n".join(f"  note: {note}" for note in self.notes)
        return body

    def column(self, name: str) -> list:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise InvalidParameterError(f"unknown column {name!r}")
        return [row[name] for row in self.rows]


def render_report(tables: Iterable[ExperimentTable], header: str | None = None) -> str:
    """Concatenate several tables into one report string."""
    parts = []
    if header:
        parts.append(header)
    parts.extend(table.render() for table in tables)
    return "\n\n".join(parts)
