"""Empirical competitive-ratio estimation.

The true competitive ratio divides the algorithm's cost by the offline
optimum, which is intractable at scale.  Every estimate here therefore
reports a *bracket*:

* ``ratio_vs_lower_bound`` — cost divided by a **certified lower bound** on
  OPT; this **over-estimates** the true ratio, so the paper's guarantees
  should dominate it.
* ``ratio_vs_reference`` — cost divided by the best **feasible reference
  schedule** we can construct (offline heuristics, preemptive relaxations
  labelled as references); this **under-estimates** the true ratio.

The truth lies in between; EXPERIMENTS.md reports both columns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.lowerbounds.energy_bounds import (
    best_energy_lower_bound,
    per_job_flow_energy_lower_bound,
)
from repro.lowerbounds.flow_combinatorial import best_flow_time_lower_bound
from repro.baselines.offline import offline_list_schedule
from repro.simulation.instance import Instance
from repro.simulation.metrics import flow_plus_energy, total_flow_time
from repro.simulation.schedule import SimulationResult
from repro.utils.numeric import safe_ratio


@dataclass(frozen=True)
class CompetitiveEstimate:
    """A bracketed competitive-ratio estimate for one algorithm on one instance."""

    algorithm: str
    cost: float
    lower_bound: float
    reference_cost: float
    theoretical_bound: float | None = None

    @property
    def ratio_vs_lower_bound(self) -> float:
        """Cost over the certified lower bound (upper estimate of the true ratio)."""
        return safe_ratio(self.cost, self.lower_bound)

    @property
    def ratio_vs_reference(self) -> float:
        """Cost over the best feasible reference (lower estimate of the true ratio)."""
        return safe_ratio(self.cost, self.reference_cost)

    @property
    def within_theoretical_bound(self) -> bool | None:
        """Whether the upper estimate respects the paper's guarantee (None if no bound)."""
        if self.theoretical_bound is None:
            return None
        return self.ratio_vs_lower_bound <= self.theoretical_bound + 1e-9

    def as_row(self) -> dict:
        """Flat dict for table rendering."""
        return {
            "algorithm": self.algorithm,
            "cost": self.cost,
            "lower_bound": self.lower_bound,
            "reference": self.reference_cost,
            "ratio_vs_lb": self.ratio_vs_lower_bound,
            "ratio_vs_ref": self.ratio_vs_reference,
            "theoretical_bound": self.theoretical_bound if self.theoretical_bound else math.nan,
        }


def flow_time_competitive_estimate(
    result: SimulationResult,
    include_lp_bound: bool = False,
    theoretical_bound: float | None = None,
    lower_bound: float | None = None,
    reference_cost: float | None = None,
) -> CompetitiveEstimate:
    """Competitive estimate for the total flow-time objective (Section 2).

    ``lower_bound``/``reference_cost`` can be passed in when the caller has
    already computed them (e.g. once per instance for several algorithms).
    """
    instance = result.instance
    lb = (
        lower_bound
        if lower_bound is not None
        else best_flow_time_lower_bound(instance, include_lp=include_lp_bound)
    )
    ref = reference_cost if reference_cost is not None else offline_list_schedule(instance)
    return CompetitiveEstimate(
        algorithm=result.algorithm,
        cost=total_flow_time(result),
        lower_bound=lb,
        reference_cost=ref,
        theoretical_bound=theoretical_bound,
    )


def weighted_flow_energy_competitive_estimate(
    result: SimulationResult,
    theoretical_bound: float | None = None,
    lower_bound: float | None = None,
    reference_cost: float | None = None,
) -> CompetitiveEstimate:
    """Competitive estimate for weighted flow time plus energy (Section 3)."""
    instance = result.instance
    lb = lower_bound if lower_bound is not None else per_job_flow_energy_lower_bound(instance)
    ref = reference_cost if reference_cost is not None else lb
    return CompetitiveEstimate(
        algorithm=result.algorithm,
        cost=flow_plus_energy(result),
        lower_bound=lb,
        reference_cost=ref,
        theoretical_bound=theoretical_bound,
    )


def energy_competitive_estimate(
    instance: Instance,
    algorithm_energy: float,
    algorithm: str,
    theoretical_bound: float | None = None,
    lower_bound: float | None = None,
    reference_cost: float | None = None,
) -> CompetitiveEstimate:
    """Competitive estimate for energy minimisation with deadlines (Section 4)."""
    lb = lower_bound if lower_bound is not None else best_energy_lower_bound(instance)
    ref = reference_cost if reference_cost is not None else lb
    return CompetitiveEstimate(
        algorithm=algorithm,
        cost=algorithm_energy,
        lower_bound=lb,
        reference_cost=ref,
        theoretical_bound=theoretical_bound,
    )
