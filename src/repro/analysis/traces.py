"""Schedule trace export and ASCII Gantt rendering.

Turning a :class:`~repro.simulation.schedule.SimulationResult` into something a
human can look at is the fastest way to debug a policy and to explain the
paper's rejection rules.  This module provides:

* :func:`result_to_trace` — a flat list of event dicts (start / completion /
  rejection) suitable for CSV/JSON export or downstream plotting;
* :func:`trace_to_csv` — write the trace as CSV text;
* :func:`ascii_gantt` — a fixed-width Gantt chart, one row per machine, with
  rejected executions marked distinctly.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

from repro.exceptions import InvalidParameterError
from repro.simulation.schedule import SimulationResult


@dataclass(frozen=True)
class TraceEvent:
    """One row of an exported schedule trace."""

    time: float
    kind: str
    job_id: int
    machine: int | None
    detail: str = ""

    def as_dict(self) -> dict:
        """Plain-dict view (stable key order)."""
        return {
            "time": self.time,
            "kind": self.kind,
            "job_id": self.job_id,
            "machine": self.machine,
            "detail": self.detail,
        }


def result_to_trace(result: SimulationResult) -> list[TraceEvent]:
    """Flatten a simulation result into a chronological list of trace events."""
    events: list[TraceEvent] = []
    for record in result.records.values():
        events.append(
            TraceEvent(
                time=record.release, kind="release", job_id=record.job_id, machine=record.machine
            )
        )
        if record.start is not None:
            events.append(
                TraceEvent(
                    time=record.start, kind="start", job_id=record.job_id, machine=record.machine
                )
            )
        if record.finished and record.completion is not None:
            events.append(
                TraceEvent(
                    time=record.completion,
                    kind="complete",
                    job_id=record.job_id,
                    machine=record.machine,
                    detail=f"flow={record.flow_time:.4g}",
                )
            )
        if record.rejected and record.rejection_time is not None:
            events.append(
                TraceEvent(
                    time=record.rejection_time,
                    kind="reject",
                    job_id=record.job_id,
                    machine=record.machine,
                    detail=record.rejection_reason or "",
                )
            )
    events.sort(key=lambda e: (e.time, e.job_id, e.kind))
    return events


def trace_to_csv(result: SimulationResult) -> str:
    """Render the trace of a result as CSV text (header + one row per event)."""
    buffer = io.StringIO()
    buffer.write("time,kind,job_id,machine,detail\n")
    for event in result_to_trace(result):
        machine = "" if event.machine is None else event.machine
        buffer.write(f"{event.time},{event.kind},{event.job_id},{machine},{event.detail}\n")
    return buffer.getvalue()


def ascii_gantt(result: SimulationResult, width: int = 80, label_width: int = 10) -> str:
    """Render the schedule as a fixed-width ASCII Gantt chart.

    One row per machine; each execution interval is drawn with the job id's
    last digit, rejected (truncated) executions with ``x``.  Intended for
    small instances and debugging sessions, not for thousand-job schedules.
    """
    if width < 20:
        raise InvalidParameterError(f"width must be at least 20, got {width}")
    makespan = result.makespan()
    if makespan <= 0:
        return "(empty schedule)"
    scale = (width - label_width - 2) / makespan

    lines = [f"time 0 .. {makespan:.2f}  (one column ~ {1.0 / scale:.2f} time units)"]
    for machine in range(result.instance.num_machines):
        row = [" "] * (width - label_width)
        for interval in result.intervals_on(machine):
            start_col = int(interval.start * scale)
            end_col = max(start_col + 1, int(interval.end * scale))
            glyph = "x" if not interval.completed else str(interval.job_id % 10)
            for col in range(start_col, min(end_col, len(row))):
                row[col] = glyph
        label = f"m{machine}".ljust(label_width)
        lines.append(label + "|" + "".join(row) + "|")
    rejected = sum(1 for r in result.records.values() if r.rejected)
    lines.append(
        f"jobs: {len(result.records)}  rejected: {rejected}  "
        f"algorithm: {result.algorithm}"
    )
    return "\n".join(lines)
