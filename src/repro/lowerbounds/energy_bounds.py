"""Certified lower bounds for the speed-scaling objectives (Sections 3 and 4).

All bounds follow from the convexity of the power function: processing volume
``p`` at (possibly varying) speed costs at least what processing it at the
best *constant* speed would, and simultaneous processing on one machine only
increases the instantaneous power (superadditivity of ``s^alpha`` for
``alpha > 1``), so summing per-job optima never over-counts.
"""

from __future__ import annotations

import math

from repro.exceptions import InvalidParameterError
from repro.simulation.instance import Instance


def single_job_flow_energy_optimum(volume: float, weight: float, alpha: float) -> float:
    """Minimum of ``w * p/s + p * s^(alpha-1)`` over the speed ``s > 0``.

    This is the cheapest possible "weighted flow plus energy" cost of a job
    processed alone: flow at least ``p/s`` and energy exactly ``p * s^(alpha-1)``
    at constant speed ``s``.  The optimum is attained at
    ``s* = (w/(alpha-1))^(1/alpha)`` and equals
    ``alpha * p * (w/(alpha-1))^((alpha-1)/alpha)``.
    """
    if volume <= 0:
        raise InvalidParameterError(f"volume must be positive, got {volume}")
    if weight <= 0:
        raise InvalidParameterError(f"weight must be positive, got {weight}")
    if alpha <= 1:
        raise InvalidParameterError(f"alpha must exceed 1, got {alpha}")
    return alpha * volume * (weight / (alpha - 1.0)) ** ((alpha - 1.0) / alpha)


def per_job_flow_energy_lower_bound(instance: Instance) -> float:
    """Lower bound on the optimal weighted flow time plus energy (Section 3).

    Every job must pay at least its own single-job optimum on its best
    machine; interference (waiting) and shared power only increase the cost.
    """
    total = 0.0
    for job in instance.jobs:
        best = math.inf
        for machine in job.eligible_machines():
            alpha = instance.machines[machine].alpha
            best = min(
                best,
                single_job_flow_energy_optimum(job.size_on(machine), job.weight, alpha),
            )
        total += best
    return total


def per_job_deadline_energy_lower_bound(instance: Instance) -> float:
    """Lower bound on the optimal energy with deadlines (Section 4).

    A job of volume ``p`` finished within a window of length ``W`` at constant
    speed needs speed at least ``p/W``, hence energy at least
    ``p * (p/W)^(alpha-1)``.  Varying speeds cannot do better (convexity) and
    simultaneous processing cannot share this cost away (superadditivity), so
    the per-job optima sum to a certified bound.
    """
    total = 0.0
    for job in instance.jobs:
        if job.deadline is None:
            raise InvalidParameterError(
                f"job {job.id} has no deadline; the Section 4 bound requires one"
            )
        window = job.window()
        best = math.inf
        for machine in job.eligible_machines():
            alpha = instance.machines[machine].alpha
            p = job.size_on(machine)
            best = min(best, p * (p / window) ** (alpha - 1.0))
        total += best
    return total


def best_energy_lower_bound(instance: Instance) -> float:
    """The strongest certified energy lower bound available for the instance.

    Uses the per-job convexity bound always, and additionally the optimal
    preemptive YDS schedule when the instance has a single machine (preemption
    only helps, so YDS lower-bounds the non-preemptive optimum).
    """
    bounds = [per_job_deadline_energy_lower_bound(instance)]
    if instance.num_machines == 1:
        from repro.baselines.yds import yds_energy

        bounds.append(yds_energy(instance))
    return max(bounds)
