"""Certified lower bounds on the offline optimum.

Competitive ratios reported by the experiments divide the algorithm's cost by
one of these bounds, so every function here must be a *true* lower bound on
the optimal non-preemptive schedule:

* :mod:`repro.lowerbounds.flow_combinatorial` — simple combinatorial bounds
  for total (weighted) flow time;
* :mod:`repro.lowerbounds.flow_lp` — the paper's time-indexed LP relaxation
  solved with ``scipy.optimize.linprog`` (its optimum is at most twice OPT,
  so half of it is certified);
* :mod:`repro.lowerbounds.energy_bounds` — convexity-based bounds for the
  speed-scaling objectives (Sections 3 and 4) and the YDS bound.
"""

from repro.lowerbounds.flow_combinatorial import (
    total_processing_lower_bound,
    weighted_processing_lower_bound,
    busy_interval_lower_bound,
    best_flow_time_lower_bound,
)
from repro.lowerbounds.flow_lp import FlowTimeLPRelaxation, lp_flow_time_lower_bound
from repro.lowerbounds.energy_bounds import (
    per_job_flow_energy_lower_bound,
    per_job_deadline_energy_lower_bound,
    best_energy_lower_bound,
)

__all__ = [
    "total_processing_lower_bound",
    "weighted_processing_lower_bound",
    "busy_interval_lower_bound",
    "best_flow_time_lower_bound",
    "FlowTimeLPRelaxation",
    "lp_flow_time_lower_bound",
    "per_job_flow_energy_lower_bound",
    "per_job_deadline_energy_lower_bound",
    "best_energy_lower_bound",
]
