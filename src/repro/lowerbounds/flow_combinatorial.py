"""Combinatorial lower bounds on the optimal total (weighted) flow time.

All bounds here hold for *every* schedule of *all* jobs (the adversary in the
rejection model must complete every job), on unrelated machines, without
preemption — and in fact even with preemption and migration, which makes them
safe to use as competitive-ratio denominators.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.simulation.instance import Instance


def total_processing_lower_bound(instance: Instance) -> float:
    """``sum_j min_i p_ij`` — every job's flow time is at least its best processing time."""
    return sum(job.min_size() for job in instance.jobs)


def weighted_processing_lower_bound(instance: Instance) -> float:
    """``sum_j w_j * min_i p_ij`` — the weighted counterpart."""
    return sum(job.weight * job.min_size() for job in instance.jobs)


def busy_interval_lower_bound(instance: Instance) -> float:
    """Queueing bound from simultaneous releases.

    For any set of jobs released at the same time, even the most powerful
    schedule must process them somewhere; with ``m`` machines and the jobs'
    *best* processing times ``q_(1) <= q_(2) <= ...`` (sorted), the ``k``-th
    completed among them finishes at least ``ceil(k/m)``-th "round" late:

    ``OPT >= sum_k q_(ceil(k/m))``-ish.  We use the safe, simple form: group
    the sorted best sizes into batches of ``m``; the ``b``-th batch waits for
    at least the total size of the smallest job of every earlier batch.  This
    is deliberately conservative (a certified bound), and is only strong for
    bursty instances — which is exactly when ``sum min p`` is weak.
    """
    m = instance.num_machines
    by_release: dict[float, list[float]] = {}
    for job in instance.jobs:
        by_release.setdefault(job.release, []).append(job.min_size())

    total = 0.0
    for sizes in by_release.values():
        sizes.sort()
        # Jobs in batch b (0-based) each wait for at least the smallest job of
        # every earlier batch (some machine must run two of them back to back).
        wait = 0.0
        for b in range(0, len(sizes), m):
            batch = sizes[b : b + m]
            total += sum(batch) + wait * len(batch)
            wait += batch[0]
    return total


def best_flow_time_lower_bound(instance: Instance, include_lp: bool = False) -> float:
    """The largest certified combinatorial lower bound available.

    ``include_lp`` additionally computes the LP-relaxation bound of
    :mod:`repro.lowerbounds.flow_lp`, which is tighter but far more expensive;
    the experiments enable it only on small instances.
    """
    bounds = [
        total_processing_lower_bound(instance),
        busy_interval_lower_bound(instance),
    ]
    if include_lp:
        from repro.lowerbounds.flow_lp import lp_flow_time_lower_bound

        try:
            bounds.append(lp_flow_time_lower_bound(instance))
        except Exception:  # pragma: no cover - LP solver hiccups must not break reports
            pass
    return max(bounds)
