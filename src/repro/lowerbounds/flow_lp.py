"""Time-indexed LP relaxation of the flow-time problem (Section 2 of the paper).

The paper lower-bounds the optimum through the linear program

.. math::

    \\min \\sum_{i,j} \\int_{r_j}^{\\infty}
        \\Big(\\frac{t - r_j}{p_{ij}} + 1\\Big) x_{ij}(t)\\,dt
    \\quad\\text{s.t.}\\quad
    \\sum_i \\int \\frac{x_{ij}(t)}{p_{ij}}\\,dt \\ge 1,\\;
    \\sum_j x_{ij}(t) \\le 1,

whose optimum is at most **twice** the optimal non-preemptive total flow time
(each job pays its fractional flow time plus its processing time, both of
which are at most its true flow time).  Therefore ``LP*/2`` is a certified
lower bound on OPT.

This module discretises the LP on a uniform slot grid and solves it with
``scipy.optimize.linprog``.  The discretisation uses the *left endpoint* of
each slot as the cost coefficient and lets a job use the whole slot containing
its release date; both choices only enlarge the feasible region / lower the
cost relative to the continuous LP, so the discrete optimum never exceeds the
continuous one and the ``/2`` bound stays certified.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix

from repro.exceptions import InvalidParameterError
from repro.simulation.instance import Instance


@dataclass
class FlowTimeLPRelaxation:
    """Builder/solver for the discretised time-indexed LP.

    Parameters
    ----------
    instance:
        The scheduling instance (machine speed factors must be 1; the LP
        models the paper's unit-speed setting).
    slot_length:
        Grid resolution.  Smaller slots tighten the relaxation but increase
        the LP size (``n * m * T`` variables).
    max_slots:
        Hard cap on the number of slots; the horizon is truncated to
        ``max_slots * slot_length`` (the LP needs enough room to place all
        fractional work — the default horizon is generous).
    """

    instance: Instance
    slot_length: float = 1.0
    max_slots: int = 2000

    def __post_init__(self) -> None:
        if self.slot_length <= 0:
            raise InvalidParameterError("slot_length must be positive")
        for machine in self.instance.machines:
            if not math.isclose(machine.speed_factor, 1.0):
                raise InvalidParameterError(
                    "the LP relaxation models unit-speed machines; "
                    f"machine {machine.id} has speed factor {machine.speed_factor}"
                )

    def horizon_slots(self) -> int:
        """Number of slots needed so every job can be fully scheduled."""
        horizon = self.instance.horizon()
        slots = int(math.ceil(horizon / self.slot_length)) + 1
        return min(self.max_slots, max(1, slots))

    def solve(self) -> float:
        """Solve the discretised LP and return its optimal objective value."""
        instance = self.instance
        n = instance.num_jobs
        m = instance.num_machines
        T = self.horizon_slots()
        if n == 0:
            return 0.0

        jobs = list(instance.jobs)
        # Variable layout: index(j, i, t) = (j * m + i) * T + t, value = fraction
        # of slot t of machine i devoted to job j.
        num_vars = n * m * T

        def var(j: int, i: int, t: int) -> int:
            return (j * m + i) * T + t

        costs = np.zeros(num_vars)
        release_slot = []
        for j, job in enumerate(jobs):
            r_slot = int(math.floor(job.release / self.slot_length))
            release_slot.append(r_slot)
            for i in range(m):
                p = job.size_on(i)
                if math.isinf(p):
                    # Forbidden assignment: make it unusable via an upper bound of 0.
                    continue
                for t in range(r_slot, T):
                    slot_start = t * self.slot_length
                    coeff = (max(0.0, slot_start - job.release) / p + 1.0) * self.slot_length
                    costs[var(j, i, t)] = coeff

        # Coverage constraints: sum_i sum_t x/p >= 1  ->  -sum x/p <= -1
        rows, cols, data = [], [], []
        for j, job in enumerate(jobs):
            for i in range(m):
                p = job.size_on(i)
                if math.isinf(p):
                    continue
                for t in range(release_slot[j], T):
                    rows.append(j)
                    cols.append(var(j, i, t))
                    data.append(-self.slot_length / p)
        coverage = coo_matrix((data, (rows, cols)), shape=(n, num_vars))
        coverage_rhs = -np.ones(n)

        # Capacity constraints: sum_j x_ij(t) <= 1 for every machine-slot.
        rows, cols, data = [], [], []
        for i in range(m):
            for t in range(T):
                row = i * T + t
                for j, job in enumerate(jobs):
                    if math.isinf(job.size_on(i)) or t < release_slot[j]:
                        continue
                    rows.append(row)
                    cols.append(var(j, i, t))
                    data.append(1.0)
        capacity = coo_matrix((data, (rows, cols)), shape=(m * T, num_vars))
        capacity_rhs = np.ones(m * T)

        from scipy.sparse import vstack

        a_ub = vstack([coverage, capacity]).tocsr()
        b_ub = np.concatenate([coverage_rhs, capacity_rhs])

        bounds = [(0.0, 0.0)] * num_vars
        for j, job in enumerate(jobs):
            for i in range(m):
                if math.isinf(job.size_on(i)):
                    continue
                for t in range(release_slot[j], T):
                    bounds[var(j, i, t)] = (0.0, 1.0)

        result = linprog(costs, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
        if not result.success:
            raise InvalidParameterError(f"LP solver failed: {result.message}")
        return float(result.fun)

    def lower_bound(self) -> float:
        """``LP*/2`` — a certified lower bound on the optimal total flow time."""
        return self.solve() / 2.0


def lp_flow_time_lower_bound(
    instance: Instance, slot_length: float | None = None, max_slots: int = 2000
) -> float:
    """Convenience wrapper building and solving :class:`FlowTimeLPRelaxation`.

    ``slot_length`` defaults to roughly 1/4 of the smallest processing time
    (clamped so that the LP stays tractable).
    """
    if slot_length is None:
        sizes = instance.finite_sizes()
        smallest = min(sizes) if sizes else 1.0
        horizon = instance.horizon()
        slot_length = max(smallest / 4.0, horizon / max_slots)
    relaxation = FlowTimeLPRelaxation(
        instance=instance, slot_length=slot_length, max_slots=max_slots
    )
    return relaxation.lower_bound()
