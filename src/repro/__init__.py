"""repro — Online Non-preemptive Scheduling on Unrelated Machines with Rejections.

A complete, executable reproduction of the SPAA 2018 paper by Lucarelli,
Moseley, Thang, Srivastav and Trystram (arXiv:1802.10309).  The package
contains:

* :mod:`repro.simulation` — the event-driven, non-preemptive scheduling
  simulator (unrelated machines, optional speed scaling) the algorithms run on;
* :mod:`repro.core` — the paper's three algorithms (Theorems 1, 2 and 3),
  their rejection rules and the dual-fitting certificates;
* :mod:`repro.baselines` — reference schedulers the experiments compare
  against (greedy without rejection, immediate rejection, speed augmentation,
  SRPT, HDF, AVR, YDS, offline heuristics);
* :mod:`repro.solvers` — the string-keyed solver registry behind
  :func:`repro.solve`, the algorithm-agnostic entry point to every scheduler;
* :mod:`repro.service` — the streaming surface: :func:`repro.open_session`
  returns a :class:`~repro.service.session.SchedulerSession` that ingests
  jobs incrementally, emits a typed decision-event stream, checkpoints via
  canonical-JSON snapshots and finalizes into the same
  :class:`~repro.solvers.outcome.SolveOutcome` as the batch facade;
* :mod:`repro.parallel` — shard-and-merge parallel solving:
  :func:`repro.shard_solve` partitions a job stream across ``k`` independent
  streaming solvers on disjoint machine groups, fans them out over worker
  processes and merges the decision streams into one combined outcome;
* :mod:`repro.lowerbounds` — certified lower bounds on the offline optimum;
* :mod:`repro.workloads` — synthetic workload generators, the adversarial
  constructions of Lemma 1 and Lemma 2, trace ingestion/export with
  deterministic transforms and the named heavy-traffic scenario catalog;
* :mod:`repro.adaptive` — the algorithm-switching meta-scheduler: windowed
  load telemetry over the decision-event stream, pluggable switch policies
  and the hot-switchable ``meta`` solver/session (experiment E17);
* :mod:`repro.analysis` — competitive-ratio estimation and report tables;
* :mod:`repro.experiments` — the experiment suite (E1-E17) that plays the
  role of the paper's tables and figures.

Quickstart
----------

>>> import repro
>>> instance = repro.quick_instance(num_jobs=50, num_machines=4, seed=0)
>>> outcome = repro.solve(instance, algorithm="rejection-flow", epsilon=0.5)
>>> outcome.objective_value > 0 and outcome.rejected_fraction <= 2 * 0.5
True

``repro.list_algorithms()`` (or ``repro solve --list-algorithms`` on the
command line) enumerates every registered scheduler with its execution model,
objective and parameter schema.
"""

from repro.simulation import (
    Job,
    Machine,
    Instance,
    FlowTimeEngine,
    SpeedScalingEngine,
    SimulationResult,
    run_policy,
    run_speed_policy,
    summarize,
    validate_result,
)
from repro.core import (
    RejectionFlowTimeScheduler,
    RejectionEnergyFlowScheduler,
    ConfigLPEnergyScheduler,
    FlowTimeDualAccountant,
    EnergyFlowDualAccountant,
)
from repro.solvers import (
    SolveOutcome,
    available_algorithms,
    list_algorithms,
    make_policy,
    solve,
)
from repro.service import (
    DecisionEvent,
    SchedulerSession,
    open_session,
    streaming_algorithms,
)
from repro.parallel import (
    ShardSolveResult,
    shard_solve,
)

__version__ = "1.1.0"


def quick_instance(num_jobs: int = 50, num_machines: int = 4, seed: int | None = 0, **kwargs):
    """Generate a small random unrelated-machine instance (convenience helper).

    Thin wrapper around
    :class:`repro.workloads.generators.InstanceGenerator` with sensible
    defaults; see that class for the full set of knobs.
    """
    from repro.workloads.generators import InstanceGenerator

    generator = InstanceGenerator(num_machines=num_machines, seed=seed, **kwargs)
    return generator.generate(num_jobs)


__all__ = [
    "Job",
    "Machine",
    "Instance",
    "FlowTimeEngine",
    "SpeedScalingEngine",
    "SimulationResult",
    "SolveOutcome",
    "summarize",
    "validate_result",
    "RejectionFlowTimeScheduler",
    "RejectionEnergyFlowScheduler",
    "ConfigLPEnergyScheduler",
    "FlowTimeDualAccountant",
    "EnergyFlowDualAccountant",
    "available_algorithms",
    "list_algorithms",
    "make_policy",
    "quick_instance",
    "run_policy",
    "run_speed_policy",
    "solve",
    "DecisionEvent",
    "SchedulerSession",
    "ShardSolveResult",
    "open_session",
    "shard_solve",
    "streaming_algorithms",
    "__version__",
]
