"""Arrival-time processes for synthetic workloads.

Each function returns a sorted list of ``count`` non-negative release times.
The processes cover the regimes that matter for online flow-time scheduling:
smooth Poisson traffic, bursty on/off traffic (the hard case for
non-preemptive scheduling), batched releases (the Lemma 1 flavour) and
deterministic equally spaced arrivals (for reproducible unit tests).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.utils.rng import make_rng


def _check_count(count: int) -> None:
    if count < 0:
        raise InvalidParameterError(f"count must be non-negative, got {count}")


def poisson_arrivals(count: int, rate: float, seed=None) -> list[float]:
    """``count`` arrivals of a Poisson process with the given rate (jobs per time unit)."""
    _check_count(count)
    if rate <= 0:
        raise InvalidParameterError(f"rate must be positive, got {rate}")
    rng = make_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=count)
    return list(np.cumsum(gaps))


def bursty_arrivals(
    count: int,
    rate_on: float,
    rate_off: float,
    burst_length: int = 20,
    seed=None,
) -> list[float]:
    """On/off arrivals: bursts of ``burst_length`` jobs at ``rate_on``, gaps at ``rate_off``.

    ``rate_off`` is the rate governing the single long gap between bursts, so
    smaller values produce longer quiet periods.
    """
    _check_count(count)
    if rate_on <= 0 or rate_off <= 0:
        raise InvalidParameterError("rates must be positive")
    if burst_length <= 0:
        raise InvalidParameterError("burst_length must be positive")
    rng = make_rng(seed)
    times: list[float] = []
    t = 0.0
    produced = 0
    while produced < count:
        in_burst = min(burst_length, count - produced)
        gaps = rng.exponential(1.0 / rate_on, size=in_burst)
        for gap in gaps:
            t += float(gap)
            times.append(t)
        produced += in_burst
        t += float(rng.exponential(1.0 / rate_off))
    return times


def batched_arrivals(
    count: int, batch_size: int, batch_gap: float, jitter: float = 0.0, seed=None
) -> list[float]:
    """Jobs released in batches of ``batch_size`` separated by ``batch_gap`` time units."""
    _check_count(count)
    if batch_size <= 0:
        raise InvalidParameterError(f"batch_size must be positive, got {batch_size}")
    if batch_gap < 0 or jitter < 0:
        raise InvalidParameterError("batch_gap and jitter must be non-negative")
    rng = make_rng(seed)
    times = []
    for index in range(count):
        batch = index // batch_size
        base = batch * batch_gap
        offset = float(rng.uniform(0, jitter)) if jitter > 0 else 0.0
        times.append(base + offset)
    return sorted(times)


def deterministic_arrivals(count: int, gap: float, start: float = 0.0) -> list[float]:
    """Equally spaced arrivals ``start, start+gap, start+2*gap, ...``."""
    _check_count(count)
    if gap < 0:
        raise InvalidParameterError(f"gap must be non-negative, got {gap}")
    return [start + k * gap for k in range(count)]
