"""Adversarial constructions from the paper's lower-bound proofs.

* :func:`lemma1_instance` — the two-phase single-machine instance of Lemma 1
  showing that *immediate*-rejection policies are Ω(sqrt(Δ))-competitive.
* :class:`Lemma2Adversary` — the *adaptive* adversary of Lemma 2 that forces
  any deterministic non-preemptive energy-minimisation algorithm to pay
  Ω((α/9)^α) times the optimum.
* :func:`overload_burst_instance` — a generic overload burst used as an extra
  stress workload in the experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.energy_min import ConfigLPEnergyScheduler
from repro.exceptions import InvalidParameterError
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.machine import Machine
from repro.simulation.timeline import DiscreteTimeline, Strategy


# --------------------------------------------------------------------------------------
# Lemma 1: immediate rejection is Omega(sqrt(Delta))
# --------------------------------------------------------------------------------------

def lemma1_instance(length: float, epsilon: float, small_multiplier: float = 1.0) -> Instance:
    """The Lemma 1 two-phase instance on a single machine.

    Phase 1 releases ``ceil(1/epsilon)`` jobs of processing time ``L`` at time
    0; phase 2 releases ``Theta(L^2)`` jobs of processing time ``1/L``, one
    every ``1/L`` time units during ``[0, L]``.  The paper's adaptive
    adversary starts phase 2 at the moment the algorithm starts the first long
    job; for *work-conserving* algorithms (every policy in this library) that
    moment is time 0, so the oblivious instance below realises the same hard
    case: a policy that must decide rejections at arrival has already
    committed to a long job when the stream of short jobs appears behind it,
    and the short jobs cannot all be rejected within the budget.

    ``Delta = L^2`` for this instance, so Lemma 1 predicts immediate-rejection
    policies degrade like ``sqrt(Delta) = L`` while the paper's algorithm
    (which may evict the running long job) stays constant-competitive.

    Parameters
    ----------
    length:
        The long processing time ``L`` (must be > 1).
    epsilon:
        The rejection budget the adversary plays against.
    small_multiplier:
        Scales the *number* of short jobs (1.0 reproduces ``L^2`` of them).
    """
    if length <= 1:
        raise InvalidParameterError(f"length must exceed 1, got {length}")
    if epsilon <= 0:
        raise InvalidParameterError(f"epsilon must be positive, got {epsilon}")
    num_long = max(2, math.ceil(1.0 / epsilon))
    short_size = 1.0 / length
    num_short = max(1, int(small_multiplier * length * length))

    jobs: list[Job] = []
    job_id = 0
    for _ in range(num_long):
        jobs.append(Job(id=job_id, release=0.0, sizes=(float(length),)))
        job_id += 1
    for k in range(num_short):
        release = (k + 1) * short_size
        jobs.append(Job(id=job_id, release=release, sizes=(short_size,)))
        job_id += 1
    return Instance.single_machine(jobs, name=f"lemma1(L={length:g},eps={epsilon:g})")


def lemma1_sweep(lengths: list[float], epsilon: float) -> list[Instance]:
    """Lemma 1 instances for a sweep of ``L`` values (``Delta = L^2`` sweep)."""
    return [lemma1_instance(length, epsilon) for length in lengths]


def overload_burst_instance(
    num_machines: int,
    burst_jobs: int,
    long_size: float = 50.0,
    short_size: float = 1.0,
    trailing_shorts: int = 200,
) -> Instance:
    """A long-job burst followed by a stream of short jobs (generic stress case).

    At time 0 every machine receives ``burst_jobs`` long jobs; afterwards short
    jobs arrive back-to-back.  Rejection-free non-preemptive policies serve the
    short jobs behind the burst and blow up; the paper's algorithm evicts a
    few long jobs and stays close to optimal.
    """
    if num_machines <= 0 or burst_jobs <= 0:
        raise InvalidParameterError("num_machines and burst_jobs must be positive")
    jobs: list[Job] = []
    job_id = 0
    for _ in range(burst_jobs * num_machines):
        jobs.append(Job.uniform(job_id, 0.0, long_size, num_machines))
        job_id += 1
    for k in range(trailing_shorts):
        release = (k + 1) * short_size / 2.0
        jobs.append(Job.uniform(job_id, release, short_size, num_machines))
        job_id += 1
    return Instance.build(
        num_machines, jobs, name=f"overload(m={num_machines},burst={burst_jobs})"
    )


# --------------------------------------------------------------------------------------
# Lemma 2: adaptive adversary for energy minimisation
# --------------------------------------------------------------------------------------

@dataclass
class Lemma2Round:
    """One round of the Lemma 2 game: the released job and the algorithm's reply."""

    job: Job
    strategy: Strategy
    start_time: float
    completion_time: float
    marginal_energy: float


@dataclass
class Lemma2Result:
    """Outcome of the Lemma 2 adaptive game."""

    alpha: float
    rounds: list[Lemma2Round] = field(default_factory=list)
    algorithm_energy: float = 0.0
    adversary_energy: float = 0.0

    @property
    def ratio(self) -> float:
        """Empirical competitive ratio forced by the adversary."""
        if self.adversary_energy <= 0:
            return math.inf
        return self.algorithm_energy / self.adversary_energy

    @property
    def paper_lower_bound(self) -> float:
        """The Lemma 2 bound ``(alpha/9)^alpha``."""
        return (self.alpha / 9.0) ** self.alpha


class Lemma2Adversary:
    """The adaptive adversary of Lemma 2, playable against any strategy-based scheduler.

    The game: job 1 has window ``[0, 3^(alpha+1)]`` and volume one third of its
    window.  After the algorithm commits to a start time ``S_j`` and completion
    time ``C_j`` for job ``j``, the adversary releases job ``j+1`` with window
    ``[S_j + 1, C_j]`` and volume one third of that window.  The game stops
    after ``alpha`` jobs or when the window length drops to 1.

    The adversary itself can run every job at speed 1 without overlap (each
    job fits outside the sub-window it hands to the next job), so its energy
    is the total volume; the algorithm's jobs all overlap pairwise, forcing a
    high speed somewhere and an Ω((alpha/9)^alpha) ratio.
    """

    def __init__(self, alpha: float, slot_length: float = 1.0) -> None:
        if alpha < 2:
            raise InvalidParameterError(f"alpha must be at least 2, got {alpha}")
        if slot_length <= 0:
            raise InvalidParameterError("slot_length must be positive")
        self.alpha = float(alpha)
        self.slot_length = slot_length

    def play(self, scheduler: ConfigLPEnergyScheduler | None = None) -> Lemma2Result:
        """Run the adaptive game against ``scheduler`` (default: the Theorem 3 greedy)."""
        scheduler = scheduler or ConfigLPEnergyScheduler(slot_length=self.slot_length)
        horizon = 3.0 ** (math.floor(self.alpha) + 1)
        timeline = DiscreteTimeline(
            num_machines=1,
            num_slots=max(1, int(math.ceil(horizon / self.slot_length))),
            slot_length=self.slot_length,
            alpha=self.alpha,
        )
        machine = Machine(0, alpha=self.alpha)
        result = Lemma2Result(alpha=self.alpha)

        release, deadline = 0.0, horizon
        max_jobs = max(1, int(math.floor(self.alpha)))
        job_id = 0
        adversary_energy = 0.0
        while job_id < max_jobs and (deadline - release) > 1.0 + 1e-9:
            volume = (deadline - release) / 3.0
            job = Job(
                id=job_id,
                release=release,
                sizes=(volume,),
                deadline=deadline,
            )
            instance = Instance((machine,), (job,), name=f"lemma2-round-{job_id}")
            strategy, cost = scheduler.best_strategy(job, instance, timeline)
            timeline.commit(strategy)
            start_time = timeline.time_of(strategy.start_slot)
            completion_time = timeline.time_of(strategy.end_slot)
            result.rounds.append(
                Lemma2Round(
                    job=job,
                    strategy=strategy,
                    start_time=start_time,
                    completion_time=completion_time,
                    marginal_energy=cost,
                )
            )
            adversary_energy += volume  # the adversary runs it at speed 1, no overlap
            # Next round's window: inside the execution of the job just placed.
            release, deadline = start_time + 1.0, completion_time
            job_id += 1

        result.algorithm_energy = timeline.total_energy()
        result.adversary_energy = adversary_energy
        return result
