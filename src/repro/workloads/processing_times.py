"""Processing-time (volume) distributions for synthetic workloads.

Every distribution comes in two flavours: a ``*_sizes`` function returning a
list (the original API) and a ``*_sizes_array`` function returning the
underlying :class:`numpy.ndarray` without per-element Python float churn —
the building block of the chunked large-instance generators.  The list
functions are thin wrappers over the array functions and consume the random
stream identically, so existing seeds reproduce exactly.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.utils.rng import make_rng


def _check(count: int) -> None:
    if count < 0:
        raise InvalidParameterError(f"count must be non-negative, got {count}")


def uniform_sizes_array(
    count: int, low: float = 1.0, high: float = 10.0, seed=None
) -> np.ndarray:
    """Sizes drawn uniformly from ``[low, high]`` as a float64 array."""
    _check(count)
    if low <= 0 or high < low:
        raise InvalidParameterError(f"need 0 < low <= high, got [{low}, {high}]")
    rng = make_rng(seed)
    return rng.uniform(low, high, size=count)


def uniform_sizes(count: int, low: float = 1.0, high: float = 10.0, seed=None) -> list[float]:
    """Sizes drawn uniformly from ``[low, high]``."""
    return [float(x) for x in uniform_sizes_array(count, low=low, high=high, seed=seed)]


def exponential_sizes_array(
    count: int, mean: float = 5.0, minimum: float = 0.1, seed=None
) -> np.ndarray:
    """Exponential sizes with the given mean, clipped below at ``minimum``."""
    _check(count)
    if mean <= 0 or minimum <= 0:
        raise InvalidParameterError("mean and minimum must be positive")
    rng = make_rng(seed)
    return np.maximum(minimum, rng.exponential(mean, size=count))


def exponential_sizes(count: int, mean: float = 5.0, minimum: float = 0.1, seed=None) -> list[float]:
    """Exponentially distributed sizes with the given mean, clipped below at ``minimum``."""
    return [float(x) for x in exponential_sizes_array(count, mean=mean, minimum=minimum, seed=seed)]


def bounded_pareto_sizes_array(
    count: int,
    shape: float = 1.5,
    low: float = 1.0,
    high: float = 1000.0,
    seed=None,
) -> np.ndarray:
    """Bounded-Pareto sizes as a float64 array (see :func:`bounded_pareto_sizes`)."""
    _check(count)
    if shape <= 0:
        raise InvalidParameterError(f"shape must be positive, got {shape}")
    if low <= 0 or high <= low:
        raise InvalidParameterError(f"need 0 < low < high, got [{low}, {high}]")
    rng = make_rng(seed)
    u = rng.uniform(0.0, 1.0, size=count)
    l_a = low**shape
    h_a = high**shape
    return (-(u * h_a - u * l_a - h_a) / (h_a * l_a)) ** (-1.0 / shape)


def bounded_pareto_sizes(
    count: int,
    shape: float = 1.5,
    low: float = 1.0,
    high: float = 1000.0,
    seed=None,
) -> list[float]:
    """Bounded-Pareto sizes — the classic heavy-tailed workload of systems papers.

    Heavy tails are the regime where non-preemptive scheduling is hardest
    (short jobs stuck behind long ones), i.e. where the paper's rejection
    rules matter most.
    """
    return [
        float(v)
        for v in bounded_pareto_sizes_array(count, shape=shape, low=low, high=high, seed=seed)
    ]


def bimodal_sizes_array(
    count: int,
    short: float = 1.0,
    long: float = 50.0,
    long_fraction: float = 0.1,
    seed=None,
) -> np.ndarray:
    """Mixture of short and long jobs as a float64 array."""
    _check(count)
    if short <= 0 or long <= 0:
        raise InvalidParameterError("sizes must be positive")
    if not (0 <= long_fraction <= 1):
        raise InvalidParameterError(f"long_fraction must be in [0, 1], got {long_fraction}")
    rng = make_rng(seed)
    draws = rng.uniform(0.0, 1.0, size=count)
    return np.where(draws < long_fraction, float(long), float(short))


def bimodal_sizes(
    count: int,
    short: float = 1.0,
    long: float = 50.0,
    long_fraction: float = 0.1,
    seed=None,
) -> list[float]:
    """Mixture of short and long jobs (the Lemma 1 flavour of heterogeneity)."""
    return [
        float(x)
        for x in bimodal_sizes_array(
            count, short=short, long=long, long_fraction=long_fraction, seed=seed
        )
    ]
