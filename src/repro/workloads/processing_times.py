"""Processing-time (volume) distributions for synthetic workloads."""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.utils.rng import make_rng


def _check(count: int) -> None:
    if count < 0:
        raise InvalidParameterError(f"count must be non-negative, got {count}")


def uniform_sizes(count: int, low: float = 1.0, high: float = 10.0, seed=None) -> list[float]:
    """Sizes drawn uniformly from ``[low, high]``."""
    _check(count)
    if low <= 0 or high < low:
        raise InvalidParameterError(f"need 0 < low <= high, got [{low}, {high}]")
    rng = make_rng(seed)
    return [float(x) for x in rng.uniform(low, high, size=count)]


def exponential_sizes(count: int, mean: float = 5.0, minimum: float = 0.1, seed=None) -> list[float]:
    """Exponentially distributed sizes with the given mean, clipped below at ``minimum``."""
    _check(count)
    if mean <= 0 or minimum <= 0:
        raise InvalidParameterError("mean and minimum must be positive")
    rng = make_rng(seed)
    return [float(max(minimum, x)) for x in rng.exponential(mean, size=count)]


def bounded_pareto_sizes(
    count: int,
    shape: float = 1.5,
    low: float = 1.0,
    high: float = 1000.0,
    seed=None,
) -> list[float]:
    """Bounded-Pareto sizes — the classic heavy-tailed workload of systems papers.

    Heavy tails are the regime where non-preemptive scheduling is hardest
    (short jobs stuck behind long ones), i.e. where the paper's rejection
    rules matter most.
    """
    _check(count)
    if shape <= 0:
        raise InvalidParameterError(f"shape must be positive, got {shape}")
    if low <= 0 or high <= low:
        raise InvalidParameterError(f"need 0 < low < high, got [{low}, {high}]")
    rng = make_rng(seed)
    u = rng.uniform(0.0, 1.0, size=count)
    l_a = low**shape
    h_a = high**shape
    values = (-(u * h_a - u * l_a - h_a) / (h_a * l_a)) ** (-1.0 / shape)
    return [float(v) for v in values]


def bimodal_sizes(
    count: int,
    short: float = 1.0,
    long: float = 50.0,
    long_fraction: float = 0.1,
    seed=None,
) -> list[float]:
    """Mixture of short and long jobs (the Lemma 1 flavour of heterogeneity)."""
    _check(count)
    if short <= 0 or long <= 0:
        raise InvalidParameterError("sizes must be positive")
    if not (0 <= long_fraction <= 1):
        raise InvalidParameterError(f"long_fraction must be in [0, 1], got {long_fraction}")
    rng = make_rng(seed)
    draws = rng.uniform(0.0, 1.0, size=count)
    return [float(long if d < long_fraction else short) for d in draws]
