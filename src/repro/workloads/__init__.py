"""Synthetic workload generators.

The paper has no experimental section, so the workloads here are designed to
exercise the regimes its theory speaks about:

* random online instances with controllable arrival burstiness, processing
  time heavy-tailedness and machine heterogeneity
  (:mod:`repro.workloads.generators`);
* the *adversarial* constructions used in the paper's lower-bound proofs —
  the Lemma 1 two-phase instance against immediate rejection and the Lemma 2
  adaptive adversary against deterministic energy minimisation
  (:mod:`repro.workloads.adversarial`);
* the named parameter sweeps the experiments/benchmarks iterate over
  (:mod:`repro.workloads.suites`);
* trace ingestion/export and deterministic trace transforms
  (:mod:`repro.workloads.traces`) plus the named heavy-traffic scenario
  catalog built on them (:mod:`repro.workloads.scenarios`).
"""

from repro.workloads.arrival_processes import (
    poisson_arrivals,
    bursty_arrivals,
    batched_arrivals,
    deterministic_arrivals,
)
from repro.workloads.processing_times import (
    uniform_sizes,
    exponential_sizes,
    bounded_pareto_sizes,
    bimodal_sizes,
)
from repro.workloads.machine_models import (
    identical_matrix,
    uniform_related_matrix,
    unrelated_matrix,
    restricted_assignment_matrix,
)
from repro.workloads.generators import InstanceGenerator, WeightedInstanceGenerator, DeadlineInstanceGenerator
from repro.workloads.adversarial import (
    lemma1_instance,
    lemma1_sweep,
    overload_burst_instance,
    Lemma2Adversary,
)
from repro.workloads.suites import WorkloadSuite, standard_suites, validate_unique_suites
from repro.workloads.traces import (
    TraceStats,
    read_trace_chunks,
    read_trace_jobs,
    trace_instance,
    trace_stats,
    write_trace,
)
from repro.workloads.scenarios import (
    Scenario,
    available_scenarios,
    get_scenario,
)

__all__ = [
    "poisson_arrivals",
    "bursty_arrivals",
    "batched_arrivals",
    "deterministic_arrivals",
    "uniform_sizes",
    "exponential_sizes",
    "bounded_pareto_sizes",
    "bimodal_sizes",
    "identical_matrix",
    "uniform_related_matrix",
    "unrelated_matrix",
    "restricted_assignment_matrix",
    "InstanceGenerator",
    "WeightedInstanceGenerator",
    "DeadlineInstanceGenerator",
    "lemma1_instance",
    "lemma1_sweep",
    "overload_burst_instance",
    "Lemma2Adversary",
    "WorkloadSuite",
    "standard_suites",
    "validate_unique_suites",
    "TraceStats",
    "read_trace_chunks",
    "read_trace_jobs",
    "trace_instance",
    "trace_stats",
    "write_trace",
    "Scenario",
    "available_scenarios",
    "get_scenario",
]
