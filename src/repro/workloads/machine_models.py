"""Unrelated-machine processing-time matrices.

Each function maps a list of base job sizes to per-machine size vectors,
covering the standard machine models used in the scheduling literature:

* *identical* — every machine sees the same size (the special case the lower
  bounds of the related work apply to);
* *uniform/related* — machines have fixed speed ratios;
* *unrelated* — per-(job, machine) multiplicative noise, the paper's general
  model;
* *restricted assignment* — each job is only runnable on a random subset of
  machines (``math.inf`` elsewhere), the hardest structured special case.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.utils.rng import make_rng


def _check(base_sizes, num_machines: int) -> None:
    if num_machines <= 0:
        raise InvalidParameterError(f"num_machines must be positive, got {num_machines}")
    for p in base_sizes:
        if p <= 0:
            raise InvalidParameterError(f"base sizes must be positive, got {p}")


def identical_matrix(base_sizes: list[float], num_machines: int) -> list[tuple[float, ...]]:
    """Every machine sees the job's base size."""
    _check(base_sizes, num_machines)
    return [tuple([float(p)] * num_machines) for p in base_sizes]


def uniform_related_matrix(
    base_sizes: list[float],
    num_machines: int,
    speed_spread: float = 4.0,
    seed=None,
) -> list[tuple[float, ...]]:
    """Related machines: machine ``i`` has a fixed speed in ``[1, speed_spread]``.

    Faster machines see proportionally smaller processing times.
    """
    _check(base_sizes, num_machines)
    if speed_spread < 1:
        raise InvalidParameterError(f"speed_spread must be >= 1, got {speed_spread}")
    rng = make_rng(seed)
    speeds = rng.uniform(1.0, speed_spread, size=num_machines)
    speeds[0] = 1.0  # keep one reference machine at unit speed
    return [tuple(float(p) / float(s) for s in speeds) for p in base_sizes]


def unrelated_matrix(
    base_sizes: list[float],
    num_machines: int,
    correlation: float = 0.5,
    noise_spread: float = 4.0,
    seed=None,
) -> list[tuple[float, ...]]:
    """General unrelated machines with tunable job/machine correlation.

    ``correlation = 1`` reduces to identical machines; ``correlation = 0``
    makes every (job, machine) entry an independent draw in
    ``[base/noise_spread, base*noise_spread]``.
    """
    _check(base_sizes, num_machines)
    if not (0.0 <= correlation <= 1.0):
        raise InvalidParameterError(f"correlation must be in [0, 1], got {correlation}")
    if noise_spread < 1:
        raise InvalidParameterError(f"noise_spread must be >= 1, got {noise_spread}")
    rng = make_rng(seed)
    rows = []
    for p in base_sizes:
        noise = rng.uniform(1.0 / noise_spread, noise_spread, size=num_machines)
        row = tuple(float(p) * (correlation + (1.0 - correlation) * float(x)) for x in noise)
        rows.append(row)
    return rows


def restricted_assignment_matrix(
    base_sizes: list[float],
    num_machines: int,
    eligible_fraction: float = 0.5,
    seed=None,
) -> list[tuple[float, ...]]:
    """Each job is runnable only on a random non-empty subset of the machines."""
    _check(base_sizes, num_machines)
    if not (0.0 < eligible_fraction <= 1.0):
        raise InvalidParameterError(
            f"eligible_fraction must be in (0, 1], got {eligible_fraction}"
        )
    rng = make_rng(seed)
    rows = []
    for p in base_sizes:
        eligible = rng.uniform(0.0, 1.0, size=num_machines) < eligible_fraction
        if not eligible.any():
            eligible[int(rng.integers(num_machines))] = True
        row = tuple(float(p) if ok else math.inf for ok in eligible)
        rows.append(row)
    return rows
