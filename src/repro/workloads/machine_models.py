"""Unrelated-machine processing-time matrices.

Each function maps base job sizes to per-machine size vectors, covering the
standard machine models used in the scheduling literature:

* *identical* — every machine sees the same size (the special case the lower
  bounds of the related work apply to);
* *uniform/related* — machines have fixed speed ratios;
* *unrelated* — per-(job, machine) multiplicative noise, the paper's general
  model;
* *restricted assignment* — each job is only runnable on a random subset of
  machines (``math.inf`` elsewhere), the hardest structured special case.

Like the size distributions, every model has an array flavour
(``*_matrix_array``) returning a ``(n, m)`` float64 matrix without building
per-job Python tuples — the chunked generators feed base-size chunks through
these.  The tuple-returning originals wrap the array versions where the
random stream is consumed identically (identical / related / unrelated);
``restricted_assignment_matrix`` interleaves its fix-up draws differently and
keeps its own loop so existing seeds reproduce exactly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.utils.rng import make_rng


def _check(base_sizes, num_machines: int) -> None:
    if num_machines <= 0:
        raise InvalidParameterError(f"num_machines must be positive, got {num_machines}")
    for p in base_sizes:
        if p <= 0:
            raise InvalidParameterError(f"base sizes must be positive, got {p}")


def _rows(matrix: np.ndarray) -> list[tuple[float, ...]]:
    return [tuple(float(p) for p in row) for row in matrix]


def identical_matrix_array(base_sizes, num_machines: int) -> np.ndarray:
    """Every machine sees the job's base size — ``(n, m)`` array flavour."""
    _check(base_sizes, num_machines)
    base = np.asarray(base_sizes, dtype=float)
    return np.repeat(base[:, None], num_machines, axis=1)


def identical_matrix(base_sizes: list[float], num_machines: int) -> list[tuple[float, ...]]:
    """Every machine sees the job's base size."""
    return _rows(identical_matrix_array(base_sizes, num_machines))


def uniform_related_matrix_array(
    base_sizes,
    num_machines: int,
    speed_spread: float = 4.0,
    seed=None,
) -> np.ndarray:
    """Related machines as a ``(n, m)`` array (see :func:`uniform_related_matrix`)."""
    _check(base_sizes, num_machines)
    if speed_spread < 1:
        raise InvalidParameterError(f"speed_spread must be >= 1, got {speed_spread}")
    rng = make_rng(seed)
    speeds = rng.uniform(1.0, speed_spread, size=num_machines)
    speeds[0] = 1.0  # keep one reference machine at unit speed
    base = np.asarray(base_sizes, dtype=float)
    return base[:, None] / speeds[None, :]


def uniform_related_matrix(
    base_sizes: list[float],
    num_machines: int,
    speed_spread: float = 4.0,
    seed=None,
) -> list[tuple[float, ...]]:
    """Related machines: machine ``i`` has a fixed speed in ``[1, speed_spread]``.

    Faster machines see proportionally smaller processing times.
    """
    return _rows(
        uniform_related_matrix_array(
            base_sizes, num_machines, speed_spread=speed_spread, seed=seed
        )
    )


def unrelated_matrix_array(
    base_sizes,
    num_machines: int,
    correlation: float = 0.5,
    noise_spread: float = 4.0,
    seed=None,
) -> np.ndarray:
    """General unrelated machines as a ``(n, m)`` array (see :func:`unrelated_matrix`)."""
    _check(base_sizes, num_machines)
    if not (0.0 <= correlation <= 1.0):
        raise InvalidParameterError(f"correlation must be in [0, 1], got {correlation}")
    if noise_spread < 1:
        raise InvalidParameterError(f"noise_spread must be >= 1, got {noise_spread}")
    rng = make_rng(seed)
    base = np.asarray(base_sizes, dtype=float)
    noise = rng.uniform(1.0 / noise_spread, noise_spread, size=(len(base), num_machines))
    return base[:, None] * (correlation + (1.0 - correlation) * noise)


def unrelated_matrix(
    base_sizes: list[float],
    num_machines: int,
    correlation: float = 0.5,
    noise_spread: float = 4.0,
    seed=None,
) -> list[tuple[float, ...]]:
    """General unrelated machines with tunable job/machine correlation.

    ``correlation = 1`` reduces to identical machines; ``correlation = 0``
    makes every (job, machine) entry an independent draw in
    ``[base/noise_spread, base*noise_spread]``.
    """
    return _rows(
        unrelated_matrix_array(
            base_sizes,
            num_machines,
            correlation=correlation,
            noise_spread=noise_spread,
            seed=seed,
        )
    )


def restricted_assignment_matrix_array(
    base_sizes,
    num_machines: int,
    eligible_fraction: float = 0.5,
    seed=None,
) -> np.ndarray:
    """Restricted assignment as a ``(n, m)`` array (``inf`` marks forbidden pairs).

    Unlike the other array flavours this consumes the random stream in a
    different order than :func:`restricted_assignment_matrix` (eligibility
    for all jobs first, then one fix-up draw per all-forbidden job), so the
    two flavours produce different — but individually deterministic —
    matrices for the same seed.
    """
    _check(base_sizes, num_machines)
    if not (0.0 < eligible_fraction <= 1.0):
        raise InvalidParameterError(
            f"eligible_fraction must be in (0, 1], got {eligible_fraction}"
        )
    rng = make_rng(seed)
    base = np.asarray(base_sizes, dtype=float)
    eligible = rng.uniform(0.0, 1.0, size=(len(base), num_machines)) < eligible_fraction
    empty = ~eligible.any(axis=1)
    if empty.any():
        fixes = rng.integers(num_machines, size=int(empty.sum()))
        eligible[np.flatnonzero(empty), fixes] = True
    return np.where(eligible, base[:, None], math.inf)


def restricted_assignment_matrix(
    base_sizes: list[float],
    num_machines: int,
    eligible_fraction: float = 0.5,
    seed=None,
) -> list[tuple[float, ...]]:
    """Each job is runnable only on a random non-empty subset of the machines."""
    _check(base_sizes, num_machines)
    if not (0.0 < eligible_fraction <= 1.0):
        raise InvalidParameterError(
            f"eligible_fraction must be in (0, 1], got {eligible_fraction}"
        )
    rng = make_rng(seed)
    rows = []
    for p in base_sizes:
        eligible = rng.uniform(0.0, 1.0, size=num_machines) < eligible_fraction
        if not eligible.any():
            eligible[int(rng.integers(num_machines))] = True
        row = tuple(float(p) if ok else math.inf for ok in eligible)
        rows.append(row)
    return rows
