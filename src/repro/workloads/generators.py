"""Instance generators assembling arrivals, sizes and machine models.

Three generators cover the three problems of the paper:

* :class:`InstanceGenerator` — unweighted flow-time instances (Section 2);
* :class:`WeightedInstanceGenerator` — weighted instances for the flow-time
  plus energy problem (Section 3);
* :class:`DeadlineInstanceGenerator` — instances with deadlines for the
  energy-minimisation problem (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.machine import Machine
from repro.utils.rng import make_rng
from repro.workloads import arrival_processes, machine_models, processing_times


_ARRIVALS = ("poisson", "bursty", "batched", "deterministic")
_SIZES = ("uniform", "exponential", "pareto", "bimodal")
_MACHINE_MODELS = ("identical", "related", "unrelated", "restricted")


@dataclass
class InstanceGenerator:
    """Random unrelated-machine flow-time instances (Section 2 workloads).

    Parameters
    ----------
    num_machines:
        Size of the machine fleet.
    arrival_process / arrival_rate:
        Arrival model; the rate is jobs per time unit (``poisson``/``bursty``)
        or the batch gap (``batched``: ``1/arrival_rate`` per batch of
        ``batch_size``).
    size_distribution:
        ``uniform``, ``exponential``, ``pareto`` (heavy tail) or ``bimodal``.
    machine_model:
        ``identical``, ``related``, ``unrelated`` or ``restricted``.
    load:
        Target average system load (total work rate divided by number of
        machines); the base sizes are rescaled to hit it, which keeps
        different configurations comparable.
    """

    num_machines: int = 4
    arrival_process: str = "poisson"
    arrival_rate: float = 1.0
    batch_size: int = 10
    size_distribution: str = "pareto"
    size_params: dict | None = None
    machine_model: str = "unrelated"
    machine_correlation: float = 0.5
    load: float | None = 0.8
    alpha: float = 3.0
    seed: int | None = None
    name: str | None = None

    def __post_init__(self) -> None:
        if self.num_machines <= 0:
            raise InvalidParameterError("num_machines must be positive")
        if self.arrival_process not in _ARRIVALS:
            raise InvalidParameterError(f"unknown arrival process {self.arrival_process!r}")
        if self.size_distribution not in _SIZES:
            raise InvalidParameterError(f"unknown size distribution {self.size_distribution!r}")
        if self.machine_model not in _MACHINE_MODELS:
            raise InvalidParameterError(f"unknown machine model {self.machine_model!r}")

    # -- pieces --------------------------------------------------------------------

    def _arrivals(self, count: int, rng) -> list[float]:
        if self.arrival_process == "poisson":
            return arrival_processes.poisson_arrivals(count, self.arrival_rate, seed=rng)
        if self.arrival_process == "bursty":
            return arrival_processes.bursty_arrivals(
                count, rate_on=self.arrival_rate * 10, rate_off=self.arrival_rate / 4, seed=rng
            )
        if self.arrival_process == "batched":
            return arrival_processes.batched_arrivals(
                count, batch_size=self.batch_size, batch_gap=1.0 / self.arrival_rate, seed=rng
            )
        return arrival_processes.deterministic_arrivals(count, gap=1.0 / self.arrival_rate)

    def _base_sizes(self, count: int, rng) -> list[float]:
        params = dict(self.size_params or {})
        if self.size_distribution == "uniform":
            return processing_times.uniform_sizes(count, seed=rng, **params)
        if self.size_distribution == "exponential":
            return processing_times.exponential_sizes(count, seed=rng, **params)
        if self.size_distribution == "pareto":
            params.setdefault("shape", 1.5)
            params.setdefault("high", 100.0)
            return processing_times.bounded_pareto_sizes(count, seed=rng, **params)
        return processing_times.bimodal_sizes(count, seed=rng, **params)

    def _size_matrix(self, base_sizes: list[float], rng) -> list[tuple[float, ...]]:
        if self.machine_model == "identical":
            return machine_models.identical_matrix(base_sizes, self.num_machines)
        if self.machine_model == "related":
            return machine_models.uniform_related_matrix(
                base_sizes, self.num_machines, seed=rng
            )
        if self.machine_model == "unrelated":
            return machine_models.unrelated_matrix(
                base_sizes, self.num_machines, correlation=self.machine_correlation, seed=rng
            )
        return machine_models.restricted_assignment_matrix(
            base_sizes, self.num_machines, seed=rng
        )

    def _rescale_for_load(self, base_sizes: list[float]) -> list[float]:
        if self.load is None or not base_sizes:
            return base_sizes
        mean_size = float(np.mean(base_sizes))
        # arrival_rate jobs/time * mean_size work/job spread over m machines.
        current_load = self.arrival_rate * mean_size / self.num_machines
        if current_load <= 0:
            return base_sizes
        factor = self.load / current_load
        return [p * factor for p in base_sizes]

    # -- public API ----------------------------------------------------------------

    def machines(self) -> tuple[Machine, ...]:
        """The machine fleet used by generated instances."""
        return Machine.fleet(self.num_machines, alpha=self.alpha)

    def generate(self, num_jobs: int) -> Instance:
        """Generate an instance with ``num_jobs`` jobs."""
        if num_jobs < 0:
            raise InvalidParameterError(f"num_jobs must be non-negative, got {num_jobs}")
        rng = make_rng(self.seed)
        arrivals = self._arrivals(num_jobs, rng)
        base_sizes = self._rescale_for_load(self._base_sizes(num_jobs, rng))
        matrix = self._size_matrix(base_sizes, rng)
        jobs = [
            Job(id=j, release=float(arrivals[j]), sizes=matrix[j]) for j in range(num_jobs)
        ]
        label = self.name or (
            f"{self.size_distribution}-{self.arrival_process}-{self.machine_model}"
            f"(m={self.num_machines},n={num_jobs})"
        )
        return Instance.build(self.machines(), jobs, name=label)


@dataclass
class WeightedInstanceGenerator(InstanceGenerator):
    """Weighted instances for the Section 3 objective (flow time plus energy).

    Weights are drawn uniformly from ``[weight_low, weight_high]``.
    """

    weight_low: float = 0.5
    weight_high: float = 4.0
    alpha: float = 2.5

    def generate(self, num_jobs: int) -> Instance:
        """Generate a weighted instance with ``num_jobs`` jobs."""
        base = super().generate(num_jobs)
        rng = make_rng(None if self.seed is None else self.seed + 1)
        if not (0 < self.weight_low <= self.weight_high):
            raise InvalidParameterError("need 0 < weight_low <= weight_high")
        jobs = [
            Job(
                id=job.id,
                release=job.release,
                sizes=job.sizes,
                weight=float(rng.uniform(self.weight_low, self.weight_high)),
            )
            for job in base.jobs
        ]
        return Instance.build(self.machines(), jobs, name=base.name + "+weights")


@dataclass
class DeadlineInstanceGenerator(InstanceGenerator):
    """Instances with deadlines for the Section 4 energy-minimisation problem.

    Each job's window length is ``slack`` times the time it would take to run
    the job at unit speed on its best machine (plus jitter), so ``slack``
    directly controls how much speed flexibility the scheduler has.
    """

    slack: float = 4.0
    slack_jitter: float = 0.5
    alpha: float = 2.0
    size_distribution: str = "uniform"

    def generate(self, num_jobs: int) -> Instance:
        """Generate a deadline instance with ``num_jobs`` jobs."""
        if self.slack <= 1:
            raise InvalidParameterError(f"slack must exceed 1, got {self.slack}")
        base = super().generate(num_jobs)
        rng = make_rng(None if self.seed is None else self.seed + 2)
        jobs = []
        for job in base.jobs:
            jitter = float(rng.uniform(1.0 - self.slack_jitter, 1.0 + self.slack_jitter))
            window = max(1e-6, self.slack * jitter * job.min_size())
            jobs.append(
                Job(
                    id=job.id,
                    release=job.release,
                    sizes=job.sizes,
                    weight=job.weight,
                    deadline=job.release + window,
                )
            )
        return Instance.build(self.machines(), jobs, name=base.name + "+deadlines")
