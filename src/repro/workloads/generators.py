"""Instance generators assembling arrivals, sizes and machine models.

Three generators cover the three problems of the paper:

* :class:`InstanceGenerator` — unweighted flow-time instances (Section 2);
* :class:`WeightedInstanceGenerator` — weighted instances for the flow-time
  plus energy problem (Section 3);
* :class:`DeadlineInstanceGenerator` — instances with deadlines for the
  energy-minimisation problem (Section 4).

Each generator offers two sampling paths:

* :meth:`InstanceGenerator.generate` — the original per-job path, unchanged
  so existing seeds reproduce exactly;
* :meth:`InstanceGenerator.generate_large` /
  :meth:`InstanceGenerator.iter_job_chunks` — a chunked, numpy-backed path
  for large instances (100k jobs and beyond): arrivals, sizes and the
  machine matrix are produced as arrays, whole chunks are validated at once,
  and rows become jobs through :meth:`Job.trusted` without per-job
  validation churn.  The chunked path derives independent sub-streams per
  component from the generator's seed and consumes each stream sequentially
  across chunks, so the resulting instance does not depend on ``chunk_size``.
  The two paths draw different samples for the same seed — each is
  individually deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.exceptions import InvalidInstanceError, InvalidParameterError
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.machine import Machine
from repro.utils.rng import make_rng, seeds_for
from repro.workloads import arrival_processes, machine_models, processing_times

#: Default number of jobs materialised per chunk on the large-instance path.
DEFAULT_CHUNK_SIZE = 16384


_ARRIVALS = ("poisson", "bursty", "batched", "deterministic")
_SIZES = ("uniform", "exponential", "pareto", "bimodal")
_MACHINE_MODELS = ("identical", "related", "unrelated", "restricted")

#: Components with independent random sub-streams on the chunked path.
_STREAMS = ("arrivals", "sizes", "matrix", "matrix_fixup", "weights", "deadlines")


@dataclass(frozen=True)
class JobChunk:
    """A contiguous block of generated jobs as numpy columns.

    Job ids are ``start .. start + len(chunk) - 1`` unless an explicit
    ``ids`` column is given (trace-ingested chunks keep the ids of the
    source trace); ``sizes`` has one row per job and one column per machine
    (``inf`` marks forbidden pairs); ``weights``/``deadlines`` are ``None``
    for generators without those attributes.
    """

    start: int
    releases: np.ndarray
    sizes: np.ndarray
    weights: np.ndarray | None = None
    deadlines: np.ndarray | None = None
    ids: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.releases)

    def validate(self) -> None:
        """Bulk invariant check — the chunked counterpart of ``Job.__post_init__``."""
        if len(self.sizes) != len(self.releases):
            raise InvalidInstanceError("chunk sizes/releases length mismatch")
        if len(self) == 0:
            return
        releases = self.releases
        if not np.isfinite(releases).all() or float(releases[0]) < 0:
            raise InvalidInstanceError("chunk releases must be finite and non-negative")
        if (np.diff(releases) < 0).any():
            raise InvalidInstanceError("chunk releases must be non-decreasing")
        sizes = self.sizes
        if not (sizes > 0).all():
            raise InvalidInstanceError("chunk sizes must be positive")
        if not np.isfinite(sizes).any(axis=1).all():
            raise InvalidInstanceError("chunk contains a job with no eligible machine")
        if self.weights is not None and not (
            np.isfinite(self.weights).all() and (self.weights > 0).all()
        ):
            raise InvalidInstanceError("chunk weights must be positive and finite")
        if self.deadlines is not None and not (self.deadlines > releases).all():
            raise InvalidInstanceError("chunk deadlines must exceed releases")
        if self.ids is not None:
            if len(self.ids) != len(self.releases):
                raise InvalidInstanceError("chunk ids/releases length mismatch")
            if (self.ids < 0).any():
                raise InvalidInstanceError("chunk ids must be non-negative")
            if len(np.unique(self.ids)) != len(self.ids):
                raise InvalidInstanceError("chunk ids must be unique")

    def job_ids(self) -> np.ndarray:
        """The id column (explicit ``ids`` or the contiguous default)."""
        if self.ids is not None:
            return self.ids
        return np.arange(self.start, self.start + len(self), dtype=np.int64)

    def jobs(self) -> list[Job]:
        """Materialise the chunk as :class:`Job` rows (trusted construction)."""
        releases = self.releases.tolist()
        rows = self.sizes.tolist()
        weights = self.weights.tolist() if self.weights is not None else None
        deadlines = self.deadlines.tolist() if self.deadlines is not None else None
        ids = None if self.ids is None else self.ids.tolist()
        start = self.start
        trusted = Job.trusted
        return [
            trusted(
                start + k if ids is None else ids[k],
                releases[k],
                tuple(rows[k]),
                1.0 if weights is None else weights[k],
                None if deadlines is None else deadlines[k],
            )
            for k in range(len(rows))
        ]


@dataclass
class InstanceGenerator:
    """Random unrelated-machine flow-time instances (Section 2 workloads).

    Parameters
    ----------
    num_machines:
        Size of the machine fleet.
    arrival_process / arrival_rate:
        Arrival model; the rate is jobs per time unit (``poisson``/``bursty``)
        or the batch gap (``batched``: ``1/arrival_rate`` per batch of
        ``batch_size``).
    size_distribution:
        ``uniform``, ``exponential``, ``pareto`` (heavy tail) or ``bimodal``.
    machine_model:
        ``identical``, ``related``, ``unrelated`` or ``restricted``.
    load:
        Target average system load (total work rate divided by number of
        machines); the base sizes are rescaled to hit it, which keeps
        different configurations comparable.
    """

    num_machines: int = 4
    arrival_process: str = "poisson"
    arrival_rate: float = 1.0
    batch_size: int = 10
    size_distribution: str = "pareto"
    size_params: dict | None = None
    machine_model: str = "unrelated"
    machine_correlation: float = 0.5
    load: float | None = 0.8
    alpha: float = 3.0
    seed: int | None = None
    name: str | None = None

    def __post_init__(self) -> None:
        if self.num_machines <= 0:
            raise InvalidParameterError("num_machines must be positive")
        if self.arrival_process not in _ARRIVALS:
            raise InvalidParameterError(f"unknown arrival process {self.arrival_process!r}")
        if self.size_distribution not in _SIZES:
            raise InvalidParameterError(f"unknown size distribution {self.size_distribution!r}")
        if self.machine_model not in _MACHINE_MODELS:
            raise InvalidParameterError(f"unknown machine model {self.machine_model!r}")

    # -- pieces --------------------------------------------------------------------

    def _arrivals(self, count: int, rng) -> list[float]:
        if self.arrival_process == "poisson":
            return arrival_processes.poisson_arrivals(count, self.arrival_rate, seed=rng)
        if self.arrival_process == "bursty":
            return arrival_processes.bursty_arrivals(
                count, rate_on=self.arrival_rate * 10, rate_off=self.arrival_rate / 4, seed=rng
            )
        if self.arrival_process == "batched":
            return arrival_processes.batched_arrivals(
                count, batch_size=self.batch_size, batch_gap=1.0 / self.arrival_rate, seed=rng
            )
        return arrival_processes.deterministic_arrivals(count, gap=1.0 / self.arrival_rate)

    def _base_sizes(self, count: int, rng) -> list[float]:
        params = dict(self.size_params or {})
        if self.size_distribution == "uniform":
            return processing_times.uniform_sizes(count, seed=rng, **params)
        if self.size_distribution == "exponential":
            return processing_times.exponential_sizes(count, seed=rng, **params)
        if self.size_distribution == "pareto":
            params.setdefault("shape", 1.5)
            params.setdefault("high", 100.0)
            return processing_times.bounded_pareto_sizes(count, seed=rng, **params)
        return processing_times.bimodal_sizes(count, seed=rng, **params)

    def _size_matrix(self, base_sizes: list[float], rng) -> list[tuple[float, ...]]:
        if self.machine_model == "identical":
            return machine_models.identical_matrix(base_sizes, self.num_machines)
        if self.machine_model == "related":
            return machine_models.uniform_related_matrix(
                base_sizes, self.num_machines, seed=rng
            )
        if self.machine_model == "unrelated":
            return machine_models.unrelated_matrix(
                base_sizes, self.num_machines, correlation=self.machine_correlation, seed=rng
            )
        return machine_models.restricted_assignment_matrix(
            base_sizes, self.num_machines, seed=rng
        )

    def _rescale_for_load(self, base_sizes: list[float]) -> list[float]:
        if self.load is None or not base_sizes:
            return base_sizes
        mean_size = float(np.mean(base_sizes))
        # arrival_rate jobs/time * mean_size work/job spread over m machines.
        current_load = self.arrival_rate * mean_size / self.num_machines
        if current_load <= 0:
            return base_sizes
        factor = self.load / current_load
        return [p * factor for p in base_sizes]

    # -- public API ----------------------------------------------------------------

    def machines(self) -> tuple[Machine, ...]:
        """The machine fleet used by generated instances."""
        return Machine.fleet(self.num_machines, alpha=self.alpha)

    def generate(self, num_jobs: int) -> Instance:
        """Generate an instance with ``num_jobs`` jobs."""
        if num_jobs < 0:
            raise InvalidParameterError(f"num_jobs must be non-negative, got {num_jobs}")
        rng = make_rng(self.seed)
        arrivals = self._arrivals(num_jobs, rng)
        base_sizes = self._rescale_for_load(self._base_sizes(num_jobs, rng))
        matrix = self._size_matrix(base_sizes, rng)
        jobs = [
            Job(id=j, release=float(arrivals[j]), sizes=matrix[j]) for j in range(num_jobs)
        ]
        label = self.name or (
            f"{self.size_distribution}-{self.arrival_process}-{self.machine_model}"
            f"(m={self.num_machines},n={num_jobs})"
        )
        return Instance.build(self.machines(), jobs, name=label)

    # -- chunked large-instance path -----------------------------------------------

    def _chunk_streams(self) -> dict[str, np.random.Generator]:
        """One independent generator per sampled component.

        With a fixed seed the streams are a pure function of the seed; each
        stream is consumed strictly left-to-right across chunks, which is
        what makes the chunked output independent of ``chunk_size``.
        """
        if self.seed is None:
            return dict(zip(_STREAMS, make_rng(None).spawn(len(_STREAMS))))
        derived = seeds_for(self.seed, list(_STREAMS))
        return {label: make_rng(derived[label]) for label in _STREAMS}

    def _arrivals_array(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """All release dates as one sorted float64 array."""
        if self.arrival_process == "poisson":
            return np.cumsum(rng.exponential(1.0 / self.arrival_rate, size=count))
        if self.arrival_process == "bursty":
            rate_on = self.arrival_rate * 10
            rate_off = self.arrival_rate / 4
            burst_length = 20
            gaps = rng.exponential(1.0 / rate_on, size=count)
            num_bursts = max(1, -(-count // burst_length))
            offs = rng.exponential(1.0 / rate_off, size=num_bursts)
            off_prefix = np.concatenate([[0.0], np.cumsum(offs)])
            burst_of = np.arange(count) // burst_length
            return np.cumsum(gaps) + off_prefix[burst_of]
        if self.arrival_process == "batched":
            base = (np.arange(count) // self.batch_size) * (1.0 / self.arrival_rate)
            return np.sort(base)
        return np.arange(count) * (1.0 / self.arrival_rate)

    def _base_sizes_array(self, count: int, rng: np.random.Generator) -> np.ndarray:
        params = dict(self.size_params or {})
        if self.size_distribution == "uniform":
            return processing_times.uniform_sizes_array(count, seed=rng, **params)
        if self.size_distribution == "exponential":
            return processing_times.exponential_sizes_array(count, seed=rng, **params)
        if self.size_distribution == "pareto":
            params.setdefault("shape", 1.5)
            params.setdefault("high", 100.0)
            return processing_times.bounded_pareto_sizes_array(count, seed=rng, **params)
        return processing_times.bimodal_sizes_array(count, seed=rng, **params)

    def _matrix_chunk(
        self,
        base_chunk: np.ndarray,
        rngs: dict[str, np.random.Generator],
        related_speeds: np.ndarray | None,
    ) -> np.ndarray:
        if self.machine_model == "identical":
            return machine_models.identical_matrix_array(base_chunk, self.num_machines)
        if self.machine_model == "related":
            return base_chunk[:, None] / related_speeds[None, :]
        if self.machine_model == "unrelated":
            return machine_models.unrelated_matrix_array(
                base_chunk,
                self.num_machines,
                correlation=self.machine_correlation,
                seed=rngs["matrix"],
            )
        # Restricted assignment: eligibility comes from the matrix stream and
        # the all-forbidden fix-ups from a dedicated stream, so the position
        # of every draw is independent of where chunk boundaries fall.
        eligible = (
            rngs["matrix"].uniform(0.0, 1.0, size=(len(base_chunk), self.num_machines)) < 0.5
        )
        empty = ~eligible.any(axis=1)
        if empty.any():
            fixes = rngs["matrix_fixup"].integers(self.num_machines, size=int(empty.sum()))
            eligible[np.flatnonzero(empty), fixes] = True
        return np.where(eligible, base_chunk[:, None], math.inf)

    def _weights_chunk(self, count: int, rng: np.random.Generator) -> np.ndarray | None:
        """Per-job weights for the chunk (``None``: unweighted model)."""
        return None

    def _deadlines_chunk(
        self, releases: np.ndarray, sizes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray | None:
        """Per-job deadlines for the chunk (``None``: no deadlines)."""
        return None

    def iter_job_chunks(
        self, num_jobs: int, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> Iterator[JobChunk]:
        """Generate ``num_jobs`` jobs as validated numpy chunks.

        Arrivals and base sizes are sampled up front as flat arrays (O(n)
        floats); the ``(chunk, m)`` size matrix, weights and deadlines are
        produced chunk by chunk so peak memory stays bounded by
        ``chunk_size * num_machines`` regardless of instance size.
        """
        if num_jobs < 0:
            raise InvalidParameterError(f"num_jobs must be non-negative, got {num_jobs}")
        if chunk_size <= 0:
            raise InvalidParameterError(f"chunk_size must be positive, got {chunk_size}")
        rngs = self._chunk_streams()
        arrivals = self._arrivals_array(num_jobs, rngs["arrivals"])
        base = self._base_sizes_array(num_jobs, rngs["sizes"])
        if self.load is not None and num_jobs > 0:
            mean_size = float(np.mean(base))
            current_load = self.arrival_rate * mean_size / self.num_machines
            if current_load > 0:
                base = base * (self.load / current_load)
        related_speeds = None
        if self.machine_model == "related":
            related_speeds = rngs["matrix"].uniform(1.0, 4.0, size=self.num_machines)
            related_speeds[0] = 1.0
        for start in range(0, num_jobs, chunk_size):
            stop = min(start + chunk_size, num_jobs)
            sizes = self._matrix_chunk(base[start:stop], rngs, related_speeds)
            chunk = JobChunk(
                start=start,
                releases=arrivals[start:stop],
                sizes=sizes,
                weights=self._weights_chunk(stop - start, rngs["weights"]),
                deadlines=self._deadlines_chunk(
                    arrivals[start:stop], sizes, rngs["deadlines"]
                ),
            )
            chunk.validate()
            yield chunk

    def generate_large(
        self, num_jobs: int, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> Instance:
        """Chunked numpy-backed generation for large instances.

        Samples differ from :meth:`generate` for the same seed (each path is
        individually deterministic); on 100k-job instances this path is an
        order of magnitude faster because no per-job Python validation or
        intermediate lists are built in the generator loop.
        """
        jobs: list[Job] = []
        for chunk in self.iter_job_chunks(num_jobs, chunk_size):
            jobs.extend(chunk.jobs())
        label = self.name or (
            f"{self.size_distribution}-{self.arrival_process}-{self.machine_model}"
            f"(m={self.num_machines},n={num_jobs},chunked)"
        )
        return Instance(self.machines(), tuple(jobs), name=label)


@dataclass
class WeightedInstanceGenerator(InstanceGenerator):
    """Weighted instances for the Section 3 objective (flow time plus energy).

    Weights are drawn uniformly from ``[weight_low, weight_high]``.
    """

    weight_low: float = 0.5
    weight_high: float = 4.0
    alpha: float = 2.5

    def generate(self, num_jobs: int) -> Instance:
        """Generate a weighted instance with ``num_jobs`` jobs."""
        base = super().generate(num_jobs)
        rng = make_rng(None if self.seed is None else self.seed + 1)
        if not (0 < self.weight_low <= self.weight_high):
            raise InvalidParameterError("need 0 < weight_low <= weight_high")
        jobs = [
            Job(
                id=job.id,
                release=job.release,
                sizes=job.sizes,
                weight=float(rng.uniform(self.weight_low, self.weight_high)),
            )
            for job in base.jobs
        ]
        return Instance.build(self.machines(), jobs, name=base.name + "+weights")

    def _weights_chunk(self, count: int, rng: np.random.Generator) -> np.ndarray | None:
        if not (0 < self.weight_low <= self.weight_high):
            raise InvalidParameterError("need 0 < weight_low <= weight_high")
        return rng.uniform(self.weight_low, self.weight_high, size=count)


@dataclass
class DeadlineInstanceGenerator(InstanceGenerator):
    """Instances with deadlines for the Section 4 energy-minimisation problem.

    Each job's window length is ``slack`` times the time it would take to run
    the job at unit speed on its best machine (plus jitter), so ``slack``
    directly controls how much speed flexibility the scheduler has.
    """

    slack: float = 4.0
    slack_jitter: float = 0.5
    alpha: float = 2.0
    size_distribution: str = "uniform"

    def generate(self, num_jobs: int) -> Instance:
        """Generate a deadline instance with ``num_jobs`` jobs."""
        if self.slack <= 1:
            raise InvalidParameterError(f"slack must exceed 1, got {self.slack}")
        base = super().generate(num_jobs)
        rng = make_rng(None if self.seed is None else self.seed + 2)
        jobs = []
        for job in base.jobs:
            jitter = float(rng.uniform(1.0 - self.slack_jitter, 1.0 + self.slack_jitter))
            window = max(1e-6, self.slack * jitter * job.min_size())
            jobs.append(
                Job(
                    id=job.id,
                    release=job.release,
                    sizes=job.sizes,
                    weight=job.weight,
                    deadline=job.release + window,
                )
            )
        return Instance.build(self.machines(), jobs, name=base.name + "+deadlines")

    def _deadlines_chunk(
        self, releases: np.ndarray, sizes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray | None:
        if self.slack <= 1:
            raise InvalidParameterError(f"slack must exceed 1, got {self.slack}")
        jitter = rng.uniform(1.0 - self.slack_jitter, 1.0 + self.slack_jitter, size=len(releases))
        min_sizes = np.where(np.isfinite(sizes), sizes, np.inf).min(axis=1)
        window = np.maximum(1e-6, self.slack * jitter * min_sizes)
        return releases + window
