"""Named heavy-traffic scenario catalog layered on generators and trace transforms.

Each :class:`Scenario` is a deterministic recipe turning ``(num_jobs,
num_machines, seed)`` into a stream of validated
:class:`~repro.workloads.generators.JobChunk` blocks — the same bulk format
traces and the chunked generators use — so every scenario feeds
``repro.solve()``, a streaming :class:`~repro.service.session.SchedulerSession`
and ``repro trace generate`` identically.  The shapes cover the heavy-traffic
regimes the ROADMAP asks for:

* ``heavy-tail-pareto`` — near-critical load with an extreme Pareto tail
  (shape 1.1): the classic systems workload where short jobs starve behind
  elephants and the paper's rejection rules earn their keep;
* ``diurnal-pareto`` — a day/night arrival cycle carved out of a Poisson
  trace with a piecewise-linear time warp (peak rate 10x the trough);
* ``flash-crowd`` — smooth background traffic with a synchronized burst
  (one quarter of all jobs) landing mid-trace, merged in release order;
* ``multi-tenant-mix`` — three tenants interleaved by release: interactive
  (short uniform jobs, high weight), batch (heavy-tailed long jobs, low
  weight) and a bursty bimodal tenant;
* ``load-ramp`` — a stationary trace re-clocked so the arrival rate grows
  steadily until the system crosses into overload;
* ``drift-diurnal-flash`` — a diurnal cycle whose final day is interrupted
  by a synchronized flash-crowd burst: the load regime *drifts* mid-trace,
  which is what the E17 adaptive meta-scheduler is evaluated against;
* ``drift-ramp-heavytail`` — a gentle exponential-size ramp that hands over
  to a near-critical Pareto(1.1) stream in the second half: the size
  distribution's tail drifts from light to extreme.

The catalog is exposed to experiments (E14 sweeps all streaming solvers over
it), to ``standard_suites()`` (a ``scenarios`` suite at every scale) and to
the CLI (``repro trace generate --scenario``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.simulation.instance import Instance
from repro.workloads.generators import (
    DEFAULT_CHUNK_SIZE,
    InstanceGenerator,
    JobChunk,
    WeightedInstanceGenerator,
)
from repro.workloads.traces import chunks_to_instance, merge, time_warp

__all__ = [
    "Scenario",
    "SCENARIOS",
    "available_scenarios",
    "get_scenario",
    "piecewise_warp",
]

#: Signature of a scenario builder: (num_jobs, num_machines, seed, chunk_size).
ScenarioBuilder = Callable[[int, int, int, int], Iterator[JobChunk]]


@dataclass(frozen=True)
class Scenario:
    """A named, deterministic heavy-traffic workload recipe."""

    name: str
    description: str
    builder: ScenarioBuilder

    def job_chunks(
        self,
        num_jobs: int,
        num_machines: int = 4,
        seed: int = 2018,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> Iterator[JobChunk]:
        """Stream the scenario as validated job chunks (pure in the seed)."""
        if num_jobs < 0:
            raise InvalidParameterError(f"num_jobs must be non-negative, got {num_jobs}")
        if num_machines <= 0:
            raise InvalidParameterError(
                f"num_machines must be positive, got {num_machines}"
            )
        return self.builder(num_jobs, num_machines, seed, chunk_size)

    def instance(
        self,
        num_jobs: int,
        num_machines: int = 4,
        seed: int = 2018,
        alpha: float = 3.0,
        name: "str | None" = None,
    ) -> Instance:
        """Materialise the scenario as an :class:`Instance`."""
        return chunks_to_instance(
            self.job_chunks(num_jobs, num_machines, seed),
            machines=num_machines,
            alpha=alpha,
            name=name or f"scenario:{self.name}(m={num_machines},n={num_jobs})",
        )


def piecewise_warp(
    period: float, multipliers: tuple[float, ...]
) -> Callable[[np.ndarray], np.ndarray]:
    """A monotone piecewise-linear time warp encoding a cyclic rate profile.

    The returned function maps *work time* (a homogeneous arrival axis) to
    *wall time* such that, inside the ``k``-th of ``len(multipliers)`` equal
    segments of each ``period``, the arrival rate is ``multipliers[k]`` times
    the base rate — the standard time-rescaling construction for
    nonhomogeneous Poisson processes, vectorised and exactly invertible.
    """
    if period <= 0:
        raise InvalidParameterError(f"period must be positive, got {period}")
    mults = np.asarray(multipliers, dtype=np.float64)
    if mults.size == 0 or not (mults > 0).all():
        raise InvalidParameterError("multipliers must be positive")
    seg = period / mults.size
    work_per_cycle = float((mults * seg).sum())

    def warp(values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return values
        cycles = int(np.floor(float(values.max()) / work_per_cycle)) + 2
        work_knots = np.concatenate(
            [[0.0], np.cumsum(np.tile(mults * seg, cycles))]
        )
        wall_knots = np.arange(work_knots.size) * seg
        return np.interp(values, work_knots, wall_knots)

    return warp


# --------------------------------------------------------------------------------------
# Builders
# --------------------------------------------------------------------------------------


def _heavy_tail(n: int, m: int, seed: int, chunk_size: int) -> Iterator[JobChunk]:
    generator = InstanceGenerator(
        num_machines=m,
        arrival_process="poisson",
        size_distribution="pareto",
        size_params={"shape": 1.1, "high": 5000.0},
        load=0.95,
        seed=seed,
    )
    return generator.iter_job_chunks(n, chunk_size)


def _diurnal(n: int, m: int, seed: int, chunk_size: int) -> Iterator[JobChunk]:
    generator = InstanceGenerator(
        num_machines=m,
        arrival_process="poisson",
        size_distribution="pareto",
        load=0.85,
        seed=seed,
    )
    warp = piecewise_warp(
        period=max(64.0, n / 4.0),
        multipliers=(0.25, 0.5, 1.25, 2.5, 2.5, 1.25, 0.5, 0.25),
    )
    return time_warp(generator.iter_job_chunks(n, chunk_size), warp)


def _flash_crowd(n: int, m: int, seed: int, chunk_size: int) -> Iterator[JobChunk]:
    burst_jobs = n // 4
    base_jobs = n - burst_jobs
    background = InstanceGenerator(
        num_machines=m,
        arrival_process="poisson",
        size_distribution="exponential",
        load=0.7,
        seed=seed,
    )
    crowd = InstanceGenerator(
        num_machines=m,
        arrival_process="batched",
        batch_size=max(1, burst_jobs),
        size_distribution="uniform",
        size_params={"low": 0.5, "high": 3.0},
        load=None,
        seed=seed + 1,
    )
    # The crowd lands mid-trace: shift its (single-batch, t=0) releases to
    # the middle of the background's expected span (rate 1 => span ~ n).
    strike = base_jobs / 2.0
    surge = time_warp(crowd.iter_job_chunks(burst_jobs, chunk_size), lambda t: t + strike)
    return merge(
        background.iter_job_chunks(base_jobs, chunk_size), surge, chunk_size=chunk_size
    )


def _multi_tenant(n: int, m: int, seed: int, chunk_size: int) -> Iterator[JobChunk]:
    interactive_jobs = n - n // 4 - n // 4
    interactive = WeightedInstanceGenerator(
        num_machines=m,
        arrival_process="poisson",
        size_distribution="uniform",
        size_params={"low": 0.5, "high": 2.0},
        weight_low=2.0,
        weight_high=8.0,
        load=0.5,
        seed=seed,
    )
    batch = WeightedInstanceGenerator(
        num_machines=m,
        arrival_process="poisson",
        arrival_rate=0.25,
        size_distribution="pareto",
        size_params={"shape": 1.3, "high": 2000.0},
        weight_low=0.25,
        weight_high=1.0,
        load=0.35,
        seed=seed + 1,
    )
    bursty = WeightedInstanceGenerator(
        num_machines=m,
        arrival_process="bursty",
        size_distribution="bimodal",
        size_params={"short": 1.0, "long": 30.0, "long_fraction": 0.1},
        weight_low=0.5,
        weight_high=2.0,
        load=0.25,
        seed=seed + 2,
    )
    return merge(
        interactive.iter_job_chunks(interactive_jobs, chunk_size),
        batch.iter_job_chunks(n // 4, chunk_size),
        bursty.iter_job_chunks(n // 4, chunk_size),
        chunk_size=chunk_size,
    )


def _load_ramp(n: int, m: int, seed: int, chunk_size: int) -> Iterator[JobChunk]:
    generator = InstanceGenerator(
        num_machines=m,
        arrival_process="poisson",
        size_distribution="exponential",
        load=0.9,
        seed=seed,
    )
    # t -> t^0.7 (rescaled to preserve the overall span): the warp's slope
    # falls over time, so arrivals pack ever tighter — load ramps from
    # roughly 0.6x to beyond 1.3x of the stationary level.
    span = max(1.0, float(n))
    exponent = 0.7

    def ramp(values: np.ndarray) -> np.ndarray:
        return span * (np.asarray(values, dtype=np.float64) / span) ** exponent

    return time_warp(generator.iter_job_chunks(n, chunk_size), ramp)


def _drift_diurnal_flash(n: int, m: int, seed: int, chunk_size: int) -> Iterator[JobChunk]:
    burst_jobs = n // 3
    base_jobs = n - burst_jobs
    base = InstanceGenerator(
        num_machines=m,
        arrival_process="poisson",
        size_distribution="pareto",
        load=0.8,
        seed=seed,
    )
    warp = piecewise_warp(
        period=max(64.0, base_jobs / 3.0),
        multipliers=(0.5, 1.0, 2.0, 2.0, 1.0, 0.5),
    )
    calm = time_warp(base.iter_job_chunks(base_jobs, chunk_size), warp)
    crowd = InstanceGenerator(
        num_machines=m,
        arrival_process="batched",
        batch_size=max(1, burst_jobs),
        size_distribution="uniform",
        size_params={"low": 0.5, "high": 4.0},
        load=None,
        seed=seed + 1,
    )
    # The crowd strikes two thirds of the way through the diurnal trace
    # (rate ~1 => span ~ base_jobs): the regime drifts from cyclic-but-calm
    # to saturated mid-run.
    strike = 2.0 * base_jobs / 3.0
    surge = time_warp(crowd.iter_job_chunks(burst_jobs, chunk_size), lambda t: t + strike)
    return merge(calm, surge, chunk_size=chunk_size)


def _drift_ramp_heavytail(n: int, m: int, seed: int, chunk_size: int) -> Iterator[JobChunk]:
    tail_jobs = n // 2
    ramp_jobs = n - tail_jobs
    gentle = InstanceGenerator(
        num_machines=m,
        arrival_process="poisson",
        size_distribution="exponential",
        load=0.7,
        seed=seed,
    )
    # Same sub-linear re-clocking as ``load-ramp``, but milder: the first
    # half climbs from light load toward critical without tipping over.
    span = max(1.0, float(ramp_jobs))
    exponent = 0.85

    def ramp(values: np.ndarray) -> np.ndarray:
        return span * (np.asarray(values, dtype=np.float64) / span) ** exponent

    first = time_warp(gentle.iter_job_chunks(ramp_jobs, chunk_size), ramp)
    heavy = InstanceGenerator(
        num_machines=m,
        arrival_process="poisson",
        size_distribution="pareto",
        size_params={"shape": 1.1, "high": 5000.0},
        load=0.95,
        seed=seed + 1,
    )
    # The heavy-tailed stream takes over where the ramp leaves off: shift
    # its releases past the ramp's span so the tail drifts mid-trace.
    second = time_warp(heavy.iter_job_chunks(tail_jobs, chunk_size), lambda t: t + span)
    return merge(first, second, chunk_size=chunk_size)


def _register(*scenarios: Scenario) -> dict[str, Scenario]:
    catalog: dict[str, Scenario] = {}
    for scenario in scenarios:
        if scenario.name in catalog:
            raise InvalidParameterError(f"duplicate scenario name {scenario.name!r}")
        catalog[scenario.name] = scenario
    return catalog


#: The scenario catalog, in reporting order.
SCENARIOS: dict[str, Scenario] = _register(
    Scenario(
        "heavy-tail-pareto",
        "near-critical load, Pareto(1.1) service times (elephants and mice)",
        _heavy_tail,
    ),
    Scenario(
        "diurnal-pareto",
        "day/night arrival cycle (10x peak-to-trough) over Pareto sizes",
        _diurnal,
    ),
    Scenario(
        "flash-crowd",
        "smooth background plus a synchronized mid-trace burst of 25% of all jobs",
        _flash_crowd,
    ),
    Scenario(
        "multi-tenant-mix",
        "interactive + batch + bursty tenants interleaved by release",
        _multi_tenant,
    ),
    Scenario(
        "load-ramp",
        "arrival rate ramping steadily from underload into overload",
        _load_ramp,
    ),
    Scenario(
        "drift-diurnal-flash",
        "diurnal cycle drifting into a synchronized flash-crowd burst (E17)",
        _drift_diurnal_flash,
    ),
    Scenario(
        "drift-ramp-heavytail",
        "gentle load ramp handing over to a near-critical Pareto(1.1) tail (E17)",
        _drift_ramp_heavytail,
    ),
)


def available_scenarios() -> dict[str, str]:
    """Mapping of scenario name to its one-line description."""
    return {name: scenario.description for name, scenario in SCENARIOS.items()}


def get_scenario(name: str) -> Scenario:
    """Look up a catalog scenario by name."""
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise InvalidParameterError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        )
    return scenario
