"""Named workload suites used by the experiments and benchmarks.

A :class:`WorkloadSuite` bundles a set of instances (or instance factories)
under a name, so benchmarks, examples and EXPERIMENTS.md all refer to the same
parameterisation.  ``standard_suites()`` returns the suites in three scales:

* ``small``  — seconds to run; used by the test suite and CI;
* ``medium`` — the default for the benchmark harness;
* ``large``  — for scalability measurements (E8).

Four suites ship per scale: ``flow``, ``weighted``, ``deadline`` and
``scenarios`` — the heavy-traffic scenario catalog of
:mod:`repro.workloads.scenarios` sized to the scale.  Suite names and labels
are validated against duplicates at registration
(:func:`validate_unique_suites`, :meth:`WorkloadSuite.add`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.exceptions import InvalidParameterError
from repro.simulation.instance import Instance
from repro.workloads.adversarial import lemma1_instance, overload_burst_instance
from repro.workloads.generators import (
    DeadlineInstanceGenerator,
    InstanceGenerator,
    WeightedInstanceGenerator,
)
from repro.workloads.scenarios import SCENARIOS


@dataclass
class WorkloadSuite:
    """A named collection of lazily built instances."""

    name: str
    factories: dict[str, Callable[[], Instance]] = field(default_factory=dict)

    def add(self, label: str, factory: Callable[[], Instance]) -> None:
        """Register an instance factory under ``label``."""
        if label in self.factories:
            raise InvalidParameterError(f"duplicate workload label {label!r}")
        self.factories[label] = factory

    def build(self, label: str) -> Instance:
        """Build (or rebuild) the instance registered under ``label``."""
        try:
            return self.factories[label]()
        except KeyError as exc:
            raise KeyError(
                f"unknown workload {label!r}; available: {sorted(self.factories)}"
            ) from exc

    def build_all(self) -> dict[str, Instance]:
        """Build every instance of the suite."""
        return {label: factory() for label, factory in self.factories.items()}

    def labels(self) -> list[str]:
        """Registered labels in insertion order."""
        return list(self.factories)


def validate_unique_suites(suites: Iterable[WorkloadSuite]) -> None:
    """Reject duplicate suite names at registration time.

    Suites are addressed by name everywhere (benchmarks, docs, campaign
    reports); two suites sharing a name would silently shadow each other in
    any keyed collection, so registration fails loudly instead.
    """
    seen: set[str] = set()
    for suite in suites:
        if suite.name in seen:
            raise InvalidParameterError(f"duplicate workload suite name {suite.name!r}")
        seen.add(suite.name)


_SCALES = {
    "small": {"flow_jobs": 150, "weighted_jobs": 80, "deadline_jobs": 30,
              "scenario_jobs": 120, "machines": 3},
    "medium": {"flow_jobs": 800, "weighted_jobs": 300, "deadline_jobs": 60,
               "scenario_jobs": 600, "machines": 6},
    "large": {"flow_jobs": 5000, "weighted_jobs": 1500, "deadline_jobs": 120,
              "scenario_jobs": 4000, "machines": 16},
}


def standard_suites(scale: str = "small", seed: int = 2018) -> dict[str, WorkloadSuite]:
    """The standard workload suites at the given scale (``small``/``medium``/``large``)."""
    if scale not in _SCALES:
        raise InvalidParameterError(f"unknown scale {scale!r}; choose from {sorted(_SCALES)}")
    params = _SCALES[scale]
    m = params["machines"]

    flow = WorkloadSuite(name=f"flow-{scale}")
    flow.add(
        "poisson-pareto",
        lambda: InstanceGenerator(
            num_machines=m, arrival_process="poisson", size_distribution="pareto", seed=seed
        ).generate(params["flow_jobs"]),
    )
    flow.add(
        "bursty-bimodal",
        lambda: InstanceGenerator(
            num_machines=m,
            arrival_process="bursty",
            size_distribution="bimodal",
            size_params={"short": 1.0, "long": 40.0, "long_fraction": 0.15},
            seed=seed + 1,
        ).generate(params["flow_jobs"]),
    )
    flow.add(
        "batched-uniform",
        lambda: InstanceGenerator(
            num_machines=m,
            arrival_process="batched",
            size_distribution="uniform",
            seed=seed + 2,
        ).generate(params["flow_jobs"]),
    )
    flow.add(
        "restricted-exponential",
        lambda: InstanceGenerator(
            num_machines=m,
            machine_model="restricted",
            size_distribution="exponential",
            seed=seed + 3,
        ).generate(params["flow_jobs"]),
    )
    flow.add("overload-burst", lambda: overload_burst_instance(m, burst_jobs=3))
    flow.add("lemma1-L16", lambda: lemma1_instance(length=16.0, epsilon=0.25))

    weighted = WorkloadSuite(name=f"weighted-{scale}")
    for alpha in (2.0, 2.5, 3.0):
        weighted.add(
            f"poisson-alpha{alpha:g}",
            lambda alpha=alpha: WeightedInstanceGenerator(
                num_machines=m, alpha=alpha, seed=seed + 10
            ).generate(params["weighted_jobs"]),
        )
    weighted.add(
        "bursty-alpha2.5",
        lambda: WeightedInstanceGenerator(
            num_machines=m, alpha=2.5, arrival_process="bursty", seed=seed + 11
        ).generate(params["weighted_jobs"]),
    )

    deadline = WorkloadSuite(name=f"deadline-{scale}")
    for slack in (2.0, 4.0, 8.0):
        deadline.add(
            f"slack{slack:g}",
            lambda slack=slack: DeadlineInstanceGenerator(
                num_machines=max(1, m // 2), slack=slack, alpha=2.0, seed=seed + 20
            ).generate(params["deadline_jobs"]),
        )
    deadline.add(
        "single-machine-alpha3",
        lambda: DeadlineInstanceGenerator(
            num_machines=1, slack=4.0, alpha=3.0, seed=seed + 21
        ).generate(max(10, params["deadline_jobs"] // 2)),
    )

    scenarios = WorkloadSuite(name=f"scenarios-{scale}")
    for scenario in SCENARIOS.values():
        scenarios.add(
            scenario.name,
            lambda scenario=scenario: scenario.instance(
                params["scenario_jobs"], num_machines=m, seed=seed + 30
            ),
        )

    suites = {"flow": flow, "weighted": weighted, "deadline": deadline,
              "scenarios": scenarios}
    validate_unique_suites(suites.values())
    return suites
